#!/usr/bin/env bash
# Regenerates every table/figure of the paper plus the ablations and
# §8 extensions. Quick scale by default; pass "full" for the
# paper-sized ladders (minutes: includes million-endpoint solves), or
# "--quick" for a smoke run (compile bins + benches, drive one figure).
set -euo pipefail
SCALE="${1:-quick}"

if [[ "$SCALE" == "--quick" ]]; then
  cargo build -p megate-bench --release --bins
  cargo bench -p megate-bench --no-run
  cargo test -q --test control_loop
  cargo test -q -p megate-obs
  cargo test -q --test observability
  cargo test -q --test chaos
  cargo run -q -p megate-bench --release --bin fig09_runtime -- --scale quick
  cargo run -q -p megate-bench --release --bin fig_resilience -- --scale quick
  echo "================================================================"
  echo "Smoke run done. JSON in results/ (incl. BENCH_fig09.json and"
  echo "BENCH_resilience.json metrics)."
  exit 0
fi
BINS=(
  fig02_motivation fig08_endpoint_cdf table2_topologies
  fig09_runtime fig10_satisfied fig11_latency fig12_failures
  fig13_connections fig14_sync_scale
  fig15_app_latency fig16_availability fig17_cost
  fig_resilience
  ablations ext_hybrid_sync ext_prediction
)
cargo build -p megate-bench --release --bins
for b in "${BINS[@]}"; do
  echo "================================================================"
  echo ">> $b"
  cargo run -q -p megate-bench --release --bin "$b" -- --scale "$SCALE"
done
echo "================================================================"
echo "All experiments done. JSON in results/."
