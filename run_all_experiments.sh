#!/usr/bin/env bash
# Regenerates every table/figure of the paper plus the ablations and
# §8 extensions. Quick scale by default; pass "full" for the
# paper-sized ladders (minutes: includes million-endpoint solves), or
# "--quick" for a smoke run (compile bins + benches, drive key figures).
set -euo pipefail
SCALE="${1:-quick}"

usage() {
  cat <<'EOF'
usage: ./run_all_experiments.sh [quick|full|--quick|--help]

  quick    (default) every figure binary at reduced scale
  full     paper-sized ladders — minutes; includes million-endpoint solves
  --quick  smoke run: compile bins + benches, key gates, three figures
  --help   this message

Figure binary -> output mapping (all JSON lands in results/):

  fig02_motivation   results/fig02_motivation.json   per-endpoint vs aggregate TE gap
  fig08_endpoint_cdf results/fig08_endpoint_cdf.json endpoints per cluster CDF
  table2_topologies  results/table2_topologies.json  topology inventory
  fig09_runtime      results/fig09_runtime.json      solver runtime ladder (+ BENCH_fig09.json)
  fig10_satisfied    results/fig10_satisfied.json    satisfied-demand comparison
  fig11_latency      results/fig11_latency.json      path-latency distribution
  fig12_failures     results/fig12_failures.json     link-failure recovery
  fig13_connections  results/fig13_connections.json  per-host connection fan-out
  fig14_sync_scale   results/fig14_sync_scale.json   TE-DB sync traffic vs endpoints
  fig15_app_latency  results/fig15_app_latency.json  application-level latency
  fig16_availability results/fig16_availability.json availability under faults
  fig17_cost         results/fig17_cost.json         provisioning-cost comparison
  fig_resilience     results/fig_resilience.json     fault-storm control-loop drill (+ BENCH_resilience.json)
  fig_dataplane      results/fig_dataplane.json      batched multi-core TC fast path (+ BENCH_dataplane.json)
  fig_solver_scale   results/fig_solver_scale.json   flat stage-3 endpoints x threads sweep (+ BENCH_solver_scale.json)
  fig_incremental    results/fig_incremental.json    warm-started dirty-set solves vs cold (+ BENCH_incremental.json)
  fig_propagation    results/fig_propagation.json    solve-to-install latency per delivery path (+ BENCH_propagation.json)
  fig_partition      results/fig_partition.json      partitioned controllers under chaos vs the single-controller twin (+ BENCH_partition.json)
  fig_service        results/fig_service.json        agent fan-out over real sockets, PROTOCOL.md wire (+ BENCH_service.json)
  ablations          results/ablations.json          component ablations
  ext_hybrid_sync    results/ext_hybrid_sync.json    §8 hybrid sync extension
  ext_prediction     results/ext_prediction.json     §8 demand-prediction extension
EOF
}

if [[ "$SCALE" == "--help" || "$SCALE" == "-h" ]]; then
  usage
  exit 0
fi

if [[ "$SCALE" == "--quick" ]]; then
  cargo build -p megate-bench --release --bins
  cargo bench -p megate-bench --no-run
  cargo test -q --test control_loop
  cargo test -q -p megate-obs
  cargo test -q --test observability
  cargo test -q --test chaos
  # Partitioned-controller chaos: no double-booked links, dead slices
  # ride the DB-outage ladder, per-seed determinism.
  cargo test -q --test partition
  # Batched fast path must keep accounting bitwise-identical before its
  # throughput figure means anything.
  cargo test -q --test dataplane_batch
  # Same bar for the flat stage-3 kernel before its scaling figure.
  cargo test -q --test solver_equivalence
  # And for the warm-started incremental engine before its figure.
  cargo test -q --test incremental
  # Wire-protocol edge cases + PROTOCOL.md fingerprint pin, and the
  # chaos invariants over real TCP, before the socket figure.
  cargo test -q -p megate-net --test protocol
  cargo test -q -p megate-net --test service_chaos
  cargo run -q -p megate-bench --release --bin fig09_runtime -- --scale quick
  cargo run -q -p megate-bench --release --bin fig_resilience -- --scale quick
  cargo run -q -p megate-bench --release --bin fig_dataplane -- --scale quick
  cargo run -q -p megate-bench --release --bin fig_solver_scale -- --scale quick
  cargo run -q -p megate-bench --release --bin fig_incremental -- --scale quick
  cargo run -q -p megate-bench --release --bin fig_propagation -- --scale quick
  cargo run -q -p megate-bench --release --bin fig_partition -- --scale quick
  cargo run -q -p megate-bench --release --bin fig_service -- --scale quick
  # Perf drift vs the committed baselines/ — informational only.
  ./scripts/bench_diff || true
  echo "================================================================"
  echo "Smoke run done. JSON in results/ (incl. BENCH_fig09.json,"
  echo "BENCH_resilience.json, BENCH_dataplane.json, BENCH_solver_scale.json,"
  echo "BENCH_incremental.json, BENCH_propagation.json, BENCH_partition.json"
  echo "and BENCH_service.json metrics)."
  exit 0
fi

if [[ "$SCALE" != "quick" && "$SCALE" != "full" ]]; then
  usage
  exit 1
fi

BINS=(
  fig02_motivation fig08_endpoint_cdf table2_topologies
  fig09_runtime fig10_satisfied fig11_latency fig12_failures
  fig13_connections fig14_sync_scale
  fig15_app_latency fig16_availability fig17_cost
  fig_resilience fig_dataplane fig_solver_scale fig_incremental
  fig_propagation fig_partition fig_service
  ablations ext_hybrid_sync ext_prediction
)
cargo build -p megate-bench --release --bins
for b in "${BINS[@]}"; do
  echo "================================================================"
  echo ">> $b"
  cargo run -q -p megate-bench --release --bin "$b" -- --scale "$SCALE"
done
echo "================================================================"
echo "All experiments done. JSON in results/."
