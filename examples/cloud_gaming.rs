//! Cloud gaming scenario — the workload class that motivates the paper
//! (§1, §4.1: "QoS class 1 ... contains essential network control
//! traffic and a few critical services such as cloud gaming").
//!
//! A gaming platform runs sessions between players and game servers in
//! distant regions, alongside heavy log-shipping (QoS 3). With
//! conventional hash-based TE, some gaming sessions land on long
//! detours whenever they share a site pair with bulk traffic. MegaTE
//! pins every gaming flow to the short path and pushes the logs onto
//! the detour.
//!
//! ```sh
//! cargo run --example cloud_gaming --release
//! ```

use megate::prelude::*;
use megate_dataplane::ecmp_tunnel_seeded;
use megate_packet::{FiveTuple, Proto};
use megate_topo::{EndpointId, SiteId};
use megate_traffic::EndpointDemand;

fn main() {
    let graph = megate_topo::deltacom();
    // One region pair with a genuine detour: find a pair whose first
    // alternate tunnel is link-disjoint from the shortest.
    let (pair, tunnels) = (0..graph.site_count() as u32)
        .flat_map(|i| (0..graph.site_count() as u32).map(move |j| (i, j)))
        .filter(|&(i, j)| i != j)
        .find_map(|(i, j)| {
            let pair = SitePair::new(SiteId(i), SiteId(j));
            let t = TunnelTable::for_pairs(&graph, &[pair], 3);
            let ts = t.tunnels_for(pair);
            if ts.len() >= 2 {
                let a = t.tunnel(ts[0]);
                let b = t.tunnel(ts[1]);
                let disjoint = !b.links.iter().any(|l| a.links.contains(l));
                if disjoint && b.weight > a.weight * 1.3 {
                    return Some((pair, t));
                }
            }
            None
        })
        .expect("Deltacom has ring detours");
    let ts = tunnels.tunnels_for(pair);
    let short = tunnels.tunnel(ts[0]);
    let long = tunnels.tunnel(ts[1]);
    println!(
        "region pair {pair}: gaming path {:.1} ms, detour {:.1} ms",
        short.weight, long.weight
    );

    // Demand: 200 gaming sessions (QoS1, ~1.5 Mbps each) + 30 log
    // shippers (QoS3, big). Together they exceed the short path.
    let mut demands = DemandSet::default();
    let bottleneck = short
        .links
        .iter()
        .map(|&l| graph.link(l).capacity_mbps)
        .fold(f64::INFINITY, f64::min);
    let mut ep = 0u64;
    for i in 0..200 {
        demands.push(
            pair,
            EndpointDemand {
                src: EndpointId(ep),
                dst: EndpointId(ep + 1),
                demand_mbps: 1.5 + (i % 5) as f64 * 0.2,
                qos: QosClass::Class1,
            },
        );
        ep += 2;
    }
    for _ in 0..30 {
        demands.push(
            pair,
            EndpointDemand {
                src: EndpointId(ep),
                dst: EndpointId(ep + 1),
                demand_mbps: bottleneck / 25.0, // logs nearly fill the short path alone
                qos: QosClass::Class3,
            },
        );
        ep += 2;
    }

    let problem = TeProblem {
        graph: &graph,
        tunnels: &tunnels,
        demands: &demands,
    };
    let alloc = solve_per_qos(&MegaTeScheme::default(), &problem).expect("solvable");
    let assign = alloc.endpoint_assignment.as_ref().unwrap();

    // Where did the classes land?
    let mut gaming_on_short = 0;
    let mut gaming_total = 0;
    let mut logs_on_detour = 0;
    let mut logs_total = 0;
    for (i, d) in demands.demands().iter().enumerate() {
        match (d.qos, assign[i]) {
            (QosClass::Class1, Some(t)) => {
                gaming_total += 1;
                if t == short.id {
                    gaming_on_short += 1;
                }
            }
            (QosClass::Class3, Some(t)) => {
                logs_total += 1;
                if t != short.id {
                    logs_on_detour += 1;
                }
            }
            _ => {}
        }
    }
    println!("\nMegaTE placement:");
    println!("  gaming sessions on the short path: {gaming_on_short}/{gaming_total}");
    println!("  log shippers on the detour:        {logs_on_detour}/{logs_total}");
    assert_eq!(
        gaming_on_short, gaming_total,
        "every session gets the short path"
    );

    // Conventional hashing for comparison: sessions spread across both.
    let mut hashed_short = 0;
    for i in 0..200u16 {
        let tuple = FiveTuple {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 9, 9],
            proto: Proto::Udp,
            src_port: 30_000 + i,
            dst_port: 3074,
        };
        if ecmp_tunnel_seeded(&tunnels, pair, &tuple, 0) == Some(short.id) {
            hashed_short += 1;
        }
    }
    println!(
        "\nConventional hashing puts only {hashed_short}/200 sessions on the \
         short path — the rest play at +{:.0} ms.",
        long.weight - short.weight
    );
}
