//! Quickstart: solve one TE interval with MegaTE's two-stage algorithm
//! and inspect the allocation.
//!
//! ```sh
//! cargo run --example quickstart --release
//! ```

use megate::prelude::*;

fn main() {
    // 1. Topology: Google's B4 WAN (12 sites), 3 pre-established
    //    tunnels per site pair, sorted by latency.
    let graph = megate_topo::b4();
    let tunnels = TunnelTable::for_all_pairs(&graph, 3);
    println!(
        "topology: {} sites, {} directed links, {} tunnels",
        graph.site_count(),
        graph.link_count(),
        tunnels.tunnel_count()
    );

    // 2. Endpoints: 2,000 virtual instances attached to sites with the
    //    paper's Weibull spread (Figure 8).
    let catalog = EndpointCatalog::generate(&graph, 2_000, WeibullEndpoints::with_scale(160.0), 7);

    // 3. One TE interval of endpoint-pair demands: heavy-tailed sizes,
    //    three QoS classes, scaled to a realistic load.
    let mut demands = DemandSet::generate(
        &graph,
        &catalog,
        &TrafficConfig {
            endpoint_pairs: 1_500,
            site_pairs: 40,
            ..Default::default()
        },
    );
    demands.scale_to_load(&graph, 1.0);
    println!(
        "demands: {} endpoint pairs, {:.1} Gbps total",
        demands.len(),
        demands.total_mbps() / 1000.0
    );

    // 4. Solve per QoS class (class 1 first, then 2, then 3 on the
    //    residual capacity — §4.1 of the paper).
    let problem = TeProblem {
        graph: &graph,
        tunnels: &tunnels,
        demands: &demands,
    };
    let alloc = solve_per_qos(&MegaTeScheme::default(), &problem).expect("solvable");
    assert!(alloc.check_feasible(&problem, 1e-6));

    println!(
        "\nMegaTE allocation: {:.1}% of demand satisfied in {:?}",
        100.0 * alloc.satisfied_ratio(&problem),
        alloc.solve_time
    );
    println!(
        "max link utilization: {:.1}%",
        100.0 * alloc.max_link_utilization(&problem)
    );
    for qos in QosClass::IN_PRIORITY_ORDER {
        let class_demand: f64 = demands
            .demands()
            .iter()
            .filter(|d| d.qos == qos)
            .map(|d| d.demand_mbps)
            .sum();
        let sat = alloc.satisfied_mbps_for_qos(&problem, qos).unwrap_or(0.0);
        println!(
            "  {qos}: {:.1}% satisfied, normalized latency {:.3}",
            100.0 * sat / class_demand.max(1e-9),
            alloc.mean_normalized_latency(&problem, Some(qos))
        );
    }

    // 5. Every flow either rides exactly one tunnel of its site pair or
    //    is rejected — the binary f_{k,t}^i of Equation 1.
    let assign = alloc.endpoint_assignment.as_ref().unwrap();
    let assigned = assign.iter().filter(|a| a.is_some()).count();
    println!("\n{assigned}/{} flows assigned to a tunnel", assign.len());
    let (i, t) = assign
        .iter()
        .enumerate()
        .find_map(|(i, a)| a.map(|t| (i, t)))
        .expect("at least one assigned flow");
    let d = &demands.demands()[i];
    let tun = tunnels.tunnel(t);
    println!(
        "example: {} -> {} ({:.2} Mbps, {}) rides tunnel {:?} ({:.1} ms)",
        d.src,
        d.dst,
        d.demand_mbps,
        d.qos,
        tun.sites.iter().map(|s| s.0).collect::<Vec<_>>(),
        tun.weight
    );
}
