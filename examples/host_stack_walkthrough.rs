//! Host-stack walkthrough — §5.1/§5.2 step by step on one end host:
//! instance identification, flow collection (including IP fragments),
//! SR insertion at the TC layer, and the wire format around it.
//!
//! ```sh
//! cargo run --example host_stack_walkthrough --release
//! ```

use megate_hoststack::{EndpointAgent, InstanceId, PathInstall, Pid, SimKernel};
use megate_packet::{parse_megate_frame, FiveTuple, MegaTeFrameSpec, Proto};

fn main() {
    let kernel = SimKernel::new();
    let mut agent = EndpointAgent::new(kernel.maps().clone());

    // --- Instance identification (Figure 6, left half) -------------
    // A container (ins_id 42) starts a process; the eBPF program at the
    // sys_enter_execve tracepoint records pid -> ins_id in env_map.
    let instance = InstanceId(42);
    let pid = Pid(31337);
    kernel.spawn_process(instance, pid).unwrap();
    println!("execve: env_map[{pid:?}] = {instance}");

    // The process opens a connection; the conntrack kprobe records
    // 5tuple -> pid in contk_map and joins into inf_map.
    let tuple = FiveTuple {
        src_ip: [10, 0, 0, 42],
        dst_ip: [10, 0, 7, 7],
        proto: Proto::Udp,
        src_port: 8443,
        dst_port: 8443,
    };
    kernel.open_connection(pid, tuple).unwrap();
    println!(
        "conntrack: inf_map[{tuple}] = {:?}",
        kernel.maps().inf_map.lookup(&tuple).unwrap()
    );

    // --- Flow collection (Figure 6, TC hook) ------------------------
    // Three packets of the flow leave the host, one of them fragmented
    // into two pieces sharing an ipid. The TC program bills all of it
    // to the same five-tuple via frag_map.
    let mut spec = MegaTeFrameSpec::simple(tuple, 9, None);
    spec.payload_len = 900;
    let mut f1 = spec.build();
    kernel.tc_egress(&mut f1);

    let mut first_frag = MegaTeFrameSpec::simple(tuple, 9, None);
    first_frag.inner_ipid = 0xBEEF;
    first_frag.inner_fragment = (0, true);
    first_frag.payload_len = 1400;
    let mut f2 = first_frag.build();
    kernel.tc_egress(&mut f2);

    let mut second_frag = MegaTeFrameSpec::simple(tuple, 9, None);
    second_frag.inner_ipid = 0xBEEF;
    second_frag.inner_fragment = (1480, false);
    second_frag.payload_len = 300;
    let mut f3 = second_frag.build();
    kernel.tc_egress(&mut f3);

    println!(
        "traffic_map[{tuple}] = {} bytes over 3 packets (1 fragmented)",
        kernel.maps().traffic_map.lookup(&tuple).unwrap()
    );
    println!(
        "fragments resolved via frag_map: {}",
        kernel.stats().fragments_resolved
    );

    // The endpoint agent reads and resets the counters once per TE
    // interval and reports (ins_id, volume) upstream.
    let records = agent.collect_flows();
    let volumes = EndpointAgent::per_instance_volume(&records);
    println!(
        "agent report: {:?} bytes for {instance}",
        volumes[&instance]
    );

    // --- SR insertion (§5.2) ----------------------------------------
    // The TE controller decided this instance's flow to 10.0.7.7 rides
    // the path via sites 3 -> 8 -> 5. The agent installs it into
    // path_map; from now on the TC program labels every packet.
    agent.install_config(
        1,
        &[PathInstall {
            instance,
            dst_ip: tuple.dst_ip,
            hops: vec![3, 8, 5],
        }],
    );
    let mut labelled = MegaTeFrameSpec::simple(tuple, 9, None).build();
    let before_len = labelled.len();
    let verdict = kernel.tc_egress(&mut labelled);
    println!(
        "\nTC egress verdict: {verdict:?} (+{} bytes)",
        labelled.len() - before_len
    );

    let parsed = parse_megate_frame(&labelled).unwrap();
    let (offset, hops) = parsed.sr.expect("SR header present");
    println!(
        "wire: VXLAN flag set, SR header = {{ hop_number: {}, offset: {offset}, \
         hops: {hops:?} }}",
        hops.len()
    );
    assert_eq!(hops, vec![3, 8, 5]);

    // A WAN router forwards to hop[offset] and advances the offset.
    megate_packet::advance_sr_offset(&mut labelled).unwrap();
    let parsed = parse_megate_frame(&labelled).unwrap();
    println!("after first router: offset = {}", parsed.sr.unwrap().0);

    // The receiving host strips the header before the guest sees it.
    megate_packet::strip_sr_header(&mut labelled).unwrap();
    assert!(parse_megate_frame(&labelled).unwrap().sr.is_none());
    println!("destination host: SR header stripped, plain VXLAN frame delivered");
}
