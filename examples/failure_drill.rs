//! Failure drill — §6.3 end to end: a fiber cut hits a loaded link,
//! the controller recomputes on the degraded topology in well under a
//! second, publishes a new configuration version, agents pull it, and
//! traffic routes around the cut.
//!
//! ```sh
//! cargo run --example failure_drill --release
//! ```

use megate::prelude::*;
use megate_topo::LinkId;

fn main() {
    // Build a full system on B4 with 150 endpoints.
    let graph = megate_topo::b4();
    let tunnels = TunnelTable::for_all_pairs(&graph, 3);
    let catalog = EndpointCatalog::generate(&graph, 150, WeibullEndpoints::with_scale(12.0), 4);
    let mut demands = DemandSet::generate(
        &graph,
        &catalog,
        &TrafficConfig {
            endpoint_pairs: 120,
            site_pairs: 18,
            ..Default::default()
        },
    );
    demands.scale_to_load(&graph, 0.6);
    let mut system = MegaTeSystem::new(
        graph.clone(),
        tunnels.clone(),
        catalog,
        megate::SystemConfig::default(),
    );
    system.bring_up(&demands).expect("hosts come up");

    // Interval 1: normal operation.
    let r1 = system.run_controller_interval(&demands).expect("solve");
    system.agents_pull();
    let t1 = system.send_demand_packets(&demands);
    println!(
        "interval 1: version {}, {} SR-labelled flows, mean latency {:.1} ms",
        r1.version, t1.sr_labelled, t1.mean_latency_ms
    );

    // Fail the busiest fiber.
    let loads = r1.allocation.link_loads(&TeProblem {
        graph: &graph,
        tunnels: &tunnels,
        demands: &demands,
    });
    let busiest = LinkId(
        (0..loads.len())
            .max_by(|&a, &b| loads[a].total_cmp(&loads[b]))
            .unwrap() as u32,
    );
    let link = graph.link(busiest);
    let reverse = graph.find_link(link.dst, link.src).unwrap();
    let scenario = FailureScenario::from_links(vec![busiest, reverse]);
    println!(
        "\n!! fiber cut: {} <-> {} (carried {:.1} Gbps)",
        link.src,
        link.dst,
        loads[busiest.index()] / 1000.0
    );

    // Controller reacts: recompute on the degraded topology.
    let r2 = system
        .controller_mut()
        .handle_failure(&demands, &scenario)
        .expect("recompute");
    println!(
        "controller recomputed + published v{} in {:?} (paper: <1 s)",
        r2.version, r2.total_time
    );
    assert!(r2.total_time.as_secs_f64() < 1.0);

    // No recomputed flow touches the dead fiber.
    for t in tunnels.all_tunnels() {
        if r2.allocation.tunnel_flow_mbps[t.id.index()] > 0.0 {
            assert!(!t.links.iter().any(|l| scenario.contains(*l)));
        }
    }

    // Agents pull the new version; traffic flows around the cut.
    let updated = system.agents_pull();
    let t2 = system.send_demand_packets(&demands);
    println!(
        "\ninterval 2: {updated} agents updated to v{}, {} SR-labelled flows, \
         mean latency {:.1} ms",
        r2.version, t2.sr_labelled, t2.mean_latency_ms
    );
    println!(
        "satisfied before {:.1}% -> after {:.1}% (degraded topology)",
        100.0
            * r1.allocation.satisfied_ratio(&TeProblem {
                graph: &graph,
                tunnels: &tunnels,
                demands: &demands
            }),
        100.0
            * r2.allocation.satisfied_ratio(&TeProblem {
                graph: &graph,
                tunnels: &tunnels,
                demands: &demands
            }),
    );
}
