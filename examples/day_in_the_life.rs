//! A day in the life of the controller: replay 24 hours of 5-minute TE
//! intervals with the diurnal load shape (§6.1's "typical day"),
//! re-solving each interval and tracking satisfied demand, QoS-1
//! latency and version churn. Every 6th interval a transient fiber cut
//! exercises the fast-recompute path.
//!
//! ```sh
//! cargo run --example day_in_the_life --release
//! ```

use megate::prelude::*;
use megate_traffic::diurnal::INTERVALS_PER_DAY;
use megate_traffic::diurnal_multiplier;

fn main() {
    let graph = megate_topo::b4();
    let tunnels = TunnelTable::for_all_pairs(&graph, 3);
    let catalog = EndpointCatalog::generate(&graph, 1_000, WeibullEndpoints::with_scale(80.0), 11);
    let base = {
        let mut d = DemandSet::generate(
            &graph,
            &catalog,
            &TrafficConfig {
                endpoint_pairs: 800,
                site_pairs: 30,
                ..Default::default()
            },
        );
        d.scale_to_load(&graph, 1.2); // peak-hour provisioning point
        d
    };

    let scheme = MegaTeScheme::default();
    // Sample every 12th interval (hourly) to keep the demo brisk; the
    // full 288-interval replay is the same loop.
    let mut worst_satisfied: f64 = 1.0;
    let mut best_satisfied: f64 = 0.0;
    println!("hour | load | satisfied | QoS1 norm latency | solve");
    println!("-----+------+-----------+-------------------+------");
    for interval in (0..INTERVALS_PER_DAY).step_by(12) {
        let mult = diurnal_multiplier(interval, INTERVALS_PER_DAY);
        let mut demands = base.clone();
        demands.scale(mult);
        let p = TeProblem {
            graph: &graph,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = solve_per_qos(&scheme, &p).expect("solvable");
        assert!(alloc.check_feasible(&p, 1e-6));
        let satisfied = alloc.satisfied_ratio(&p);
        worst_satisfied = worst_satisfied.min(satisfied);
        best_satisfied = best_satisfied.max(satisfied);
        println!(
            "  {:>2} | {:.2} |    {:>5.1}% |             {:.3} | {:?}",
            interval / 12,
            mult,
            100.0 * satisfied,
            alloc.mean_normalized_latency(&p, Some(QosClass::Class1)),
            alloc.solve_time
        );
    }
    println!(
        "\nsatisfied demand over the day: best {:.1}% (overnight trough), \
         worst {:.1}% (evening peak) — the diurnal swing the 5-minute TE \
         loop absorbs",
        100.0 * best_satisfied,
        100.0 * worst_satisfied
    );

    // Transient failure at the evening peak: recompute must stay fast
    // and feasible on the degraded topology.
    let mut peak_demands = base.clone();
    peak_demands.scale(diurnal_multiplier(252, INTERVALS_PER_DAY));
    let scenario = FailureScenario::sample_connected(&graph, 2, 99).expect("scenario");
    let degraded = scenario.apply(&graph);
    let p = TeProblem {
        graph: &degraded,
        tunnels: &tunnels,
        demands: &peak_demands,
    };
    let alloc = solve_per_qos(&scheme, &p).expect("recompute");
    println!(
        "\nfiber cut at the peak: recomputed in {:?}, {:.1}% satisfied on the \
         degraded topology, no flow on failed links",
        alloc.solve_time,
        100.0 * alloc.satisfied_ratio(&p)
    );
    for t in tunnels.all_tunnels() {
        if alloc.tunnel_flow_mbps[t.id.index()] > 0.0 {
            assert!(!t.links.iter().any(|l| scenario.contains(*l)));
        }
    }
}
