//! The TE-DB wire protocol: length-prefixed, versioned, checksummed
//! binary frames.
//!
//! Every message — request or response — is one **frame**:
//!
//! ```text
//! offset  size  field
//! 0       2     magic        0x4D54  ("MT", big-endian)
//! 2       1     version      protocol version (currently 1)
//! 3       1     op           opcode (see below)
//! 4       8     request_id   u64, echoed verbatim in the response
//! 12      4     body_len     u32, bytes of body following the header
//! 16      4     body_crc     FNV-1a/32 of the body bytes
//! 20      n     body         op-specific payload
//! ```
//!
//! All integers are big-endian. The 20-byte header layout and the
//! opcode values are **frozen**: PROTOCOL.md documents them byte by
//! byte and `tests/protocol.rs` pins a fingerprint over canonical
//! encodings, so any silent change breaks the build, not deployed
//! agents. New needs get new opcodes or a bumped `version` negotiated
//! via [`Request::Hello`].
//!
//! The request ops map 1:1 onto the [`TeKey`] keyspace of the
//! delta-versioned control loop: `GetVersion` ↔ `TeKey::Version`,
//! `GetChangelog` ↔ `TeKey::Changelog`, `GetDelta` ↔ `TeKey::Delta`,
//! `GetSnapshot` ↔ `TeKey::Snapshot`.
//!
//! The body checksum is the transport integrity check of the fault
//! model: a TE-DB read flagged corrupted is forwarded by the server
//! under a deliberately wrong `body_crc`, and a truncated or damaged
//! frame fails the same check — the client treats both as one
//! retryable [`FrameError::BadCrc`] failure, exactly like the
//! in-process `ReadOutcome::corrupted` path.

use megate_tedb::TeKey;

/// Frame magic: "MT" big-endian.
pub const MAGIC: u16 = 0x4D54;
/// The protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 20;
/// Default cap on `body_len` a peer will accept (1 MiB). A frame
/// declaring more is rejected with [`ErrorCode::Oversized`] before any
/// body byte is read.
pub const DEFAULT_MAX_BODY: u32 = 1 << 20;

/// Request opcodes (`0x01..=0x7F`).
pub mod op {
    /// Version negotiation; must be the first frame on a connection.
    pub const HELLO: u8 = 0x01;
    /// Read a partition's config version record.
    pub const GET_VERSION: u8 = 0x02;
    /// Read an endpoint's changelog.
    pub const GET_CHANGELOG: u8 = 0x03;
    /// Read one `(endpoint, version)` delta record.
    pub const GET_DELTA: u8 = 0x04;
    /// Read an endpoint's latest snapshot record.
    pub const GET_SNAPSHOT: u8 = 0x05;
    /// Liveness probe; echoes an empty body.
    pub const PING: u8 = 0x06;

    /// Response opcodes are the request op with the top bit set
    /// (`0x81..=0x86`), except errors.
    pub const RESPONSE_BIT: u8 = 0x80;
    /// Error response to any request.
    pub const ERROR: u8 = 0xFF;
}

/// Error codes carried by `op::ERROR` responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u16)]
pub enum ErrorCode {
    /// Every replica of the addressed shard was unreachable.
    Unreachable = 1,
    /// The request body did not decode.
    BadRequest = 2,
    /// The peer's protocol version is not supported.
    UnsupportedVersion = 3,
    /// Declared body length exceeds the receiver's cap.
    Oversized = 4,
    /// The request frame's body checksum failed.
    BadCrc = 5,
}

impl ErrorCode {
    /// Decodes a wire error code.
    pub fn from_u16(v: u16) -> Option<Self> {
        Some(match v {
            1 => ErrorCode::Unreachable,
            2 => ErrorCode::BadRequest,
            3 => ErrorCode::UnsupportedVersion,
            4 => ErrorCode::Oversized,
            5 => ErrorCode::BadCrc,
            _ => return None,
        })
    }
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Version negotiation: the inclusive range of protocol versions
    /// the client speaks. Body: `u8 min | u8 max`.
    Hello {
        /// Lowest protocol version the client accepts.
        min_version: u8,
        /// Highest protocol version the client accepts.
        max_version: u8,
    },
    /// `TeKey::Version { partition }` read. Body: `u32 partition`.
    GetVersion {
        /// Controller partition whose clock to read.
        partition: u32,
    },
    /// `TeKey::Changelog { endpoint }` read. Body: `u64 endpoint`.
    GetChangelog {
        /// Source endpoint id.
        endpoint: u64,
    },
    /// `TeKey::Delta { endpoint, version }` read. Body:
    /// `u64 endpoint | u64 version`.
    GetDelta {
        /// Source endpoint id.
        endpoint: u64,
        /// The delta's target config version.
        version: u64,
    },
    /// `TeKey::Snapshot { endpoint }` read. Body: `u64 endpoint`.
    GetSnapshot {
        /// Source endpoint id.
        endpoint: u64,
    },
    /// Liveness probe. Empty body.
    Ping,
}

impl Request {
    /// The `TeKey` a data request addresses; `None` for
    /// `Hello`/`Ping`/`GetVersion` is never returned — version reads
    /// address `TeKey::Version`.
    pub fn te_key(&self) -> Option<TeKey> {
        Some(match *self {
            Request::GetVersion { partition } => TeKey::Version { partition },
            Request::GetChangelog { endpoint } => TeKey::Changelog { endpoint },
            Request::GetDelta { endpoint, version } => TeKey::Delta { endpoint, version },
            Request::GetSnapshot { endpoint } => TeKey::Snapshot { endpoint },
            Request::Hello { .. } | Request::Ping => return None,
        })
    }

    /// This request's opcode.
    pub fn op(&self) -> u8 {
        match self {
            Request::Hello { .. } => op::HELLO,
            Request::GetVersion { .. } => op::GET_VERSION,
            Request::GetChangelog { .. } => op::GET_CHANGELOG,
            Request::GetDelta { .. } => op::GET_DELTA,
            Request::GetSnapshot { .. } => op::GET_SNAPSHOT,
            Request::Ping => op::PING,
        }
    }

    /// Encodes the op-specific body.
    pub fn encode_body(&self) -> Vec<u8> {
        match *self {
            Request::Hello {
                min_version,
                max_version,
            } => vec![min_version, max_version],
            Request::GetVersion { partition } => partition.to_be_bytes().to_vec(),
            Request::GetChangelog { endpoint } | Request::GetSnapshot { endpoint } => {
                endpoint.to_be_bytes().to_vec()
            }
            Request::GetDelta { endpoint, version } => {
                let mut b = Vec::with_capacity(16);
                b.extend_from_slice(&endpoint.to_be_bytes());
                b.extend_from_slice(&version.to_be_bytes());
                b
            }
            Request::Ping => Vec::new(),
        }
    }

    /// Decodes a request from `(op, body)`; `None` on unknown op or
    /// malformed body (wrong length — every request body is fixed
    /// size).
    pub fn decode(op_byte: u8, body: &[u8]) -> Option<Request> {
        Some(match op_byte {
            op::HELLO => Request::Hello {
                min_version: *body.first()?,
                max_version: *body.get(1).filter(|_| body.len() == 2)?,
            },
            op::GET_VERSION => Request::GetVersion {
                partition: u32::from_be_bytes(body.get(0..4)?.try_into().ok()?),
            }
            .reject_trailing(body, 4)?,
            op::GET_CHANGELOG => Request::GetChangelog {
                endpoint: u64::from_be_bytes(body.get(0..8)?.try_into().ok()?),
            }
            .reject_trailing(body, 8)?,
            op::GET_DELTA => Request::GetDelta {
                endpoint: u64::from_be_bytes(body.get(0..8)?.try_into().ok()?),
                version: u64::from_be_bytes(body.get(8..16)?.try_into().ok()?),
            }
            .reject_trailing(body, 16)?,
            op::GET_SNAPSHOT => Request::GetSnapshot {
                endpoint: u64::from_be_bytes(body.get(0..8)?.try_into().ok()?),
            }
            .reject_trailing(body, 8)?,
            op::PING if body.is_empty() => Request::Ping,
            _ => return None,
        })
    }

    fn reject_trailing(self, body: &[u8], want: usize) -> Option<Self> {
        (body.len() == want).then_some(self)
    }
}

/// A decoded response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Version negotiation result: the version the server chose.
    /// Body: `u8 version`.
    HelloOk {
        /// The protocol version the connection will speak.
        version: u8,
    },
    /// A partition's version record. Body: `u8 present [| u64 value]`.
    VersionIs {
        /// The published version, `None` when nothing was published.
        version: Option<u64>,
    },
    /// A record read (changelog / delta / snapshot — the opcode echoes
    /// the request). Body: `u8 present [| raw record bytes]`.
    Record {
        /// Which request op this answers (`GET_CHANGELOG`, `GET_DELTA`
        /// or `GET_SNAPSHOT`).
        for_op: u8,
        /// The raw stored value; `None` when the key does not exist.
        value: Option<Vec<u8>>,
    },
    /// Liveness reply. Empty body.
    Pong,
    /// Request failed. Body: `u16 code | u16 detail_len | detail`
    /// (UTF-8 diagnostic, not machine-parsed).
    Error {
        /// The failure class.
        code: ErrorCode,
        /// Human-readable diagnostic.
        detail: String,
    },
}

impl Response {
    /// This response's opcode.
    pub fn op(&self) -> u8 {
        match self {
            Response::HelloOk { .. } => op::HELLO | op::RESPONSE_BIT,
            Response::VersionIs { .. } => op::GET_VERSION | op::RESPONSE_BIT,
            Response::Record { for_op, .. } => for_op | op::RESPONSE_BIT,
            Response::Pong => op::PING | op::RESPONSE_BIT,
            Response::Error { .. } => op::ERROR,
        }
    }

    /// Encodes the op-specific body.
    pub fn encode_body(&self) -> Vec<u8> {
        match self {
            Response::HelloOk { version } => vec![*version],
            Response::VersionIs { version } => match version {
                Some(v) => {
                    let mut b = Vec::with_capacity(9);
                    b.push(1);
                    b.extend_from_slice(&v.to_be_bytes());
                    b
                }
                None => vec![0],
            },
            Response::Record { value, .. } => match value {
                Some(v) => {
                    let mut b = Vec::with_capacity(1 + v.len());
                    b.push(1);
                    b.extend_from_slice(v);
                    b
                }
                None => vec![0],
            },
            Response::Pong => Vec::new(),
            Response::Error { code, detail } => {
                let d = detail.as_bytes();
                let d = &d[..d.len().min(u16::MAX as usize)];
                let mut b = Vec::with_capacity(4 + d.len());
                b.extend_from_slice(&(*code as u16).to_be_bytes());
                b.extend_from_slice(&(d.len() as u16).to_be_bytes());
                b.extend_from_slice(d);
                b
            }
        }
    }

    /// Decodes a response from `(op, body)`; `None` on unknown op or
    /// malformed body.
    pub fn decode(op_byte: u8, body: &[u8]) -> Option<Response> {
        Some(match op_byte {
            b if b == op::HELLO | op::RESPONSE_BIT => Response::HelloOk {
                version: *body.first().filter(|_| body.len() == 1)?,
            },
            b if b == op::GET_VERSION | op::RESPONSE_BIT => match body.first()? {
                0 if body.len() == 1 => Response::VersionIs { version: None },
                1 if body.len() == 9 => Response::VersionIs {
                    version: Some(u64::from_be_bytes(body.get(1..9)?.try_into().ok()?)),
                },
                _ => return None,
            },
            b if (b == op::GET_CHANGELOG | op::RESPONSE_BIT)
                || (b == op::GET_DELTA | op::RESPONSE_BIT)
                || (b == op::GET_SNAPSHOT | op::RESPONSE_BIT) =>
            {
                let for_op = b & !op::RESPONSE_BIT;
                match body.first()? {
                    0 if body.len() == 1 => Response::Record {
                        for_op,
                        value: None,
                    },
                    1 => Response::Record {
                        for_op,
                        value: Some(body[1..].to_vec()),
                    },
                    _ => return None,
                }
            }
            b if b == op::PING | op::RESPONSE_BIT && body.is_empty() => Response::Pong,
            op::ERROR => {
                let code =
                    ErrorCode::from_u16(u16::from_be_bytes(body.get(0..2)?.try_into().ok()?))?;
                let dlen = u16::from_be_bytes(body.get(2..4)?.try_into().ok()?) as usize;
                if body.len() != 4 + dlen {
                    return None;
                }
                Response::Error {
                    code,
                    detail: String::from_utf8_lossy(&body[4..]).into_owned(),
                }
            }
            _ => return None,
        })
    }
}

/// FNV-1a/32 — the frame body checksum.
pub fn crc32_fnv(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in data {
        h ^= b as u32;
        h = h.wrapping_mul(0x01000193);
    }
    h
}

/// Assembles a full frame: header + body. `corrupt_crc` deliberately
/// breaks the checksum (the server's forwarding of a corrupted DB
/// read).
pub fn encode_frame(op_byte: u8, request_id: u64, body: &[u8], corrupt_crc: bool) -> Vec<u8> {
    let mut f = Vec::with_capacity(HEADER_LEN + body.len());
    f.extend_from_slice(&MAGIC.to_be_bytes());
    f.push(PROTOCOL_VERSION);
    f.push(op_byte);
    f.extend_from_slice(&request_id.to_be_bytes());
    f.extend_from_slice(&(body.len() as u32).to_be_bytes());
    let crc = crc32_fnv(body) ^ if corrupt_crc { 0xFFFF_FFFF } else { 0 };
    f.extend_from_slice(&crc.to_be_bytes());
    f.extend_from_slice(body);
    f
}

/// Encodes a request frame.
pub fn encode_request(req: &Request, request_id: u64) -> Vec<u8> {
    encode_frame(req.op(), request_id, &req.encode_body(), false)
}

/// Encodes a response frame. `corrupt_crc` models a corrupted DB read
/// forwarded under a failing transport checksum.
pub fn encode_response(resp: &Response, request_id: u64, corrupt_crc: bool) -> Vec<u8> {
    encode_frame(resp.op(), request_id, &resp.encode_body(), corrupt_crc)
}

/// A parsed frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Protocol version byte.
    pub version: u8,
    /// Opcode byte.
    pub op: u8,
    /// Correlation id, echoed in responses.
    pub request_id: u64,
    /// Body length in bytes.
    pub body_len: u32,
    /// Body checksum (FNV-1a/32).
    pub body_crc: u32,
}

/// Why a frame could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first two bytes were not [`MAGIC`] — the peer is not
    /// speaking this protocol; drop the connection.
    BadMagic,
    /// Unsupported protocol version (the offending byte).
    BadVersion(u8),
    /// Declared body length exceeds the receiver's cap.
    Oversized(u32),
    /// The body checksum failed — transport corruption; retryable.
    BadCrc,
    /// The body did not decode as the op's layout.
    Malformed,
    /// The peer closed mid-frame (header or body truncated).
    Truncated,
    /// Connection-level I/O failure.
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::Oversized(n) => write!(f, "declared body of {n} bytes exceeds cap"),
            FrameError::BadCrc => write!(f, "frame body checksum failed"),
            FrameError::Malformed => write!(f, "frame body did not decode"),
            FrameError::Truncated => write!(f, "peer closed mid-frame"),
            FrameError::Io(k) => write!(f, "i/o error: {k:?}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Parses the fixed 20-byte header. Fails fast on magic/version so a
/// garbage or incompatible peer costs one header read, not a body
/// allocation.
pub fn decode_header(bytes: &[u8; HEADER_LEN], max_body: u32) -> Result<Header, FrameError> {
    let magic = u16::from_be_bytes([bytes[0], bytes[1]]);
    if magic != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = bytes[2];
    let op_byte = bytes[3];
    let request_id = u64::from_be_bytes(bytes[4..12].try_into().unwrap());
    let body_len = u32::from_be_bytes(bytes[12..16].try_into().unwrap());
    let body_crc = u32::from_be_bytes(bytes[16..20].try_into().unwrap());
    if body_len > max_body {
        return Err(FrameError::Oversized(body_len));
    }
    Ok(Header {
        version,
        op: op_byte,
        request_id,
        body_len,
        body_crc,
    })
}

/// Reads one frame (header + body) off a stream without enforcing the
/// body checksum: the body is `None` when the checksum failed. Because
/// the full declared body is consumed either way, the stream stays
/// frame-aligned after a checksum failure — callers can keep the
/// connection and fail only the one request (the `request_id` is in
/// the returned header).
pub async fn read_frame_unchecked(
    stream: &crate::io::AsyncStream,
    max_body: u32,
) -> Result<(Header, Option<Vec<u8>>), FrameError> {
    let mut hdr = [0u8; HEADER_LEN];
    read_exact_frame(stream, &mut hdr).await?;
    let h = decode_header(&hdr, max_body)?;
    if h.version != PROTOCOL_VERSION {
        return Err(FrameError::BadVersion(h.version));
    }
    let mut body = vec![0u8; h.body_len as usize];
    read_exact_frame(stream, &mut body).await?;
    if crc32_fnv(&body) != h.body_crc {
        return Ok((h, None));
    }
    Ok((h, Some(body)))
}

/// Reads one frame (header + body) off a stream. Returns the header
/// and the **verified** body; a checksum failure is [`FrameError::BadCrc`].
pub async fn read_frame(
    stream: &crate::io::AsyncStream,
    max_body: u32,
) -> Result<(Header, Vec<u8>), FrameError> {
    let (h, body) = read_frame_unchecked(stream, max_body).await?;
    body.map(|b| (h, b)).ok_or(FrameError::BadCrc)
}

async fn read_exact_frame(
    stream: &crate::io::AsyncStream,
    buf: &mut [u8],
) -> Result<(), FrameError> {
    match stream.read_exact(buf).await {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Err(FrameError::Truncated),
        Err(e) => Err(FrameError::Io(e.kind())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_layout_is_twenty_bytes() {
        let f = encode_request(&Request::Ping, 7);
        assert_eq!(f.len(), HEADER_LEN);
        assert_eq!(&f[0..2], &[0x4D, 0x54]);
        assert_eq!(f[2], PROTOCOL_VERSION);
        assert_eq!(f[3], op::PING);
        assert_eq!(&f[4..12], &7u64.to_be_bytes());
        assert_eq!(&f[12..16], &0u32.to_be_bytes());
    }

    #[test]
    fn request_bodies_roundtrip() {
        for req in [
            Request::Hello {
                min_version: 1,
                max_version: 3,
            },
            Request::GetVersion { partition: 9 },
            Request::GetChangelog { endpoint: 42 },
            Request::GetDelta {
                endpoint: 42,
                version: 17,
            },
            Request::GetSnapshot { endpoint: 1 << 40 },
            Request::Ping,
        ] {
            let body = req.encode_body();
            assert_eq!(Request::decode(req.op(), &body), Some(req.clone()));
        }
    }

    #[test]
    fn response_bodies_roundtrip() {
        for resp in [
            Response::HelloOk { version: 1 },
            Response::VersionIs { version: None },
            Response::VersionIs { version: Some(123) },
            Response::Record {
                for_op: op::GET_DELTA,
                value: None,
            },
            Response::Record {
                for_op: op::GET_SNAPSHOT,
                value: Some(vec![1, 2, 3]),
            },
            Response::Pong,
            Response::Error {
                code: ErrorCode::Unreachable,
                detail: "shard 3 unreachable".into(),
            },
        ] {
            let body = resp.encode_body();
            assert_eq!(Response::decode(resp.op(), &body), Some(resp.clone()));
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut body = Request::GetVersion { partition: 1 }.encode_body();
        body.push(0);
        assert_eq!(Request::decode(op::GET_VERSION, &body), None);
    }

    #[test]
    fn corrupt_crc_flag_breaks_the_checksum() {
        let resp = Response::Pong;
        let good = encode_response(&resp, 1, false);
        let bad = encode_response(&resp, 1, true);
        let good_crc = u32::from_be_bytes(good[16..20].try_into().unwrap());
        let bad_crc = u32::from_be_bytes(bad[16..20].try_into().unwrap());
        assert_ne!(good_crc, bad_crc);
        assert_eq!(crc32_fnv(&[]), good_crc);
    }

    #[test]
    fn requests_map_onto_the_te_keyspace() {
        assert_eq!(
            Request::GetVersion { partition: 2 }.te_key(),
            Some(TeKey::Version { partition: 2 })
        );
        assert_eq!(
            Request::GetDelta {
                endpoint: 5,
                version: 9
            }
            .te_key(),
            Some(TeKey::Delta {
                endpoint: 5,
                version: 9
            })
        );
        assert_eq!(Request::Ping.te_key(), None);
    }
}
