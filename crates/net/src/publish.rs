//! A minimal standalone publisher: the controller side of the TE-DB
//! keyspace, for service demos, chaos tests and benches.
//!
//! The real controller (megate-core) solves an LP and publishes diffs
//! of the solution; this publisher skips the solving and writes
//! synthetic-but-faithful records with the same keyspace discipline:
//! per-endpoint deltas plus changelog appends first, snapshots on the
//! flush cadence, and the partition version record **last** (§3.2
//! ordering — agents must never observe a version whose records
//! aren't readable yet).
//!
//! It also keeps the ground truth needed to prove service invariants
//! end to end: for every endpoint it records the `(version,
//! fingerprint)` history of published configurations, so a checker
//! can ask "an agent claiming version `v` for endpoint `e` — what
//! exactly must it have installed?" ([`expected_fingerprint`]).
//!
//! [`expected_fingerprint`]: SimPublisher::expected_fingerprint

use megate::config::{diff_configs, encode_delta, encode_paths, EndpointConfig};
use megate_tedb::{TeDatabase, TeKey};
use std::collections::HashMap;

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a/64 over a config's canonical encoding — the identity used
/// to compare what an agent installed against what was published.
pub fn config_fingerprint(cfg: &EndpointConfig) -> u64 {
    let bytes = encode_paths(cfg).expect("synthetic configs always encode");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A deterministic per-round publisher over `endpoints` endpoints.
pub struct SimPublisher {
    endpoints: u64,
    snapshot_every: u64,
    seed: u64,
    version: u64,
    configs: HashMap<u64, EndpointConfig>,
    dirty: Vec<u64>,
    history: HashMap<u64, Vec<(u64, u64)>>,
}

impl SimPublisher {
    /// A publisher for endpoints `0..endpoints`, flushing snapshots
    /// every `snapshot_every` versions.
    pub fn new(endpoints: u64, snapshot_every: u64, seed: u64) -> Self {
        Self {
            endpoints,
            snapshot_every: snapshot_every.max(1),
            seed,
            version: 0,
            configs: HashMap::new(),
            dirty: Vec::new(),
            history: HashMap::new(),
        }
    }

    /// The last published version (0 = nothing published).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The synthetic configuration endpoint `e` gets at `version`:
    /// four SR paths keyed on `(endpoint, version)` so every change is
    /// observable.
    fn gen_config(&self, e: u64, version: u64) -> EndpointConfig {
        let paths = (0..4u8)
            .map(|i| {
                (
                    [10, (e >> 8) as u8, e as u8, i],
                    vec![(e % 97) as u32, (version % 53) as u32 + 100, i as u32 + 200],
                )
            })
            .collect();
        EndpointConfig { paths }
    }

    /// Publishes one round: roughly `churn_ppm` of endpoints change.
    /// Writes deltas + changelog appends, then due snapshots, then the
    /// version record. Returns the new version.
    pub fn publish_round(&mut self, db: &TeDatabase, churn_ppm: u32) -> u64 {
        let version = self.version + 1;
        for e in 0..self.endpoints {
            let roll = splitmix64(self.seed ^ (version << 24) ^ e) % 1_000_000;
            // First round configures everyone, so every agent has real
            // paths to protect from then on.
            if version > 1 && roll >= churn_ppm as u64 {
                continue;
            }
            let next = self.gen_config(e, version);
            let prev = self.configs.get(&e).cloned().unwrap_or_default();
            let delta = diff_configs(&prev, &next);
            let bytes = encode_delta(&delta).expect("synthetic deltas always encode");
            let _ = db.put_checked(
                &TeKey::Delta {
                    endpoint: e,
                    version,
                },
                bytes,
            );
            let _ = db.record_change(e, version);
            self.configs.insert(e, next.clone());
            self.dirty.push(e);
            self.history
                .entry(e)
                .or_default()
                .push((version, config_fingerprint(&next)));
        }
        if version.is_multiple_of(self.snapshot_every) {
            self.dirty.sort_unstable();
            self.dirty.dedup();
            for e in self.dirty.drain(..) {
                let cfg = self.configs.get(&e).cloned().unwrap_or_default();
                let body = encode_paths(&cfg).expect("synthetic configs always encode");
                let mut value = Vec::with_capacity(8 + body.len());
                value.extend_from_slice(&version.to_be_bytes());
                value.extend_from_slice(&body);
                let _ = db.put_checked(&TeKey::Snapshot { endpoint: e }, value);
            }
        }
        db.publish_partition_version(0, version);
        self.version = version;
        version
    }

    /// The fingerprint an agent holding `(endpoint, version)` must
    /// have installed: the latest published change at or before
    /// `version` (the empty config's fingerprint when the endpoint was
    /// never configured by then).
    pub fn expected_fingerprint(&self, endpoint: u64, version: u64) -> u64 {
        self.history
            .get(&endpoint)
            .and_then(|h| {
                h.iter()
                    .rev()
                    .find(|(v, _)| *v <= version)
                    .map(|(_, fp)| *fp)
            })
            .unwrap_or_else(|| config_fingerprint(&EndpointConfig::default()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_one_configures_every_endpoint() {
        let db = TeDatabase::new(4);
        let mut p = SimPublisher::new(10, 4, 1);
        assert_eq!(p.publish_round(&db, 0), 1);
        for e in 0..10 {
            assert!(
                db.fetch(&TeKey::Delta {
                    endpoint: e,
                    version: 1
                })
                .is_some(),
                "endpoint {e} missing its initial delta"
            );
        }
        assert_eq!(db.latest_partition_version_checked(0), Ok(Some(1)));
    }

    #[test]
    fn expected_fingerprint_tracks_latest_change() {
        let db = TeDatabase::new(4);
        let mut p = SimPublisher::new(4, 100, 7);
        p.publish_round(&db, 1_000_000);
        p.publish_round(&db, 1_000_000);
        let fp1 = config_fingerprint(&p.gen_config(2, 1));
        let fp2 = config_fingerprint(&p.gen_config(2, 2));
        assert_eq!(p.expected_fingerprint(2, 1), fp1);
        assert_eq!(p.expected_fingerprint(2, 2), fp2);
        assert_ne!(fp1, fp2);
    }
}
