//! The I/O reactor: one epoll instance, one dispatch thread.
//!
//! The workspace vendors no async runtime (the build environment has no
//! crates.io access), so `megate-net` brings its own minimal reactor:
//! a single thread parked in `epoll_wait(2)` that wakes the
//! [`Waker`]s interested futures registered. The raw syscalls are
//! declared via `extern "C"` against the libc every Rust binary on
//! Linux already links — no external crate needed.
//!
//! Design points:
//!
//! * **One-shot arming.** Sources are registered with an empty event
//!   mask at creation; an I/O future that hits `WouldBlock` arms the
//!   mask it needs (`EPOLLIN`/`EPOLLOUT`) together with `EPOLLONESHOT`.
//!   After the event fires the source is quiescent again, so a level-
//!   triggered storm can never spin the dispatch thread.
//! * **Read and write wakers are independent.** A connection's reader
//!   and writer tasks park on the same fd; the dispatch thread wakes
//!   whichever half the event readiness covers and re-arms the other.
//! * **Timers ride the same thread.** `epoll_wait`'s timeout is the
//!   next timer deadline; a self-wake socketpair interrupts the wait
//!   when an earlier deadline (or shutdown) arrives.

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::future::Future;
use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::task::Waker;
use std::time::{Duration, Instant};

// ---- raw epoll bindings (std links libc; no crate needed) ----

/// `epoll_event` as the kernel ABI defines it (packed on x86-64).
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// `epoll_event` as the kernel ABI defines it.
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn close(fd: i32) -> i32;
}

const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;
const EPOLLONESHOT: u32 = 1 << 30;

/// Which readiness a future is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interest {
    /// Readable (or peer hangup — a read will observe EOF).
    Read,
    /// Writable (or error — a write will observe it).
    Write,
}

/// Per-fd reactor state: the parked wakers and the currently armed
/// event mask.
#[derive(Default)]
struct Source {
    fd: RawFd,
    read_waker: Option<Waker>,
    write_waker: Option<Waker>,
    /// Set (under this lock) when the registration drops, *before* the
    /// fd leaves the epoll set. The kernel reuses fd numbers as soon as
    /// the owner closes, so a late `rearm` keyed by the old token would
    /// otherwise clobber the reused fd's freshly-armed mask and strand
    /// its waker forever.
    dead: bool,
}

impl Source {
    fn armed_mask(&self) -> u32 {
        let mut m = 0;
        if self.read_waker.is_some() {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if self.write_waker.is_some() {
            m |= EPOLLOUT;
        }
        m
    }
}

/// A registered fd's handle. Dropping it deregisters the fd from the
/// reactor (the owner closes the fd itself afterwards).
pub struct Registration {
    token: u64,
    reactor: &'static Reactor,
}

impl Registration {
    /// Parks `waker` until the fd is ready for `interest`. Re-arms the
    /// epoll mask to the union of both halves' outstanding interests.
    pub fn arm(&self, interest: Interest, waker: &Waker) {
        let sources = self.reactor.sources.lock();
        let Some(src) = sources.get(&self.token) else {
            return;
        };
        let mut src = src.lock();
        if src.dead {
            // Racing a drop: re-poll immediately and observe the close.
            waker.wake_by_ref();
            return;
        }
        match interest {
            Interest::Read => src.read_waker = Some(waker.clone()),
            Interest::Write => src.write_waker = Some(waker.clone()),
        }
        self.reactor.rearm(self.token, &src);
    }
}

impl Drop for Registration {
    fn drop(&mut self) {
        let src = self.reactor.sources.lock().remove(&self.token);
        if let Some(src) = src {
            let mut s = src.lock();
            // Under the source lock, so it serializes against a
            // dispatch-thread rearm in flight for this token: whichever
            // runs second either sees `dead` or MODs an fd we have not
            // deleted yet. The owner closes the fd only after this drop
            // returns, so no reused-fd MOD can slip through.
            s.dead = true;
            let mut ev = EpollEvent { events: 0, data: 0 };
            unsafe { epoll_ctl(self.reactor.epfd, EPOLL_CTL_DEL, s.fd, &mut ev) };
            // Anything still parked observes the closed fd on its next
            // poll rather than sleeping forever.
            if let Some(w) = s.read_waker.clone() {
                w.wake();
            }
            if let Some(w) = s.write_waker.clone() {
                w.wake();
            }
        }
    }
}

/// A pending timer's handle; dropping it cancels the timer.
pub struct TimerHandle {
    key: (Instant, u64),
    reactor: &'static Reactor,
}

impl TimerHandle {
    /// Replaces the waker the timer will fire (cheap re-poll path).
    pub fn reset_waker(&self, waker: &Waker) {
        let mut timers = self.reactor.timers.lock();
        if let Some(slot) = timers.get_mut(&self.key) {
            *slot = waker.clone();
        }
    }
}

impl Drop for TimerHandle {
    fn drop(&mut self) {
        self.reactor.timers.lock().remove(&self.key);
    }
}

/// The process-wide reactor (lazily started on first use).
pub struct Reactor {
    epfd: RawFd,
    sources: Mutex<HashMap<u64, Arc<Mutex<Source>>>>,
    timers: Mutex<BTreeMap<(Instant, u64), Waker>>,
    next_token: AtomicU64,
    /// Write half of the self-wake socketpair.
    wake_tx: std::os::unix::net::UnixStream,
}

static REACTOR: OnceLock<Reactor> = OnceLock::new();

impl Reactor {
    /// The global reactor, starting its dispatch thread on first call.
    pub fn global() -> &'static Reactor {
        REACTOR.get_or_init(|| {
            let epfd = unsafe {
                epoll_create1(0o2000000 /* EPOLL_CLOEXEC */)
            };
            assert!(
                epfd >= 0,
                "epoll_create1 failed: {}",
                io::Error::last_os_error()
            );
            let (wake_tx, wake_rx) =
                std::os::unix::net::UnixStream::pair().expect("socketpair for reactor self-wake");
            wake_rx.set_nonblocking(true).unwrap();
            let mut ev = EpollEvent {
                events: EPOLLIN,
                data: u64::MAX, // reserved self-wake token
            };
            let rc = unsafe { epoll_ctl(epfd, EPOLL_CTL_ADD, wake_rx.as_raw_fd(), &mut ev) };
            assert_eq!(rc, 0, "epoll_ctl(self-wake) failed");
            let reactor = Reactor {
                epfd,
                sources: Mutex::new(HashMap::new()),
                timers: Mutex::new(BTreeMap::new()),
                next_token: AtomicU64::new(1),
                wake_tx,
            };
            std::thread::Builder::new()
                .name("megate-net-reactor".into())
                .spawn(move || dispatch_loop(Reactor::global(), wake_rx))
                .expect("spawn reactor thread");
            reactor
        })
    }

    /// Registers a (nonblocking) fd with an empty event mask; futures
    /// arm interests through the returned [`Registration`].
    pub fn register(&'static self, fd: RawFd) -> io::Result<Registration> {
        let token = self.next_token.fetch_add(1, Ordering::Relaxed);
        let mut ev = EpollEvent {
            events: EPOLLONESHOT, // quiescent until armed
            data: token,
        };
        let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        self.sources.lock().insert(
            token,
            Arc::new(Mutex::new(Source {
                fd,
                ..Source::default()
            })),
        );
        Ok(Registration {
            token,
            reactor: self,
        })
    }

    /// Schedules `waker` to fire at `deadline`.
    pub fn add_timer(&'static self, deadline: Instant, waker: &Waker) -> TimerHandle {
        let seq = self.next_token.fetch_add(1, Ordering::Relaxed);
        let key = (deadline, seq);
        let earliest = {
            let mut timers = self.timers.lock();
            timers.insert(key, waker.clone());
            *timers.keys().next().unwrap() == key
        };
        if earliest {
            self.poke();
        }
        TimerHandle { key, reactor: self }
    }

    /// Interrupts the dispatch thread's current `epoll_wait`.
    fn poke(&self) {
        use std::io::Write;
        let _ = (&self.wake_tx).write(&[1u8]);
    }

    /// Re-arms the fd's one-shot mask to the source's current interests.
    /// Callers hold the source's lock; a dead source is never re-armed
    /// (its fd number may already belong to a newer registration).
    fn rearm(&self, token: u64, src: &Source) {
        if src.dead {
            return;
        }
        let mask = src.armed_mask();
        let mut ev = EpollEvent {
            events: mask | EPOLLONESHOT,
            data: token,
        };
        unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, src.fd, &mut ev) };
    }
}

/// The dispatch thread: wait, wake the covered halves, fire timers.
fn dispatch_loop(reactor: &'static Reactor, wake_rx: std::os::unix::net::UnixStream) {
    use std::io::Read;
    let mut events = vec![EpollEvent { events: 0, data: 0 }; 256];
    let mut drain = [0u8; 64];
    loop {
        let timeout_ms = {
            let timers = reactor.timers.lock();
            match timers.keys().next() {
                Some(&(deadline, _)) => {
                    let now = Instant::now();
                    if deadline <= now {
                        0
                    } else {
                        // Round up so we never wake a hair early and spin.
                        deadline
                            .saturating_duration_since(now)
                            .as_millis()
                            .min(60_000) as i32
                            + 1
                    }
                }
                None => 10_000,
            }
        };
        let n = unsafe {
            epoll_wait(
                reactor.epfd,
                events.as_mut_ptr(),
                events.len() as i32,
                timeout_ms,
            )
        };
        for ev in events.iter().take(n.max(0) as usize) {
            let token = ev.data;
            let bits = ev.events;
            if token == u64::MAX {
                let mut rx = &wake_rx;
                while rx
                    .read(&mut drain)
                    .map(|k| k == drain.len())
                    .unwrap_or(false)
                {}
                continue;
            }
            let src = reactor.sources.lock().get(&token).cloned();
            let Some(src) = src else { continue };
            let mut s = src.lock();
            let err = bits & (EPOLLERR | EPOLLHUP) != 0;
            if err || bits & (EPOLLIN | EPOLLRDHUP) != 0 {
                if let Some(w) = s.read_waker.take() {
                    w.wake();
                }
            }
            if err || bits & EPOLLOUT != 0 {
                if let Some(w) = s.write_waker.take() {
                    w.wake();
                }
            }
            reactor.rearm(token, &s);
        }
        // Fire due timers.
        let now = Instant::now();
        loop {
            let due = {
                let mut timers = reactor.timers.lock();
                match timers.keys().next().copied() {
                    Some(key) if key.0 <= now => timers.remove(&key),
                    _ => None,
                }
            };
            match due {
                Some(w) => w.wake(),
                None => break,
            }
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        unsafe { close(self.epfd) };
    }
}

/// Sleeps until `deadline` (async).
pub struct Sleep {
    deadline: Instant,
    timer: Option<TimerHandle>,
}

impl Sleep {
    /// A future completing at `deadline`.
    pub fn until(deadline: Instant) -> Self {
        Self {
            deadline,
            timer: None,
        }
    }

    /// A future completing after `dur`.
    pub fn after(dur: Duration) -> Self {
        Self::until(Instant::now() + dur)
    }
}

impl std::future::Future for Sleep {
    type Output = ();

    fn poll(
        mut self: std::pin::Pin<&mut Self>,
        cx: &mut std::task::Context<'_>,
    ) -> std::task::Poll<()> {
        if Instant::now() >= self.deadline {
            return std::task::Poll::Ready(());
        }
        match &self.timer {
            Some(t) => t.reset_waker(cx.waker()),
            None => {
                self.timer = Some(Reactor::global().add_timer(self.deadline, cx.waker()));
            }
        }
        // Deadline may have passed between the check and the arm.
        if Instant::now() >= self.deadline {
            std::task::Poll::Ready(())
        } else {
            std::task::Poll::Pending
        }
    }
}

/// Runs `fut` with a hard wall-clock deadline; `None` when the timer
/// wins the race.
pub async fn timeout<F: std::future::Future>(dur: Duration, fut: F) -> Option<F::Output> {
    let mut fut = std::pin::pin!(fut);
    let mut sleep = std::pin::pin!(Sleep::after(dur));
    std::future::poll_fn(|cx| {
        if let std::task::Poll::Ready(v) = fut.as_mut().poll(cx) {
            return std::task::Poll::Ready(Some(v));
        }
        if sleep.as_mut().poll(cx).is_ready() {
            return std::task::Poll::Ready(None);
        }
        std::task::Poll::Pending
    })
    .await
}
