//! A minimal HTTP/1.1 exporter for the megate-obs registry.
//!
//! Serves `GET /metrics` (Prometheus text exposition) and
//! `GET /metrics.json` (the registry's JSON snapshot) with
//! `Connection: close` semantics — one request per connection, which
//! is all a scraper needs and keeps the parser to a request line and
//! a header skip. Anything else gets a 404.

use crate::exec::Executor;
use crate::io::{AsyncListener, AsyncStream, Endpoint};
use std::io;

/// Largest request head (request line + headers) accepted.
const MAX_HEAD: usize = 8192;

/// A running metrics exporter.
pub struct MetricsServer {
    local: Endpoint,
}

impl MetricsServer {
    /// Binds `ep` and serves the registry snapshot on every request.
    pub fn start(ep: &Endpoint, exec: &Executor) -> io::Result<MetricsServer> {
        let listener = match ep {
            Endpoint::Tcp(addr) => AsyncListener::bind_tcp(*addr)?,
            Endpoint::Unix(path) => AsyncListener::bind_unix(path)?,
        };
        let local = listener.local().clone();
        let ex = exec.clone();
        exec.spawn(async move {
            loop {
                let Ok(conn) = listener.accept().await else {
                    return;
                };
                ex.spawn(async move {
                    let _ = serve_one(&conn).await;
                });
            }
        });
        Ok(MetricsServer { local })
    }

    /// The bound endpoint (TCP port resolved).
    pub fn local(&self) -> &Endpoint {
        &self.local
    }
}

async fn serve_one(conn: &AsyncStream) -> io::Result<()> {
    let head = read_head(conn).await?;
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, content_type, body) = match (method, path) {
        ("GET", "/metrics") => (
            "200 OK",
            "text/plain; version=0.0.4",
            megate_obs::global().snapshot().to_prometheus(),
        ),
        ("GET", "/metrics.json") => (
            "200 OK",
            "application/json",
            megate_obs::global().snapshot().to_json(),
        ),
        ("GET", _) => ("404 Not Found", "text/plain", "not found\n".to_string()),
        _ => (
            "405 Method Not Allowed",
            "text/plain",
            "only GET\n".to_string(),
        ),
    };
    let resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    conn.write_all(resp.as_bytes()).await?;
    conn.shutdown_write();
    Ok(())
}

/// Reads until the blank line ending the request head (or EOF/cap).
async fn read_head(conn: &AsyncStream) -> io::Result<String> {
    let mut head = Vec::new();
    let mut buf = [0u8; 512];
    loop {
        let n = conn.read(&mut buf).await?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > MAX_HEAD {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&head).into_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_endpoint_speaks_prometheus() {
        let exec = Executor::new(2);
        megate_obs::counter("net.http_test_marker").inc();
        let server = MetricsServer::start(&Endpoint::Tcp("127.0.0.1:0".parse().unwrap()), &exec)
            .expect("bind");
        let ep = server.local().clone();
        let body = exec.block_on(async move {
            let conn = AsyncStream::connect(&ep).await.unwrap();
            conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .await
                .unwrap();
            let mut out = Vec::new();
            loop {
                let mut buf = [0u8; 1024];
                let n = conn.read(&mut buf).await.unwrap();
                if n == 0 {
                    break;
                }
                out.extend_from_slice(&buf[..n]);
            }
            String::from_utf8_lossy(&out).into_owned()
        });
        assert!(body.starts_with("HTTP/1.1 200 OK"), "got: {body}");
        assert!(
            body.contains("net_http_test_marker") || body.contains("net.http_test_marker"),
            "metric missing from exposition: {body}"
        );
    }
}
