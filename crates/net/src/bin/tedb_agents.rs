//! Attach a fleet of async endpoint agents to a running TE-DB server.
//!
//! ```text
//! tedb_agents [--connect tcp://127.0.0.1:7070] [--agents 1000]
//!             [--conns 32] [--period-secs 10] [--rounds 5]
//! ```
//!
//! Spawns `--agents` agents as async tasks sharing a pool of
//! `--conns` multiplexed connections. Each sync period every agent
//! runs one pull (polls spread across the first half of the period so
//! the fleet doesn't stampede), then a round summary is printed:
//! refreshed/degraded counts and pull-latency quantiles.

use megate::resilience::PullPolicy;
use megate_net::agent::Agent;
use megate_net::{Endpoint, Executor, NetClient};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

fn arg<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match args.iter().position(|a| a == name) {
        Some(i) => match args.get(i + 1).map(|v| v.parse::<T>()) {
            Some(Ok(v)) => v,
            Some(Err(e)) => {
                eprintln!("bad value for {name}: {e}");
                std::process::exit(2);
            }
            None => {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            }
        },
        None => default,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let connect: Endpoint = arg(&args, "--connect", "tcp://127.0.0.1:7070".parse().unwrap());
    let agents: u64 = arg(&args, "--agents", 1000);
    let conns: usize = arg(&args, "--conns", 32);
    let period_secs: u64 = arg(&args, "--period-secs", 10);
    let rounds: u64 = arg(&args, "--rounds", 5);

    let exec = Executor::new(4);
    let client = NetClient::new(connect.clone(), conns, exec.clone());
    println!("agents: {agents} agents over {conns} conns to {connect}");

    let period = Duration::from_secs(period_secs);
    // Agents are taken out of their slot for the pull and put back
    // after (a guard can't be held across an await point).
    let fleet: Vec<Arc<Mutex<Option<Agent>>>> = (0..agents)
        .map(|i| Arc::new(Mutex::new(Some(Agent::new(i, 0, PullPolicy::default())))))
        .collect();
    for round in 1..=rounds {
        let refreshed = Arc::new(AtomicU64::new(0));
        let degraded = Arc::new(AtomicU64::new(0));
        let latencies: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let done = Arc::new(AtomicU64::new(0));
        for (i, agent) in fleet.iter().enumerate() {
            let client = client.clone();
            let agent = agent.clone();
            let (refreshed, degraded, latencies, done) = (
                refreshed.clone(),
                degraded.clone(),
                latencies.clone(),
                done.clone(),
            );
            // Spread polls across the first half of the sync period.
            let offset = period.mul_f64(0.5) * (i as u32 % 1000) / 1000;
            exec.spawn(async move {
                megate_net::reactor::Sleep::after(offset).await;
                let Some(mut a) = agent.lock().unwrap().take() else {
                    return;
                };
                let report = a.sync_period_pull(&client).await;
                *agent.lock().unwrap() = Some(a);
                if report.refreshed {
                    refreshed.fetch_add(1, Ordering::Relaxed);
                    latencies
                        .lock()
                        .unwrap()
                        .push(report.elapsed.as_nanos() as u64);
                }
                if report.degraded {
                    degraded.fetch_add(1, Ordering::Relaxed);
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        while done.load(Ordering::Relaxed) < agents {
            std::thread::sleep(Duration::from_millis(20));
        }
        let mut lat = latencies.lock().unwrap().clone();
        lat.sort_unstable();
        let q = |p: f64| -> f64 {
            if lat.is_empty() {
                return 0.0;
            }
            let i = ((lat.len() - 1) as f64 * p) as usize;
            lat[i] as f64 / 1e6
        };
        println!(
            "round {round}: {}/{agents} refreshed, {} degraded, pull p50 {:.2} ms p99 {:.2} ms",
            refreshed.load(Ordering::Relaxed),
            degraded.load(Ordering::Relaxed),
            q(0.50),
            q(0.99),
        );
        if round < rounds {
            std::thread::sleep(period);
        }
    }
}
