//! Serve the TE-DB over real sockets, with a synthetic publisher
//! driving the config clock.
//!
//! ```text
//! tedb_serve [--listen tcp://127.0.0.1:7070] [--uds /tmp/tedb.sock]
//!            [--metrics tcp://127.0.0.1:9100] [--endpoints 1000]
//!            [--period-secs 10] [--churn-ppm 20000] [--rounds 0]
//! ```
//!
//! Binds the wire-protocol server on `--listen` (and optionally a Unix
//! socket), the `/metrics` HTTP exporter on `--metrics`, then
//! publishes one synthetic config round per `--period-secs` until
//! `--rounds` rounds are done (0 = run forever). Attach agents with
//! `tedb_agents --connect tcp://127.0.0.1:7070`.

use megate_net::publish::SimPublisher;
use megate_net::{Endpoint, Executor, Server, ServerState};
use megate_tedb::TeDatabase;
use std::time::Duration;

fn arg<T: std::str::FromStr>(args: &[String], name: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    match args.iter().position(|a| a == name) {
        Some(i) => match args.get(i + 1).map(|v| v.parse::<T>()) {
            Some(Ok(v)) => v,
            Some(Err(e)) => {
                eprintln!("bad value for {name}: {e}");
                std::process::exit(2);
            }
            None => {
                eprintln!("{name} needs a value");
                std::process::exit(2);
            }
        },
        None => default,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let listen: Endpoint = arg(&args, "--listen", "tcp://127.0.0.1:7070".parse().unwrap());
    let metrics: Endpoint = arg(&args, "--metrics", "tcp://127.0.0.1:9100".parse().unwrap());
    let endpoints: u64 = arg(&args, "--endpoints", 1000);
    let period_secs: u64 = arg(&args, "--period-secs", 10);
    let churn_ppm: u32 = arg(&args, "--churn-ppm", 20_000);
    let rounds: u64 = arg(&args, "--rounds", 0);
    let uds = args
        .iter()
        .position(|a| a == "--uds")
        .and_then(|i| args.get(i + 1))
        .map(|p| Endpoint::Unix(p.into()));

    let exec = Executor::new(4);
    let db = TeDatabase::with_replication(8, 2);
    let state = ServerState::new(db);

    let server = Server::start(state.clone(), &listen, &exec).unwrap_or_else(|e| {
        eprintln!("bind {listen} failed: {e}");
        std::process::exit(1);
    });
    println!("tedb: serving on {}", server.local());
    if let Some(uds) = uds {
        let s = Server::start(state.clone(), &uds, &exec).unwrap_or_else(|e| {
            eprintln!("bind {uds} failed: {e}");
            std::process::exit(1);
        });
        println!("tedb: serving on {}", s.local());
    }
    let metrics_server =
        megate_net::http::MetricsServer::start(&metrics, &exec).unwrap_or_else(|e| {
            eprintln!("bind metrics {metrics} failed: {e}");
            std::process::exit(1);
        });
    println!("tedb: metrics on {} (GET /metrics)", metrics_server.local());

    let mut publisher = SimPublisher::new(endpoints, 4, 0x7365_7276);
    let mut round = 0u64;
    loop {
        round += 1;
        let version = publisher.publish_round(state.db(), churn_ppm);
        println!(
            "tedb: published v{version} ({} conns active, {} accepted, {} bytes out)",
            state.active_conns(),
            state.accepted_conns(),
            state.bytes_out(),
        );
        if rounds != 0 && round >= rounds {
            break;
        }
        std::thread::sleep(Duration::from_secs(period_secs));
    }
    state.shutdown();
}
