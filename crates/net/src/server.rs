//! The TE-DB socket server: accepts agent connections on TCP and/or
//! Unix sockets and serves the wire protocol against a shared
//! [`TeDatabase`].
//!
//! Each accepted connection becomes one async task running a
//! read-dispatch-write loop. The server is a thin shim: every data op
//! is one [`TeDatabase::fetch_outcome`] call, so all of the store's
//! semantics — replica failover, injected latency, loss, corruption —
//! flow through unchanged:
//!
//! * injected shard latency (`ReadOutcome::injected_ns`) becomes a
//!   real async sleep before the response is written, so clients
//!   measure it as wall-clock service time;
//! * a corrupted read is forwarded verbatim under a deliberately
//!   wrong `body_crc`, so the client's transport checksum catches it
//!   exactly like the in-process model;
//! * a [`ShardOutage`] becomes an [`ErrorCode::Unreachable`] error
//!   response (retryable).
//!
//! On top of the store faults, [`TransportFaults`] injects
//! transport-level failure: connection resets, truncated frames, and
//! slow-loris responses (chunked writes with delays), each rolled
//! per-response from a seeded counter so runs are reproducible.

use crate::frame::{
    self, encode_response, read_frame_unchecked, ErrorCode, FrameError, Request, Response,
    DEFAULT_MAX_BODY, PROTOCOL_VERSION,
};
use crate::io::{AsyncListener, AsyncStream, Endpoint};
use crate::reactor::Sleep;
use megate_tedb::{ShardOutage, TeDatabase};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Transport-level fault injection, applied per response frame.
///
/// Rates are parts-per-million, rolled from a seeded splitmix64
/// counter so a given `(seed, response sequence)` always fails the
/// same way. Faults compose with the TE-DB's own shard faults: a
/// request can survive the store only to lose its response to a
/// reset.
#[derive(Debug, Clone)]
pub struct TransportFaults {
    /// Probability (ppm) of resetting the connection instead of
    /// responding — the agent sees a broken pipe / EOF mid-stream.
    pub reset_ppm: u32,
    /// Probability (ppm) of writing only a prefix of the response
    /// frame and then closing — the agent sees a truncated frame.
    pub truncate_ppm: u32,
    /// Probability (ppm) of a slow-loris response: the frame is
    /// dribbled out in small chunks with [`stall_chunk_delay`]
    /// between them.
    ///
    /// [`stall_chunk_delay`]: TransportFaults::stall_chunk_delay
    pub stall_ppm: u32,
    /// Delay between slow-loris chunks.
    pub stall_chunk_delay: Duration,
    /// Seed for the fault roll sequence.
    pub seed: u64,
}

impl Default for TransportFaults {
    fn default() -> Self {
        Self {
            reset_ppm: 0,
            truncate_ppm: 0,
            stall_ppm: 0,
            stall_chunk_delay: Duration::from_millis(5),
            seed: 0x6d67_7465_5f6e_6574,
        }
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

enum FaultRoll {
    None,
    Reset,
    Truncate,
    Stall,
}

/// Shared server state: database handle, fault knobs, metrics.
pub struct ServerState {
    db: TeDatabase,
    faults: parking_lot::RwLock<TransportFaults>,
    fault_seq: AtomicU64,
    shutdown: AtomicBool,
    accepted: AtomicU64,
    active: AtomicU64,
    bytes_out: AtomicU64,
    bytes_in: AtomicU64,
}

impl ServerState {
    /// Wraps a database for serving.
    pub fn new(db: TeDatabase) -> Arc<Self> {
        Arc::new(Self {
            db,
            faults: parking_lot::RwLock::new(TransportFaults::default()),
            fault_seq: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            accepted: AtomicU64::new(0),
            active: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
        })
    }

    /// The served database (for fault injection and publishing from
    /// tests and benches).
    pub fn db(&self) -> &TeDatabase {
        &self.db
    }

    /// Replaces the transport fault configuration.
    pub fn set_transport_faults(&self, f: TransportFaults) {
        *self.faults.write() = f;
    }

    /// Asks accept loops and connection tasks to wind down.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Whether shutdown was requested.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Connections accepted over the server's lifetime.
    pub fn accepted_conns(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Connections currently open.
    pub fn active_conns(&self) -> u64 {
        self.active.load(Ordering::Relaxed)
    }

    /// Total response bytes written (controller-side fan-out bytes).
    pub fn bytes_out(&self) -> u64 {
        self.bytes_out.load(Ordering::Relaxed)
    }

    /// Total request bytes read.
    pub fn bytes_in(&self) -> u64 {
        self.bytes_in.load(Ordering::Relaxed)
    }

    fn roll_fault(&self) -> FaultRoll {
        let f = self.faults.read();
        if f.reset_ppm == 0 && f.truncate_ppm == 0 && f.stall_ppm == 0 {
            return FaultRoll::None;
        }
        let seq = self.fault_seq.fetch_add(1, Ordering::Relaxed);
        let roll = splitmix64(f.seed.wrapping_add(seq)) % 1_000_000;
        if roll < f.reset_ppm as u64 {
            FaultRoll::Reset
        } else if roll < (f.reset_ppm + f.truncate_ppm) as u64 {
            FaultRoll::Truncate
        } else if roll < (f.reset_ppm + f.truncate_ppm + f.stall_ppm) as u64 {
            FaultRoll::Stall
        } else {
            FaultRoll::None
        }
    }
}

/// A running accept loop bound to one endpoint.
pub struct Server {
    state: Arc<ServerState>,
    local: Endpoint,
}

impl Server {
    /// Binds `ep` and spawns the accept loop plus one task per
    /// connection onto `exec`. Returns immediately; the resolved
    /// endpoint (OS-assigned TCP port included) is in
    /// [`local`](Self::local).
    pub fn start(
        state: Arc<ServerState>,
        ep: &Endpoint,
        exec: &crate::exec::Executor,
    ) -> std::io::Result<Server> {
        let listener = match ep {
            Endpoint::Tcp(addr) => AsyncListener::bind_tcp(*addr)?,
            Endpoint::Unix(path) => AsyncListener::bind_unix(path)?,
        };
        let local = listener.local().clone();
        let st = state.clone();
        let ex = exec.clone();
        exec.spawn(async move {
            loop {
                if st.is_shutdown() {
                    return;
                }
                match listener.accept().await {
                    Ok(conn) => {
                        st.accepted.fetch_add(1, Ordering::Relaxed);
                        megate_obs::counter("net.accepted_conns").inc();
                        let st2 = st.clone();
                        ex.spawn(async move {
                            st2.active.fetch_add(1, Ordering::Relaxed);
                            megate_obs::gauge("net.active_conns").add(1);
                            serve_conn(&st2, conn).await;
                            st2.active.fetch_sub(1, Ordering::Relaxed);
                            megate_obs::gauge("net.active_conns").sub(1);
                        });
                    }
                    Err(_) => {
                        if st.is_shutdown() {
                            return;
                        }
                        Sleep::after(Duration::from_millis(10)).await;
                    }
                }
            }
        });
        Ok(Server { state, local })
    }

    /// The bound endpoint (TCP port resolved).
    pub fn local(&self) -> &Endpoint {
        &self.local
    }

    /// The shared server state.
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }
}

/// Evaluates one request against the database. Returns the response,
/// whether the read came back corrupted (the response is then sent
/// under a broken checksum), and the injected shard latency the read
/// accumulated (the serving task sleeps it before responding).
pub fn dispatch(db: &TeDatabase, req: &Request) -> (Response, bool, u64) {
    let key = match req {
        Request::Hello {
            min_version,
            max_version,
        } => {
            let resp = if *min_version <= PROTOCOL_VERSION && PROTOCOL_VERSION <= *max_version {
                Response::HelloOk {
                    version: PROTOCOL_VERSION,
                }
            } else {
                Response::Error {
                    code: ErrorCode::UnsupportedVersion,
                    detail: format!(
                        "server speaks only v{PROTOCOL_VERSION}, client offered \
                         {min_version}..={max_version}"
                    ),
                }
            };
            return (resp, false, 0);
        }
        Request::Ping => return (Response::Pong, false, 0),
        _ => req.te_key().expect("data ops address a TeKey"),
    };
    match db.fetch_outcome(&key) {
        Err(o) => (outage_response(o), false, 0),
        Ok(out) => {
            let resp = match req {
                Request::GetVersion { .. } => Response::VersionIs {
                    version: out
                        .value
                        .as_deref()
                        .filter(|v| v.len() == 8)
                        .map(|v| u64::from_be_bytes(v.try_into().unwrap())),
                },
                _ => Response::Record {
                    for_op: req.op(),
                    value: out.value,
                },
            };
            (resp, out.corrupted, out.injected_ns)
        }
    }
}

fn outage_response(o: ShardOutage) -> Response {
    Response::Error {
        code: ErrorCode::Unreachable,
        detail: o.to_string(),
    }
}

async fn serve_conn(state: &Arc<ServerState>, conn: AsyncStream) {
    loop {
        if state.is_shutdown() {
            return;
        }
        let (hdr, body) = match read_frame_unchecked(&conn, DEFAULT_MAX_BODY).await {
            Ok((hdr, Some(body))) => (hdr, body),
            Ok((hdr, None)) => {
                // Body checksum failed; the stream is still aligned, so
                // fail just this request and keep serving.
                megate_obs::counter("net.bad_frames").inc();
                let resp = Response::Error {
                    code: ErrorCode::BadCrc,
                    detail: "request body checksum failed".into(),
                };
                if write_response(state, &conn, &resp, hdr.request_id, false)
                    .await
                    .is_err()
                {
                    return;
                }
                continue;
            }
            Err(FrameError::Truncated) | Err(FrameError::Io(_)) => return,
            Err(FrameError::BadMagic) => {
                megate_obs::counter("net.bad_frames").inc();
                return; // not our protocol; hang up
            }
            Err(FrameError::BadVersion(v)) => {
                megate_obs::counter("net.bad_frames").inc();
                let resp = Response::Error {
                    code: ErrorCode::UnsupportedVersion,
                    detail: format!("frame version {v} unsupported"),
                };
                let _ = write_response(state, &conn, &resp, 0, false).await;
                return;
            }
            Err(FrameError::Oversized(n)) => {
                megate_obs::counter("net.bad_frames").inc();
                let resp = Response::Error {
                    code: ErrorCode::Oversized,
                    detail: format!("body of {n} bytes exceeds cap"),
                };
                let _ = write_response(state, &conn, &resp, 0, false).await;
                return; // stream is desynchronized; hang up
            }
            Err(FrameError::BadCrc) | Err(FrameError::Malformed) => {
                // read_frame_unchecked never returns these.
                megate_obs::counter("net.bad_frames").inc();
                return;
            }
        };
        state
            .bytes_in
            .fetch_add((frame::HEADER_LEN + body.len()) as u64, Ordering::Relaxed);
        let (resp, corrupt) = match Request::decode(hdr.op, &body) {
            Some(req) => {
                megate_obs::counter("net.requests").inc();
                let (resp, corrupt, injected_ns) = dispatch(&state.db, &req);
                if injected_ns > 0 {
                    // Injected shard latency becomes real service time.
                    Sleep::after(Duration::from_nanos(injected_ns)).await;
                }
                (resp, corrupt)
            }
            None => (
                Response::Error {
                    code: ErrorCode::BadRequest,
                    detail: format!("op {:#04x} body did not decode", hdr.op),
                },
                false,
            ),
        };
        if write_response(state, &conn, &resp, hdr.request_id, corrupt)
            .await
            .is_err()
        {
            return;
        }
    }
}

/// Writes a response frame, applying any transport fault rolled for
/// this response. `Err(())` means the connection is done.
async fn write_response(
    state: &Arc<ServerState>,
    conn: &AsyncStream,
    resp: &Response,
    request_id: u64,
    corrupt: bool,
) -> Result<(), ()> {
    let bytes = encode_response(resp, request_id, corrupt);
    match state.roll_fault() {
        FaultRoll::None => {
            state
                .bytes_out
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            megate_obs::counter("net.fanout_bytes").add(bytes.len() as u64);
            conn.write_all(&bytes).await.map_err(|_| ())
        }
        FaultRoll::Reset => {
            megate_obs::counter("net.faults.reset").inc();
            // Drop without responding; closing the stream resets the
            // agent's pending read.
            Err(())
        }
        FaultRoll::Truncate => {
            megate_obs::counter("net.faults.truncate").inc();
            let cut = bytes.len() / 2;
            let _ = conn.write_all(&bytes[..cut]).await;
            conn.shutdown_write();
            Err(())
        }
        FaultRoll::Stall => {
            megate_obs::counter("net.faults.stall").inc();
            let delay = state.faults.read().stall_chunk_delay;
            for chunk in bytes.chunks(7) {
                if conn.write_all(chunk).await.is_err() {
                    return Err(());
                }
                Sleep::after(delay).await;
            }
            state
                .bytes_out
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
            megate_obs::counter("net.fanout_bytes").add(bytes.len() as u64);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use megate_tedb::TeKey;

    fn test_db() -> TeDatabase {
        let db = TeDatabase::new(4);
        db.publish_version(7);
        db.put(&TeKey::Snapshot { endpoint: 1 }, vec![1, 2, 3]);
        db
    }

    #[test]
    fn serves_version_and_snapshot_over_tcp() {
        let exec = Executor::new(2);
        let state = ServerState::new(test_db());
        let server = Server::start(state, &Endpoint::Tcp("127.0.0.1:0".parse().unwrap()), &exec)
            .expect("bind");
        let ep = server.local().clone();
        let (ver, snap) = exec.block_on(async move {
            let conn = AsyncStream::connect(&ep).await.unwrap();
            let hello = frame::encode_request(
                &Request::Hello {
                    min_version: 1,
                    max_version: 1,
                },
                1,
            );
            conn.write_all(&hello).await.unwrap();
            let (_, body) = frame::read_frame(&conn, DEFAULT_MAX_BODY).await.unwrap();
            assert_eq!(
                Response::decode(frame::op::HELLO | frame::op::RESPONSE_BIT, &body),
                Some(Response::HelloOk { version: 1 })
            );
            let req = frame::encode_request(&Request::GetVersion { partition: 0 }, 2);
            conn.write_all(&req).await.unwrap();
            let (h, body) = frame::read_frame(&conn, DEFAULT_MAX_BODY).await.unwrap();
            let ver = Response::decode(h.op, &body).unwrap();
            let req = frame::encode_request(&Request::GetSnapshot { endpoint: 1 }, 3);
            conn.write_all(&req).await.unwrap();
            let (h, body) = frame::read_frame(&conn, DEFAULT_MAX_BODY).await.unwrap();
            let snap = Response::decode(h.op, &body).unwrap();
            (ver, snap)
        });
        assert_eq!(ver, Response::VersionIs { version: Some(7) });
        assert_eq!(
            snap,
            Response::Record {
                for_op: frame::op::GET_SNAPSHOT,
                value: Some(vec![1, 2, 3]),
            }
        );
    }
}
