//! The TE-DB as a real network service.
//!
//! Everything upstream of this crate treats the TE-DB as an in-process
//! library: controllers write through a `TeDatabase` handle, agents
//! read through the same handle, and the transport between them is a
//! function call. This crate puts the actual wire in: the database is
//! served over localhost TCP and Unix-domain sockets with a
//! length-prefixed, versioned, checksummed binary protocol
//! ([`frame`], documented byte-by-byte in `PROTOCOL.md`), and agents
//! become async tasks that drive the existing retry-and-degrade
//! ladder through real I/O.
//!
//! The stack is built from scratch on `std` — the build environment
//! is offline, so there is no tokio/mio underneath:
//!
//! * [`reactor`] — an epoll reactor (via `extern "C"` bindings to the
//!   libc that `std` already links) with one-shot interest arming,
//!   timers, [`reactor::Sleep`] and [`reactor::timeout`];
//! * [`exec`] — a small multi-worker executor with hand-rolled
//!   wakers;
//! * [`io`] — nonblocking TCP/UDS streams and listeners as futures;
//! * [`frame`] — the wire protocol: 20-byte header, request-id
//!   multiplexing, FNV-1a body checksums, ops mapping 1:1 onto the
//!   `TeKey` keyspace;
//! * [`server`] — the accept/dispatch loop over a shared
//!   `TeDatabase`, forwarding every store-level fault (outage,
//!   latency, corruption) onto the wire and adding transport-level
//!   ones (resets, truncation, slow-loris) on top;
//! * [`client`] — a pooled multiplexing client, many agents per
//!   connection, so a million agents fit under a 20k fd limit;
//! * [`agent`] — the async endpoint agent: version poll, delta catch-
//!   up, snapshot fallback, backoff/deadline/degrade bookkeeping;
//! * [`http`] — a `GET /metrics` exporter for the megate-obs
//!   registry.

#![warn(missing_docs)]

pub mod agent;
pub mod client;
pub mod exec;
pub mod frame;
pub mod http;
pub mod io;
pub mod publish;
pub mod reactor;
pub mod server;

pub use agent::{Agent, PullReport};
pub use client::NetClient;
pub use exec::Executor;
pub use io::{AsyncListener, AsyncStream, Endpoint};
pub use server::{Server, ServerState, TransportFaults};
