//! A small multi-worker task executor.
//!
//! Futures are spawned as reference-counted tasks on a shared run
//! queue; worker threads pop and poll them. Wakers re-enqueue their
//! task, with a three-state flag (`IDLE`/`QUEUED`/`RUNNING`) so a task
//! is never on the queue twice and a wake that lands mid-poll re-queues
//! the task exactly once (the standard executor handshake).
//!
//! The executor is deliberately tiny — FIFO only, no work stealing, no
//! task-local storage — because the service workload is thousands of
//! small I/O-bound tasks whose scheduling cost must stay negligible
//! next to the syscalls they drive.

use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

type BoxFuture = Pin<Box<dyn Future<Output = ()> + Send + 'static>>;

const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
/// Woken while running: the worker re-queues after the poll.
const NOTIFIED: u8 = 3;

struct Task {
    future: Mutex<Option<BoxFuture>>,
    state: AtomicU8,
    exec: Weak<Inner>,
}

struct Inner {
    queue: Mutex<VecDeque<Arc<Task>>>,
    cv: Condvar,
    live: AtomicUsize,
}

/// Handle to the executor; clones share the worker pool.
#[derive(Clone)]
pub struct Executor {
    inner: Arc<Inner>,
}

impl Task {
    fn schedule(self: &Arc<Self>) {
        let Some(exec) = self.exec.upgrade() else {
            return;
        };
        exec.queue.lock().unwrap().push_back(self.clone());
        exec.cv.notify_one();
    }

    fn wake_task(self: &Arc<Self>) {
        // IDLE -> QUEUED: enqueue. RUNNING -> NOTIFIED: the worker
        // re-queues. QUEUED/NOTIFIED: nothing to do.
        loop {
            let cur = self.state.load(Ordering::Acquire);
            let (next, enqueue) = match cur {
                IDLE => (QUEUED, true),
                RUNNING => (NOTIFIED, false),
                _ => return,
            };
            if self
                .state
                .compare_exchange(cur, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                if enqueue {
                    self.schedule();
                }
                return;
            }
        }
    }
}

// ---- manual RawWaker plumbing over Arc<Task> ----

fn raw_waker(task: Arc<Task>) -> RawWaker {
    fn clone(p: *const ()) -> RawWaker {
        let task = unsafe { Arc::from_raw(p as *const Task) };
        let out = raw_waker(task.clone());
        std::mem::forget(task);
        out
    }
    fn wake(p: *const ()) {
        let task = unsafe { Arc::from_raw(p as *const Task) };
        task.wake_task();
    }
    fn wake_by_ref(p: *const ()) {
        let task = unsafe { Arc::from_raw(p as *const Task) };
        task.wake_task();
        std::mem::forget(task);
    }
    fn drop_raw(p: *const ()) {
        drop(unsafe { Arc::from_raw(p as *const Task) });
    }
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_raw);
    RawWaker::new(Arc::into_raw(task) as *const (), &VTABLE)
}

fn waker_for(task: &Arc<Task>) -> Waker {
    unsafe { Waker::from_raw(raw_waker(task.clone())) }
}

impl Executor {
    /// Starts an executor with `workers` polling threads (min 1).
    pub fn new(workers: usize) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            live: AtomicUsize::new(0),
        });
        for i in 0..workers.max(1) {
            let weak = Arc::downgrade(&inner);
            std::thread::Builder::new()
                .name(format!("megate-net-worker-{i}"))
                .spawn(move || worker_loop(&weak))
                .expect("spawn executor worker");
        }
        Self { inner }
    }

    /// Spawns a task; it runs until completion (or executor drop).
    pub fn spawn<F>(&self, fut: F)
    where
        F: Future<Output = ()> + Send + 'static,
    {
        self.inner.live.fetch_add(1, Ordering::Relaxed);
        let task = Arc::new(Task {
            future: Mutex::new(Some(Box::pin(fut))),
            state: AtomicU8::new(QUEUED),
            exec: Arc::downgrade(&self.inner),
        });
        task.schedule();
    }

    /// Tasks spawned and not yet completed.
    pub fn live_tasks(&self) -> usize {
        self.inner.live.load(Ordering::Relaxed)
    }

    /// Runs `fut` to completion on the pool, blocking this thread.
    pub fn block_on<T, F>(&self, fut: F) -> T
    where
        T: Send + 'static,
        F: Future<Output = T> + Send + 'static,
    {
        struct Slot<T> {
            value: Mutex<Option<T>>,
            cv: Condvar,
        }
        let slot = Arc::new(Slot {
            value: Mutex::new(None),
            cv: Condvar::new(),
        });
        let s2 = slot.clone();
        self.spawn(async move {
            let v = fut.await;
            *s2.value.lock().unwrap() = Some(v);
            s2.cv.notify_all();
        });
        let mut guard = slot.value.lock().unwrap();
        while guard.is_none() {
            guard = slot.cv.wait(guard).unwrap();
        }
        guard.take().unwrap()
    }
}

/// Workers hold only a [`Weak`] reference, so the pool winds down
/// (within one poll interval) once the last [`Executor`] handle drops.
fn worker_loop(weak: &Weak<Inner>) {
    loop {
        // Upgrade per iteration: an executor with no handles left must
        // let its Inner drop so the wind-down is observable.
        let Some(inner) = weak.upgrade() else { return };
        let task = {
            let q = inner.queue.lock().unwrap();
            let mut q = match q.is_empty() {
                false => q,
                true => {
                    inner
                        .cv
                        .wait_timeout(q, std::time::Duration::from_millis(200))
                        .unwrap()
                        .0
                }
            };
            match q.pop_front() {
                Some(t) => t,
                None => continue,
            }
        };
        task.state.store(RUNNING, Ordering::Release);
        let mut slot = task.future.lock().unwrap();
        let Some(mut fut) = slot.take() else {
            continue;
        };
        let waker = waker_for(&task);
        let mut cx = Context::from_waker(&waker);
        match fut.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                inner.live.fetch_sub(1, Ordering::Relaxed);
                task.state.store(IDLE, Ordering::Release);
            }
            Poll::Pending => {
                *slot = Some(fut);
                drop(slot);
                // RUNNING -> IDLE, unless a wake landed mid-poll
                // (NOTIFIED), in which case re-queue now.
                if task
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    task.state.store(QUEUED, Ordering::Release);
                    task.schedule();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reactor::Sleep;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    #[test]
    fn block_on_returns_value() {
        let exec = Executor::new(2);
        assert_eq!(exec.block_on(async { 41 + 1 }), 42);
    }

    #[test]
    fn spawned_tasks_all_run() {
        let exec = Executor::new(2);
        let n = Arc::new(AtomicU32::new(0));
        for _ in 0..100 {
            let n = n.clone();
            exec.spawn(async move {
                n.fetch_add(1, Ordering::Relaxed);
            });
        }
        exec.block_on(async {
            Sleep::after(Duration::from_millis(50)).await;
        });
        assert_eq!(n.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn sleep_waits_roughly_the_requested_time() {
        let exec = Executor::new(1);
        let t0 = std::time::Instant::now();
        exec.block_on(async {
            Sleep::after(Duration::from_millis(30)).await;
        });
        assert!(t0.elapsed() >= Duration::from_millis(30));
    }

    #[test]
    fn timeout_wins_over_slow_future() {
        let exec = Executor::new(1);
        let hit = exec.block_on(async {
            crate::reactor::timeout(
                Duration::from_millis(20),
                Sleep::after(Duration::from_secs(30)),
            )
            .await
        });
        assert!(hit.is_none(), "timeout must fire first");
    }
}
