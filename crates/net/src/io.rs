//! Nonblocking TCP / Unix-domain streams and listeners as futures.
//!
//! Every socket is set nonblocking and registered with the
//! [`Reactor`]; reads and writes run the
//! classic try-then-park loop: attempt the syscall, and on
//! `WouldBlock` arm the matching interest and yield. TCP sockets get
//! `TCP_NODELAY` so the request/response protocol's small frames are
//! not batched behind Nagle's algorithm.

use crate::reactor::{Interest, Reactor, Registration};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::task::Poll;

/// Where a service listens or a client connects: TCP or a Unix socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// Localhost (or any) TCP address, e.g. `127.0.0.1:7070`.
    Tcp(SocketAddr),
    /// Unix-domain socket path.
    Unix(PathBuf),
}

impl std::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Endpoint::Tcp(a) => write!(f, "tcp://{a}"),
            Endpoint::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

impl std::str::FromStr for Endpoint {
    type Err = String;

    /// Parses `tcp://HOST:PORT`, `unix://PATH`, or a bare socket
    /// address (treated as TCP).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(path) = s.strip_prefix("unix://") {
            return Ok(Endpoint::Unix(PathBuf::from(path)));
        }
        let addr = s.strip_prefix("tcp://").unwrap_or(s);
        addr.parse::<SocketAddr>()
            .map(Endpoint::Tcp)
            .map_err(|e| format!("bad endpoint {s:?}: {e}"))
    }
}

enum StreamKind {
    Tcp(TcpStream),
    Unix(UnixStream),
}

/// An async byte stream over TCP or a Unix socket.
///
/// Field order is load-bearing: `reg` must drop (deregistering the fd
/// from the reactor) before `kind` closes the fd — otherwise a
/// concurrently-opened socket can reuse the fd number between the
/// close and the deregister, and the late `EPOLL_CTL_DEL` would tear
/// down the new socket's registration.
pub struct AsyncStream {
    reg: Registration,
    kind: StreamKind,
}

impl AsyncStream {
    fn new_tcp(s: TcpStream) -> io::Result<Self> {
        s.set_nonblocking(true)?;
        s.set_nodelay(true)?;
        let reg = Reactor::global().register(s.as_raw_fd())?;
        Ok(Self {
            kind: StreamKind::Tcp(s),
            reg,
        })
    }

    fn new_unix(s: UnixStream) -> io::Result<Self> {
        s.set_nonblocking(true)?;
        let reg = Reactor::global().register(s.as_raw_fd())?;
        Ok(Self {
            kind: StreamKind::Unix(s),
            reg,
        })
    }

    /// Connects to `ep`. (The TCP/UDS connect itself is performed
    /// blocking — instantaneous for the localhost/UDS targets this
    /// service runs on — then the socket flips nonblocking.)
    pub async fn connect(ep: &Endpoint) -> io::Result<Self> {
        match ep {
            Endpoint::Tcp(addr) => Self::new_tcp(TcpStream::connect(addr)?),
            Endpoint::Unix(path) => Self::new_unix(UnixStream::connect(path)?),
        }
    }

    fn try_read(&self, buf: &mut [u8]) -> io::Result<usize> {
        match &self.kind {
            StreamKind::Tcp(s) => (&*s).read(buf),
            StreamKind::Unix(s) => (&*s).read(buf),
        }
    }

    fn try_write(&self, buf: &[u8]) -> io::Result<usize> {
        match &self.kind {
            StreamKind::Tcp(s) => (&*s).write(buf),
            StreamKind::Unix(s) => (&*s).write(buf),
        }
    }

    /// Shuts down the write half (graceful close signal to the peer).
    pub fn shutdown_write(&self) {
        let _ = match &self.kind {
            StreamKind::Tcp(s) => s.shutdown(std::net::Shutdown::Write),
            StreamKind::Unix(s) => s.shutdown(std::net::Shutdown::Write),
        };
    }

    /// Shuts down both halves: any task parked in a read on this
    /// stream sees EOF/error and can exit (used to reap reader tasks
    /// when a pooled connection is killed).
    pub fn shutdown_both(&self) {
        let _ = match &self.kind {
            StreamKind::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            StreamKind::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    /// Reads up to `buf.len()` bytes; 0 means EOF.
    pub async fn read(&self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            match self.try_read(buf) {
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.ready(Interest::Read).await;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                r => return r,
            }
        }
    }

    /// Reads exactly `buf.len()` bytes; `UnexpectedEof` if the peer
    /// closes mid-way (with the partial count in the error payload's
    /// message for diagnostics).
    pub async fn read_exact(&self, buf: &mut [u8]) -> io::Result<()> {
        let mut at = 0;
        while at < buf.len() {
            let n = self.read(&mut buf[at..]).await?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("peer closed after {at} of {} bytes", buf.len()),
                ));
            }
            at += n;
        }
        Ok(())
    }

    /// Writes the whole buffer.
    pub async fn write_all(&self, buf: &[u8]) -> io::Result<()> {
        let mut at = 0;
        while at < buf.len() {
            match self.try_write(&buf[at..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "peer stopped accepting bytes",
                    ))
                }
                Ok(n) => at += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.ready(Interest::Write).await;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Parks until the reactor reports readiness for `interest`. May
    /// wake spuriously; callers re-try the syscall in a loop.
    async fn ready(&self, interest: Interest) {
        let mut armed = false;
        std::future::poll_fn(|cx| {
            if armed {
                Poll::Ready(())
            } else {
                self.reg.arm(interest, cx.waker());
                armed = true;
                Poll::Pending
            }
        })
        .await
    }
}

enum ListenerKind {
    Tcp(TcpListener),
    Unix(UnixListener),
}

/// An async accept loop over TCP or a Unix socket.
///
/// As with [`AsyncStream`], `reg` is declared first so it drops
/// (deregistering from the reactor) before the listener fd closes.
pub struct AsyncListener {
    reg: Registration,
    kind: ListenerKind,
    /// Bound endpoint (with the OS-assigned port resolved for TCP).
    local: Endpoint,
}

impl AsyncListener {
    /// Binds a TCP listener (use port 0 for an OS-assigned port; the
    /// resolved address is available via [`local`](Self::local)).
    pub fn bind_tcp(addr: SocketAddr) -> io::Result<Self> {
        let l = TcpListener::bind(addr)?;
        l.set_nonblocking(true)?;
        let local = Endpoint::Tcp(l.local_addr()?);
        let reg = Reactor::global().register(l.as_raw_fd())?;
        Ok(Self {
            kind: ListenerKind::Tcp(l),
            reg,
            local,
        })
    }

    /// Binds a Unix-domain listener, unlinking a stale socket file
    /// first.
    pub fn bind_unix(path: &Path) -> io::Result<Self> {
        let _ = std::fs::remove_file(path);
        let l = UnixListener::bind(path)?;
        l.set_nonblocking(true)?;
        let reg = Reactor::global().register(l.as_raw_fd())?;
        Ok(Self {
            kind: ListenerKind::Unix(l),
            reg,
            local: Endpoint::Unix(path.to_path_buf()),
        })
    }

    /// The bound endpoint.
    pub fn local(&self) -> &Endpoint {
        &self.local
    }

    /// Accepts the next connection.
    pub async fn accept(&self) -> io::Result<AsyncStream> {
        loop {
            let r = match &self.kind {
                ListenerKind::Tcp(l) => l.accept().map(|(s, _)| AsyncStream::new_tcp(s)),
                ListenerKind::Unix(l) => l.accept().map(|(s, _)| AsyncStream::new_unix(s)),
            };
            match r {
                Ok(stream) => return stream,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.ready(Interest::Read).await;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }

    async fn ready(&self, interest: Interest) {
        let mut armed = false;
        std::future::poll_fn(|cx| {
            if armed {
                Poll::Ready(())
            } else {
                self.reg.arm(interest, cx.waker());
                armed = true;
                Poll::Pending
            }
        })
        .await
    }
}

impl Drop for AsyncListener {
    fn drop(&mut self) {
        if let Endpoint::Unix(p) = &self.local {
            let _ = std::fs::remove_file(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use std::sync::Arc;

    #[test]
    fn tcp_echo_roundtrip() {
        let exec = Executor::new(2);
        let listener = AsyncListener::bind_tcp("127.0.0.1:0".parse().unwrap()).expect("bind");
        let ep = listener.local().clone();
        exec.spawn(async move {
            let conn = listener.accept().await.unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).await.unwrap();
            conn.write_all(&buf).await.unwrap();
        });
        let echoed = exec.block_on(async move {
            let conn = AsyncStream::connect(&ep).await.unwrap();
            conn.write_all(b"hello").await.unwrap();
            let mut buf = [0u8; 5];
            conn.read_exact(&mut buf).await.unwrap();
            buf
        });
        assert_eq!(&echoed, b"hello");
    }

    #[test]
    fn unix_echo_roundtrip() {
        let exec = Executor::new(2);
        let path =
            std::env::temp_dir().join(format!("megate-net-test-{}.sock", std::process::id()));
        let listener = AsyncListener::bind_unix(&path).expect("bind uds");
        let ep = listener.local().clone();
        exec.spawn(async move {
            let conn = listener.accept().await.unwrap();
            let mut buf = [0u8; 3];
            conn.read_exact(&mut buf).await.unwrap();
            conn.write_all(&buf).await.unwrap();
        });
        let echoed = exec.block_on(async move {
            let conn = AsyncStream::connect(&ep).await.unwrap();
            conn.write_all(b"uds").await.unwrap();
            let mut buf = [0u8; 3];
            conn.read_exact(&mut buf).await.unwrap();
            buf
        });
        assert_eq!(&echoed, b"uds");
    }

    #[test]
    fn read_reports_eof_after_peer_close() {
        let exec = Executor::new(2);
        let listener = AsyncListener::bind_tcp("127.0.0.1:0".parse().unwrap()).unwrap();
        let ep = listener.local().clone();
        let listener = Arc::new(listener);
        let l2 = listener.clone();
        exec.spawn(async move {
            let conn = l2.accept().await.unwrap();
            conn.write_all(b"xy").await.unwrap();
            // conn drops here: peer sees EOF after the 2 bytes.
        });
        let total = exec.block_on(async move {
            let conn = AsyncStream::connect(&ep).await.unwrap();
            let mut total = 0;
            loop {
                let mut buf = [0u8; 8];
                let n = conn.read(&mut buf).await.unwrap();
                if n == 0 {
                    break total; // peer close surfaced as EOF
                }
                total += n;
            }
        });
        assert_eq!(total, 2);
    }
}
