//! A multiplexing TE-DB client: a small pool of persistent
//! connections shared by many agents, demultiplexed by request id.
//!
//! The service targets hundreds of thousands of simulated agents on a
//! machine whose fd limit is four orders of magnitude smaller, so
//! one-socket-per-agent is off the table. The wire protocol carries a
//! `request_id` for exactly this reason: [`NetClient`] opens `K`
//! connections, round-robins requests across them, and routes each
//! response back to its waiting caller by id. Per connection there is
//! one writer task draining an outbox (so frames from concurrent
//! callers never interleave mid-frame) and one reader task parsing
//! responses and completing the matching oneshot.
//!
//! Failure handling is per-request and per-connection:
//!
//! * a response whose body checksum fails completes just that request
//!   with [`FrameError::BadCrc`] — the stream stays frame-aligned, so
//!   the connection survives (this is how DB-injected corruption
//!   reaches the agent's retry ladder);
//! * a connection-level failure (reset, truncated frame, bad magic)
//!   fails every request in flight on that connection and marks it
//!   broken; the next request through that slot reconnects lazily.

use crate::exec::Executor;
use crate::frame::{
    self, encode_request, read_frame_unchecked, FrameError, Request, Response, DEFAULT_MAX_BODY,
};
use crate::io::{AsyncStream, Endpoint};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::task::{Poll, Waker};

// ---- oneshot: single-value handoff between reader task and caller ----

struct OneshotInner<T> {
    value: Option<T>,
    waker: Option<Waker>,
}

struct Oneshot<T>(Arc<Mutex<OneshotInner<T>>>);

impl<T> Oneshot<T> {
    fn new() -> (Oneshot<T>, Oneshot<T>) {
        let inner = Arc::new(Mutex::new(OneshotInner {
            value: None,
            waker: None,
        }));
        (Oneshot(inner.clone()), Oneshot(inner))
    }

    fn send(&self, v: T) {
        let mut g = self.0.lock();
        g.value = Some(v);
        if let Some(w) = g.waker.take() {
            w.wake();
        }
    }

    async fn recv(self) -> T {
        std::future::poll_fn(|cx| {
            let mut g = self.0.lock();
            match g.value.take() {
                Some(v) => Poll::Ready(v),
                None => {
                    g.waker = Some(cx.waker().clone());
                    Poll::Pending
                }
            }
        })
        .await
    }
}

// ---- outbox: multi-producer frame queue drained by the writer task ----

struct Outbox {
    queue: Mutex<(VecDeque<Vec<u8>>, Option<Waker>, bool)>,
}

impl Outbox {
    fn new() -> Self {
        Self {
            queue: Mutex::new((VecDeque::new(), None, false)),
        }
    }

    fn push(&self, frame: Vec<u8>) {
        let mut g = self.queue.lock();
        g.0.push_back(frame);
        if let Some(w) = g.1.take() {
            w.wake();
        }
    }

    fn close(&self) {
        let mut g = self.queue.lock();
        g.2 = true;
        if let Some(w) = g.1.take() {
            w.wake();
        }
    }

    /// Next frame to write, or `None` when the outbox is closed.
    async fn pop(&self) -> Option<Vec<u8>> {
        std::future::poll_fn(|cx| {
            let mut g = self.queue.lock();
            if let Some(f) = g.0.pop_front() {
                return Poll::Ready(Some(f));
            }
            if g.2 {
                return Poll::Ready(None);
            }
            g.1 = Some(cx.waker().clone());
            Poll::Pending
        })
        .await
    }
}

type Pending = Mutex<HashMap<u64, Oneshot<Result<Response, FrameError>>>>;

/// One live connection: stream + in-flight table + outbox.
struct Conn {
    stream: Arc<AsyncStream>,
    outbox: Outbox,
    pending: Pending,
    broken: AtomicBool,
}

impl Conn {
    /// Fails every in-flight request and marks the connection dead.
    /// The socket is shut down both ways so the reader task parked on
    /// it unblocks and exits instead of leaking.
    fn kill(&self, err: FrameError) {
        self.broken.store(true, Ordering::Release);
        self.outbox.close();
        self.stream.shutdown_both();
        let pending = std::mem::take(&mut *self.pending.lock());
        for (_, tx) in pending {
            tx.send(Err(err.clone()));
        }
    }
}

/// A pool slot: at most one task (re)connects it at a time; everyone
/// else parks as a waiter. Without the single-flight gate, a cohort of
/// thousands of concurrent first requests would each dial its own
/// socket — a thundering herd that overflows the listener's accept
/// backlog and then throws all but one connection away.
struct Slot {
    conn: Option<Arc<Conn>>,
    connecting: bool,
    waiters: Vec<Waker>,
}

/// What [`NetClient::claim_slot`] resolved to.
enum Claim {
    /// A live connection to use.
    Ready(Arc<Conn>),
    /// This task won the connect race and must dial the slot.
    Connector,
}

/// Releases a slot's `connecting` claim on drop — on success, failure
/// or cancellation alike — and wakes the parked waiters so one of them
/// can use the installed connection or become the next connector.
struct ConnectRelease<'a> {
    client: &'a NetClient,
    slot: usize,
}

impl Drop for ConnectRelease<'_> {
    fn drop(&mut self) {
        let mut g = self.client.slots[self.slot].lock();
        g.connecting = false;
        for w in g.waiters.drain(..) {
            w.wake();
        }
    }
}

/// A pooled, multiplexing client for the TE-DB wire protocol.
pub struct NetClient {
    endpoint: Endpoint,
    exec: Executor,
    slots: Vec<Mutex<Slot>>,
    next_id: AtomicU64,
    next_slot: AtomicU64,
}

impl NetClient {
    /// Creates a client that will pool `conns` connections to
    /// `endpoint`, connecting lazily on first use.
    pub fn new(endpoint: Endpoint, conns: usize, exec: Executor) -> Arc<Self> {
        Arc::new(Self {
            endpoint,
            exec,
            slots: (0..conns.max(1))
                .map(|_| {
                    Mutex::new(Slot {
                        conn: None,
                        connecting: false,
                        waiters: Vec::new(),
                    })
                })
                .collect(),
            next_id: AtomicU64::new(1),
            next_slot: AtomicU64::new(0),
        })
    }

    /// Number of connection slots in the pool.
    pub fn pool_size(&self) -> usize {
        self.slots.len()
    }

    /// Issues one request and awaits its response. Connection-level
    /// failures surface as `Err`; the caller's retry policy decides
    /// what to do (a fresh attempt will lazily reconnect).
    pub async fn request(self: &Arc<Self>, req: &Request) -> Result<Response, FrameError> {
        let conn = self.conn_for_next_request().await?;
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = Oneshot::new();
        conn.pending.lock().insert(id, tx);
        // Re-check after registering: kill() may have swept the table
        // between our insert and the push.
        if conn.broken.load(Ordering::Acquire) {
            conn.pending.lock().remove(&id);
            return Err(FrameError::Io(std::io::ErrorKind::BrokenPipe));
        }
        conn.outbox.push(encode_request(req, id));
        rx.recv().await
    }

    async fn conn_for_next_request(self: &Arc<Self>) -> Result<Arc<Conn>, FrameError> {
        let slot = (self.next_slot.fetch_add(1, Ordering::Relaxed) as usize) % self.slots.len();
        match self.claim_slot(slot).await {
            Claim::Ready(conn) => Ok(conn),
            Claim::Connector => {
                // The guard releases the `connecting` flag and wakes
                // the waiter queue however this future ends —
                // including being *dropped* by a caller's deadline
                // timeout mid-dial. Without it a cancelled connect
                // would wedge the slot forever.
                let guard = ConnectRelease { client: self, slot };
                let res = self.connect_one().await;
                if let Ok(conn) = &res {
                    self.slots[slot].lock().conn = Some(conn.clone());
                }
                drop(guard);
                res
            }
        }
    }

    /// Resolves the slot to a live connection or elects this task the
    /// slot's single connector; all other callers park until the dial
    /// settles.
    async fn claim_slot(&self, slot: usize) -> Claim {
        std::future::poll_fn(|cx| {
            let mut g = self.slots[slot].lock();
            if let Some(conn) = &g.conn {
                if !conn.broken.load(Ordering::Acquire) {
                    return Poll::Ready(Claim::Ready(conn.clone()));
                }
                g.conn = None;
            }
            if !g.connecting {
                g.connecting = true;
                return Poll::Ready(Claim::Connector);
            }
            g.waiters.push(cx.waker().clone());
            Poll::Pending
        })
        .await
    }

    async fn connect_one(&self) -> Result<Arc<Conn>, FrameError> {
        let stream = AsyncStream::connect(&self.endpoint)
            .await
            .map_err(|e| FrameError::Io(e.kind()))?;
        megate_obs::counter("net.client_connects").inc();
        let stream = Arc::new(stream);
        let conn = Arc::new(Conn {
            stream: stream.clone(),
            outbox: Outbox::new(),
            pending: Mutex::new(HashMap::new()),
            broken: AtomicBool::new(false),
        });

        // Writer task: drain the outbox one frame at a time.
        let (c, s) = (conn.clone(), stream.clone());
        self.exec.spawn(async move {
            while let Some(frame) = c.outbox.pop().await {
                if s.write_all(&frame).await.is_err() {
                    c.kill(FrameError::Io(std::io::ErrorKind::BrokenPipe));
                    return;
                }
            }
        });

        // Reader task: route responses to their oneshot by request id.
        let (c, s) = (conn.clone(), stream.clone());
        self.exec.spawn(async move {
            loop {
                match read_frame_unchecked(&s, DEFAULT_MAX_BODY).await {
                    Ok((hdr, Some(body))) => {
                        let result = Response::decode(hdr.op, &body).ok_or(FrameError::Malformed);
                        if let Some(tx) = c.pending.lock().remove(&hdr.request_id) {
                            tx.send(result);
                        }
                    }
                    Ok((hdr, None)) => {
                        // Corrupted body; the stream is still aligned.
                        megate_obs::counter("net.client_crc_failures").inc();
                        if let Some(tx) = c.pending.lock().remove(&hdr.request_id) {
                            tx.send(Err(FrameError::BadCrc));
                        }
                    }
                    Err(e) => {
                        c.kill(e);
                        return;
                    }
                }
            }
        });

        // Negotiate before handing the connection out. The guard kills
        // the half-built connection unless negotiation succeeds — on
        // protocol errors, and also when this future is dropped by a
        // caller's deadline mid-handshake (reaping the just-spawned
        // reader/writer tasks and their socket).
        struct KillUnlessReady(Option<Arc<Conn>>);
        impl Drop for KillUnlessReady {
            fn drop(&mut self) {
                if let Some(c) = self.0.take() {
                    c.kill(FrameError::Io(std::io::ErrorKind::ConnectionAborted));
                }
            }
        }
        let mut guard = KillUnlessReady(Some(conn.clone()));

        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = Oneshot::new();
        conn.pending.lock().insert(id, tx);
        conn.outbox.push(encode_request(
            &Request::Hello {
                min_version: frame::PROTOCOL_VERSION,
                max_version: frame::PROTOCOL_VERSION,
            },
            id,
        ));
        match rx.recv().await? {
            Response::HelloOk { .. } => {
                guard.0 = None;
                Ok(conn)
            }
            Response::Error { code, .. } => Err(match code {
                frame::ErrorCode::UnsupportedVersion => {
                    FrameError::BadVersion(frame::PROTOCOL_VERSION)
                }
                _ => FrameError::Io(std::io::ErrorKind::ConnectionRefused),
            }),
            _ => Err(FrameError::Malformed),
        }
    }

    /// Tears down every pooled connection (in-flight requests fail).
    pub fn close(&self) {
        for slot in &self.slots {
            if let Some(conn) = slot.lock().conn.take() {
                conn.kill(FrameError::Io(std::io::ErrorKind::ConnectionAborted));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerState};
    use megate_tedb::{TeDatabase, TeKey};

    #[test]
    fn pooled_requests_demux_by_id() {
        let exec = Executor::new(2);
        let db = TeDatabase::new(4);
        db.publish_version(3);
        db.put(&TeKey::Snapshot { endpoint: 9 }, vec![9, 9]);
        let state = ServerState::new(db);
        let server = Server::start(state, &Endpoint::Tcp("127.0.0.1:0".parse().unwrap()), &exec)
            .expect("bind");
        let client = NetClient::new(server.local().clone(), 2, exec.clone());
        let (v, s) = exec.block_on(async move {
            let v = client
                .request(&Request::GetVersion { partition: 0 })
                .await
                .unwrap();
            let s = client
                .request(&Request::GetSnapshot { endpoint: 9 })
                .await
                .unwrap();
            (v, s)
        });
        assert_eq!(v, Response::VersionIs { version: Some(3) });
        assert_eq!(
            s,
            Response::Record {
                for_op: frame::op::GET_SNAPSHOT,
                value: Some(vec![9, 9]),
            }
        );
    }
}
