//! The endpoint agent as an async task: the §3.2 delta-aware pull
//! ladder driven over real sockets.
//!
//! [`Agent`] holds one endpoint's installed state (version + path
//! config) and runs one pull per 10 s sync period through a shared
//! [`NetClient`]. The ladder is the same one the in-process harness
//! runs — poll the partition version, read the changelog, catch up
//! from deltas when the log is complete back to the installed version,
//! otherwise fall back to snapshot-plus-replay, always
//! fetch-then-apply — and it is budgeted by the same
//! [`PullPolicy`]/`BackoffPolicy` ladder: jittered exponential
//! backoff between attempts, a per-period deadline, and degradation to
//! site-level/ECMP paths (config flushed) after
//! `stale_ttl_periods` consecutive periods without a refresh.
//!
//! Two things change when the transport is real:
//!
//! * the deadline budget is charged with **wall-clock time** — injected
//!   shard latency arrives as actual service delay, and transport
//!   stalls (slow-loris) burn budget exactly like slow shards;
//! * every network read is capped by the budget's remaining time via
//!   [`timeout`], so a stalled response can cost at most the rest of
//!   this period's budget, never block the agent across periods.

use crate::client::NetClient;
use crate::frame::{Request, Response};
use crate::reactor::timeout;
use megate::config::{decode_delta, decode_paths, EndpointConfig};
use megate::resilience::PullPolicy;
use megate_tedb::Changelog;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one sync period's pull accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PullReport {
    /// The agent holds a configuration no older than the published
    /// version it observed (it advanced, or was already fresh).
    pub refreshed: bool,
    /// The agent advanced its installed version this period.
    pub advanced: bool,
    /// Network attempts spent (0 when the first try succeeded... 1-based).
    pub attempts: u32,
    /// Wall-clock time from pull start to outcome.
    pub elapsed: Duration,
    /// The refresh went through the snapshot fallback.
    pub via_snapshot: bool,
    /// The agent is degraded (ECMP) after this period.
    pub degraded: bool,
}

/// One endpoint's agent: installed config state plus the pull policy
/// driving its retry ladder.
pub struct Agent {
    /// This agent's endpoint id (the `TeKey` keyspace index).
    pub endpoint: u64,
    /// The controller partition whose version clock it polls.
    pub partition: u32,
    /// Retry/backoff/staleness policy.
    pub policy: PullPolicy,
    version: u64,
    config: EndpointConfig,
    periods_behind: u64,
    degraded: bool,
}

/// A retryable pull failure (outage, corruption, transport error or
/// budget-capped stall) — the ladder backs off and tries again.
struct Retry;

impl Agent {
    /// A fresh agent with no installed configuration.
    pub fn new(endpoint: u64, partition: u32, policy: PullPolicy) -> Self {
        Self {
            endpoint,
            partition,
            policy,
            version: 0,
            config: EndpointConfig::default(),
            periods_behind: 0,
            degraded: false,
        }
    }

    /// The installed config version (0 = never configured).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The installed path configuration.
    pub fn config(&self) -> &EndpointConfig {
        &self.config
    }

    /// Whether the agent has degraded to site-level/ECMP forwarding.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Consecutive sync periods without a successful refresh.
    pub fn periods_behind(&self) -> u64 {
        self.periods_behind
    }

    /// Runs one sync period's pull: retry ladder within the period's
    /// deadline budget, then staleness/degradation bookkeeping.
    pub async fn sync_period_pull(&mut self, client: &Arc<NetClient>) -> PullReport {
        let start = Instant::now();
        let deadline = start + Duration::from_nanos(self.policy.deadline_ns);
        let seed = self.policy.seed ^ self.endpoint.rotate_left(17);
        let mut attempts = 0u32;
        let mut outcome: Option<(bool, bool)> = None; // (advanced, via_snapshot)
        while attempts < self.policy.max_attempts && Instant::now() < deadline {
            attempts += 1;
            match self.attempt_pull(client, deadline).await {
                Ok(step) => {
                    outcome = Some(step);
                    break;
                }
                Err(Retry) => {
                    let delay = self.policy.backoff.delay_ns(attempts - 1, seed);
                    let now = Instant::now();
                    if now + Duration::from_nanos(delay) >= deadline {
                        break; // budget spent; next period
                    }
                    crate::reactor::Sleep::after(Duration::from_nanos(delay)).await;
                }
            }
        }
        let elapsed = start.elapsed();
        let refreshed = outcome.is_some();
        let (advanced, via_snapshot) = outcome.unwrap_or((false, false));
        if refreshed {
            self.periods_behind = 0;
            if self.degraded {
                megate_obs::counter("net.agent_recoveries").inc();
                self.degraded = false;
            }
            megate_obs::histogram("net.pull_latency_ns").record(elapsed.as_nanos() as u64);
        } else {
            self.periods_behind += 1;
            megate_obs::counter("net.pull_stale_periods").inc();
            if self.periods_behind >= self.policy.stale_ttl_periods && !self.degraded {
                // Stale past the TTL: stop steering on arbitrarily old
                // paths, flush to ECMP until a fresh config lands. The
                // version resets with the config (as the in-process
                // host agent does) so recovery rebuilds from a
                // snapshot rather than replaying deltas onto the
                // flushed state.
                self.degraded = true;
                self.config = EndpointConfig::default();
                self.version = 0;
                megate_obs::counter("net.agent_degraded").inc();
            }
        }
        PullReport {
            refreshed,
            advanced,
            attempts,
            elapsed,
            via_snapshot,
            degraded: self.degraded,
        }
    }

    /// One attempt: version poll, then the catch-up ladder when the
    /// published version is ahead. `Ok((advanced, via_snapshot))`.
    async fn attempt_pull(
        &mut self,
        client: &Arc<NetClient>,
        deadline: Instant,
    ) -> Result<(bool, bool), Retry> {
        let target = match self.read_version(client, deadline).await? {
            Some(v) => v,
            None => return Ok((false, false)), // nothing published yet
        };
        if target <= self.version {
            return Ok((false, false)); // already fresh
        }
        self.ladder(client, target, deadline).await
    }

    /// The delta/snapshot catch-up ladder, mirroring the in-process
    /// pull: fetch-then-apply, never adopt a version whose records
    /// were unreadable, keep the working config on any failure.
    async fn ladder(
        &mut self,
        client: &Arc<NetClient>,
        target: u64,
        deadline: Instant,
    ) -> Result<(bool, bool), Retry> {
        let endpoint = self.endpoint;
        let local = self.version;
        let log = match self
            .read_record(client, Request::GetChangelog { endpoint }, deadline)
            .await?
        {
            Some(raw) => Changelog::decode(&raw).ok_or(Retry)?,
            None => {
                // Never configured: adopt the version with no paths.
                self.version = target;
                return Ok((true, false));
            }
        };

        // Incremental path: the log is complete for everything after
        // `complete_since`, so an agent at least that fresh catches up
        // from deltas alone.
        if local >= log.complete_since {
            let mut deltas = Vec::new();
            let mut complete = true;
            for &v in log.versions.iter().filter(|v| **v > local && **v <= target) {
                let read = self
                    .read_record(
                        client,
                        Request::GetDelta {
                            endpoint,
                            version: v,
                        },
                        deadline,
                    )
                    .await;
                match read {
                    Ok(Some(raw)) => match decode_delta(&raw) {
                        Some(d) => deltas.push(d),
                        None => {
                            complete = false;
                            break;
                        }
                    },
                    // Missing (raced with GC), outage, corruption or
                    // transport failure: fall back to snapshot.
                    _ => {
                        complete = false;
                        break;
                    }
                }
            }
            if complete {
                for d in &deltas {
                    d.apply(&mut self.config);
                }
                self.version = target;
                return Ok((true, false));
            }
        }

        // Snapshot fallback: `u64 stamp | body`, then replay retained
        // deltas newer than the stamp.
        let raw = match self
            .read_record(client, Request::GetSnapshot { endpoint }, deadline)
            .await?
        {
            Some(raw) if raw.len() >= 8 => raw,
            _ => return Err(Retry),
        };
        let stamp = u64::from_be_bytes(raw[..8].try_into().map_err(|_| Retry)?);
        let cfg = decode_paths(&raw[8..]).ok_or(Retry)?;
        let mut deltas = Vec::new();
        let mut achieved = target;
        for &v in log.versions.iter().filter(|v| **v > stamp && **v <= target) {
            let read = self
                .read_record(
                    client,
                    Request::GetDelta {
                        endpoint,
                        version: v,
                    },
                    deadline,
                )
                .await;
            match read {
                Ok(Some(raw)) => match decode_delta(&raw) {
                    Some(d) => deltas.push((v, d)),
                    None => {
                        achieved = deltas.last().map_or(stamp, |(v, _)| *v);
                        break;
                    }
                },
                _ => {
                    achieved = deltas.last().map_or(stamp, |(v, _)| *v);
                    break;
                }
            }
        }
        if achieved <= local {
            // The reachable state is no newer than what is installed.
            return Err(Retry);
        }
        self.config = cfg;
        for (_, d) in &deltas {
            d.apply(&mut self.config);
        }
        self.version = achieved;
        Ok((true, true))
    }

    async fn read_version(
        &self,
        client: &Arc<NetClient>,
        deadline: Instant,
    ) -> Result<Option<u64>, Retry> {
        match self
            .bounded_request(
                client,
                Request::GetVersion {
                    partition: self.partition,
                },
                deadline,
            )
            .await?
        {
            Response::VersionIs { version } => Ok(version),
            _ => Err(Retry),
        }
    }

    async fn read_record(
        &self,
        client: &Arc<NetClient>,
        req: Request,
        deadline: Instant,
    ) -> Result<Option<Vec<u8>>, Retry> {
        match self.bounded_request(client, req, deadline).await? {
            Response::Record { value, .. } => Ok(value),
            _ => Err(Retry),
        }
    }

    /// One request capped by the period budget's remaining time. Every
    /// failure class — outage error, CRC failure, connection break,
    /// timeout — lands in the same retryable bucket.
    async fn bounded_request(
        &self,
        client: &Arc<NetClient>,
        req: Request,
        deadline: Instant,
    ) -> Result<Response, Retry> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(Retry);
        }
        match timeout(remaining, client.request(&req)).await {
            Some(Ok(Response::Error { .. })) => Err(Retry),
            Some(Ok(resp)) => Ok(resp),
            Some(Err(_)) => Err(Retry),
            None => {
                megate_obs::counter("net.pull_timeouts").inc();
                Err(Retry)
            }
        }
    }
}
