//! Chaos invariants with real sockets in the loop: the §3.2 pull
//! ladder's guarantees — bounded staleness, zero blackholing,
//! reconvergence — re-proven against the wire-protocol service under
//! combined shard outages and transport faults (connection resets,
//! truncated frames, slow-loris stalls).
//!
//! Ground truth comes from [`SimPublisher`]'s `(version, fingerprint)`
//! history: an agent claiming version `v` for endpoint `e` must hold
//! exactly the configuration published at the latest change ≤ `v` —
//! anything else is a silent blackhole / misroute.

use megate::config::EndpointConfig;
use megate::resilience::PullPolicy;
use megate_net::agent::Agent;
use megate_net::publish::{config_fingerprint, SimPublisher};
use megate_net::server::{Server, ServerState, TransportFaults};
use megate_net::{Endpoint, Executor, NetClient};
use megate_tedb::TeDatabase;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const AGENTS: u64 = 32;
const STALE_TTL: u64 = 2;

/// A compressed sync period so chaos rounds stay test-sized: the
/// 2 s/period retry budget shrinks to 400 ms, the degrade TTL to 2
/// periods. Ratios (budget ≪ period, TTL ≥ outage length) match the
/// production defaults.
fn quick_policy() -> PullPolicy {
    PullPolicy {
        deadline_ns: 400_000_000,
        max_attempts: 6,
        stale_ttl_periods: STALE_TTL,
        ..PullPolicy::default()
    }
}

struct Harness {
    exec: Executor,
    state: Arc<ServerState>,
    client: Arc<NetClient>,
    publisher: SimPublisher,
    fleet: Vec<Arc<Mutex<Option<Agent>>>>,
}

impl Harness {
    fn start() -> Self {
        let exec = Executor::new(3);
        let db = TeDatabase::with_replication(8, 2);
        db.set_fault_seed(0x51ab);
        let state = ServerState::new(db);
        let server = Server::start(
            state.clone(),
            &Endpoint::Tcp("127.0.0.1:0".parse().unwrap()),
            &exec,
        )
        .expect("bind");
        let client = NetClient::new(server.local().clone(), 4, exec.clone());
        let fleet = (0..AGENTS)
            .map(|e| Arc::new(Mutex::new(Some(Agent::new(e, 0, quick_policy())))))
            .collect();
        Self {
            exec,
            state,
            client,
            publisher: SimPublisher::new(AGENTS, 4, 0xc4a05),
            fleet,
        }
    }

    /// One sync period: publish a round, then every agent pulls
    /// concurrently (one async task each, all multiplexed over the
    /// pooled client).
    fn run_period(&mut self, churn_ppm: u32) {
        self.publisher.publish_round(self.state.db(), churn_ppm);
        let done = Arc::new(AtomicU64::new(0));
        for agent in &self.fleet {
            let agent = agent.clone();
            let client = self.client.clone();
            let done = done.clone();
            self.exec.spawn(async move {
                let Some(mut a) = agent.lock().unwrap().take() else {
                    return;
                };
                a.sync_period_pull(&client).await;
                *agent.lock().unwrap() = Some(a);
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        while done.load(Ordering::Relaxed) < AGENTS {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// The invariants every period must uphold, chaos or not.
    fn check_invariants(&self, phase: &str) {
        let empty_fp = config_fingerprint(&EndpointConfig::default());
        for slot in &self.fleet {
            let guard = slot.lock().unwrap();
            let a = guard.as_ref().expect("agent is home between periods");
            // Bounded staleness: past the TTL an agent must have
            // stopped steering on its stale paths.
            if a.periods_behind() >= STALE_TTL {
                assert!(
                    a.is_degraded(),
                    "[{phase}] endpoint {} is {} periods behind but still \
                     steering on stale paths",
                    a.endpoint,
                    a.periods_behind(),
                );
            }
            // Zero blackholing: whatever version an agent claims, its
            // installed paths are exactly what was published at that
            // version; degraded agents hold the flushed (ECMP) config.
            let fp = config_fingerprint(a.config());
            if a.is_degraded() {
                assert_eq!(
                    fp, empty_fp,
                    "[{phase}] degraded endpoint {} still holds paths",
                    a.endpoint,
                );
            } else {
                let want = self.publisher.expected_fingerprint(a.endpoint, a.version());
                assert_eq!(
                    fp,
                    want,
                    "[{phase}] endpoint {} claims v{} but holds a config that \
                     was never published at that version",
                    a.endpoint,
                    a.version(),
                );
            }
        }
    }

    fn fresh_count(&self) -> usize {
        let target = self.publisher.version();
        self.fleet
            .iter()
            .filter(|s| {
                let g = s.lock().unwrap();
                let a = g.as_ref().unwrap();
                a.version() == target && !a.is_degraded()
            })
            .count()
    }
}

#[test]
fn socket_chaos_preserves_staleness_and_blackholing_invariants() {
    let mut h = Harness::start();

    // Phase 1 — clean service: everyone converges immediately.
    for round in 1..=2u32 {
        h.run_period(250_000);
        h.check_invariants("clean");
        assert_eq!(
            h.fresh_count(),
            AGENTS as usize,
            "round {round}: clean service must converge every agent",
        );
    }

    // Phase 2 — chaos: one TE-DB shard down (replication covers it
    // with failover) plus transport faults on the wire: resets,
    // truncated frames and slow-loris responses.
    h.state.db().set_shard_down(0, true);
    h.state.db().set_shard_slow(3, 20_000_000); // 20 ms per read
    h.state.set_transport_faults(TransportFaults {
        reset_ppm: 120_000,
        truncate_ppm: 80_000,
        stall_ppm: 40_000,
        stall_chunk_delay: Duration::from_millis(2),
        seed: 0xbad,
    });
    for _ in 0..3 {
        h.run_period(250_000);
        h.check_invariants("chaos");
    }

    // Phase 3 — heal, then reconverge. An agent that degraded during
    // chaos rebuilds from snapshot; everyone must be fresh within two
    // clean periods.
    h.state.db().set_shard_down(0, false);
    h.state.db().set_shard_slow(3, 0);
    h.state.set_transport_faults(TransportFaults::default());
    for _ in 0..2 {
        h.run_period(250_000);
        h.check_invariants("heal");
    }
    assert_eq!(
        h.fresh_count(),
        AGENTS as usize,
        "fleet must reconverge within two clean periods of the heal",
    );

    h.client.close();
    h.state.shutdown();
}
