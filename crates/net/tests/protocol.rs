//! Wire-protocol edge cases: every way a frame can be wrong, plus the
//! codec round-trip and the layout fingerprint that pins PROTOCOL.md
//! to the code.

use megate_net::frame::{
    self, crc32_fnv, decode_header, encode_frame, encode_request, encode_response, op, ErrorCode,
    FrameError, Request, Response, DEFAULT_MAX_BODY, HEADER_LEN, MAGIC, PROTOCOL_VERSION,
};
use megate_net::io::{AsyncStream, Endpoint};
use megate_net::server::{Server, ServerState};
use megate_net::Executor;
use megate_tedb::TeDatabase;
use proptest::prelude::*;
use std::sync::Arc;

fn start_server(exec: &Executor) -> (Arc<ServerState>, Endpoint) {
    let db = TeDatabase::new(4);
    db.publish_version(5);
    let state = ServerState::new(db);
    let server = Server::start(
        state.clone(),
        &Endpoint::Tcp("127.0.0.1:0".parse().unwrap()),
        exec,
    )
    .expect("bind");
    (state, server.local().clone())
}

async fn read_response(conn: &AsyncStream) -> Result<(u64, Response), FrameError> {
    let (hdr, body) = frame::read_frame(conn, DEFAULT_MAX_BODY).await?;
    let resp = Response::decode(hdr.op, &body).ok_or(FrameError::Malformed)?;
    Ok((hdr.request_id, resp))
}

#[test]
fn garbage_frames_hang_up_without_a_response() {
    let exec = Executor::new(2);
    let (_state, ep) = start_server(&exec);
    exec.block_on(async move {
        let conn = AsyncStream::connect(&ep).await.unwrap();
        // Exactly HEADER_LEN bytes so the server's header read
        // completes and the close is a clean FIN (no unread bytes).
        conn.write_all(b"GET / HTTP/1.1\r\nZZ\r\n").await.unwrap();
        // Bad magic: the server drops the connection without writing.
        let mut buf = [0u8; 64];
        match conn.read(&mut buf).await {
            Ok(n) => assert_eq!(n, 0, "server must hang up on garbage, got {n} bytes"),
            // A racing RST (server closed before draining) is also a hang-up.
            Err(e) => assert_eq!(e.kind(), std::io::ErrorKind::ConnectionReset),
        }
    });
}

#[test]
fn version_mismatch_is_rejected_with_unsupported_version() {
    let exec = Executor::new(2);
    let (_state, ep) = start_server(&exec);
    exec.block_on(async move {
        let conn = AsyncStream::connect(&ep).await.unwrap();
        // A well-formed frame with a future protocol version.
        let mut f = encode_request(&Request::Ping, 9);
        f[2] = PROTOCOL_VERSION + 1;
        conn.write_all(&f).await.unwrap();
        let (_, resp) = read_response(&conn).await.expect("server responds");
        match resp {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::UnsupportedVersion),
            other => panic!("expected UnsupportedVersion error, got {other:?}"),
        }
        // ... and then hangs up: the peer speaks a version we can't parse.
        let mut buf = [0u8; 16];
        assert_eq!(conn.read(&mut buf).await.unwrap(), 0);
    });
}

#[test]
fn oversized_frames_are_rejected_before_the_body_is_read() {
    let exec = Executor::new(2);
    let (_state, ep) = start_server(&exec);
    exec.block_on(async move {
        let conn = AsyncStream::connect(&ep).await.unwrap();
        // Header declaring a 256 MiB body; no body follows.
        let mut f = Vec::new();
        f.extend_from_slice(&MAGIC.to_be_bytes());
        f.push(PROTOCOL_VERSION);
        f.push(op::PING);
        f.extend_from_slice(&7u64.to_be_bytes());
        f.extend_from_slice(&(256u32 << 20).to_be_bytes());
        f.extend_from_slice(&0u32.to_be_bytes());
        conn.write_all(&f).await.unwrap();
        let (_, resp) = read_response(&conn).await.expect("server responds");
        match resp {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::Oversized),
            other => panic!("expected Oversized error, got {other:?}"),
        }
        let mut buf = [0u8; 16];
        assert_eq!(
            conn.read(&mut buf).await.unwrap(),
            0,
            "stream is desynced; must close"
        );
    });
}

#[test]
fn corrupt_request_body_fails_only_that_request() {
    let exec = Executor::new(2);
    let (_state, ep) = start_server(&exec);
    exec.block_on(async move {
        let conn = AsyncStream::connect(&ep).await.unwrap();
        // A frame whose body checksum is deliberately wrong...
        let bad = encode_frame(
            op::GET_VERSION,
            11,
            &Request::GetVersion { partition: 0 }.encode_body(),
            true,
        );
        conn.write_all(&bad).await.unwrap();
        let (id, resp) = read_response(&conn).await.expect("server responds");
        assert_eq!(id, 11, "error must echo the corrupt frame's request id");
        match resp {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadCrc),
            other => panic!("expected BadCrc error, got {other:?}"),
        }
        // ...does not cost the connection: the next request succeeds.
        conn.write_all(&encode_request(&Request::GetVersion { partition: 0 }, 12))
            .await
            .unwrap();
        let (id, resp) = read_response(&conn).await.expect("conn survives");
        assert_eq!(id, 12);
        assert_eq!(resp, Response::VersionIs { version: Some(5) });
    });
}

#[test]
fn undecodable_body_yields_bad_request() {
    let exec = Executor::new(2);
    let (_state, ep) = start_server(&exec);
    exec.block_on(async move {
        let conn = AsyncStream::connect(&ep).await.unwrap();
        // Valid checksum, wrong body length for the op.
        let f = encode_frame(op::GET_VERSION, 3, &[1, 2], false);
        conn.write_all(&f).await.unwrap();
        let (id, resp) = read_response(&conn).await.expect("server responds");
        assert_eq!(id, 3);
        match resp {
            Response::Error { code, .. } => assert_eq!(code, ErrorCode::BadRequest),
            other => panic!("expected BadRequest error, got {other:?}"),
        }
    });
}

#[test]
fn mid_frame_disconnect_is_truncation_for_the_reader() {
    let exec = Executor::new(2);
    let (_state, ep) = start_server(&exec);
    // Client sends half a header and disconnects: the server just
    // drops the conn. Symmetrically, test the client-side reader: a
    // peer that closes mid-frame produces FrameError::Truncated.
    exec.block_on(async move {
        let conn = AsyncStream::connect(&ep).await.unwrap();
        let f = encode_request(&Request::GetVersion { partition: 0 }, 1);
        conn.write_all(&f[..HEADER_LEN / 2]).await.unwrap();
        conn.shutdown_write();
        let mut buf = [0u8; 16];
        assert_eq!(
            conn.read(&mut buf).await.unwrap(),
            0,
            "server drops half-frames"
        );
    });
    // Client side: a server look-alike that truncates.
    let listener =
        megate_net::AsyncListener::bind_tcp("127.0.0.1:0".parse().unwrap()).expect("bind");
    let ep = listener.local().clone();
    exec.spawn(async move {
        let conn = listener.accept().await.unwrap();
        let full = encode_response(&Response::Pong, 1, false);
        conn.write_all(&full[..HEADER_LEN - 3]).await.unwrap();
        conn.shutdown_write();
        // Hold the socket open until the peer finishes reading.
        let mut b = [0u8; 1];
        let _ = conn.read(&mut b).await;
    });
    exec.block_on(async move {
        let conn = AsyncStream::connect(&ep).await.unwrap();
        let err = frame::read_frame(&conn, DEFAULT_MAX_BODY)
            .await
            .unwrap_err();
        assert_eq!(err, FrameError::Truncated);
    });
}

#[test]
fn header_decode_rejects_bad_magic_and_oversize() {
    let good = encode_request(&Request::Ping, 1);
    let mut hdr = [0u8; HEADER_LEN];
    hdr.copy_from_slice(&good[..HEADER_LEN]);
    assert!(decode_header(&hdr, DEFAULT_MAX_BODY).is_ok());

    let mut bad = hdr;
    bad[0] = 0x00;
    assert_eq!(
        decode_header(&bad, DEFAULT_MAX_BODY).unwrap_err(),
        FrameError::BadMagic
    );

    let mut big = hdr;
    big[12..16].copy_from_slice(&(DEFAULT_MAX_BODY + 1).to_be_bytes());
    assert!(matches!(
        decode_header(&big, DEFAULT_MAX_BODY).unwrap_err(),
        FrameError::Oversized(_)
    ));
}

/// Regression: the kernel reuses fd numbers the instant a socket
/// closes, so a reactor rearm still in flight for a dropped
/// registration must never touch the reused fd (it would clobber the
/// successor's armed mask and strand its waker — a 50% hang before
/// the `dead`-flag fix). Rapid connect/request/close churn is the
/// amplifier: every iteration hands the next connection the same fd.
#[test]
fn rapid_connection_churn_never_strands_a_waker() {
    let exec = Executor::new(2);
    let (_state, ep) = start_server(&exec);
    for round in 0..60u64 {
        exec.block_on({
            let ep = ep.clone();
            async move {
                let conn = AsyncStream::connect(&ep).await.unwrap();
                conn.write_all(&encode_request(&Request::Ping, round))
                    .await
                    .unwrap();
                let (id, resp) = read_response(&conn).await.expect("pong");
                assert_eq!(id, round);
                assert_eq!(resp, Response::Pong);
            }
        });
    }
}

// ---- codec round-trips over the whole variant space ----

fn build_request(which: u8, a: u64, b: u64) -> Request {
    match which {
        0 => Request::Hello {
            min_version: a as u8,
            max_version: b as u8,
        },
        1 => Request::GetVersion {
            partition: a as u32,
        },
        2 => Request::GetChangelog { endpoint: a },
        3 => Request::GetDelta {
            endpoint: a,
            version: b,
        },
        4 => Request::GetSnapshot { endpoint: a },
        _ => Request::Ping,
    }
}

fn build_response(which: u8, v: u64, bytes: Vec<u8>) -> Response {
    match which {
        0 => Response::HelloOk { version: v as u8 },
        1 => Response::VersionIs {
            version: (v % 2 == 0).then_some(v),
        },
        2 => Response::Record {
            for_op: [op::GET_CHANGELOG, op::GET_DELTA, op::GET_SNAPSHOT][(v % 3) as usize],
            value: (v % 3 != 0).then_some(bytes),
        },
        3 => Response::Pong,
        _ => Response::Error {
            code: ErrorCode::from_u16(1 + (v % 5) as u16).unwrap(),
            detail: String::from_utf8_lossy(&bytes).into_owned(),
        },
    }
}

proptest! {
    /// Every request variant survives encode → frame → decode.
    #[test]
    fn request_frames_roundtrip(
        which in 0u8..6,
        a in any::<u64>(),
        b in any::<u64>(),
        id in any::<u64>(),
    ) {
        let req = build_request(which, a, b);
        let f = encode_request(&req, id);
        let mut hdr = [0u8; HEADER_LEN];
        hdr.copy_from_slice(&f[..HEADER_LEN]);
        let h = decode_header(&hdr, DEFAULT_MAX_BODY).expect("header decodes");
        prop_assert_eq!(h.request_id, id);
        prop_assert_eq!(h.body_len as usize, f.len() - HEADER_LEN);
        prop_assert_eq!(crc32_fnv(&f[HEADER_LEN..]), h.body_crc);
        prop_assert_eq!(Request::decode(h.op, &f[HEADER_LEN..]), Some(req));
    }

    /// Every response variant survives encode → frame → decode.
    #[test]
    fn response_frames_roundtrip(
        which in 0u8..5,
        v in any::<u64>(),
        bytes in proptest::collection::vec(any::<u8>(), 0..64),
        id in any::<u64>(),
    ) {
        let resp = build_response(which, v, bytes);
        let f = encode_response(&resp, id, false);
        let mut hdr = [0u8; HEADER_LEN];
        hdr.copy_from_slice(&f[..HEADER_LEN]);
        let h = decode_header(&hdr, DEFAULT_MAX_BODY).expect("header decodes");
        prop_assert_eq!(h.request_id, id);
        prop_assert_eq!(crc32_fnv(&f[HEADER_LEN..]), h.body_crc);
        prop_assert_eq!(Response::decode(h.op, &f[HEADER_LEN..]), Some(resp));
    }

    /// Arbitrary header bytes must never panic the decoder.
    #[test]
    fn header_decode_never_panics(bytes in any::<[u8; HEADER_LEN]>()) {
        let _ = decode_header(&bytes, DEFAULT_MAX_BODY);
    }
}

// ---- layout fingerprint pinning PROTOCOL.md ----

/// Canonical encodings of every op with fixed field values. Any change
/// to the header layout, opcode numbering, endianness, checksum or
/// body layout changes this fingerprint — and PROTOCOL.md (which
/// documents those bytes) must be re-verified and updated to match.
fn codec_fingerprint() -> u64 {
    let requests = [
        Request::Hello {
            min_version: 1,
            max_version: 1,
        },
        Request::GetVersion { partition: 2 },
        Request::GetChangelog { endpoint: 3 },
        Request::GetDelta {
            endpoint: 4,
            version: 5,
        },
        Request::GetSnapshot { endpoint: 6 },
        Request::Ping,
    ];
    let responses = [
        Response::HelloOk { version: 1 },
        Response::VersionIs { version: Some(7) },
        Response::VersionIs { version: None },
        Response::Record {
            for_op: op::GET_CHANGELOG,
            value: Some(vec![0xAB, 0xCD]),
        },
        Response::Record {
            for_op: op::GET_DELTA,
            value: None,
        },
        Response::Record {
            for_op: op::GET_SNAPSHOT,
            value: Some(vec![]),
        },
        Response::Pong,
        Response::Error {
            code: ErrorCode::Unreachable,
            detail: "x".into(),
        },
    ];
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: Vec<u8>| {
        for b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for (i, r) in requests.iter().enumerate() {
        eat(encode_request(r, 0x1000 + i as u64));
    }
    for (i, r) in responses.iter().enumerate() {
        eat(encode_response(r, 0x2000 + i as u64, false));
    }
    h
}

#[test]
fn protocol_md_pins_the_codec_fingerprint() {
    let fp = format!("{:#018x}", codec_fingerprint());
    let doc = include_str!("../../../PROTOCOL.md");
    assert!(
        doc.contains(&fp),
        "PROTOCOL.md is out of date: the codec fingerprint is now {fp}. \
         Re-verify the documented byte layouts against crates/net/src/frame.rs \
         and update the fingerprint line."
    );
}
