//! Shortest-path machinery used to pre-establish TE tunnels.
//!
//! MegaTE (like SWAN/B4) assumes a set of pre-established tunnels `T_k`
//! per site pair (Table 1). We build them with k-shortest-path searches
//! over link latency. Two algorithms are provided:
//!
//! * [`yen_k_shortest`] — Yen's exact loopless k-shortest-paths, used for
//!   small topologies and as the test oracle;
//! * [`k_shortest_paths`] — fast penalization-based KSP: repeatedly run
//!   Dijkstra, multiply the weights of used links, and deduplicate. This
//!   is how production tunnel layout tools seed diverse tunnels, and is
//!   the default for the large Table-2 topologies.

use crate::graph::{Graph, LinkId, SiteId};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A loop-free path through the site graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Path {
    /// Links in traversal order.
    pub links: Vec<LinkId>,
    /// Sites in traversal order; `sites.len() == links.len() + 1`.
    pub sites: Vec<SiteId>,
    /// Total latency in milliseconds (sum of link latencies).
    pub latency_ms: f64,
}

impl Path {
    /// Number of hops (links) on the path.
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }

    /// Minimum capacity over the path's links: the path's bottleneck.
    pub fn bottleneck_mbps(&self, graph: &Graph) -> f64 {
        self.links
            .iter()
            .map(|&l| graph.link(l).capacity_mbps)
            .fold(f64::INFINITY, f64::min)
    }

    /// True if the path visits no site twice.
    pub fn is_simple(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        self.sites.iter().all(|s| seen.insert(*s))
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist: f64,
    site: SiteId,
}

impl Eq for HeapEntry {}

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap on distance; ties broken on site id for determinism.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.site.0.cmp(&self.site.0))
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Dijkstra's shortest path from `src` to `dst` under per-link weights.
///
/// `weight(l)` must be non-negative; links with non-finite weight are
/// treated as removed. Returns `None` when `dst` is unreachable.
pub fn dijkstra_with<F>(graph: &Graph, src: SiteId, dst: SiteId, weight: F) -> Option<Path>
where
    F: Fn(LinkId) -> f64,
{
    let n = graph.site_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut prev: Vec<Option<LinkId>> = vec![None; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        site: src,
    });

    while let Some(HeapEntry { dist: d, site }) = heap.pop() {
        if d > dist[site.index()] {
            continue;
        }
        if site == dst {
            break;
        }
        for &lid in graph.out_links(site) {
            let w = weight(lid);
            if !w.is_finite() {
                continue;
            }
            debug_assert!(w >= 0.0, "negative link weight");
            let next = graph.link(lid).dst;
            let nd = d + w;
            if nd < dist[next.index()] {
                dist[next.index()] = nd;
                prev[next.index()] = Some(lid);
                heap.push(HeapEntry {
                    dist: nd,
                    site: next,
                });
            }
        }
    }

    if !dist[dst.index()].is_finite() {
        return None;
    }
    // Reconstruct.
    let mut links = Vec::new();
    let mut cur = dst;
    while cur != src {
        let lid = prev[cur.index()].expect("reachable node has predecessor");
        links.push(lid);
        cur = graph.link(lid).src;
    }
    links.reverse();
    let mut sites = Vec::with_capacity(links.len() + 1);
    sites.push(src);
    for &l in &links {
        sites.push(graph.link(l).dst);
    }
    let latency_ms = links.iter().map(|&l| graph.link(l).latency_ms).sum();
    Some(Path {
        links,
        sites,
        latency_ms,
    })
}

/// Dijkstra's shortest path by link latency.
pub fn dijkstra(graph: &Graph, src: SiteId, dst: SiteId) -> Option<Path> {
    dijkstra_with(graph, src, dst, |l| graph.link(l).latency_ms)
}

/// Single-source distances to every site under per-link weights.
/// Unreachable sites get `f64::INFINITY`.
pub fn dijkstra_distances<F>(graph: &Graph, src: SiteId, weight: F) -> Vec<f64>
where
    F: Fn(LinkId) -> f64,
{
    let n = graph.site_count();
    let mut dist = vec![f64::INFINITY; n];
    let mut heap = BinaryHeap::new();
    dist[src.index()] = 0.0;
    heap.push(HeapEntry {
        dist: 0.0,
        site: src,
    });
    while let Some(HeapEntry { dist: d, site }) = heap.pop() {
        if d > dist[site.index()] {
            continue;
        }
        for &lid in graph.out_links(site) {
            let w = weight(lid);
            if !w.is_finite() {
                continue;
            }
            let next = graph.link(lid).dst;
            let nd = d + w;
            if nd < dist[next.index()] {
                dist[next.index()] = nd;
                heap.push(HeapEntry {
                    dist: nd,
                    site: next,
                });
            }
        }
    }
    dist
}

/// Fast k-shortest-path heuristic: penalize links of already-found paths
/// and re-run Dijkstra, collecting up to `k` distinct simple paths.
///
/// Penalizing (factor 4 per use) pushes successive searches onto diverse
/// links, giving the tunnel diversity TE needs. Paths are returned sorted
/// by true latency ascending (so `w_t` ordering per the paper holds).
pub fn k_shortest_paths(graph: &Graph, src: SiteId, dst: SiteId, k: usize) -> Vec<Path> {
    const PENALTY: f64 = 4.0;
    let mut penalties = vec![1.0f64; graph.link_count()];
    let mut found: Vec<Path> = Vec::new();
    // A few extra attempts tolerate duplicate rediscoveries.
    let attempts = k * 3 + 2;
    for _ in 0..attempts {
        if found.len() >= k {
            break;
        }
        let path = match dijkstra_with(graph, src, dst, |l| {
            graph.link(l).latency_ms.max(1e-6) * penalties[l.index()]
        }) {
            Some(p) => p,
            None => break,
        };
        for &l in &path.links {
            penalties[l.index()] *= PENALTY;
        }
        if !found.iter().any(|p| p.links == path.links) {
            found.push(path);
        }
    }
    found.sort_by(|a, b| {
        a.latency_ms
            .partial_cmp(&b.latency_ms)
            .unwrap_or(Ordering::Equal)
            .then_with(|| a.links.len().cmp(&b.links.len()))
    });
    found
}

/// Yen's exact loopless k-shortest-paths by latency.
///
/// Exponential neither in `k` nor in graph size, but each spur requires a
/// Dijkstra run, so keep this to small topologies and tests.
pub fn yen_k_shortest(graph: &Graph, src: SiteId, dst: SiteId, k: usize) -> Vec<Path> {
    let mut result: Vec<Path> = Vec::new();
    let first = match dijkstra(graph, src, dst) {
        Some(p) => p,
        None => return result,
    };
    result.push(first);
    let mut candidates: Vec<Path> = Vec::new();

    while result.len() < k {
        let last = result.last().expect("result non-empty").clone();
        for i in 0..last.links.len() {
            let spur_node = last.sites[i];
            let root_links = &last.links[..i];

            // Links removed for this spur: any link that would repeat a
            // previous path sharing the same root, plus links into root
            // nodes (loop avoidance).
            let mut banned_links: Vec<LinkId> = Vec::new();
            for p in result.iter().chain(candidates.iter()) {
                if p.links.len() > i && p.links[..i] == *root_links {
                    banned_links.push(p.links[i]);
                }
            }
            let banned_sites: std::collections::HashSet<SiteId> =
                last.sites[..i].iter().copied().collect();

            let spur = dijkstra_with(graph, spur_node, dst, |l| {
                let link = graph.link(l);
                if banned_links.contains(&l)
                    || banned_sites.contains(&link.dst)
                    || banned_sites.contains(&link.src)
                {
                    f64::INFINITY
                } else {
                    link.latency_ms
                }
            });
            if let Some(spur_path) = spur {
                let mut links = root_links.to_vec();
                links.extend_from_slice(&spur_path.links);
                let mut sites = last.sites[..=i].to_vec();
                sites.extend_from_slice(&spur_path.sites[1..]);
                let latency_ms = links.iter().map(|&l| graph.link(l).latency_ms).sum();
                let cand = Path {
                    links,
                    sites,
                    latency_ms,
                };
                if cand.is_simple()
                    && !candidates.iter().any(|p| p.links == cand.links)
                    && !result.iter().any(|p| p.links == cand.links)
                {
                    candidates.push(cand);
                }
            }
        }
        if candidates.is_empty() {
            break;
        }
        candidates.sort_by(|a, b| {
            a.latency_ms
                .partial_cmp(&b.latency_ms)
                .unwrap_or(Ordering::Equal)
        });
        result.push(candidates.remove(0));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// Diamond: a -> b -> d (fast) and a -> c -> d (slow), plus a direct
    /// a -> d link that is slowest.
    fn diamond() -> (Graph, SiteId, SiteId) {
        let mut g = Graph::new();
        let a = g.add_site("a", (0.0, 0.0));
        let b = g.add_site("b", (1.0, 1.0));
        let c = g.add_site("c", (1.0, -1.0));
        let d = g.add_site("d", (2.0, 0.0));
        g.add_bidi_link(a, b, 100.0, 1.0);
        g.add_bidi_link(b, d, 100.0, 1.0);
        g.add_bidi_link(a, c, 100.0, 2.0);
        g.add_bidi_link(c, d, 100.0, 2.0);
        g.add_bidi_link(a, d, 100.0, 10.0);
        (g, a, d)
    }

    #[test]
    fn dijkstra_finds_lowest_latency_route() {
        let (g, a, d) = diamond();
        let p = dijkstra(&g, a, d).expect("connected");
        assert_eq!(p.latency_ms, 2.0);
        assert_eq!(p.hop_count(), 2);
        assert_eq!(p.sites.first(), Some(&a));
        assert_eq!(p.sites.last(), Some(&d));
    }

    #[test]
    fn dijkstra_unreachable_returns_none() {
        let mut g = Graph::new();
        let a = g.add_site("a", (0.0, 0.0));
        let b = g.add_site("b", (1.0, 0.0));
        let c = g.add_site("c", (2.0, 0.0));
        g.add_link(a, b, 10.0, 1.0);
        assert!(dijkstra(&g, a, c).is_none());
    }

    #[test]
    fn ksp_returns_distinct_sorted_paths() {
        let (g, a, d) = diamond();
        let ps = k_shortest_paths(&g, a, d, 3);
        assert_eq!(ps.len(), 3);
        assert!(ps[0].latency_ms <= ps[1].latency_ms);
        assert!(ps[1].latency_ms <= ps[2].latency_ms);
        for i in 0..ps.len() {
            for j in i + 1..ps.len() {
                assert_ne!(ps[i].links, ps[j].links);
            }
        }
    }

    #[test]
    fn yen_matches_known_order_on_diamond() {
        let (g, a, d) = diamond();
        let ps = yen_k_shortest(&g, a, d, 3);
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].latency_ms, 2.0);
        assert_eq!(ps[1].latency_ms, 4.0);
        assert_eq!(ps[2].latency_ms, 10.0);
        assert!(ps.iter().all(|p| p.is_simple()));
    }

    #[test]
    fn yen_and_penalized_agree_on_shortest() {
        let (g, a, d) = diamond();
        let yen = yen_k_shortest(&g, a, d, 1);
        let fast = k_shortest_paths(&g, a, d, 1);
        assert_eq!(yen[0].links, fast[0].links);
    }

    #[test]
    fn bottleneck_is_min_capacity() {
        let mut g = Graph::new();
        let a = g.add_site("a", (0.0, 0.0));
        let b = g.add_site("b", (1.0, 0.0));
        let c = g.add_site("c", (2.0, 0.0));
        g.add_link(a, b, 100.0, 1.0);
        g.add_link(b, c, 40.0, 1.0);
        let p = dijkstra(&g, a, c).unwrap();
        assert_eq!(p.bottleneck_mbps(&g), 40.0);
    }

    #[test]
    fn ksp_on_disconnected_graph_is_empty() {
        let mut g = Graph::new();
        let a = g.add_site("a", (0.0, 0.0));
        let _b = g.add_site("b", (1.0, 0.0));
        assert!(k_shortest_paths(&g, a, SiteId(1), 4).is_empty());
    }

    #[test]
    fn path_simplicity_detects_repeats() {
        let p = Path {
            links: vec![LinkId(0), LinkId(1)],
            sites: vec![SiteId(0), SiteId(1), SiteId(0)],
            latency_ms: 2.0,
        };
        assert!(!p.is_simple());
    }
}
