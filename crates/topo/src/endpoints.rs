//! Second-layer endpoint attachment.
//!
//! The paper observes (Figure 8) that the number of endpoints a router
//! site connects varies over orders of magnitude and fits a **Weibull
//! distribution**. We reproduce that generatively: per-site endpoint
//! counts are drawn from `Weibull(shape, scale)` via inverse-CDF
//! sampling, then scaled so the catalog hits a requested total.

use crate::graph::{Graph, SiteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a virtual instance endpoint (container / VM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EndpointId(pub u64);

impl EndpointId {
    /// Index into dense per-endpoint vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EndpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ep{}", self.0)
    }
}

/// Weibull sampler for per-site endpoint counts (Figure 8 fit).
///
/// Inverse-CDF sampling: `X = scale * (-ln U)^(1/shape)`.
#[derive(Debug, Clone, Copy)]
pub struct WeibullEndpoints {
    /// Weibull shape `k`. The paper's heavy spread across orders of
    /// magnitude corresponds to a shape < 1; we default to 0.8.
    pub shape: f64,
    /// Weibull scale `λ` (mean endpoint count is `λ·Γ(1+1/k)`).
    pub scale: f64,
}

impl WeibullEndpoints {
    /// A sampler with the default paper-like shape and the given scale.
    pub fn with_scale(scale: f64) -> Self {
        Self { shape: 0.8, scale }
    }

    /// Draws one Weibull sample.
    pub fn sample(&self, rng: &mut impl Rng) -> f64 {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        self.scale * (-u.ln()).powf(1.0 / self.shape)
    }

    /// Draws a per-site count (at least 1 endpoint per site).
    pub fn sample_count(&self, rng: &mut impl Rng) -> usize {
        (self.sample(rng).round() as usize).max(1)
    }
}

/// The second-layer catalog: which site each endpoint hangs off.
#[derive(Debug, Clone, Default)]
pub struct EndpointCatalog {
    site_of: Vec<SiteId>,
    per_site: Vec<Vec<EndpointId>>,
}

impl EndpointCatalog {
    /// Builds a catalog with per-site counts drawn from `dist`, scaled so
    /// the total is exactly `total`. Deterministic for a given seed.
    pub fn generate(graph: &Graph, total: usize, dist: WeibullEndpoints, seed: u64) -> Self {
        assert!(total >= graph.site_count(), "need >= 1 endpoint per site");
        let mut rng = StdRng::seed_from_u64(seed);
        let raw: Vec<f64> = (0..graph.site_count())
            .map(|_| dist.sample(&mut rng).max(0.5))
            .collect();
        let sum: f64 = raw.iter().sum();
        // Largest-remainder scaling to hit `total` exactly with >=1 each.
        let mut counts: Vec<usize> = raw
            .iter()
            .map(|&r| ((r / sum) * total as f64).floor().max(1.0) as usize)
            .collect();
        let n_sites = counts.len();
        let mut assigned: usize = counts.iter().sum();
        let mut i = 0;
        while assigned < total {
            counts[i % n_sites] += 1;
            assigned += 1;
            i += 1;
        }
        while assigned > total {
            let j = i % n_sites;
            if counts[j] > 1 {
                counts[j] -= 1;
                assigned -= 1;
            }
            i += 1;
        }
        Self::from_counts(graph, &counts)
    }

    /// Builds a catalog from explicit per-site counts.
    pub fn from_counts(graph: &Graph, counts: &[usize]) -> Self {
        assert_eq!(counts.len(), graph.site_count());
        let total: usize = counts.iter().sum();
        let mut site_of = Vec::with_capacity(total);
        let mut per_site = vec![Vec::new(); graph.site_count()];
        for (s, &c) in counts.iter().enumerate() {
            for _ in 0..c {
                let id = EndpointId(site_of.len() as u64);
                site_of.push(SiteId(s as u32));
                per_site[s].push(id);
            }
        }
        Self { site_of, per_site }
    }

    /// Total endpoint count.
    #[inline]
    pub fn len(&self) -> usize {
        self.site_of.len()
    }

    /// True when the catalog has no endpoints.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.site_of.is_empty()
    }

    /// The site an endpoint attaches to.
    #[inline]
    pub fn site_of(&self, ep: EndpointId) -> SiteId {
        self.site_of[ep.index()]
    }

    /// Endpoints attached to a site.
    pub fn endpoints_at(&self, site: SiteId) -> &[EndpointId] {
        &self.per_site[site.index()]
    }

    /// Per-site endpoint counts (for CDF plots — Figure 8).
    pub fn counts_per_site(&self) -> Vec<usize> {
        self.per_site.iter().map(Vec::len).collect()
    }

    /// All endpoint ids.
    pub fn ids(&self) -> impl Iterator<Item = EndpointId> + '_ {
        (0..self.site_of.len() as u64).map(EndpointId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies::b4;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn weibull_inverse_cdf_matches_mean() {
        // Mean of Weibull(k=1, λ) is λ (it degenerates to Exp(1/λ)).
        let d = WeibullEndpoints {
            shape: 1.0,
            scale: 100.0,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 2.0, "mean {mean}");
    }

    #[test]
    fn weibull_low_shape_spreads_orders_of_magnitude() {
        // Figure 8's observation: counts span orders of magnitude.
        let d = WeibullEndpoints::with_scale(1000.0);
        let mut rng = StdRng::seed_from_u64(3);
        let samples: Vec<f64> = (0..10_000).map(|_| d.sample(&mut rng)).collect();
        let max = samples.iter().cloned().fold(0.0, f64::max);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min.max(1e-9) > 1000.0, "spread {}", max / min);
    }

    #[test]
    fn generate_hits_exact_total() {
        let g = b4();
        for total in [12, 120, 1200, 120_000] {
            let cat = EndpointCatalog::generate(&g, total, WeibullEndpoints::with_scale(100.0), 42);
            assert_eq!(cat.len(), total);
            assert!(cat.counts_per_site().iter().all(|&c| c >= 1));
        }
    }

    #[test]
    fn generate_is_deterministic() {
        let g = b4();
        let a = EndpointCatalog::generate(&g, 5000, WeibullEndpoints::with_scale(50.0), 9);
        let b = EndpointCatalog::generate(&g, 5000, WeibullEndpoints::with_scale(50.0), 9);
        assert_eq!(a.counts_per_site(), b.counts_per_site());
    }

    #[test]
    fn site_of_and_endpoints_at_are_inverse() {
        let g = b4();
        let cat = EndpointCatalog::generate(&g, 600, WeibullEndpoints::with_scale(10.0), 1);
        for s in g.site_ids() {
            for &ep in cat.endpoints_at(s) {
                assert_eq!(cat.site_of(ep), s);
            }
        }
        let total: usize = cat.counts_per_site().iter().sum();
        assert_eq!(total, cat.len());
    }

    #[test]
    fn from_counts_builds_dense_ids() {
        let g = b4();
        let counts = vec![2; 12];
        let cat = EndpointCatalog::from_counts(&g, &counts);
        assert_eq!(cat.len(), 24);
        assert_eq!(cat.site_of(EndpointId(0)), SiteId(0));
        assert_eq!(cat.site_of(EndpointId(23)), SiteId(11));
    }
}
