//! Canonical synthetic topologies with closed-form properties.
//!
//! Rings, lines, stars and grids have analytically known shortest
//! paths, diameters and cut structures — the test suite uses them as
//! oracles for the path algorithms, tunnel layout and failure logic,
//! and examples use them for minimal reproducible setups.

use crate::graph::Graph;

/// A ring of `n` sites (each connected to its two neighbours).
pub fn ring(n: usize, capacity_mbps: f64, latency_ms: f64) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 sites");
    let mut g = Graph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| {
            let theta = 2.0 * std::f64::consts::PI * i as f64 / n as f64;
            g.add_site(format!("r{i}"), (theta.cos(), theta.sin()))
        })
        .collect();
    for i in 0..n {
        g.add_bidi_link(ids[i], ids[(i + 1) % n], capacity_mbps, latency_ms);
    }
    g
}

/// A line (path graph) of `n` sites.
pub fn line(n: usize, capacity_mbps: f64, latency_ms: f64) -> Graph {
    assert!(n >= 2, "a line needs at least 2 sites");
    let mut g = Graph::new();
    let ids: Vec<_> = (0..n)
        .map(|i| g.add_site(format!("l{i}"), (i as f64, 0.0)))
        .collect();
    for i in 0..n - 1 {
        g.add_bidi_link(ids[i], ids[i + 1], capacity_mbps, latency_ms);
    }
    g
}

/// A star: site 0 is the hub, sites 1..n are leaves.
pub fn star(leaves: usize, capacity_mbps: f64, latency_ms: f64) -> Graph {
    assert!(leaves >= 1, "a star needs at least one leaf");
    let mut g = Graph::new();
    let hub = g.add_site("hub", (0.0, 0.0));
    for i in 0..leaves {
        let theta = 2.0 * std::f64::consts::PI * i as f64 / leaves as f64;
        let leaf = g.add_site(format!("leaf{i}"), (theta.cos(), theta.sin()));
        g.add_bidi_link(hub, leaf, capacity_mbps, latency_ms);
    }
    g
}

/// A `w × h` grid (4-neighbour mesh).
pub fn grid(w: usize, h: usize, capacity_mbps: f64, latency_ms: f64) -> Graph {
    assert!(w >= 1 && h >= 1 && w * h >= 2, "grid too small");
    let mut g = Graph::new();
    let ids: Vec<Vec<_>> = (0..h)
        .map(|y| {
            (0..w)
                .map(|x| g.add_site(format!("g{x}_{y}"), (x as f64, y as f64)))
                .collect()
        })
        .collect();
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                g.add_bidi_link(ids[y][x], ids[y][x + 1], capacity_mbps, latency_ms);
            }
            if y + 1 < h {
                g.add_bidi_link(ids[y][x], ids[y + 1][x], capacity_mbps, latency_ms);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SiteId;
    use crate::paths::{dijkstra, yen_k_shortest};
    use crate::stats::topology_stats;

    #[test]
    fn ring_shortest_path_is_min_arc() {
        let g = ring(8, 100.0, 1.0);
        // 0 -> 3: 3 hops clockwise vs 5 counter-clockwise.
        let p = dijkstra(&g, SiteId(0), SiteId(3)).unwrap();
        assert_eq!(p.hop_count(), 3);
        // 0 -> 5: 3 hops the other way.
        let p = dijkstra(&g, SiteId(0), SiteId(5)).unwrap();
        assert_eq!(p.hop_count(), 3);
        // Diameter = floor(n/2).
        assert_eq!(topology_stats(&g).diameter_hops, 4);
    }

    #[test]
    fn ring_has_exactly_two_disjoint_paths() {
        let g = ring(6, 100.0, 1.0);
        let paths = yen_k_shortest(&g, SiteId(0), SiteId(2), 3);
        // Clockwise (2 hops) and counter-clockwise (4 hops); no third
        // simple path exists on a ring.
        assert_eq!(paths.len(), 2);
        assert_eq!(paths[0].hop_count(), 2);
        assert_eq!(paths[1].hop_count(), 4);
        let shared = paths[0].links.iter().any(|l| paths[1].links.contains(l));
        assert!(!shared, "the two ring arcs are link-disjoint");
    }

    #[test]
    fn line_diameter_is_length() {
        let g = line(10, 100.0, 2.0);
        let s = topology_stats(&g);
        assert_eq!(s.diameter_hops, 9);
        assert!((s.diameter_ms - 18.0).abs() < 1e-12);
        // Exactly one simple path end to end.
        let paths = yen_k_shortest(&g, SiteId(0), SiteId(9), 3);
        assert_eq!(paths.len(), 1);
    }

    #[test]
    fn star_routes_everything_through_the_hub() {
        let g = star(5, 100.0, 1.0);
        let p = dijkstra(&g, SiteId(1), SiteId(3)).unwrap();
        assert_eq!(p.hop_count(), 2);
        assert!(p.sites.contains(&SiteId(0)), "hub on every leaf-leaf path");
        assert_eq!(topology_stats(&g).diameter_hops, 2);
    }

    #[test]
    fn grid_shortest_path_is_manhattan() {
        let g = grid(4, 3, 100.0, 1.0);
        // (0,0) is id 0; (3,2) is the last id. Manhattan distance 3+2.
        let last = SiteId((4 * 3 - 1) as u32);
        let p = dijkstra(&g, SiteId(0), last).unwrap();
        assert_eq!(p.hop_count(), 5);
        assert_eq!(topology_stats(&g).diameter_hops, 5);
    }

    #[test]
    fn all_generators_strongly_connected() {
        assert!(ring(5, 1.0, 1.0).is_strongly_connected());
        assert!(line(5, 1.0, 1.0).is_strongly_connected());
        assert!(star(5, 1.0, 1.0).is_strongly_connected());
        assert!(grid(3, 3, 1.0, 1.0).is_strongly_connected());
    }

    #[test]
    fn cutting_a_line_disconnects_it() {
        let g = line(4, 100.0, 1.0);
        let failed: Vec<_> = vec![
            g.find_link(SiteId(1), SiteId(2)).unwrap(),
            g.find_link(SiteId(2), SiteId(1)).unwrap(),
        ];
        // No alternate path exists on a line: the scenario sampler must
        // refuse to produce a connectivity-preserving cut of this fiber.
        let degraded = g.with_failed_links(&failed);
        let p = crate::paths::dijkstra_with(&degraded, SiteId(0), SiteId(3), |l| {
            if failed.contains(&l) {
                f64::INFINITY
            } else {
                degraded.link(l).latency_ms
            }
        });
        assert!(p.is_none());
    }
}
