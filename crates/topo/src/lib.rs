//! Network topology substrate for MegaTE.
//!
//! This crate models the two-layer topology the paper's contraction relies
//! on (§4.2, Figure 5):
//!
//! * a **first layer**: a highly meshed graph of WAN *router sites*
//!   connected by capacitated, latency-weighted links, and
//! * a **second layer**: each site forming a hub for many *virtual
//!   instance endpoints*, each endpoint attached to exactly one site.
//!
//! It provides:
//!
//! * [`graph`] — the site-level graph with links, capacities and latencies;
//! * [`paths`] — shortest-path and k-shortest-path tunnel construction;
//! * [`tunnels`] — pre-established TE tunnels per site pair with the
//!   `L(t, e)` link-membership relation and tunnel weights `w_t`
//!   (Table 1 of the paper);
//! * [`topologies`] — the four evaluation topologies of Table 2:
//!   `B4*`, `Deltacom*`, `Cogentco*`, and a synthetic `TWAN`;
//! * [`endpoints`] — Weibull-distributed endpoint attachment reproducing
//!   Figure 8;
//! * [`failures`] — link-failure scenarios used by §6.3;
//! * [`partition`] — Concord-style balanced edge-cut slicing of the site
//!   graph into contiguous controller partitions with seeded tie-breaks.

pub mod endpoints;
pub mod export;
pub mod failures;
pub mod generators;
pub mod graph;
pub mod partition;
pub mod paths;
pub mod stats;
pub mod topologies;
pub mod tunnels;

pub use endpoints::{EndpointCatalog, EndpointId, WeibullEndpoints};
pub use export::{to_dot, DotOptions};
pub use failures::FailureScenario;
pub use generators::{grid, line, ring, star};
pub use graph::{Graph, Link, LinkId, Site, SiteId};
pub use partition::{PartitionId, Partitioning};
pub use paths::{dijkstra, k_shortest_paths, yen_k_shortest, Path};
pub use stats::{degree_histogram, topology_stats, TopologyStats};
pub use topologies::{b4, cogentco, deltacom, twan, TopologySpec};
pub use tunnels::{SitePair, Tunnel, TunnelId, TunnelTable};
