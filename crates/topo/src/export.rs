//! Graph export for debugging and visualization.
//!
//! [`to_dot`] renders the site graph in Graphviz DOT: sites are nodes
//! positioned at their coordinates, links are edges labelled with
//! capacity and latency. `dot -Kneato -n -Tsvg` draws the WAN roughly
//! to geographic scale.

use crate::graph::{Graph, LinkId};
use std::fmt::Write as _;

/// Options for DOT rendering.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Highlight these links (e.g. a failure scenario) in red.
    pub highlight_links: Vec<LinkId>,
    /// Skip the reverse direction of bidirectional pairs (halves the
    /// edge clutter; capacities/latencies are symmetric in the built-in
    /// topologies).
    pub collapse_bidi: bool,
}

/// Renders the graph as Graphviz DOT.
pub fn to_dot(graph: &Graph, name: &str, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "graph \"{name}\" {{");
    let _ = writeln!(out, "  node [shape=circle fontsize=10];");
    for s in graph.site_ids() {
        let site = graph.site(s);
        let _ = writeln!(
            out,
            "  {} [label=\"{}\" pos=\"{:.1},{:.1}!\"];",
            s.0,
            site.name,
            site.pos.0 * 100.0,
            site.pos.1 * 100.0
        );
    }
    for l in graph.link_ids() {
        let link = graph.link(l);
        if opts.collapse_bidi {
            // Emit only the direction with src < dst when a reverse
            // twin exists.
            if link.src > link.dst && graph.find_link(link.dst, link.src).is_some() {
                continue;
            }
        }
        let color = if opts.highlight_links.contains(&l) {
            " color=red penwidth=2"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {} -- {} [label=\"{:.0}G/{:.1}ms\"{}];",
            link.src.0,
            link.dst.0,
            link.capacity_mbps / 1000.0,
            link.latency_ms,
            color
        );
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies::b4;

    #[test]
    fn dot_contains_every_site_and_collapsed_edges() {
        let g = b4();
        let dot = to_dot(
            &g,
            "b4",
            &DotOptions {
                collapse_bidi: true,
                ..Default::default()
            },
        );
        for s in g.site_ids() {
            assert!(dot.contains(&format!("label=\"{}\"", g.site(s).name)));
        }
        // 19 collapsed edges, not 38.
        assert_eq!(dot.matches(" -- ").count(), 19);
        assert!(dot.starts_with("graph \"b4\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn highlighting_marks_failed_links() {
        let g = b4();
        let dot = to_dot(
            &g,
            "b4",
            &DotOptions {
                highlight_links: vec![LinkId(0)],
                collapse_bidi: false,
            },
        );
        assert_eq!(dot.matches("color=red").count(), 1);
        assert_eq!(dot.matches(" -- ").count(), g.link_count());
    }
}
