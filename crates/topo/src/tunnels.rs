//! Pre-established TE tunnels per site pair.
//!
//! Table 1 of the paper: for each site pair `k ∈ K` there is a set of
//! tunnels `T_k`, each tunnel `t` has a weight `w_t` (higher = more
//! latency) and a link-membership indicator `L(t, e)`. [`TunnelTable`]
//! owns all of this, assigns dense global tunnel ids, and is shared by
//! every solver and by the data plane.

use crate::graph::{Graph, LinkId, SiteId};
use crate::paths::{k_shortest_paths, Path};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// An ordered site pair `k` (direction matters: traffic src → dst).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SitePair {
    /// Source site.
    pub src: SiteId,
    /// Destination site.
    pub dst: SiteId,
}

impl SitePair {
    /// Convenience constructor.
    pub fn new(src: SiteId, dst: SiteId) -> Self {
        Self { src, dst }
    }
}

impl fmt::Display for SitePair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

/// Dense global tunnel identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TunnelId(pub u32);

impl TunnelId {
    /// Index into dense per-tunnel vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A pre-established TE tunnel `t ∈ T_k`.
#[derive(Debug, Clone)]
pub struct Tunnel {
    /// Global id.
    pub id: TunnelId,
    /// The site pair this tunnel serves.
    pub pair: SitePair,
    /// Links in traversal order — defines `L(t, e)`.
    pub links: Vec<LinkId>,
    /// Sites in traversal order (`links.len() + 1` entries). This is what
    /// gets written into the SR header's `hop[]` array on the data plane.
    pub sites: Vec<SiteId>,
    /// Tunnel weight `w_t`: the path latency in milliseconds. Higher
    /// means worse (paper: "higher value means larger network latency").
    pub weight: f64,
}

impl Tunnel {
    /// `L(t, e)`: 1 if tunnel `t` uses link `e`, else 0.
    #[inline]
    pub fn uses_link(&self, e: LinkId) -> bool {
        self.links.contains(&e)
    }

    /// Number of hops.
    #[inline]
    pub fn hop_count(&self) -> usize {
        self.links.len()
    }
}

/// All pre-established tunnels, indexed both globally and per site pair.
///
/// ```
/// use megate_topo::{b4, SitePair, SiteId, TunnelTable};
///
/// let graph = b4();
/// let tunnels = TunnelTable::for_all_pairs(&graph, 3);
/// let pair = SitePair::new(SiteId(0), SiteId(7));
/// let ids = tunnels.tunnels_for(pair);
/// assert!(!ids.is_empty());
/// // Ascending w_t: the first tunnel is the latency-shortest.
/// assert!(tunnels.tunnel(ids[0]).weight <= tunnels.tunnel(*ids.last().unwrap()).weight);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TunnelTable {
    tunnels: Vec<Tunnel>,
    by_pair: HashMap<SitePair, Vec<TunnelId>>,
    pairs: Vec<SitePair>,
}

impl TunnelTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a table with up to `k` latency-sorted tunnels for every
    /// ordered pair of distinct sites in the graph.
    ///
    /// This is the offline "tunnel layout" step that conventional TE
    /// systems (SWAN, B4) run, and which MegaTE inherits unchanged.
    pub fn for_all_pairs(graph: &Graph, k: usize) -> Self {
        let mut table = Self::new();
        for src in graph.site_ids() {
            for dst in graph.site_ids() {
                if src == dst {
                    continue;
                }
                table.install_pair(graph, SitePair::new(src, dst), k);
            }
        }
        table
    }

    /// Builds a table restricted to the given pairs (demand-bearing pairs
    /// only) — this is what large-scale runs use.
    pub fn for_pairs(graph: &Graph, pairs: &[SitePair], k: usize) -> Self {
        let mut table = Self::new();
        for &p in pairs {
            table.install_pair(graph, p, k);
        }
        table
    }

    fn install_pair(&mut self, graph: &Graph, pair: SitePair, k: usize) {
        let paths = k_shortest_paths(graph, pair.src, pair.dst, k);
        if paths.is_empty() {
            return;
        }
        self.install_paths(pair, paths);
    }

    /// Installs explicit paths as tunnels of `pair` (sorted by latency).
    pub fn install_paths(&mut self, pair: SitePair, mut paths: Vec<Path>) {
        paths.sort_by(|a, b| {
            a.latency_ms
                .partial_cmp(&b.latency_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let ids: Vec<TunnelId> = paths
            .into_iter()
            .map(|p| {
                let id = TunnelId(self.tunnels.len() as u32);
                self.tunnels.push(Tunnel {
                    id,
                    pair,
                    links: p.links,
                    sites: p.sites,
                    weight: p.latency_ms,
                });
                id
            })
            .collect();
        debug_assert!(!ids.is_empty());
        if self.by_pair.insert(pair, ids).is_none() {
            self.pairs.push(pair);
        }
    }

    /// All site pairs with at least one tunnel, in insertion order.
    /// The index of a pair in this slice is the paper's `k` index.
    #[inline]
    pub fn pairs(&self) -> &[SitePair] {
        &self.pairs
    }

    /// Tunnels of a pair, ascending `w_t` (lowest latency first) — the
    /// order MaxEndpointFlow must process them in (Appendix A.2).
    pub fn tunnels_for(&self, pair: SitePair) -> &[TunnelId] {
        self.by_pair.get(&pair).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Tunnel metadata.
    #[inline]
    pub fn tunnel(&self, id: TunnelId) -> &Tunnel {
        &self.tunnels[id.index()]
    }

    /// Total number of tunnels across all pairs.
    #[inline]
    pub fn tunnel_count(&self) -> usize {
        self.tunnels.len()
    }

    /// Iterates over all tunnels.
    pub fn all_tunnels(&self) -> impl Iterator<Item = &Tunnel> + '_ {
        self.tunnels.iter()
    }

    /// Tunnels that traverse a given link — used for failure analysis.
    pub fn tunnels_using_link(&self, e: LinkId) -> Vec<TunnelId> {
        self.tunnels
            .iter()
            .filter(|t| t.uses_link(e))
            .map(|t| t.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn square() -> Graph {
        let mut g = Graph::new();
        let a = g.add_site("a", (0.0, 0.0));
        let b = g.add_site("b", (1.0, 0.0));
        let c = g.add_site("c", (1.0, 1.0));
        let d = g.add_site("d", (0.0, 1.0));
        g.add_bidi_link(a, b, 100.0, 1.0);
        g.add_bidi_link(b, c, 100.0, 1.0);
        g.add_bidi_link(c, d, 100.0, 1.0);
        g.add_bidi_link(d, a, 100.0, 1.0);
        g
    }

    #[test]
    fn all_pairs_covers_every_ordered_pair() {
        let g = square();
        let t = TunnelTable::for_all_pairs(&g, 2);
        assert_eq!(t.pairs().len(), 12); // 4*3 ordered pairs
        for &p in t.pairs() {
            assert!(!t.tunnels_for(p).is_empty());
        }
    }

    #[test]
    fn tunnels_sorted_by_weight_ascending() {
        let g = square();
        let t = TunnelTable::for_all_pairs(&g, 3);
        for &p in t.pairs() {
            let ids = t.tunnels_for(p);
            for w in ids.windows(2) {
                assert!(t.tunnel(w[0]).weight <= t.tunnel(w[1]).weight);
            }
        }
    }

    #[test]
    fn tunnel_endpoints_match_pair() {
        let g = square();
        let t = TunnelTable::for_all_pairs(&g, 2);
        for tun in t.all_tunnels() {
            assert_eq!(*tun.sites.first().unwrap(), tun.pair.src);
            assert_eq!(*tun.sites.last().unwrap(), tun.pair.dst);
            assert_eq!(tun.sites.len(), tun.links.len() + 1);
        }
    }

    #[test]
    fn uses_link_matches_membership() {
        let g = square();
        let t = TunnelTable::for_all_pairs(&g, 2);
        for tun in t.all_tunnels() {
            for e in g.link_ids() {
                assert_eq!(tun.uses_link(e), tun.links.contains(&e));
            }
        }
    }

    #[test]
    fn tunnels_using_link_inverse_of_membership() {
        let g = square();
        let t = TunnelTable::for_all_pairs(&g, 2);
        for e in g.link_ids() {
            let users = t.tunnels_using_link(e);
            for tun in t.all_tunnels() {
                assert_eq!(users.contains(&tun.id), tun.uses_link(e));
            }
        }
    }

    #[test]
    fn for_pairs_restricts_to_requested() {
        let g = square();
        let pair = SitePair::new(SiteId(0), SiteId(2));
        let t = TunnelTable::for_pairs(&g, &[pair], 2);
        assert_eq!(t.pairs(), &[pair]);
        assert!(t
            .tunnels_for(SitePair::new(SiteId(1), SiteId(3)))
            .is_empty());
    }
}
