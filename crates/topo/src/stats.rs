//! Topology statistics — validating that the synthetic Table-2 graphs
//! have ISP-like shape (degree distribution, diameter, latency stretch),
//! and feeding the `table2_topologies` report.

use crate::graph::Graph;
use crate::paths::dijkstra_distances;

/// Summary statistics of a site graph.
#[derive(Debug, Clone, PartialEq)]
pub struct TopologyStats {
    /// `|V|`.
    pub sites: usize,
    /// Bidirectional link count (`|E| / 2` for symmetric graphs).
    pub fibers: usize,
    /// Mean node degree (bidirectional).
    pub mean_degree: f64,
    /// Maximum node degree.
    pub max_degree: usize,
    /// Diameter in hops (longest shortest path).
    pub diameter_hops: usize,
    /// Diameter in milliseconds (longest latency-shortest path).
    pub diameter_ms: f64,
    /// Total one-directional capacity in Gbps.
    pub total_capacity_gbps: f64,
}

/// Computes statistics. Cost: one Dijkstra per site — fine for Table-2
/// scale (≤200 sites).
pub fn topology_stats(graph: &Graph) -> TopologyStats {
    let n = graph.site_count();
    let mut degree = vec![0usize; n];
    for l in graph.link_ids() {
        degree[graph.link(l).src.index()] += 1;
    }
    let mut diameter_hops = 0usize;
    let mut diameter_ms = 0.0f64;
    for src in graph.site_ids() {
        let hops = dijkstra_distances(graph, src, |_| 1.0);
        let lats = dijkstra_distances(graph, src, |l| graph.link(l).latency_ms);
        for d in hops {
            if d.is_finite() {
                diameter_hops = diameter_hops.max(d as usize);
            }
        }
        for d in lats {
            if d.is_finite() {
                diameter_ms = diameter_ms.max(d);
            }
        }
    }
    TopologyStats {
        sites: n,
        fibers: count_fibers(graph),
        mean_degree: degree.iter().sum::<usize>() as f64 / n.max(1) as f64,
        max_degree: degree.iter().copied().max().unwrap_or(0),
        diameter_hops,
        diameter_ms,
        total_capacity_gbps: graph.total_capacity_mbps() / 1000.0 / 2.0,
    }
}

fn count_fibers(graph: &Graph) -> usize {
    let mut fibers = 0;
    for l in graph.link_ids() {
        let link = graph.link(l);
        match graph.find_link(link.dst, link.src) {
            Some(rev) if l < rev => fibers += 1,
            Some(_) => {}
            None => fibers += 1, // unidirectional counts once
        }
    }
    fibers
}

/// Per-site degree histogram: `hist[d]` = number of sites with
/// (outgoing) degree `d`.
pub fn degree_histogram(graph: &Graph) -> Vec<usize> {
    let mut degree = vec![0usize; graph.site_count()];
    for l in graph.link_ids() {
        degree[graph.link(l).src.index()] += 1;
    }
    let max = degree.iter().copied().max().unwrap_or(0);
    let mut hist = vec![0usize; max + 1];
    for d in degree {
        hist[d] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies::{b4, cogentco, deltacom};

    #[test]
    fn b4_stats_match_published_shape() {
        let s = topology_stats(&b4());
        assert_eq!(s.sites, 12);
        assert_eq!(s.fibers, 19);
        assert!((s.mean_degree - 2.0 * 19.0 / 12.0).abs() < 1e-9);
        assert!(
            s.diameter_hops >= 2 && s.diameter_hops <= 6,
            "{}",
            s.diameter_hops
        );
        assert!(s.diameter_ms > 0.0);
    }

    #[test]
    fn isp_topologies_are_sparse_with_bounded_degree() {
        for g in [deltacom(), cogentco()] {
            let s = topology_stats(&g);
            // ISP backbones: mean degree 2-4, no mega-hubs.
            assert!(
                s.mean_degree >= 2.0 && s.mean_degree <= 4.5,
                "{}",
                s.mean_degree
            );
            assert!(s.max_degree <= 12, "{}", s.max_degree);
            // Sparse ⇒ large diameter relative to size.
            assert!(s.diameter_hops >= 8, "{}", s.diameter_hops);
        }
    }

    #[test]
    fn degree_histogram_sums_to_site_count() {
        let g = deltacom();
        let hist = degree_histogram(&g);
        assert_eq!(hist.iter().sum::<usize>(), g.site_count());
        assert_eq!(hist[0], 0, "no isolated sites");
    }

    #[test]
    fn fiber_count_matches_topology_constants() {
        assert_eq!(topology_stats(&deltacom()).fibers, 161);
        assert_eq!(topology_stats(&cogentco()).fibers, 243);
    }
}
