//! The four evaluation topologies of Table 2.
//!
//! | Topology   | Sites  | Endpoints (max) |
//! |------------|--------|-----------------|
//! | B4*        | 12     | 120,000         |
//! | Deltacom*  | 113    | 1,130,000       |
//! | Cogentco*  | 197    | 1,970,000       |
//! | TWAN       | O(100) | O(1,000,000)    |
//!
//! `B4` is the published 12-site / 19-edge Google WAN. `Deltacom` and
//! `Cogentco` come from the Internet Topology Zoo; the GraphML files are
//! not redistributable here, so we generate seeded geometric graphs with
//! the Zoo's published node and edge counts (113/161 and 197/243) — see
//! DESIGN.md for why this preserves the evaluation's behaviour. The `*`
//! variants add Weibull-distributed endpoints (see [`crate::endpoints`]).

use crate::graph::{Graph, SiteId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which evaluation topology to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TopologySpec {
    /// Google B4: 12 sites, 19 bidirectional links.
    B4,
    /// Topology Zoo Deltacom: 113 sites, 161 bidirectional links.
    Deltacom,
    /// Topology Zoo Cogentco: 197 sites, 243 bidirectional links.
    Cogentco,
    /// Synthetic Tencent-WAN-like topology: 100 sites, meshed core.
    Twan,
}

impl TopologySpec {
    /// Builds the site graph.
    pub fn build(self) -> Graph {
        match self {
            TopologySpec::B4 => b4(),
            TopologySpec::Deltacom => deltacom(),
            TopologySpec::Cogentco => cogentco(),
            TopologySpec::Twan => twan(),
        }
    }

    /// Display name matching the paper (with `*` for endpoint-augmented).
    pub fn name(self) -> &'static str {
        match self {
            TopologySpec::B4 => "B4*",
            TopologySpec::Deltacom => "Deltacom*",
            TopologySpec::Cogentco => "Cogentco*",
            TopologySpec::Twan => "TWAN",
        }
    }

    /// Max total endpoint count from Table 2.
    pub fn max_endpoints(self) -> usize {
        match self {
            TopologySpec::B4 => 120_000,
            TopologySpec::Deltacom => 1_130_000,
            TopologySpec::Cogentco => 1_970_000,
            TopologySpec::Twan => 1_000_000,
        }
    }

    /// All four evaluation topologies in paper order.
    pub fn all() -> [TopologySpec; 4] {
        [
            TopologySpec::B4,
            TopologySpec::Deltacom,
            TopologySpec::Cogentco,
            TopologySpec::Twan,
        ]
    }
}

/// Link capacity tiers used by the synthetic topologies, in Mbps.
const CAP_CORE: f64 = 100_000.0; // 100 Gbps
const CAP_METRO: f64 = 40_000.0; // 40 Gbps

/// Converts a coordinate distance to a propagation latency.
///
/// Coordinates live on a rough continental scale where 1.0 unit ≈ 500 km,
/// i.e. ≈ 2.5 ms one-way fiber latency.
fn dist_to_latency_ms(d: f64) -> f64 {
    (d * 2.5).max(0.1)
}

/// The Google B4 inter-datacenter WAN: 12 sites, 19 bidirectional links.
///
/// Site coordinates approximate the published deployment (US, Europe,
/// Asia); latencies derive from coordinate distance.
pub fn b4() -> Graph {
    let mut g = Graph::new();
    // (name, x, y) — x grows eastwards, y northwards; continental scale.
    let coords: [(&str, f64, f64); 12] = [
        ("us-west-1", 0.0, 4.0),
        ("us-west-2", 0.5, 3.0),
        ("us-central", 3.0, 3.5),
        ("us-east-1", 5.5, 3.6),
        ("us-east-2", 5.8, 2.8),
        ("eu-west", 11.0, 4.5),
        ("eu-central", 12.5, 4.2),
        ("asia-ne", 20.0, 3.2),
        ("asia-se", 19.0, 0.5),
        ("asia-south", 16.5, 0.8),
        ("sa-east", 7.5, -2.5),
        ("oceania", 21.5, -3.0),
    ];
    let ids: Vec<SiteId> = coords
        .iter()
        .map(|&(n, x, y)| g.add_site(n, (x, y)))
        .collect();
    // 19 bidirectional links (the published B4 edge count).
    let edges: [(usize, usize); 19] = [
        (0, 1),
        (0, 2),
        (1, 2),
        (1, 10),
        (2, 3),
        (2, 4),
        (3, 4),
        (3, 5),
        (4, 6),
        (4, 10),
        (5, 6),
        (5, 7),
        (6, 9),
        (7, 8),
        (7, 11),
        (8, 9),
        (8, 11),
        (9, 11),
        (0, 7),
    ];
    for &(a, b) in &edges {
        let d = g.site_distance(ids[a], ids[b]);
        g.add_bidi_link(ids[a], ids[b], CAP_CORE, dist_to_latency_ms(d));
    }
    debug_assert!(g.is_strongly_connected());
    g
}

/// Seeded geometric ISP-like topology generator.
///
/// Nodes are scattered in a wide strip (ISP backbones are geographically
/// elongated); edges are a nearest-neighbour spanning structure plus the
/// shortest remaining candidate edges until `target_edges` is reached.
fn geometric_isp(name: &str, nodes: usize, target_edges: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Graph::new();
    let ids: Vec<SiteId> = (0..nodes)
        .map(|i| {
            let x: f64 = rng.gen_range(0.0..20.0);
            let y: f64 = rng.gen_range(0.0..8.0);
            g.add_site(format!("{name}-{i}"), (x, y))
        })
        .collect();

    // Greedy nearest-neighbour spanning tree (Prim-like) keeps the graph
    // connected with geographically-plausible edges.
    let mut in_tree = vec![false; nodes];
    in_tree[0] = true;
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for _ in 1..nodes {
        let mut best: Option<(usize, usize, f64)> = None;
        for a in 0..nodes {
            if !in_tree[a] {
                continue;
            }
            for b in 0..nodes {
                if in_tree[b] {
                    continue;
                }
                let d = g.site_distance(ids[a], ids[b]);
                if best.is_none_or(|(_, _, bd)| d < bd) {
                    best = Some((a, b, d));
                }
            }
        }
        let (a, b, _) = best.expect("non-empty frontier");
        in_tree[b] = true;
        edges.push((a, b));
    }

    // Candidate extra edges: all remaining pairs sorted by distance with
    // random jitter, so meshes differ between seeds but stay geographic.
    let mut candidates: Vec<(usize, usize, f64)> = Vec::new();
    for a in 0..nodes {
        for b in a + 1..nodes {
            if edges.contains(&(a, b)) || edges.contains(&(b, a)) {
                continue;
            }
            let d = g.site_distance(ids[a], ids[b]) * rng.gen_range(0.8..1.2);
            candidates.push((a, b, d));
        }
    }
    candidates.sort_by(|x, y| x.2.partial_cmp(&y.2).unwrap());
    let mut degree = vec![0usize; nodes];
    for &(a, b) in &edges {
        degree[a] += 1;
        degree[b] += 1;
    }
    for (a, b, _) in candidates {
        if edges.len() >= target_edges {
            break;
        }
        // Soft degree cap keeps the degree distribution ISP-like.
        if degree[a] >= 6 || degree[b] >= 6 {
            continue;
        }
        edges.push((a, b));
        degree[a] += 1;
        degree[b] += 1;
    }

    for (a, b) in edges {
        let d = g.site_distance(ids[a], ids[b]);
        let cap = if degree[a] >= 4 && degree[b] >= 4 {
            CAP_CORE
        } else {
            CAP_METRO
        };
        g.add_bidi_link(ids[a], ids[b], cap, dist_to_latency_ms(d));
    }
    debug_assert!(g.is_strongly_connected());
    g
}

/// Deltacom-like topology: 113 sites, 161 bidirectional links
/// (node/edge counts from the Internet Topology Zoo).
pub fn deltacom() -> Graph {
    geometric_isp("deltacom", 113, 161, 0xDE17AC03)
}

/// Cogentco-like topology: 197 sites, 243 bidirectional links
/// (node/edge counts from the Internet Topology Zoo).
pub fn cogentco() -> Graph {
    geometric_isp("cogentco", 197, 243, 0xC09E27C0)
}

/// Synthetic Tencent-WAN-like topology: 100 sites in a densely meshed
/// core, matching the paper's "O(100) sites, highly meshed" description.
pub fn twan() -> Graph {
    geometric_isp("twan", 100, 290, 0x79A10001)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn b4_matches_published_counts() {
        let g = b4();
        assert_eq!(g.site_count(), 12);
        assert_eq!(g.link_count(), 38); // 19 bidirectional
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn deltacom_matches_zoo_counts() {
        let g = deltacom();
        assert_eq!(g.site_count(), 113);
        assert_eq!(g.link_count(), 322); // 161 bidirectional
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn cogentco_matches_zoo_counts() {
        let g = cogentco();
        assert_eq!(g.site_count(), 197);
        assert_eq!(g.link_count(), 486); // 243 bidirectional
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn twan_is_meshier_than_isp_topologies() {
        let t = twan();
        let d = deltacom();
        let t_deg = t.link_count() as f64 / t.site_count() as f64;
        let d_deg = d.link_count() as f64 / d.site_count() as f64;
        assert!(
            t_deg > d_deg,
            "TWAN mean degree {t_deg} vs Deltacom {d_deg}"
        );
        assert!(t.is_strongly_connected());
    }

    #[test]
    fn generators_are_deterministic() {
        let a = deltacom();
        let b = deltacom();
        assert_eq!(a.link_count(), b.link_count());
        for (la, lb) in a.link_ids().zip(b.link_ids()) {
            assert_eq!(a.link(la).src, b.link(lb).src);
            assert_eq!(a.link(la).capacity_mbps, b.link(lb).capacity_mbps);
        }
    }

    #[test]
    fn latencies_positive_everywhere() {
        for spec in TopologySpec::all() {
            let g = spec.build();
            for l in g.link_ids() {
                assert!(g.link(l).latency_ms > 0.0);
                assert!(g.link(l).capacity_mbps > 0.0);
            }
        }
    }

    #[test]
    fn table2_endpoint_budgets() {
        assert_eq!(TopologySpec::B4.max_endpoints(), 120_000);
        assert_eq!(TopologySpec::Deltacom.max_endpoints(), 1_130_000);
        assert_eq!(TopologySpec::Cogentco.max_endpoints(), 1_970_000);
    }
}
