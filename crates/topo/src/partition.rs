//! Concord-style slicing of the site graph into balanced partitions.
//!
//! Decentralizing the control plane starts here: the WAN is cut into
//! `k` contiguous slices of (near-)equal site count, each owned by one
//! controller. The slicer is a seeded region-growing heuristic that
//! targets a small **edge cut** — links whose endpoints land in
//! different partitions become *border links* whose capacity must be
//! quota-split between the owning controllers (see `megate-core`'s
//! reconciliation pass).
//!
//! Everything is deterministic for a given `(graph, k, seed)`: ties are
//! broken by a splitmix64 stream keyed on the seed, never by map
//! iteration order, so two replicas of the control plane always agree
//! on who owns which site.

use crate::graph::{Graph, LinkId, SiteId};
use serde::{Deserialize, Serialize};

/// Identifier of a controller partition (a slice of the site graph).
pub type PartitionId = u32;

/// A partition assignment over the sites of one graph.
///
/// Partition ids are dense starting at 0; [`Partitioning::split`] may
/// append new ids but never removes one, so any id handed out stays
/// valid for the lifetime of the value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Partitioning {
    /// Site index → owning partition.
    assignment: Vec<PartitionId>,
    /// Number of partition ids allocated so far.
    parts: u32,
    /// Seed the slicing was derived from (recorded for reproducibility).
    seed: u64,
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Undirected adjacency with per-neighbor attached capacity, built once
/// and shared by seeding, growing and splitting.
struct Adjacency {
    /// site index → (neighbor site index, capacity of connecting links).
    nbrs: Vec<Vec<(usize, f64)>>,
}

impl Adjacency {
    fn build(g: &Graph) -> Self {
        let mut nbrs = vec![Vec::new(); g.site_count()];
        for l in g.link_ids() {
            let link = g.link(l);
            let (a, b) = (link.src.index(), link.dst.index());
            nbrs[a].push((b, link.capacity_mbps));
        }
        // Merge parallel links into one weighted neighbor entry so the
        // growth scoring sees total attached capacity.
        for row in &mut nbrs {
            row.sort_by_key(|x| x.0);
            let mut merged: Vec<(usize, f64)> = Vec::with_capacity(row.len());
            for &(n, c) in row.iter() {
                match merged.last_mut() {
                    Some(last) if last.0 == n => last.1 += c,
                    _ => merged.push((n, c)),
                }
            }
            *row = merged;
        }
        Self { nbrs }
    }
}

impl Partitioning {
    /// Slices `g` into `k` balanced partitions with seeded tie-breaks.
    ///
    /// Sizes differ by at most one site. The heuristic grows all `k`
    /// regions simultaneously from spread-out seed sites, always
    /// extending the currently-smallest region with the unassigned
    /// neighbor that brings the most capacity inside the region — a
    /// greedy edge-cut minimizer in the spirit of CONCORD's slicing.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k` exceeds the site count.
    pub fn new(g: &Graph, k: u32, seed: u64) -> Self {
        assert!(k >= 1, "need at least one partition");
        assert!(
            (k as usize) <= g.site_count(),
            "cannot cut {} sites into {k} partitions",
            g.site_count()
        );
        let n = g.site_count();
        if k == 1 {
            return Self {
                assignment: vec![0; n],
                parts: 1,
                seed,
            };
        }
        let adj = Adjacency::build(g);
        let sites: Vec<usize> = (0..n).collect();
        let assignment = grow_regions(&adj, &sites, k, seed, 0);
        Self {
            assignment,
            parts: k,
            seed,
        }
    }

    /// The partition owning `site`.
    #[inline]
    pub fn partition_of(&self, site: SiteId) -> PartitionId {
        self.assignment[site.index()]
    }

    /// Number of partition ids allocated (ids are `0..partition_count()`).
    #[inline]
    pub fn partition_count(&self) -> u32 {
        self.parts
    }

    /// Seed this slicing was derived from.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All partition ids in order.
    pub fn partition_ids(&self) -> impl Iterator<Item = PartitionId> {
        0..self.parts
    }

    /// Sites owned by partition `p`, in site-id order.
    pub fn sites_of(&self, p: PartitionId) -> Vec<SiteId> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == p)
            .map(|(i, _)| SiteId(i as u32))
            .collect()
    }

    /// Number of sites owned by partition `p`.
    pub fn size_of(&self, p: PartitionId) -> usize {
        self.assignment.iter().filter(|&&a| a == p).count()
    }

    /// True when the link's endpoints live in different partitions.
    pub fn is_border_link(&self, g: &Graph, l: LinkId) -> bool {
        let link = g.link(l);
        self.partition_of(link.src) != self.partition_of(link.dst)
    }

    /// Number of directed links crossing a partition boundary.
    pub fn edge_cut(&self, g: &Graph) -> usize {
        g.link_ids().filter(|&l| self.is_border_link(g, l)).count()
    }

    /// Total capacity (Mbps) of the directed links in the cut.
    pub fn cut_capacity_mbps(&self, g: &Graph) -> f64 {
        g.link_ids()
            .filter(|&l| self.is_border_link(g, l))
            .map(|l| g.link(l).capacity_mbps)
            .sum()
    }

    /// Splits partition `p` in two: half its sites stay with `p`, the
    /// other half move to a freshly allocated id, which is returned.
    /// The two halves are grown with the same seeded region heuristic
    /// restricted to `p`'s subgraph, so the sub-cut stays small.
    ///
    /// # Panics
    /// Panics if `p` is unknown or owns fewer than two sites.
    pub fn split(&mut self, g: &Graph, p: PartitionId, seed: u64) -> PartitionId {
        assert!(p < self.parts, "unknown partition {p}");
        let members: Vec<usize> = self
            .assignment
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a == p)
            .map(|(i, _)| i)
            .collect();
        assert!(
            members.len() >= 2,
            "partition {p} has {} sites; need at least 2 to split",
            members.len()
        );
        let adj = Adjacency::build(g);
        // Two-way growth over the member subgraph; local partition 1
        // becomes the new global id.
        let local = grow_regions(&adj, &members, 2, seed, 1);
        let new_id = self.parts;
        self.parts += 1;
        for (slot, &site) in members.iter().enumerate() {
            if local[slot] == 1 {
                self.assignment[site] = new_id;
            }
        }
        new_id
    }

    /// Checks internal consistency against a graph: every site has an
    /// in-range owner and every allocated id owns at least... nothing is
    /// required of empty ids (splits can drain one), but assignments
    /// must be dense-in-range.
    pub fn validate(&self, g: &Graph) {
        assert_eq!(self.assignment.len(), g.site_count(), "site count drifted");
        for (i, &a) in self.assignment.iter().enumerate() {
            assert!(
                a < self.parts,
                "site s{i} owned by unallocated partition {a}"
            );
        }
    }
}

/// Grows `k` regions over `members` (indices into the full site list)
/// and returns, per member slot, a local region id in `0..k`.
///
/// `salt` keys the tie-break stream so `new` and `split` draw from
/// different streams even under equal seeds.
fn grow_regions(adj: &Adjacency, members: &[usize], k: u32, seed: u64, salt: u64) -> Vec<u32> {
    let n = members.len();
    let kk = k as usize;
    // Slot lookup: full-graph site index → position in `members`.
    let mut slot_of = vec![usize::MAX; adj.nbrs.len()];
    for (slot, &site) in members.iter().enumerate() {
        slot_of[site] = slot;
    }
    let in_scope = |site: usize| slot_of[site] != usize::MAX;

    // Weighted degree restricted to the member subgraph.
    let degree = |site: usize| -> f64 {
        adj.nbrs[site]
            .iter()
            .filter(|&&(nb, _)| in_scope(nb))
            .map(|&(_, c)| c)
            .sum()
    };
    let jitter = |site: usize, ctx: u64| {
        splitmix64(seed ^ salt.rotate_left(17) ^ ((site as u64) << 8) ^ ctx)
    };

    // --- Seed selection: heaviest site first, then repeatedly the
    // member farthest (hop distance) from every chosen seed. ---
    let mut seeds: Vec<usize> = Vec::with_capacity(kk);
    let first = members
        .iter()
        .copied()
        .max_by(|&a, &b| {
            degree(a)
                .total_cmp(&degree(b))
                .then_with(|| jitter(a, 1).cmp(&jitter(b, 1)))
        })
        .expect("non-empty member set");
    seeds.push(first);
    let mut min_dist = bfs_hops(adj, &slot_of, members, first);
    while seeds.len() < kk {
        let next = members
            .iter()
            .copied()
            .filter(|s| !seeds.contains(s))
            .max_by(|&a, &b| {
                min_dist[slot_of[a]]
                    .cmp(&min_dist[slot_of[b]])
                    .then_with(|| jitter(a, 2).cmp(&jitter(b, 2)))
            })
            .expect("k <= member count");
        seeds.push(next);
        let d = bfs_hops(adj, &slot_of, members, next);
        for (m, dn) in min_dist.iter_mut().zip(d) {
            *m = (*m).min(dn);
        }
    }

    // --- Balanced simultaneous growth. ---
    let mut local = vec![u32::MAX; n];
    let mut counts = vec![0usize; kk];
    for (p, &s) in seeds.iter().enumerate() {
        local[slot_of[s]] = p as u32;
        counts[p] = 1;
    }
    let mut unassigned = n - kk;
    while unassigned > 0 {
        // Smallest region extends next (lowest id on ties) — keeps
        // sizes within one of each other by construction.
        let p = (0..kk).min_by_key(|&p| (counts[p], p)).expect("k >= 1");
        // Best unassigned member adjacent to region p: most capacity
        // attached to p, seeded tie-break. Fall back to any unassigned
        // member (disconnected subgraphs) with the seeded order.
        let mut best: Option<(f64, u64, usize)> = None;
        for (slot, &site) in members.iter().enumerate() {
            if local[slot] != u32::MAX {
                continue;
            }
            let attached: f64 = adj.nbrs[site]
                .iter()
                .filter(|&&(nb, _)| in_scope(nb) && local[slot_of[nb]] == p as u32)
                .map(|&(_, c)| c)
                .sum();
            let score = (attached, jitter(site, 3 ^ ((p as u64) << 32)), site);
            if best.is_none() || {
                let b = best.as_ref().unwrap();
                score
                    .0
                    .total_cmp(&b.0)
                    .then_with(|| score.1.cmp(&b.1))
                    .is_gt()
            } {
                best = Some(score);
            }
        }
        let (_, _, site) = best.expect("unassigned member exists");
        local[slot_of[site]] = p as u32;
        counts[p] += 1;
        unassigned -= 1;
    }
    local
}

/// Hop distances from `start` over the member-restricted undirected
/// subgraph, indexed by member slot. Unreachable slots get `usize::MAX`.
fn bfs_hops(adj: &Adjacency, slot_of: &[usize], members: &[usize], start: usize) -> Vec<usize> {
    let mut dist = vec![usize::MAX; members.len()];
    dist[slot_of[start]] = 0;
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(s) = queue.pop_front() {
        let d = dist[slot_of[s]];
        for &(nb, _) in &adj.nbrs[s] {
            if slot_of[nb] != usize::MAX && dist[slot_of[nb]] == usize::MAX {
                dist[slot_of[nb]] = d + 1;
                queue.push_back(nb);
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies::b4;

    #[test]
    fn single_partition_owns_everything() {
        let g = b4();
        let p = Partitioning::new(&g, 1, 42);
        p.validate(&g);
        assert_eq!(p.partition_count(), 1);
        assert_eq!(p.edge_cut(&g), 0);
        assert_eq!(p.size_of(0), g.site_count());
    }

    #[test]
    fn balanced_sizes_and_full_coverage() {
        let g = b4();
        for k in [2u32, 3, 4] {
            let p = Partitioning::new(&g, k, 7);
            p.validate(&g);
            let sizes: Vec<usize> = p.partition_ids().map(|i| p.size_of(i)).collect();
            assert_eq!(sizes.iter().sum::<usize>(), g.site_count());
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "k={k}: sizes {sizes:?} not balanced");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = b4();
        let a = Partitioning::new(&g, 3, 99);
        let b = Partitioning::new(&g, 3, 99);
        assert_eq!(a, b);
    }

    #[test]
    fn cut_is_a_strict_subset_of_links() {
        let g = b4();
        let p = Partitioning::new(&g, 2, 7);
        let cut = p.edge_cut(&g);
        assert!(cut > 0, "2-way cut of a connected graph crosses links");
        assert!(
            cut < g.link_count() / 2,
            "region growing should cut far fewer than half the links \
             (cut {cut} of {})",
            g.link_count()
        );
        assert!(p.cut_capacity_mbps(&g) > 0.0);
    }

    #[test]
    fn regions_are_contiguous_on_b4() {
        // Every region of a connected graph should itself be connected:
        // region growing only ever extends across an edge, except for
        // the disconnected-fallback which b4 never triggers.
        let g = b4();
        let p = Partitioning::new(&g, 3, 7);
        for part in p.partition_ids() {
            let members: Vec<usize> = p.sites_of(part).iter().map(|s| s.index()).collect();
            let adj = Adjacency::build(&g);
            let mut slot_of = vec![usize::MAX; g.site_count()];
            for (slot, &m) in members.iter().enumerate() {
                slot_of[m] = slot;
            }
            let d = bfs_hops(&adj, &slot_of, &members, members[0]);
            assert!(
                d.iter().all(|&x| x != usize::MAX),
                "partition {part} is not contiguous"
            );
        }
    }

    #[test]
    fn split_conserves_sites_and_allocates_new_id() {
        let g = b4();
        let mut p = Partitioning::new(&g, 2, 7);
        let before = p.size_of(0);
        let new_id = p.split(&g, 0, 123);
        p.validate(&g);
        assert_eq!(new_id, 2);
        assert_eq!(p.partition_count(), 3);
        let (a, b) = (p.size_of(0), p.size_of(new_id));
        assert_eq!(a + b, before);
        assert!(a.abs_diff(b) <= 1, "split halves unbalanced: {a} vs {b}");
        // Partition 1 untouched.
        assert_eq!(p.size_of(1), g.site_count() - before);
    }

    #[test]
    fn split_is_deterministic() {
        let g = b4();
        let mut a = Partitioning::new(&g, 2, 7);
        let mut b = Partitioning::new(&g, 2, 7);
        a.split(&g, 1, 5);
        b.split(&g, 1, 5);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least 2 to split")]
    fn split_rejects_singleton() {
        let mut g = Graph::new();
        let a = g.add_site("a", (0.0, 0.0));
        let b = g.add_site("b", (1.0, 0.0));
        g.add_bidi_link(a, b, 10.0, 1.0);
        let mut p = Partitioning::new(&g, 2, 1);
        p.split(&g, 0, 1);
    }

    #[test]
    fn different_seeds_can_differ() {
        let g = b4();
        let cuts: Vec<usize> = (0..8)
            .map(|s| Partitioning::new(&g, 3, s).edge_cut(&g))
            .collect();
        // Not a strict requirement that all differ, but the stream must
        // actually influence the result somewhere across 8 seeds.
        assert!(
            cuts.windows(2).any(|w| w[0] != w[1])
                || (0..8)
                    .map(|s| Partitioning::new(&g, 3, s))
                    .collect::<Vec<_>>()
                    .windows(2)
                    .any(|w| w[0] != w[1]),
            "seed never changes the slicing"
        );
    }
}
