//! Link-failure scenarios (§6.3).
//!
//! The paper evaluates satisfied demand under 2 and 5 link failures in
//! Deltacom*. Failures here take out a *bidirectional* link (both
//! directed halves), matching how a fiber cut behaves. Scenarios are
//! sampled with a seeded RNG and can optionally be constrained to keep
//! the graph connected (the paper's recomputation assumes the topology
//! still routes).

use crate::graph::{Graph, LinkId};
use rand::rngs::StdRng;
use rand::{seq::SliceRandom, SeedableRng};

/// A set of failed directed links.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureScenario {
    /// All failed directed links (both halves of each failed fiber).
    pub failed_links: Vec<LinkId>,
}

impl FailureScenario {
    /// No failures.
    pub fn none() -> Self {
        Self::default()
    }

    /// Samples `n_fibers` bidirectional link failures that keep the graph
    /// strongly connected. Returns `None` when no such scenario could be
    /// found within a bounded number of attempts.
    pub fn sample_connected(graph: &Graph, n_fibers: usize, seed: u64) -> Option<Self> {
        let mut rng = StdRng::seed_from_u64(seed);
        // Pair up directed links into fibers: (l, reverse(l)).
        let fibers = Self::fibers(graph);
        if fibers.len() < n_fibers {
            return None;
        }
        for _ in 0..200 {
            let chosen: Vec<&(LinkId, LinkId)> =
                fibers.choose_multiple(&mut rng, n_fibers).collect();
            let failed: Vec<LinkId> = chosen.iter().flat_map(|&&(a, b)| [a, b]).collect();
            let g = graph.with_failed_links(&failed);
            // `with_failed_links` keeps edges with ~0 capacity; emulate
            // removal for the connectivity check by rebuilding.
            if Self::connected_without(&g, &failed) {
                return Some(Self {
                    failed_links: failed,
                });
            }
        }
        None
    }

    /// Explicit scenario from directed link ids.
    pub fn from_links(failed_links: Vec<LinkId>) -> Self {
        Self { failed_links }
    }

    /// Applies the scenario: returns a graph where failed links carry
    /// effectively zero capacity (ids remain stable).
    pub fn apply(&self, graph: &Graph) -> Graph {
        graph.with_failed_links(&self.failed_links)
    }

    /// True if the given link failed.
    pub fn contains(&self, l: LinkId) -> bool {
        self.failed_links.contains(&l)
    }

    fn fibers(graph: &Graph) -> Vec<(LinkId, LinkId)> {
        let mut fibers = Vec::new();
        for l in graph.link_ids() {
            let link = graph.link(l);
            if let Some(rev) = graph.find_link(link.dst, link.src) {
                if l < rev {
                    fibers.push((l, rev));
                }
            }
        }
        fibers
    }

    fn connected_without(graph: &Graph, failed: &[LinkId]) -> bool {
        // BFS ignoring failed links.
        let n = graph.site_count();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![crate::graph::SiteId(0)];
        seen[0] = true;
        while let Some(s) = stack.pop() {
            for &lid in graph.out_links(s) {
                if failed.contains(&lid) {
                    continue;
                }
                let d = graph.link(lid).dst;
                if !seen[d.index()] {
                    seen[d.index()] = true;
                    stack.push(d);
                }
            }
        }
        seen.iter().all(|&x| x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topologies::{b4, deltacom};

    #[test]
    fn sample_fails_both_directions() {
        let g = b4();
        let s = FailureScenario::sample_connected(&g, 2, 11).expect("findable");
        assert_eq!(s.failed_links.len(), 4); // 2 fibers = 4 directed links
        for &l in &s.failed_links {
            let link = g.link(l);
            let rev = g.find_link(link.dst, link.src).unwrap();
            assert!(s.contains(rev), "reverse of {l} must also fail");
        }
    }

    #[test]
    fn sampled_scenarios_keep_connectivity() {
        let g = deltacom();
        for seed in 0..5 {
            let s = FailureScenario::sample_connected(&g, 5, seed).expect("findable");
            let failed = s.apply(&g);
            // Residual graph must still route between all sites using
            // only healthy links.
            assert!(FailureScenario::connected_without(&failed, &s.failed_links));
        }
    }

    #[test]
    fn apply_zeroes_capacity_only_on_failed() {
        let g = b4();
        let s = FailureScenario::sample_connected(&g, 1, 3).unwrap();
        let after = s.apply(&g);
        for l in g.link_ids() {
            if s.contains(l) {
                assert!(after.link(l).capacity_mbps < 1e-100);
            } else {
                assert_eq!(after.link(l).capacity_mbps, g.link(l).capacity_mbps);
            }
        }
    }

    #[test]
    fn too_many_failures_returns_none() {
        let g = b4(); // 19 fibers
        assert!(FailureScenario::sample_connected(&g, 20, 0).is_none());
    }

    #[test]
    fn deterministic_for_seed() {
        let g = deltacom();
        let a = FailureScenario::sample_connected(&g, 2, 99).unwrap();
        let b = FailureScenario::sample_connected(&g, 2, 99).unwrap();
        assert_eq!(a, b);
    }
}
