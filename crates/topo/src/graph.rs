//! Site-level WAN graph: nodes are router sites, edges are directed,
//! capacitated, latency-weighted links.
//!
//! The paper's notation (Table 1): topology `G(V, E)` with link capacities
//! `c_e`. Links are directed — a physical fiber pair is modelled as two
//! directed links, which is what path-based TE formulations operate on.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a router site (a node of the first-layer graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SiteId(pub u32);

impl SiteId {
    /// Index into dense per-site vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Identifier of a directed link (an edge of the first-layer graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Index into dense per-link vectors.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A router site. Sites aggregate endpoints in the second layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Site {
    /// Human-readable site name (e.g. a metro code).
    pub name: String,
    /// Planar coordinates used by synthetic topology generators for
    /// distance-derived latencies. Units are abstract.
    pub pos: (f64, f64),
}

/// A directed WAN link between two sites.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Link {
    /// Source site.
    pub src: SiteId,
    /// Destination site.
    pub dst: SiteId,
    /// Capacity `c_e` in Mbps.
    pub capacity_mbps: f64,
    /// Propagation latency in milliseconds.
    pub latency_ms: f64,
}

/// The first-layer site topology `G(V, E)`.
///
/// Adjacency is stored per source site for fast shortest-path runs.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Graph {
    sites: Vec<Site>,
    links: Vec<Link>,
    /// Outgoing link ids per site.
    out_links: Vec<Vec<LinkId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a site and returns its id.
    pub fn add_site(&mut self, name: impl Into<String>, pos: (f64, f64)) -> SiteId {
        let id = SiteId(self.sites.len() as u32);
        self.sites.push(Site {
            name: name.into(),
            pos,
        });
        self.out_links.push(Vec::new());
        id
    }

    /// Adds a directed link and returns its id.
    ///
    /// # Panics
    /// Panics if either endpoint is not a site of this graph, if the
    /// capacity is not strictly positive, or if the latency is negative.
    pub fn add_link(
        &mut self,
        src: SiteId,
        dst: SiteId,
        capacity_mbps: f64,
        latency_ms: f64,
    ) -> LinkId {
        assert!(src.index() < self.sites.len(), "unknown src site {src}");
        assert!(dst.index() < self.sites.len(), "unknown dst site {dst}");
        assert!(src != dst, "self-loop links are not allowed");
        assert!(capacity_mbps > 0.0, "link capacity must be positive");
        assert!(latency_ms >= 0.0, "link latency must be non-negative");
        let id = LinkId(self.links.len() as u32);
        self.links.push(Link {
            src,
            dst,
            capacity_mbps,
            latency_ms,
        });
        self.out_links[src.index()].push(id);
        id
    }

    /// Adds a bidirectional link (two directed links) with identical
    /// capacity and latency in both directions. Returns both ids.
    pub fn add_bidi_link(
        &mut self,
        a: SiteId,
        b: SiteId,
        capacity_mbps: f64,
        latency_ms: f64,
    ) -> (LinkId, LinkId) {
        let ab = self.add_link(a, b, capacity_mbps, latency_ms);
        let ba = self.add_link(b, a, capacity_mbps, latency_ms);
        (ab, ba)
    }

    /// Number of sites `|V|`.
    #[inline]
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Number of directed links `|E|`.
    #[inline]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// All site ids in order.
    pub fn site_ids(&self) -> impl Iterator<Item = SiteId> + '_ {
        (0..self.sites.len() as u32).map(SiteId)
    }

    /// All link ids in order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len() as u32).map(LinkId)
    }

    /// Site metadata.
    #[inline]
    pub fn site(&self, id: SiteId) -> &Site {
        &self.sites[id.index()]
    }

    /// Link metadata.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Mutable link metadata — used by capacity-residual updates between
    /// QoS classes and by failure injection.
    #[inline]
    pub fn link_mut(&mut self, id: LinkId) -> &mut Link {
        &mut self.links[id.index()]
    }

    /// Outgoing links of a site.
    #[inline]
    pub fn out_links(&self, site: SiteId) -> &[LinkId] {
        &self.out_links[site.index()]
    }

    /// Finds a directed link between two sites, if one exists.
    pub fn find_link(&self, src: SiteId, dst: SiteId) -> Option<LinkId> {
        self.out_links(src)
            .iter()
            .copied()
            .find(|&l| self.link(l).dst == dst)
    }

    /// Returns the total capacity over all directed links, in Mbps.
    pub fn total_capacity_mbps(&self) -> f64 {
        self.links.iter().map(|l| l.capacity_mbps).sum()
    }

    /// Euclidean distance between two sites' coordinates.
    pub fn site_distance(&self, a: SiteId, b: SiteId) -> f64 {
        let pa = self.site(a).pos;
        let pb = self.site(b).pos;
        ((pa.0 - pb.0).powi(2) + (pa.1 - pb.1).powi(2)).sqrt()
    }

    /// Returns a copy of the graph with the given links removed
    /// (capacity set to ~0 so link ids stay stable for tunnel tables).
    ///
    /// TE recomputation after failures (§6.3) uses this: tunnels crossing
    /// a failed link become unusable because the residual capacity is 0.
    pub fn with_failed_links(&self, failed: &[LinkId]) -> Graph {
        let mut g = self.clone();
        for &l in failed {
            g.links[l.index()].capacity_mbps = f64::MIN_POSITIVE;
        }
        g
    }

    /// True if the graph is strongly connected (every site reaches every
    /// other site). Synthetic generators use this as a post-condition.
    pub fn is_strongly_connected(&self) -> bool {
        if self.sites.is_empty() {
            return true;
        }
        // Forward reachability from site 0 and reachability in the
        // reversed graph from site 0 together imply strong connectivity.
        let fwd = self.reachable_from(SiteId(0), false);
        let bwd = self.reachable_from(SiteId(0), true);
        fwd.iter().all(|&r| r) && bwd.iter().all(|&r| r)
    }

    fn reachable_from(&self, start: SiteId, reversed: bool) -> Vec<bool> {
        let mut seen = vec![false; self.sites.len()];
        let mut stack = vec![start];
        seen[start.index()] = true;
        while let Some(s) = stack.pop() {
            if reversed {
                for l in &self.links {
                    if l.dst == s && !seen[l.src.index()] {
                        seen[l.src.index()] = true;
                        stack.push(l.src);
                    }
                }
            } else {
                for &lid in self.out_links(s) {
                    let d = self.link(lid).dst;
                    if !seen[d.index()] {
                        seen[d.index()] = true;
                        stack.push(d);
                    }
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Graph {
        let mut g = Graph::new();
        let a = g.add_site("a", (0.0, 0.0));
        let b = g.add_site("b", (1.0, 0.0));
        let c = g.add_site("c", (0.0, 1.0));
        g.add_bidi_link(a, b, 100.0, 1.0);
        g.add_bidi_link(b, c, 100.0, 2.0);
        g.add_bidi_link(c, a, 100.0, 3.0);
        g
    }

    #[test]
    fn add_site_and_link_assigns_sequential_ids() {
        let g = triangle();
        assert_eq!(g.site_count(), 3);
        assert_eq!(g.link_count(), 6);
        assert_eq!(g.link(LinkId(0)).src, SiteId(0));
        assert_eq!(g.link(LinkId(1)).dst, SiteId(0));
    }

    #[test]
    fn out_links_track_sources() {
        let g = triangle();
        // Each site has exactly two outgoing links in a bidi triangle.
        for s in g.site_ids() {
            assert_eq!(g.out_links(s).len(), 2, "site {s}");
        }
    }

    #[test]
    fn find_link_returns_directed_match() {
        let g = triangle();
        let l = g.find_link(SiteId(0), SiteId(1)).expect("a->b exists");
        assert_eq!(g.link(l).dst, SiteId(1));
        assert!(g.find_link(SiteId(0), SiteId(0)).is_none());
    }

    #[test]
    fn strongly_connected_detects_missing_return_path() {
        let mut g = Graph::new();
        let a = g.add_site("a", (0.0, 0.0));
        let b = g.add_site("b", (1.0, 0.0));
        g.add_link(a, b, 10.0, 1.0);
        assert!(!g.is_strongly_connected());
        g.add_link(b, a, 10.0, 1.0);
        assert!(g.is_strongly_connected());
    }

    #[test]
    fn failed_links_zero_capacity_but_keep_ids() {
        let g = triangle();
        let failed = g.with_failed_links(&[LinkId(0)]);
        assert_eq!(failed.link_count(), g.link_count());
        assert!(failed.link(LinkId(0)).capacity_mbps < 1e-100);
        assert_eq!(failed.link(LinkId(1)).capacity_mbps, 100.0);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loops_rejected() {
        let mut g = Graph::new();
        let a = g.add_site("a", (0.0, 0.0));
        g.add_link(a, a, 10.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        let mut g = Graph::new();
        let a = g.add_site("a", (0.0, 0.0));
        let b = g.add_site("b", (1.0, 0.0));
        g.add_link(a, b, 0.0, 1.0);
    }

    #[test]
    fn total_capacity_sums_directed_links() {
        let g = triangle();
        assert_eq!(g.total_capacity_mbps(), 600.0);
    }

    #[test]
    fn site_distance_is_euclidean() {
        let g = triangle();
        assert!((g.site_distance(SiteId(0), SiteId(1)) - 1.0).abs() < 1e-12);
        assert!((g.site_distance(SiteId(1), SiteId(2)) - 2f64.sqrt()).abs() < 1e-12);
    }
}
