//! Sparse revised primal simplex for `max c·x  s.t.  A x ≤ b, x ≥ 0`,
//! `b ≥ 0` — the same LP family as [`crate::simplex`], without the
//! dense tableau.
//!
//! The dense solver materializes an `m × (n + m + 1)` tableau and
//! rewrites all of it on every pivot; at MegaTE's site-LP shapes (a
//! demand row per commodity plus a link row per fiber, a path variable
//! per tunnel) that wall is what forced instances past a few thousand
//! commodities onto the FPTAS. The revised method keeps:
//!
//! * the constraint matrix as immutable sparse CSC columns (slack
//!   columns stay implicit — they are unit vectors);
//! * an explicit basis inverse `B⁻¹` (dense `m × m`, column-major so
//!   both FTRAN and BTRAN walk contiguous memory), updated in place by
//!   the product-form (eta) rank-1 update on each pivot and rebuilt
//!   from the basis by Gauss–Jordan every `REFACTOR_EVERY` pivots to
//!   bound numerical drift;
//! * the full reduced-cost vector, updated incrementally per pivot in
//!   `O(m + nnz(A))` from row `p` of `B⁻¹` instead of re-priced from
//!   scratch, and recomputed exactly at every refactorization and
//!   before declaring optimality.
//!
//! Memory is `O(nnz(A) + m²)` (twice `m²` while a refactorization's
//! Gauss–Jordan scratch is live) versus the tableau's `O(m·(n+m))`, and a
//! pivot costs `O(m² + nnz(A))` versus `O(m·(n+m))` — on path-form MCF
//! instances where paths vastly outnumber rows, both drop by the
//! `n/m` ratio. Pricing is Dantzig's rule with the same switch to
//! Bland's rule as the dense solver to break cycling on degenerate
//! instances.

use crate::simplex::{LinearProgram, LpError, LpSolution, LpStatus};

/// A retained simplex basis — the warm-start state carried between
/// solves of same-shaped instances.
///
/// Holds the basic-variable index per row of the final basis. Re-entry
/// does not replay the eta file: the inverse is rebuilt from these
/// indices by one Gauss–Jordan refactorization (the standard basis-file
/// restart), which is both cheaper than storing `B⁻¹` and numerically
/// fresh. A retained basis is only valid for an instance with the same
/// `(rows, vars)` shape; [`solve_revised_warm`] silently falls back to
/// a cold all-slack start on shape mismatch, a singular basis, or a
/// primal-infeasible restart point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LpBasis {
    basis: Vec<usize>,
    m: usize,
    n: usize,
}

impl LpBasis {
    /// Number of retained basic-variable indices (= constraint rows).
    pub fn len(&self) -> usize {
        self.basis.len()
    }

    /// True for the empty (zero-row) basis.
    pub fn is_empty(&self) -> bool {
        self.basis.is_empty()
    }

    /// The `(rows, vars)` shape this basis was factored for.
    pub fn shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }
}

/// Result of a warm-capable solve: the solution, the final basis for
/// retention, and whether the supplied basis was actually used.
#[derive(Debug, Clone)]
pub struct WarmLpSolve {
    /// The optimal (or unbounded) solution, identical in contract to
    /// [`solve_revised`].
    pub solution: LpSolution,
    /// The final basis, to retain for the next same-shaped solve.
    pub basis: LpBasis,
    /// Whether phase 2 re-entered from the supplied basis (false when
    /// none was given or the fallback path ran cold).
    pub warm_used: bool,
}

/// Numerical tolerance for pricing and feasibility (matches the dense
/// solver so the two report identical statuses on marginal instances).
const EPS: f64 = 1e-9;
/// Smallest acceptable pivot element magnitude; rows whose ratio ties
/// within `EPS` are broken toward larger pivots for stability.
const PIVOT_TOL: f64 = 1e-8;
/// Pivots between Gauss–Jordan rebuilds of the basis inverse.
const REFACTOR_EVERY: usize = 512;

/// Immutable CSC view of the structural columns of `A`.
struct SparseCols {
    ptr: Vec<usize>,
    rows: Vec<u32>,
    vals: Vec<f64>,
}

impl SparseCols {
    fn build(lp: &LinearProgram) -> Self {
        let n = lp.n_vars();
        // Count entries per column (duplicate indices within a row are
        // kept — they accumulate in every dot product, matching the
        // dense solver's `+=` tableau fill).
        let mut counts = vec![0usize; n + 1];
        for row in &lp.rows {
            for &(j, _) in &row.entries {
                counts[j + 1] += 1;
            }
        }
        for j in 0..n {
            counts[j + 1] += counts[j];
        }
        let nnz = counts[n];
        let mut rows = vec![0u32; nnz];
        let mut vals = vec![0.0f64; nnz];
        let mut cursor = counts.clone();
        for (i, row) in lp.rows.iter().enumerate() {
            for &(j, a) in &row.entries {
                let k = cursor[j];
                rows[k] = i as u32;
                vals[k] = a;
                cursor[j] += 1;
            }
        }
        SparseCols {
            ptr: counts,
            rows,
            vals,
        }
    }

    fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.rows[self.ptr[j]..self.ptr[j + 1]]
            .iter()
            .zip(&self.vals[self.ptr[j]..self.ptr[j + 1]])
            .map(|(&r, &v)| (r as usize, v))
    }
}

/// Solver state: basis bookkeeping plus the maintained inverse.
struct Revised<'a> {
    lp: &'a LinearProgram,
    cols: SparseCols,
    m: usize,
    n: usize,
    /// Column-major `m × m` basis inverse: entry `(r, c)` at `c*m + r`.
    binv: Vec<f64>,
    /// Basic variable per row position.
    basis: Vec<usize>,
    in_basis: Vec<bool>,
    /// Current basic solution values (`B⁻¹ b`).
    xb: Vec<f64>,
    /// Reduced costs `c_j − y·A_j` for all `n + m` variables.
    d: Vec<f64>,
    b: Vec<f64>,
}

impl<'a> Revised<'a> {
    fn new(lp: &'a LinearProgram) -> Self {
        let m = lp.rows.len();
        let n = lp.n_vars();
        let cols = SparseCols::build(lp);
        // All-slack start: B = I, so B⁻¹ = I, x_B = b, y = 0, d = c.
        let mut binv = vec![0.0f64; m * m];
        for i in 0..m {
            binv[i * m + i] = 1.0;
        }
        let b: Vec<f64> = lp.rows.iter().map(|r| r.rhs).collect();
        let mut d = vec![0.0f64; n + m];
        d[..n].copy_from_slice(&lp.objective);
        let mut in_basis = vec![false; n + m];
        for flag in in_basis.iter_mut().skip(n) {
            *flag = true;
        }
        Revised {
            lp,
            cols,
            m,
            n,
            binv,
            basis: (n..n + m).collect(),
            in_basis,
            xb: b.clone(),
            d,
            b,
        }
    }

    /// Warm restart: rebuilds the solver state from a retained basis.
    /// Returns `None` (caller falls back to a cold start) when the
    /// basis does not fit this instance's shape, is not a valid row
    /// permutation of variable indices, refactorizes as singular, or
    /// lands primal-infeasible under the new right-hand side.
    fn with_basis(lp: &'a LinearProgram, warm: &LpBasis) -> Option<Self> {
        let m = lp.rows.len();
        let n = lp.n_vars();
        if warm.m != m || warm.n != n || warm.basis.len() != m {
            return None;
        }
        let mut in_basis = vec![false; n + m];
        for &vb in &warm.basis {
            if vb >= n + m || in_basis[vb] {
                return None;
            }
            in_basis[vb] = true;
        }
        let cols = SparseCols::build(lp);
        let b: Vec<f64> = lp.rows.iter().map(|r| r.rhs).collect();
        let mut st = Revised {
            lp,
            cols,
            m,
            n,
            binv: vec![0.0f64; m * m],
            basis: warm.basis.clone(),
            in_basis,
            xb: vec![0.0f64; m],
            d: vec![0.0f64; n + m],
            b,
        };
        // Refactorization rebuilds B⁻¹, x_B and exact reduced costs; a
        // singular retained basis is the designated fallback trigger.
        if st.refactorize().is_err() {
            return None;
        }
        // The retained basis may be primal-infeasible for the new b
        // (dual simplex would repair it; we fall back to cold instead).
        if st.xb.iter().any(|&x| x < 0.0) {
            return None;
        }
        Some(st)
    }

    /// `w = B⁻¹ A_j` (FTRAN) — accumulates scaled columns of `B⁻¹`.
    fn ftran(&self, j: usize, w: &mut [f64]) {
        w.fill(0.0);
        if j < self.n {
            for (i, a) in self.cols.col(j) {
                let col = &self.binv[i * self.m..(i + 1) * self.m];
                for (wr, &br) in w.iter_mut().zip(col) {
                    *wr += a * br;
                }
            }
        } else {
            w.copy_from_slice(&self.binv[(j - self.n) * self.m..(j - self.n + 1) * self.m]);
        }
    }

    /// Recomputes every reduced cost from an exact BTRAN:
    /// `y = c_B B⁻¹`, then `d_j = c_j − y·A_j`.
    fn refresh_reduced_costs(&mut self) {
        let m = self.m;
        let mut y = vec![0.0f64; m];
        for (i, yi) in y.iter_mut().enumerate() {
            let col = &self.binv[i * m..(i + 1) * m];
            let mut acc = 0.0;
            for (r, &br) in col.iter().enumerate() {
                if br != 0.0 {
                    let vb = self.basis[r];
                    if vb < self.n {
                        acc += self.lp.objective[vb] * br;
                    }
                }
            }
            *yi = acc;
        }
        for j in 0..self.n {
            let dot: f64 = self.cols.col(j).map(|(i, a)| a * y[i]).sum();
            self.d[j] = self.lp.objective[j] - dot;
        }
        for (i, yi) in y.iter().enumerate().take(m) {
            self.d[self.n + i] = -yi;
        }
        for &vb in &self.basis {
            self.d[vb] = 0.0;
        }
    }

    /// Rebuilds `B⁻¹` from the basis columns by Gauss–Jordan with
    /// partial pivoting, then restores `x_B = B⁻¹ b` and the exact
    /// reduced costs. Bounds the drift of the product-form updates.
    fn refactorize(&mut self) -> Result<(), LpError> {
        let m = self.m;
        // Dense working copy of B, column-major like binv.
        let mut bmat = vec![0.0f64; m * m];
        for (pos, &vb) in self.basis.iter().enumerate() {
            if vb < self.n {
                for (i, a) in self.cols.col(vb) {
                    bmat[pos * m + i] += a;
                }
            } else {
                bmat[pos * m + (vb - self.n)] = 1.0;
            }
        }
        let inv = &mut self.binv;
        inv.fill(0.0);
        for i in 0..m {
            inv[i * m + i] = 1.0;
        }
        for k in 0..m {
            // Partial pivot: largest |entry| in column k at rows >= k.
            let (mut prow, mut pval) = (k, bmat[k * m + k].abs());
            for r in k + 1..m {
                let v = bmat[k * m + r].abs();
                if v > pval {
                    prow = r;
                    pval = v;
                }
            }
            if pval < PIVOT_TOL * PIVOT_TOL {
                // Numerically singular basis — treat as irrecoverable.
                return Err(LpError::IterationLimit);
            }
            if prow != k {
                for c in 0..m {
                    bmat.swap(c * m + k, c * m + prow);
                    inv.swap(c * m + k, c * m + prow);
                }
            }
            let piv = bmat[k * m + k];
            for c in 0..m {
                bmat[c * m + k] /= piv;
                inv[c * m + k] /= piv;
            }
            for r in 0..m {
                if r == k {
                    continue;
                }
                let f = bmat[k * m + r];
                if f != 0.0 {
                    for c in 0..m {
                        bmat[c * m + r] -= f * bmat[c * m + k];
                        inv[c * m + r] -= f * inv[c * m + k];
                    }
                }
            }
        }
        // x_B = B⁻¹ b.
        self.xb.fill(0.0);
        for (i, &bi) in self.b.iter().enumerate() {
            if bi != 0.0 {
                let col = &inv[i * m..(i + 1) * m];
                for (x, &v) in self.xb.iter_mut().zip(col) {
                    *x += bi * v;
                }
            }
        }
        for x in &mut self.xb {
            if *x < 0.0 && *x > -1e-7 {
                *x = 0.0;
            }
        }
        self.refresh_reduced_costs();
        Ok(())
    }

    /// Product-form (eta) update after pivoting variable `enter` into
    /// row `p` with FTRAN column `w`: updates `B⁻¹`, `x_B`, and the
    /// reduced costs in `O(m² + nnz(A))`.
    fn pivot(&mut self, enter: usize, p: usize, w: &[f64]) {
        let m = self.m;
        let wp = w[p];
        // x_B update.
        let step = self.xb[p] / wp;
        for (r, x) in self.xb.iter_mut().enumerate() {
            if r != p {
                *x -= w[r] * step;
                if *x < 0.0 && *x > -1e-9 {
                    *x = 0.0;
                }
            }
        }
        self.xb[p] = step;
        // Reduced-cost update from row p of the *new* B⁻¹. Row p of the
        // old inverse is rho; new row p is rho / wp, and
        // d'_j = d_j − (d_enter / wp) · (rho · A_j).
        let theta = self.d[enter] / wp;
        let mut rho = vec![0.0f64; m];
        for (c, rc) in rho.iter_mut().enumerate() {
            *rc = self.binv[c * m + p];
        }
        if theta != 0.0 {
            // Distribute row-wise over the nonzeros of rho instead of
            // gathering column-wise over all of A: rho is row p of
            // B⁻¹ and stays sparse for most of the solve, and the row
            // entries walk contiguous memory.
            for (i, &ri) in rho.iter().enumerate() {
                if ri != 0.0 {
                    let tri = theta * ri;
                    for &(j, a) in &self.lp.rows[i].entries {
                        self.d[j] -= tri * a;
                    }
                    self.d[self.n + i] -= tri;
                }
            }
            // Basic variables keep d = 0 by definition; the distributed
            // updates touched them, so force them back.
            for &vb in &self.basis {
                self.d[vb] = 0.0;
            }
        }
        // Eta update of B⁻¹: new_col_c[p] = rho[c]/wp, and
        // new_col_c[r] -= w[r] * new_col_c[p] for r != p.
        for (c, rc) in rho.iter().enumerate().take(m) {
            let t = rc / wp;
            if t != 0.0 {
                let col = &mut self.binv[c * m..(c + 1) * m];
                for (r, cr) in col.iter_mut().enumerate() {
                    if r != p {
                        *cr -= w[r] * t;
                    }
                }
                col[p] = t;
            } else {
                self.binv[c * m + p] = 0.0;
            }
        }
        // Basis bookkeeping; the leaving variable's reduced cost comes
        // out of the same update formula with alpha = 1.
        let leave = self.basis[p];
        self.in_basis[leave] = false;
        self.d[leave] = -theta;
        self.basis[p] = enter;
        self.in_basis[enter] = true;
        self.d[enter] = 0.0;
    }

    fn solution(&self, pivots: usize) -> LpSolution {
        let mut x = vec![0.0f64; self.n];
        for (r, &vb) in self.basis.iter().enumerate() {
            if vb < self.n {
                x[vb] = self.xb[r].max(0.0);
            }
        }
        let objective = self.lp.objective_at(&x);
        // Slack j = n+i has reduced cost −y_i, so the duals fall out of
        // the final pricing vector (clamped like the dense solver).
        let duals: Vec<f64> = (0..self.m)
            .map(|i| (-self.d[self.n + i]).max(0.0))
            .collect();
        LpSolution {
            status: LpStatus::Optimal,
            x,
            objective,
            pivots,
            duals,
        }
    }

    fn unbounded(&self, pivots: usize) -> LpSolution {
        LpSolution {
            status: LpStatus::Unbounded,
            x: vec![0.0; self.n],
            objective: f64::INFINITY,
            pivots,
            duals: vec![0.0; self.m],
        }
    }
}

/// Solves with the sparse revised simplex. Same contract as the dense
/// [`crate::simplex::LinearProgram::solve_dense`]: `Optimal` with
/// primal/dual values, `Unbounded`, or an [`LpError`].
pub fn solve_revised(lp: &LinearProgram) -> Result<LpSolution, LpError> {
    solve_revised_warm(lp, None).map(|w| w.solution)
}

/// [`solve_revised`] with optional warm-start from a retained
/// [`LpBasis`] of a previous same-shaped solve.
///
/// When `warm` fits (same shape, refactorizes cleanly, primal-feasible
/// under the new right-hand side), phase 2 re-enters from it and
/// steady-state re-solves typically price out in a handful of pivots.
/// Otherwise — and on any numerical failure along the warm path — the
/// solve silently falls back to the cold all-slack start, so the
/// result contract is exactly that of [`solve_revised`]. The returned
/// basis is always the final one, ready to retain for the next solve.
pub fn solve_revised_warm(
    lp: &LinearProgram,
    warm: Option<&LpBasis>,
) -> Result<WarmLpSolve, LpError> {
    let m = lp.rows.len();
    let n = lp.n_vars();
    if n == 0 {
        return Ok(WarmLpSolve {
            solution: LpSolution {
                status: LpStatus::Optimal,
                x: vec![],
                objective: 0.0,
                pivots: 0,
                duals: vec![0.0; m],
            },
            basis: LpBasis {
                basis: (0..m).collect(),
                m,
                n,
            },
            warm_used: false,
        });
    }
    let _span = megate_obs::span("lp.solve");
    let mut warm_used = false;
    let mut st = match warm.and_then(|wb| Revised::with_basis(lp, wb)) {
        Some(st) => {
            warm_used = true;
            megate_obs::counter("lp.warm_starts").inc();
            st
        }
        None => Revised::new(lp),
    };
    // A warm restart just refactorized, so its prices are exact.
    let solution = match run_simplex(&mut st, warm_used) {
        Ok(s) => s,
        Err(_) if warm_used => {
            // Numerical trouble on the warm path: retry cold before
            // reporting failure, so a stale basis can never make a
            // previously solvable instance unsolvable.
            warm_used = false;
            st = Revised::new(lp);
            run_simplex(&mut st, false)?
        }
        Err(e) => return Err(e),
    };
    let basis = LpBasis {
        basis: st.basis.clone(),
        m,
        n,
    };
    Ok(WarmLpSolve {
        solution,
        basis,
        warm_used,
    })
}

/// The shared phase-2 pivot loop. `start_verified` marks the entry
/// state's reduced costs as exactly priced (true right after a warm
/// restart's refactorization).
fn run_simplex(st: &mut Revised, start_verified: bool) -> Result<LpSolution, LpError> {
    let m = st.m;
    let n = st.n;
    // Metric handles are resolved once per solve; per-pivot cost is a
    // single relaxed add behind the obs enabled() branch.
    let pivot_ctr = megate_obs::counter("lp.pivots");
    let refactor_ctr = megate_obs::counter("lp.refactorizations");
    let mut w = vec![0.0f64; m];
    let mut pivots = 0usize;
    let limit = 50_000 + 40 * (m + n);
    let bland_after = limit / 2;
    let mut bland = false;
    // Set when the incremental reduced costs said "optimal" and we just
    // re-verified them exactly — terminates the refresh loop.
    let mut verified = start_verified;

    loop {
        // Entering variable: Dantzig (most positive reduced cost), or
        // Bland (lowest index) once the pivot budget is half spent.
        let mut enter: Option<usize> = None;
        if !bland {
            let mut best = EPS;
            for (j, &dj) in st.d.iter().enumerate() {
                if !st.in_basis[j] && dj > best {
                    best = dj;
                    enter = Some(j);
                }
            }
        } else {
            enter = (0..n + m).find(|&j| !st.in_basis[j] && st.d[j] > EPS);
        }
        let enter = match enter {
            Some(j) => j,
            None => {
                if verified {
                    break;
                }
                // The incremental prices may have drifted: rebuild and
                // re-price exactly before declaring optimality.
                st.refactorize()?;
                refactor_ctr.inc();
                verified = true;
                continue;
            }
        };

        st.ftran(enter, &mut w);

        // Ratio test. Ties within EPS break toward the larger pivot
        // element (stability) under Dantzig, toward the smallest basis
        // index (anti-cycling) under Bland.
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for (r, &wr) in w.iter().enumerate() {
            if wr > PIVOT_TOL {
                let ratio = st.xb[r] / wr;
                let better = match leave {
                    None => true,
                    Some(l) => {
                        ratio < best_ratio - EPS
                            || (ratio < best_ratio + EPS
                                && if bland {
                                    st.basis[r] < st.basis[l]
                                } else {
                                    wr > w[l]
                                })
                    }
                };
                if better {
                    best_ratio = ratio;
                    leave = Some(r);
                }
            }
        }
        let p = match leave {
            Some(p) => p,
            None => {
                // Nothing blocks the entering column; but verify with a
                // fresh factorization before reporting unbounded, since
                // an eta-drifted column can look all-nonpositive.
                if verified {
                    return Ok(st.unbounded(pivots));
                }
                st.refactorize()?;
                refactor_ctr.inc();
                verified = true;
                continue;
            }
        };

        st.pivot(enter, p, &w);
        pivots += 1;
        pivot_ctr.inc();
        verified = false;
        if pivots >= limit {
            return Err(LpError::IterationLimit);
        }
        if !bland && pivots >= bland_after {
            bland = true;
            st.refactorize()?;
            refactor_ctr.inc();
            verified = true;
        } else if pivots.is_multiple_of(REFACTOR_EVERY) {
            st.refactorize()?;
            refactor_ctr.inc();
            verified = true;
        }
    }

    Ok(st.solution(pivots))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simplex::LinearProgram;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_two_variable_lp() {
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.add_le(vec![(0, 1.0)], 4.0);
        lp.add_le(vec![(1, 2.0)], 12.0);
        lp.add_le(vec![(0, 3.0), (1, 2.0)], 18.0);
        let s = solve_revised(&lp).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
        assert_close(s.duals[0], 0.0);
        assert_close(s.duals[1], 1.5);
        assert_close(s.duals[2], 1.0);
    }

    #[test]
    fn unconstrained_positive_objective_is_unbounded() {
        let lp = LinearProgram::maximize(vec![1.0]);
        let s = solve_revised(&lp).unwrap();
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        let mut lp = LinearProgram::maximize(vec![0.75, -150.0, 0.02, -6.0]);
        lp.add_le(vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], 0.0);
        lp.add_le(vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], 0.0);
        lp.add_le(vec![(2, 1.0)], 1.0);
        let s = solve_revised(&lp).unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn duplicate_entry_indices_accumulate() {
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_le(vec![(0, 1.0), (0, 1.0)], 4.0);
        let s = solve_revised(&lp).unwrap();
        assert_close(s.objective, 2.0);
    }

    /// Random sparse LPs where the dense tableau solver is the oracle:
    /// objective values and duals must agree to 1e-6.
    fn random_lp(n: usize, m_extra: usize, seed: u64) -> LinearProgram {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..5.0)).collect();
        let mut lp = LinearProgram::maximize(obj);
        for _ in 0..m_extra {
            let mut entries: Vec<(usize, f64)> = Vec::new();
            for j in 0..n {
                if rng.gen_bool(0.4) {
                    entries.push((j, rng.gen_range(0.1..3.0)));
                }
            }
            if !entries.is_empty() {
                lp.add_le(entries, rng.gen_range(0.5..20.0));
            }
        }
        for j in 0..n {
            lp.add_le(vec![(j, 1.0)], rng.gen_range(1.0..40.0));
        }
        lp
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]
        #[test]
        fn matches_dense_objective_and_duals(
            n in 1usize..10,
            m_extra in 0usize..8,
            seed in 0u64..10_000,
        ) {
            let lp = random_lp(n, m_extra, seed);
            let rev = solve_revised(&lp).unwrap();
            let dense = lp.solve_dense().unwrap();
            proptest::prop_assert_eq!(rev.status, dense.status);
            let scale = 1.0 + dense.objective.abs();
            proptest::prop_assert!(
                (rev.objective - dense.objective).abs() < 1e-6 * scale,
                "objective: revised {} vs dense {}", rev.objective, dense.objective
            );
            proptest::prop_assert!(lp.is_feasible(&rev.x));
            // Optimal bases may differ, but strong duality pins y·b.
            let yb_rev: f64 = rev.duals.iter().zip(&lp.rows).map(|(y, r)| y * r.rhs).sum();
            proptest::prop_assert!(
                (yb_rev - dense.objective).abs() < 1e-6 * scale,
                "dual objective: revised y·b {} vs primal {}", yb_rev, dense.objective
            );
            proptest::prop_assert!(rev.duals.iter().all(|&y| y >= -1e-9));
        }
    }

    #[test]
    fn warm_restart_matches_cold_on_perturbed_rhs() {
        // Solve once, perturb every right-hand side, re-solve warm: the
        // objective must match a cold solve to full precision and the
        // warm path must actually engage (same shape, feasible basis).
        let lp0 = random_lp(8, 6, 42);
        let first = solve_revised_warm(&lp0, None).unwrap();
        assert!(!first.warm_used);
        let mut lp1 = lp0.clone();
        for (i, row) in lp1.rows.iter_mut().enumerate() {
            row.rhs *= 1.0 + 0.05 * ((i % 3) as f64);
        }
        let warm = solve_revised_warm(&lp1, Some(&first.basis)).unwrap();
        let cold = solve_revised(&lp1).unwrap();
        assert_eq!(warm.solution.status, cold.status);
        let scale = 1.0 + cold.objective.abs();
        assert!(
            (warm.solution.objective - cold.objective).abs() < 1e-6 * scale,
            "warm {} vs cold {}",
            warm.solution.objective,
            cold.objective
        );
        assert!(lp1.is_feasible(&warm.solution.x));
        // Unchanged instance: the retained basis is optimal as-is, so
        // the warm re-solve prices out with zero pivots.
        let again = solve_revised_warm(&lp0, Some(&first.basis)).unwrap();
        assert!(again.warm_used);
        assert_eq!(again.solution.pivots, 0);
        assert!((again.solution.objective - first.solution.objective).abs() < 1e-9 * scale);
    }

    #[test]
    fn warm_restart_falls_back_on_shape_mismatch() {
        let lp0 = random_lp(6, 4, 7);
        let first = solve_revised_warm(&lp0, None).unwrap();
        // A different shape: the basis must be rejected, not misapplied.
        let lp1 = random_lp(7, 4, 7);
        let warm = solve_revised_warm(&lp1, Some(&first.basis)).unwrap();
        assert!(!warm.warm_used, "mismatched shape must fall back cold");
        let cold = solve_revised(&lp1).unwrap();
        assert!((warm.solution.objective - cold.objective).abs() < 1e-9);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(48))]
        #[test]
        fn warm_restart_is_exact_under_random_churn(
            n in 2usize..8,
            m_extra in 1usize..6,
            seed in 0u64..10_000,
        ) {
            use rand::{Rng, SeedableRng};
            let lp0 = random_lp(n, m_extra, seed);
            let mut prev = solve_revised_warm(&lp0, None).unwrap();
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0xbeef);
            // A short churn sequence re-using each solve's final basis.
            for _ in 0..3 {
                let mut lp = lp0.clone();
                for row in &mut lp.rows {
                    row.rhs *= rng.gen_range(0.5..1.5);
                }
                let warm = solve_revised_warm(&lp, Some(&prev.basis)).unwrap();
                let cold = solve_revised(&lp).unwrap();
                let scale = 1.0 + cold.objective.abs();
                proptest::prop_assert_eq!(warm.solution.status, cold.status);
                proptest::prop_assert!(
                    (warm.solution.objective - cold.objective).abs() < 1e-6 * scale,
                    "warm {} vs cold {}", warm.solution.objective, cold.objective
                );
                proptest::prop_assert!(lp.is_feasible(&warm.solution.x));
                prev = warm;
            }
        }
    }

    #[test]
    fn forces_refactorization_on_long_runs() {
        // A chain LP needing well over REFACTOR_EVERY would be slow to
        // build here; instead check refactorize() directly preserves
        // the state mid-solve via a moderately pivot-heavy instance.
        let n = 60;
        let mut lp = LinearProgram::maximize((1..=n).map(|i| i as f64).collect());
        for i in 0..n {
            let mut entries = vec![(i, 1.0)];
            if i > 0 {
                entries.push((i - 1, 0.5));
            }
            lp.add_le(entries, 1.0 + (i % 7) as f64);
        }
        let s = solve_revised(&lp).unwrap();
        let dense = lp.solve_dense().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.objective - dense.objective).abs() < 1e-6 * (1.0 + dense.objective.abs()));
    }
}
