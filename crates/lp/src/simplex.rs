//! Primal simplex for `max c·x  s.t.  A x ≤ b,  x ≥ 0,  b ≥ 0`.
//!
//! All of MegaTE's LPs (Equation 2 and the LP-all baseline) are in this
//! form, which admits the all-slack starting basis — no phase-1 needed.
//! [`LinearProgram::solve`] runs the sparse revised simplex in
//! [`crate::revised`] (memory `O(nnz + m²)`); the dense tableau solver
//! below remains as [`LinearProgram::solve_dense`], the reference
//! implementation the revised core is property-tested against. Dantzig
//! pricing with an automatic switch to Bland's rule guards against
//! cycling on degenerate instances. Instances too large even for the
//! revised working set should use the FPTAS in [`crate::mcf`] instead
//! (that mirrors the paper, where exact LP at endpoint granularity runs
//! out of memory — §6.2).

/// Numerical tolerance for pivoting and feasibility checks.
const EPS: f64 = 1e-9;

/// A sparse constraint row `Σ coeff_j · x_j ≤ rhs`.
#[derive(Debug, Clone, Default)]
pub struct SparseRow {
    /// `(variable index, coefficient)` pairs; indices must be unique.
    pub entries: Vec<(usize, f64)>,
    /// Right-hand side (must be ≥ 0).
    pub rhs: f64,
}

/// A linear program `max c·x  s.t.  rows,  x ≥ 0`.
///
/// ```
/// use megate_lp::LinearProgram;
///
/// // max 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18
/// let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
/// lp.add_le(vec![(0, 1.0)], 4.0);
/// lp.add_le(vec![(1, 2.0)], 12.0);
/// lp.add_le(vec![(0, 3.0), (1, 2.0)], 18.0);
/// let s = lp.solve().unwrap();
/// assert!((s.objective - 36.0).abs() < 1e-9);
/// assert!((s.duals[2] - 1.0).abs() < 1e-9); // shadow price of row 3
/// ```
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    /// Objective coefficients, one per variable.
    pub objective: Vec<f64>,
    /// `≤` constraint rows.
    pub rows: Vec<SparseRow>,
}

impl LinearProgram {
    /// A program over `n_vars` variables with the given maximization
    /// objective.
    pub fn maximize(objective: Vec<f64>) -> Self {
        Self {
            objective,
            rows: Vec::new(),
        }
    }

    /// Number of structural variables.
    pub fn n_vars(&self) -> usize {
        self.objective.len()
    }

    /// Adds `Σ coeff·x ≤ rhs`. Entries with out-of-range indices panic.
    pub fn add_le(&mut self, entries: Vec<(usize, f64)>, rhs: f64) {
        assert!(rhs >= 0.0, "simplex requires rhs >= 0 (got {rhs})");
        for &(j, _) in &entries {
            assert!(j < self.n_vars(), "variable index {j} out of range");
        }
        self.rows.push(SparseRow { entries, rhs });
    }

    /// Estimated dense tableau size in f64 entries — what
    /// [`solve_dense`](Self::solve_dense) would allocate.
    pub fn tableau_entries(&self) -> usize {
        let m = self.rows.len();
        let n = self.n_vars();
        m.saturating_mul(n + m + 1)
    }

    /// Estimated working-set size of the revised solver in f64
    /// entries: the dense `m × m` basis inverse, the equally sized
    /// Gauss–Jordan scratch matrix live during refactorization, and
    /// the sparse constraint columns — `2m² + nnz`. Callers use this
    /// to decide exact-vs-FPTAS, and [`solve`](Self::solve) enforces
    /// [`TABLEAU_ENTRY_CAP`] on it.
    pub fn revised_entries(&self) -> usize {
        let m = self.rows.len();
        let nnz: usize = self.rows.iter().map(|r| r.entries.len()).sum();
        m.saturating_mul(m).saturating_mul(2).saturating_add(nnz)
    }

    /// Solves the LP with the sparse revised simplex (see
    /// [`crate::revised`]). See [`LpError`] for failure modes.
    pub fn solve(&self) -> Result<LpSolution, LpError> {
        let entries = self.revised_entries();
        if entries > TABLEAU_ENTRY_CAP {
            return Err(LpError::TooLarge {
                entries,
                cap: TABLEAU_ENTRY_CAP,
            });
        }
        crate::revised::solve_revised(self)
    }

    /// Solves like [`solve`](Self::solve) but may re-enter phase 2 from
    /// a retained [`LpBasis`](crate::revised::LpBasis) of a previous
    /// same-shaped solve, and always returns the final basis for
    /// retention. Falls back to a cold start (never errors) when the
    /// warm basis does not fit; see
    /// [`solve_revised_warm`](crate::revised::solve_revised_warm).
    pub fn solve_warm(
        &self,
        warm: Option<&crate::revised::LpBasis>,
    ) -> Result<crate::revised::WarmLpSolve, LpError> {
        let entries = self.revised_entries();
        if entries > TABLEAU_ENTRY_CAP {
            return Err(LpError::TooLarge {
                entries,
                cap: TABLEAU_ENTRY_CAP,
            });
        }
        crate::revised::solve_revised_warm(self, warm)
    }

    /// Solves the LP with the dense tableau simplex — kept as the
    /// reference implementation and for benchmarking against
    /// [`solve`](Self::solve).
    pub fn solve_dense(&self) -> Result<LpSolution, LpError> {
        solve_dense(self)
    }

    /// Checks a point for primal feasibility within tolerance.
    pub fn is_feasible(&self, x: &[f64]) -> bool {
        if x.len() != self.n_vars() || x.iter().any(|&v| v < -EPS) {
            return false;
        }
        self.rows.iter().all(|row| {
            let lhs: f64 = row.entries.iter().map(|&(j, c)| c * x[j]).sum();
            lhs <= row.rhs + EPS * (1.0 + row.rhs.abs())
        })
    }

    /// Objective value at a point.
    pub fn objective_at(&self, x: &[f64]) -> f64 {
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }
}

/// Solver outcome status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// Optimal solution found.
    Optimal,
    /// Objective can grow without bound.
    Unbounded,
}

/// A solved LP.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Status (only `Optimal` carries a meaningful point).
    pub status: LpStatus,
    /// Optimal assignment of the structural variables.
    pub x: Vec<f64>,
    /// Objective value `c·x`.
    pub objective: f64,
    /// Simplex pivot count (diagnostics for the run-time figures).
    pub pivots: usize,
    /// Dual value (shadow price) per constraint row: how much the
    /// objective would gain per unit of extra right-hand side. For the
    /// MCF LPs these are the *link congestion prices* — a link with a
    /// positive dual is a binding bottleneck.
    pub duals: Vec<f64>,
}

/// Solver failure modes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpError {
    /// The solver's working set would exceed the memory cap. This is
    /// the behaviour the paper reports for LP-all at hyper-scale
    /// ("out-of-memory issues"); callers surface it as such.
    TooLarge {
        /// Entries the tableau would need.
        entries: usize,
        /// The configured cap.
        cap: usize,
    },
    /// Pivot limit exceeded (numerical trouble).
    IterationLimit,
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::TooLarge { entries, cap } => {
                write!(
                    f,
                    "LP working set needs {entries} entries (cap {cap}): out of memory"
                )
            }
            LpError::IterationLimit => write!(f, "simplex iteration limit exceeded"),
        }
    }
}

impl std::error::Error for LpError {}

/// Hard cap on solver working-set entries (~1.6 GB of f64). Mirrors
/// the OOM wall the paper reports for exact LP at endpoint granularity.
pub const TABLEAU_ENTRY_CAP: usize = 200_000_000;

fn solve_dense(lp: &LinearProgram) -> Result<LpSolution, LpError> {
    let m = lp.rows.len();
    let n = lp.n_vars();
    let entries = lp.tableau_entries();
    if entries > TABLEAU_ENTRY_CAP {
        return Err(LpError::TooLarge {
            entries,
            cap: TABLEAU_ENTRY_CAP,
        });
    }
    if n == 0 {
        return Ok(LpSolution {
            status: LpStatus::Optimal,
            x: vec![],
            objective: 0.0,
            pivots: 0,
            duals: vec![0.0; m],
        });
    }

    let width = n + m + 1; // structural + slack + rhs
                           // Tableau rows 0..m are constraints; row m is the objective row with
                           // reduced costs (stored negated-for-min convention avoided: we keep
                           // `z_j - c_j` so optimality is "all entries >= 0").
    let mut t = vec![0.0f64; (m + 1) * width];
    let idx = |r: usize, c: usize| r * width + c;

    for (i, row) in lp.rows.iter().enumerate() {
        for &(j, coeff) in &row.entries {
            t[idx(i, j)] += coeff;
        }
        t[idx(i, n + i)] = 1.0; // slack
        t[idx(i, width - 1)] = row.rhs;
    }
    for j in 0..n {
        t[idx(m, j)] = -lp.objective[j]; // z_j - c_j with all-slack basis
    }

    let mut basis: Vec<usize> = (n..n + m).collect();
    let mut pivots = 0usize;
    // Generous pivot budget; switch to Bland after the first half to
    // break any cycling.
    let limit = 50_000 + 40 * (m + n);
    let bland_after = limit / 2;

    loop {
        // Entering variable.
        let mut enter: Option<usize> = None;
        if pivots < bland_after {
            let mut best = -EPS;
            for j in 0..n + m {
                let rc = t[idx(m, j)];
                if rc < best {
                    best = rc;
                    enter = Some(j);
                }
            }
        } else {
            enter = (0..n + m).find(|&j| t[idx(m, j)] < -EPS);
        }
        let enter = match enter {
            Some(j) => j,
            None => break, // optimal
        };

        // Ratio test (Bland-compatible: smallest ratio, ties by basis idx).
        let mut leave: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            let a = t[idx(i, enter)];
            if a > EPS {
                let ratio = t[idx(i, width - 1)] / a;
                if ratio < best_ratio - EPS
                    || (ratio < best_ratio + EPS && leave.is_none_or(|l| basis[i] < basis[l]))
                {
                    best_ratio = ratio;
                    leave = Some(i);
                }
            }
        }
        let leave = match leave {
            Some(i) => i,
            None => {
                return Ok(LpSolution {
                    status: LpStatus::Unbounded,
                    x: vec![0.0; n],
                    objective: f64::INFINITY,
                    pivots,
                    duals: vec![0.0; m],
                })
            }
        };

        // Pivot on (leave, enter).
        let piv = t[idx(leave, enter)];
        for c in 0..width {
            t[idx(leave, c)] /= piv;
        }
        for r in 0..=m {
            if r == leave {
                continue;
            }
            let factor = t[idx(r, enter)];
            if factor.abs() > EPS {
                for c in 0..width {
                    t[idx(r, c)] -= factor * t[idx(leave, c)];
                }
            }
        }
        basis[leave] = enter;
        pivots += 1;
        if pivots >= limit {
            return Err(LpError::IterationLimit);
        }
    }

    let mut x = vec![0.0f64; n];
    for (i, &b) in basis.iter().enumerate() {
        if b < n {
            x[b] = t[idx(i, width - 1)].max(0.0);
        }
    }
    let objective = lp.objective_at(&x);
    // Duals: the reduced cost of constraint i's slack column in the
    // optimal objective row equals y_i (complementary slackness).
    let duals: Vec<f64> = (0..m).map(|i| t[idx(m, n + i)].max(0.0)).collect();
    Ok(LpSolution {
        status: LpStatus::Optimal,
        x,
        objective,
        pivots,
        duals,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn textbook_two_variable_lp() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  -> (2, 6), z=36.
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.add_le(vec![(0, 1.0)], 4.0);
        lp.add_le(vec![(1, 2.0)], 12.0);
        lp.add_le(vec![(0, 3.0), (1, 2.0)], 18.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 36.0);
        assert_close(s.x[0], 2.0);
        assert_close(s.x[1], 6.0);
    }

    #[test]
    fn unconstrained_positive_objective_is_unbounded() {
        let lp = LinearProgram::maximize(vec![1.0]);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic Beale-style degeneracy trigger.
        let mut lp = LinearProgram::maximize(vec![0.75, -150.0, 0.02, -6.0]);
        lp.add_le(vec![(0, 0.25), (1, -60.0), (2, -0.04), (3, 9.0)], 0.0);
        lp.add_le(vec![(0, 0.5), (1, -90.0), (2, -0.02), (3, 3.0)], 0.0);
        lp.add_le(vec![(2, 1.0)], 1.0);
        let s = lp.solve().unwrap();
        assert_eq!(s.status, LpStatus::Optimal);
        assert_close(s.objective, 0.05);
    }

    #[test]
    fn zero_objective_returns_zero_point() {
        let mut lp = LinearProgram::maximize(vec![0.0, 0.0]);
        lp.add_le(vec![(0, 1.0), (1, 1.0)], 5.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 0.0);
    }

    #[test]
    fn duplicate_entry_indices_accumulate() {
        // x + x <= 4 means 2x <= 4.
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_le(vec![(0, 1.0), (0, 1.0)], 4.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 2.0);
    }

    #[test]
    fn too_large_reports_oom() {
        let n = 20_000;
        let mut lp = LinearProgram::maximize(vec![1.0; n]);
        for _ in 0..n {
            lp.add_le(vec![(0, 1.0)], 1.0);
        }
        match lp.solve() {
            Err(LpError::TooLarge { .. }) => {}
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "rhs >= 0")]
    fn negative_rhs_rejected() {
        let mut lp = LinearProgram::maximize(vec![1.0]);
        lp.add_le(vec![(0, 1.0)], -1.0);
    }

    #[test]
    fn knapsack_relaxation_picks_best_density() {
        // max 10a + 6b s.t. a <= 1, b <= 1, 5a + 4b <= 7 -> a=1, b=0.5.
        let mut lp = LinearProgram::maximize(vec![10.0, 6.0]);
        lp.add_le(vec![(0, 1.0)], 1.0);
        lp.add_le(vec![(1, 1.0)], 1.0);
        lp.add_le(vec![(0, 5.0), (1, 4.0)], 7.0);
        let s = lp.solve().unwrap();
        assert_close(s.objective, 13.0);
    }

    #[test]
    fn duals_price_binding_constraints() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18.
        // Known duals: y1 = 0 (slack), y2 = 3/2, y3 = 1.
        let mut lp = LinearProgram::maximize(vec![3.0, 5.0]);
        lp.add_le(vec![(0, 1.0)], 4.0);
        lp.add_le(vec![(1, 2.0)], 12.0);
        lp.add_le(vec![(0, 3.0), (1, 2.0)], 18.0);
        let s = lp.solve().unwrap();
        assert!((s.duals[0] - 0.0).abs() < 1e-9, "{:?}", s.duals);
        assert!((s.duals[1] - 1.5).abs() < 1e-9, "{:?}", s.duals);
        assert!((s.duals[2] - 1.0).abs() < 1e-9, "{:?}", s.duals);
        // Strong duality: y·b == c·x at the optimum.
        let yb: f64 = s.duals[0] * 4.0 + s.duals[1] * 12.0 + s.duals[2] * 18.0;
        assert!((yb - s.objective).abs() < 1e-9);
    }

    /// Brute-force LP oracle: for 2-variable LPs, scan a fine grid.
    fn grid_oracle(lp: &LinearProgram, hi: f64) -> f64 {
        let steps = 400;
        let mut best = 0.0f64;
        for i in 0..=steps {
            for j in 0..=steps {
                let x = [hi * i as f64 / steps as f64, hi * j as f64 / steps as f64];
                if lp.is_feasible(&x) {
                    best = best.max(lp.objective_at(&x));
                }
            }
        }
        best
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn random_2d_lps_match_grid_oracle(
            c0 in 0.0f64..10.0, c1 in 0.0f64..10.0,
            a in 0.5f64..4.0, b in 0.5f64..4.0, r in 1.0f64..20.0,
            ub0 in 1.0f64..10.0, ub1 in 1.0f64..10.0,
        ) {
            let mut lp = LinearProgram::maximize(vec![c0, c1]);
            lp.add_le(vec![(0, a), (1, b)], r);
            lp.add_le(vec![(0, 1.0)], ub0);
            lp.add_le(vec![(1, 1.0)], ub1);
            let s = lp.solve().unwrap();
            prop_assert_eq!(s.status, LpStatus::Optimal);
            prop_assert!(lp.is_feasible(&s.x));
            let oracle = grid_oracle(&lp, ub0.max(ub1));
            // Simplex must match the grid oracle up to grid resolution.
            prop_assert!(s.objective >= oracle - 0.35,
                "simplex {} < grid {}", s.objective, oracle);
        }

        #[test]
        fn strong_duality_holds(
            c0 in 0.0f64..10.0, c1 in 0.0f64..10.0,
            a in 0.5f64..4.0, b in 0.5f64..4.0, r in 1.0f64..20.0,
        ) {
            let mut lp = LinearProgram::maximize(vec![c0, c1]);
            lp.add_le(vec![(0, a), (1, b)], r);
            lp.add_le(vec![(0, 1.0)], 7.0);
            lp.add_le(vec![(1, 1.0)], 9.0);
            let s = lp.solve().unwrap();
            prop_assert_eq!(s.status, LpStatus::Optimal);
            let yb: f64 = s.duals[0] * r + s.duals[1] * 7.0 + s.duals[2] * 9.0;
            prop_assert!((yb - s.objective).abs() < 1e-6 * (1.0 + s.objective.abs()),
                "strong duality: y*b {} vs c*x {}", yb, s.objective);
            prop_assert!(s.duals.iter().all(|&y| y >= -1e-9), "dual feasibility");
        }

        #[test]
        fn solutions_always_feasible(
            n in 1usize..6,
            seed in 0u64..1000,
        ) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..5.0)).collect();
            let mut lp = LinearProgram::maximize(obj);
            for _ in 0..n + 2 {
                let mut entries: Vec<(usize, f64)> = Vec::new();
                for j in 0..n {
                    if rng.gen_bool(0.7) {
                        entries.push((j, rng.gen_range(0.1..3.0)));
                    }
                }
                if !entries.is_empty() {
                    lp.add_le(entries, rng.gen_range(0.5..20.0));
                }
            }
            // Cap each variable so the LP is bounded.
            for j in 0..n {
                lp.add_le(vec![(j, 1.0)], 50.0);
            }
            let s = lp.solve().unwrap();
            prop_assert_eq!(s.status, LpStatus::Optimal);
            prop_assert!(lp.is_feasible(&s.x));
        }
    }
}
