//! Linear-programming substrate for MegaTE's first-stage `MaxSiteFlow`.
//!
//! The paper solves its site-level LP (Equation 2) with Gurobi. Rust has
//! no comparable off-the-shelf solver, so this crate provides the two
//! pieces the evaluation needs (see DESIGN.md "Substitutions"):
//!
//! * [`simplex`] + [`revised`] — an exact primal simplex for
//!   `max c·x  s.t.  A x ≤ b, x ≥ 0` with `b ≥ 0` (every MegaTE LP has
//!   this form: demand caps and link capacities are all `≤` rows with
//!   non-negative right-hand sides). `solve()` runs the sparse revised
//!   method (`O(nnz + m²)` memory); the dense tableau solver remains as
//!   `solve_dense()`, the reference oracle the revised core is
//!   property-tested against. Used at small/medium scale and as the
//!   oracle for the approximate solver.
//! * [`mcf`] — a path-formulation multicommodity-flow model with two
//!   solvers: `solve_exact` (builds the LP, runs simplex) and
//!   `solve_fptas` (Fleischer's round-robin variant of the
//!   Garg–Könemann multiplicative-weights FPTAS, `(1−ε)`-optimal and
//!   near-linear-time), which is what hyper-scale runs use.
//!
//! The crate is deliberately independent of the topology crate so it can
//! be reused as a general substrate; the solvers layer converts tunnel
//! tables into [`mcf::McfProblem`]s.

pub mod mcf;
pub mod presolve;
pub mod revised;
pub mod simplex;

pub use mcf::{Commodity, McfProblem, McfSolution, McfWarmSolve, PathSpec};
pub use presolve::{presolve, solve_presolved, Presolve};
pub use revised::{solve_revised_warm, LpBasis, WarmLpSolve};
pub use simplex::{LinearProgram, LpError, LpSolution, LpStatus, SparseRow};
