//! Path-formulation multicommodity flow (MCF) — the shape of MegaTE's
//! first-stage `MaxSiteFlow` LP (Equation 2):
//!
//! ```text
//! max  Σ_{k,t} F_{k,t} − ε Σ_{k,t} w_t F_{k,t}
//! s.t. Σ_t F_{k,t} ≤ D_k                 (demand caps)
//!      Σ_{k,t} F_{k,t} L(t,e) ≤ c_e      (link capacities)
//!      F ≥ 0
//! ```
//!
//! Two solvers:
//!
//! * [`McfProblem::solve_exact`] — builds the LP and runs the sparse
//!   revised simplex; exact but memory-bounded (mirrors Gurobi's role
//!   at small and medium scale).
//! * [`McfProblem::solve_fptas`] — Fleischer's round-robin variant of
//!   the Garg–Könemann multiplicative-weights algorithm, `(1−O(ε))`-
//!   optimal in near-linear time. Demand caps are folded in as one
//!   virtual edge per commodity. Used at hyper-scale.
//!
//! The FPTAS keeps the instance in flat CSR incidence (path → links
//!   plus its link → paths transpose), maintains every path's dual
//!   length incrementally under the multiplicative weight updates, and
//!   batch-prices all commodities in parallel at each phase start.
//!   Flow is still applied serially in commodity order with staleness
//!   revalidation, so the output is bitwise identical for any thread
//!   count — see [`McfProblem::solve_fptas_with`].

use crate::revised::LpBasis;
use crate::simplex::{LinearProgram, LpError, LpStatus};

/// Result of [`McfProblem::solve_exact_warm`]: the MCF solution plus
/// the final simplex basis for retention across intervals.
#[derive(Debug, Clone)]
pub struct McfWarmSolve {
    /// The exact MCF solution (identical contract to
    /// [`McfProblem::solve_exact`]).
    pub solution: McfSolution,
    /// The final basis to retain for the next same-shaped solve.
    pub basis: LpBasis,
    /// Whether the supplied basis was actually re-entered from.
    pub warm_used: bool,
}

/// One pre-established path (tunnel) of a commodity.
#[derive(Debug, Clone)]
pub struct PathSpec {
    /// Link indices this path traverses (defines `L(t, e)`).
    pub links: Vec<usize>,
    /// Tunnel weight `w_t` (latency; higher = worse).
    pub weight: f64,
}

/// One commodity: a site pair `k` with aggregated demand `D_k` and its
/// tunnel set `T_k`.
#[derive(Debug, Clone)]
pub struct Commodity {
    /// Aggregated demand `D_k` (Mbps).
    pub demand: f64,
    /// Pre-established paths, expected sorted by ascending weight.
    pub paths: Vec<PathSpec>,
}

/// A path-formulation MCF instance.
#[derive(Debug, Clone)]
pub struct McfProblem {
    /// Capacity `c_e` per link (Mbps).
    pub link_capacity: Vec<f64>,
    /// All commodities.
    pub commodities: Vec<Commodity>,
    /// The objective's `ε` preferring shorter paths. The paper uses "a
    /// small constant"; it must satisfy `ε·max(w_t) < 1` so carrying
    /// traffic always beats dropping it.
    pub epsilon_weight: f64,
}

/// A solved MCF.
#[derive(Debug, Clone)]
pub struct McfSolution {
    /// `flows[k][t]` = `F_{k,t}` in Mbps.
    pub flows: Vec<Vec<f64>>,
    /// `Σ F_{k,t}` — total satisfied demand.
    pub total_flow: f64,
    /// Objective value including the `−ε Σ w F` term.
    pub objective: f64,
    /// Congestion price per link: the dual of the link's capacity
    /// constraint. Exact solves report true shadow prices; the FPTAS
    /// reports its (normalized) multiplicative-weight lengths, which
    /// converge to the duals — either way, a positive price marks a
    /// binding bottleneck. Empty only for degenerate instances.
    pub link_prices: Vec<f64>,
}

impl McfSolution {
    /// Satisfied-demand ratio against the instance's total demand.
    pub fn satisfied_ratio(&self, problem: &McfProblem) -> f64 {
        let total: f64 = problem.commodities.iter().map(|c| c.demand).sum();
        if total <= 0.0 {
            return 1.0;
        }
        self.total_flow / total
    }

    /// Per-link load under this solution.
    pub fn link_loads(&self, problem: &McfProblem) -> Vec<f64> {
        let mut load = vec![0.0; problem.link_capacity.len()];
        for (k, commodity) in problem.commodities.iter().enumerate() {
            for (t, path) in commodity.paths.iter().enumerate() {
                let f = self.flows[k][t];
                for &e in &path.links {
                    load[e] += f;
                }
            }
        }
        load
    }
}

impl McfProblem {
    /// Total demand over all commodities.
    pub fn total_demand(&self) -> f64 {
        self.commodities.iter().map(|c| c.demand).sum()
    }

    /// Validates a solution: non-negative flows, demand caps, and link
    /// capacities all hold within `tol` (relative).
    pub fn check_feasible(&self, sol: &McfSolution, tol: f64) -> bool {
        if sol.flows.len() != self.commodities.len() {
            return false;
        }
        for (k, c) in self.commodities.iter().enumerate() {
            if sol.flows[k].len() != c.paths.len() {
                return false;
            }
            let sum: f64 = sol.flows[k].iter().sum();
            if sol.flows[k].iter().any(|&f| f < -1e-9) {
                return false;
            }
            if sum > c.demand * (1.0 + tol) + 1e-9 {
                return false;
            }
        }
        let loads = sol.link_loads(self);
        loads
            .iter()
            .zip(&self.link_capacity)
            .all(|(&l, &c)| l <= c * (1.0 + tol) + 1e-9)
    }

    /// Builds the path-form LP: one variable per `(commodity, path)` in
    /// order, demand-cap rows for non-empty commodities, then capacity
    /// rows for used links. Returns the LP, the variable layout, and
    /// the link→row mapping for dual extraction.
    #[allow(clippy::type_complexity)]
    fn build_lp(&self) -> (LinearProgram, Vec<(usize, usize)>, Vec<Option<usize>>) {
        // Variable layout: one variable per (commodity, path), in order.
        let mut var_of: Vec<(usize, usize)> = Vec::new();
        let mut objective = Vec::new();
        for (k, c) in self.commodities.iter().enumerate() {
            for (t, p) in c.paths.iter().enumerate() {
                var_of.push((k, t));
                objective.push(1.0 - self.epsilon_weight * p.weight);
            }
        }
        let mut lp = LinearProgram::maximize(objective);

        // Demand caps.
        let mut next_var = 0usize;
        for c in &self.commodities {
            let entries: Vec<(usize, f64)> =
                (0..c.paths.len()).map(|t| (next_var + t, 1.0)).collect();
            if !entries.is_empty() {
                lp.add_le(entries, c.demand.max(0.0));
            }
            next_var += c.paths.len();
        }
        // Link capacities.
        let mut per_link: Vec<Vec<(usize, f64)>> = vec![Vec::new(); self.link_capacity.len()];
        for (v, &(k, t)) in var_of.iter().enumerate() {
            for &e in &self.commodities[k].paths[t].links {
                per_link[e].push((v, 1.0));
            }
        }
        let mut link_row: Vec<Option<usize>> = vec![None; self.link_capacity.len()];
        for (e, entries) in per_link.into_iter().enumerate() {
            if !entries.is_empty() {
                link_row[e] = Some(lp.rows.len());
                lp.add_le(entries, self.link_capacity[e].max(0.0));
            }
        }
        (lp, var_of, link_row)
    }

    fn unpack_lp_solution(
        &self,
        s: &crate::simplex::LpSolution,
        var_of: &[(usize, usize)],
        link_row: &[Option<usize>],
    ) -> McfSolution {
        debug_assert_eq!(s.status, LpStatus::Optimal, "MCF LPs are bounded");
        let mut flows: Vec<Vec<f64>> = self
            .commodities
            .iter()
            .map(|c| vec![0.0; c.paths.len()])
            .collect();
        for (v, &(k, t)) in var_of.iter().enumerate() {
            flows[k][t] = s.x[v];
        }
        let total_flow = s.x.iter().sum();
        let link_prices = link_row
            .iter()
            .map(|r| r.map_or(0.0, |row| s.duals[row]))
            .collect();
        McfSolution {
            flows,
            total_flow,
            objective: s.objective,
            link_prices,
        }
    }

    /// Exact solve via the dense simplex. Fails with
    /// [`LpError::TooLarge`] when the tableau would not fit — the same
    /// out-of-memory wall the paper reports for LP-all at scale.
    pub fn solve_exact(&self) -> Result<McfSolution, LpError> {
        let _span = megate_obs::span("lp.exact");
        let (lp, var_of, link_row) = self.build_lp();
        let s = lp.solve()?;
        Ok(self.unpack_lp_solution(&s, &var_of, &link_row))
    }

    /// [`solve_exact`](McfProblem::solve_exact) with optional simplex
    /// warm-start from the [`LpBasis`] retained by a previous solve of
    /// a same-shaped instance (same commodities/paths/links; only
    /// demands and capacities changed). Falls back to a cold start —
    /// never to an error — when the basis does not fit, and always
    /// returns the final basis for the caller to retain.
    pub fn solve_exact_warm(&self, warm: Option<&LpBasis>) -> Result<McfWarmSolve, LpError> {
        let _span = megate_obs::span("lp.exact");
        let (lp, var_of, link_row) = self.build_lp();
        let w = lp.solve_warm(warm)?;
        let solution = self.unpack_lp_solution(&w.solution, &var_of, &link_row);
        Ok(McfWarmSolve {
            solution,
            basis: w.basis,
            warm_used: w.warm_used,
        })
    }

    /// Estimated working-set entries of [`solve_exact`]: `2m² + nnz`
    /// for the revised simplex's basis inverse, its refactorization
    /// scratch, and the sparse constraint columns, counting only rows
    /// the LP would actually materialize (non-empty demand caps and
    /// used links).
    ///
    /// The solver layer's `LpMode::Auto` compares this against its
    /// entry cap to decide exact-vs-FPTAS without building the LP.
    ///
    /// [`solve_exact`]: McfProblem::solve_exact
    pub fn size_estimate(&self) -> usize {
        let mut used_link = vec![false; self.link_capacity.len()];
        let mut rows = 0usize;
        let mut nnz = 0usize;
        for c in &self.commodities {
            if !c.paths.is_empty() {
                rows += 1; // demand cap row
                nnz += c.paths.len();
            }
            for p in &c.paths {
                nnz += p.links.len();
                for &e in &p.links {
                    used_link[e] = true;
                }
            }
        }
        rows += used_link.iter().filter(|&&u| u).count();
        rows.saturating_mul(rows)
            .saturating_mul(2)
            .saturating_add(nnz)
    }

    /// [`size_estimate`](McfProblem::size_estimate) plus the footprint
    /// of warm-start state retained across solves (the basis index per
    /// row). Both terms are purely structural — independent of demand
    /// and capacity *values* — so for a fixed instance shape this
    /// estimate is identical on every re-solve. The solver layer's
    /// `LpMode::Auto` relies on that: it sizes the instance once per
    /// shape and latches the exact-vs-FPTAS choice, so a warm re-solve
    /// can never flip modes mid-stream.
    pub fn size_estimate_with_basis(&self, warm: Option<&LpBasis>) -> usize {
        self.size_estimate()
            .saturating_add(warm.map_or(0, |b| b.len()))
    }

    /// `(1−O(ε))`-optimal solve via Fleischer's round-robin variant of
    /// Garg–Könemann. `eps` in (0, 0.5]; smaller = slower, closer to
    /// optimal. Among near-shortest (by dual length) paths the lowest
    /// `w_t` is preferred, realizing the objective's short-path bias.
    ///
    /// Single-threaded convenience wrapper around
    /// [`solve_fptas_with`](McfProblem::solve_fptas_with); the result
    /// is identical for every thread count.
    pub fn solve_fptas(&self, eps: f64) -> McfSolution {
        self.solve_fptas_with(eps, 1)
    }

    /// [`solve_fptas`](McfProblem::solve_fptas) with explicit
    /// parallelism. `threads` bounds the workers used for the
    /// phase-start batch pricing (exact path-length refresh + shortest
    /// tunnel per commodity). Flow application stays serial in
    /// commodity order and revalidates any commodity whose path
    /// lengths changed since pricing, so flows and prices are bitwise
    /// identical regardless of `threads`.
    pub fn solve_fptas_with(&self, eps: f64, threads: usize) -> McfSolution {
        assert!(eps > 0.0 && eps <= 0.5, "eps must be in (0, 0.5]");
        let _span = megate_obs::span("lp.fptas");
        let phase_ctr = megate_obs::counter("lp.fptas_phases");
        let threads = threads.max(1);
        let n_links = self.link_capacity.len();
        let n_comm = self.commodities.len();
        let mut flows: Vec<Vec<f64>> = self
            .commodities
            .iter()
            .map(|c| vec![0.0; c.paths.len()])
            .collect();
        if n_comm == 0 {
            return McfSolution {
                flows,
                total_flow: 0.0,
                objective: 0.0,
                link_prices: vec![0.0; n_links],
            };
        }

        // ---- Flat CSR incidence -------------------------------------
        // Paths are numbered globally (`pid`), contiguous per
        // commodity: pid = comm_ptr[k] + t.
        let mut comm_ptr = Vec::with_capacity(n_comm + 1);
        comm_ptr.push(0usize);
        for c in &self.commodities {
            comm_ptr.push(comm_ptr.last().unwrap() + c.paths.len());
        }
        let n_paths = *comm_ptr.last().unwrap();

        // path -> links (CSR), commodity of each path, and the static
        // amount each routing step ships: min(D_k, bottleneck cap).
        // Neither demands nor capacities change during the FPTAS, so
        // the bottleneck is a per-path constant.
        let mut ppt = Vec::with_capacity(n_paths + 1);
        ppt.push(0usize);
        let mut plinks: Vec<u32> = Vec::new();
        let mut comm_of: Vec<u32> = Vec::with_capacity(n_paths);
        let mut route_amount: Vec<f64> = Vec::with_capacity(n_paths);
        for (k, c) in self.commodities.iter().enumerate() {
            for p in &c.paths {
                let mut amt = c.demand;
                for &e in &p.links {
                    plinks.push(e as u32);
                    amt = amt.min(self.link_capacity[e]);
                }
                ppt.push(plinks.len());
                comm_of.push(k as u32);
                route_amount.push(amt.max(0.0));
            }
        }

        // link -> paths transpose. A path traversing a link twice
        // appears twice — exactly the doubled coefficient the additive
        // length propagation needs.
        let mut lptr = vec![0usize; n_links + 1];
        for &e in &plinks {
            lptr[e as usize + 1] += 1;
        }
        for e in 0..n_links {
            lptr[e + 1] += lptr[e];
        }
        let mut lpaths = vec![0u32; plinks.len()];
        let mut cursor = lptr.clone();
        for pid in 0..n_paths {
            for &e in &plinks[ppt[pid]..ppt[pid + 1]] {
                lpaths[cursor[e as usize]] = pid as u32;
                cursor[e as usize] += 1;
            }
        }

        // ---- Multiplicative-weight state ----------------------------
        // Edge universe: real links then one virtual demand-edge per
        // commodity (capacity D_k).
        let m = n_links + n_comm;
        let delta = (1.0 + eps) * ((1.0 + eps) * m as f64).powf(-1.0 / eps);
        let mut length: Vec<f64> = (0..m)
            .map(|e| {
                let cap = self.edge_cap(e, n_links);
                if cap > 0.0 {
                    delta / cap
                } else {
                    f64::INFINITY
                }
            })
            .collect();

        // Incrementally maintained dual length per path (virtual edge
        // included); refreshed exactly at each phase start to cancel
        // additive drift.
        let mut path_len = vec![f64::INFINITY; n_paths];
        const NONE: u32 = u32::MAX;
        let mut cand = vec![NONE; n_comm];
        // dirty[k]: some path length of k changed since batch pricing,
        // so its phase-start candidate may be stale.
        let mut dirty = vec![false; n_comm];

        // Shortest tunnel of k by dual length; prefer lower w_t within
        // (1+eps) of the minimum. Shared verbatim by the parallel batch
        // pricing and the serial revalidation so both pick identically.
        let select = |k: usize, path_len: &[f64]| -> Option<usize> {
            let paths = &self.commodities[k].paths;
            let base = comm_ptr[k];
            let mut best_t = None;
            let mut best_len = f64::INFINITY;
            for t in 0..paths.len() {
                let l = path_len[base + t];
                if l < best_len {
                    best_len = l;
                    best_t = Some(t);
                }
            }
            let mut t = best_t?;
            for c in 0..paths.len() {
                if path_len[base + c] <= best_len * (1.0 + eps) && paths[c].weight < paths[t].weight
                {
                    t = c;
                }
            }
            Some(t)
        };

        let mut alpha = delta; // lower bound on the global min path length
        while alpha < 1.0 {
            phase_ctr.inc();
            // Phase-start batch pricing: recompute every path length
            // exactly from `length`, then pick each commodity's
            // candidate tunnel. Both passes are element-independent
            // with a fixed per-element reduction order, so any chunking
            // across workers yields bitwise-identical results.
            par_chunks_mut(&mut path_len, threads, &|offset, chunk: &mut [f64]| {
                for (i, slot) in chunk.iter_mut().enumerate() {
                    let pid = offset + i;
                    let mut l = length[n_links + comm_of[pid] as usize];
                    for &e in &plinks[ppt[pid]..ppt[pid + 1]] {
                        l += length[e as usize];
                    }
                    *slot = l;
                }
            });
            {
                let path_len = &path_len[..];
                par_chunks_mut(&mut cand, threads, &|offset, chunk: &mut [u32]| {
                    for (i, slot) in chunk.iter_mut().enumerate() {
                        let k = offset + i;
                        *slot = if self.commodities[k].demand > 0.0 {
                            select(k, path_len).map_or(NONE, |t| t as u32)
                        } else {
                            NONE
                        };
                    }
                });
            }
            dirty.iter_mut().for_each(|d| *d = false);

            // Serial in-order apply with staleness revalidation.
            for k in 0..n_comm {
                let demand = self.commodities[k].demand;
                if demand <= 0.0 {
                    continue;
                }
                loop {
                    let t = if dirty[k] {
                        match select(k, &path_len) {
                            Some(t) => t,
                            None => break,
                        }
                    } else if cand[k] == NONE {
                        break;
                    } else {
                        cand[k] as usize
                    };
                    let pid = comm_ptr[k] + t;
                    let l = path_len[pid];
                    if !(l < 1.0 && l < alpha * (1.0 + eps)) {
                        break;
                    }
                    let f = route_amount[pid];
                    if f <= 0.0 {
                        break;
                    }
                    flows[k][t] += f;
                    // Multiplicative length updates, propagated
                    // additively to every affected path via the
                    // transpose.
                    let ve = n_links + k;
                    let grown = length[ve] * (1.0 + eps * f / demand);
                    let d = grown - length[ve];
                    length[ve] = grown;
                    for pl in &mut path_len[comm_ptr[k]..comm_ptr[k + 1]] {
                        *pl += d;
                    }
                    dirty[k] = true;
                    for &e in &plinks[ppt[pid]..ppt[pid + 1]] {
                        let e = e as usize;
                        let grown = length[e] * (1.0 + eps * f / self.link_capacity[e]);
                        let d = grown - length[e];
                        length[e] = grown;
                        for &p2 in &lpaths[lptr[e]..lptr[e + 1]] {
                            path_len[p2 as usize] += d;
                            dirty[comm_of[p2 as usize] as usize] = true;
                        }
                    }
                }
            }
            alpha *= 1.0 + eps;
        }

        // Scale down: raw flows overshoot by log_{1+eps}(1/delta).
        let scale = ((1.0 / delta).ln() / (1.0 + eps).ln()).max(1.0);
        for f in flows.iter_mut().flat_map(|v| v.iter_mut()) {
            *f /= scale;
        }

        // Numerical safety: clamp any residual overshoot on links and
        // demands (the theory guarantees feasibility; floating point can
        // leave ppm-level overage).
        // The multiplicative-weight lengths approximate the duals after
        // normalization by the same scale as the flows.
        let price_scale = scale.max(1e-12);
        let link_prices: Vec<f64> = length[..n_links]
            .iter()
            .map(|&l| if l.is_finite() { l / price_scale } else { 0.0 })
            .collect();
        let mut sol = McfSolution {
            flows,
            total_flow: 0.0,
            objective: 0.0,
            link_prices,
        };
        let loads = sol.link_loads(self);
        let mut worst: f64 = 1.0;
        for (e, &load) in loads.iter().enumerate() {
            if self.link_capacity[e] > 0.0 {
                worst = worst.max(load / self.link_capacity[e]);
            }
        }
        for (k, c) in self.commodities.iter().enumerate() {
            let s: f64 = sol.flows[k].iter().sum();
            if c.demand > 0.0 {
                worst = worst.max(s / c.demand);
            }
        }
        if worst > 1.0 {
            for f in sol.flows.iter_mut().flat_map(|v| v.iter_mut()) {
                *f /= worst;
            }
        }

        sol.total_flow = sol.flows.iter().flat_map(|v| v.iter()).sum();
        sol.objective = self
            .commodities
            .iter()
            .enumerate()
            .map(|(k, c)| {
                c.paths
                    .iter()
                    .enumerate()
                    .map(|(t, p)| sol.flows[k][t] * (1.0 - self.epsilon_weight * p.weight))
                    .sum::<f64>()
            })
            .sum();
        sol
    }

    fn edge_cap(&self, e: usize, n_links: usize) -> f64 {
        if e < n_links {
            self.link_capacity[e]
        } else {
            self.commodities[e - n_links].demand
        }
    }
}

/// Runs `f(offset, chunk)` over contiguous chunks of `data`, on up to
/// `threads` scoped workers. Every element is computed independently,
/// so the chunking never changes the values written — callers rely on
/// this for thread-count determinism. Small inputs run inline to skip
/// spawn overhead.
fn par_chunks_mut<T, F>(data: &mut [T], threads: usize, f: &F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let n = data.len();
    if threads <= 1 || n < 4096 {
        f(0, data);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|s| {
        let mut rest = data;
        let mut offset = 0usize;
        while !rest.is_empty() {
            let take = chunk.min(rest.len());
            let (head, tail) = rest.split_at_mut(take);
            s.spawn(move || f(offset, head));
            offset += take;
            rest = tail;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn one_link_instance(demand: f64, cap: f64) -> McfProblem {
        McfProblem {
            link_capacity: vec![cap],
            commodities: vec![Commodity {
                demand,
                paths: vec![PathSpec {
                    links: vec![0],
                    weight: 1.0,
                }],
            }],
            epsilon_weight: 1e-4,
        }
    }

    #[test]
    fn single_path_caps_at_bottleneck() {
        let p = one_link_instance(100.0, 40.0);
        let s = p.solve_exact().unwrap();
        assert!((s.total_flow - 40.0).abs() < 1e-6);
        let f = p.solve_fptas(0.05);
        assert!(f.total_flow >= 40.0 * 0.85, "fptas {}", f.total_flow);
        assert!(p.check_feasible(&f, 1e-6));
    }

    #[test]
    fn single_path_caps_at_demand() {
        let p = one_link_instance(30.0, 100.0);
        let s = p.solve_exact().unwrap();
        assert!((s.total_flow - 30.0).abs() < 1e-6);
    }

    #[test]
    fn warm_exact_solve_matches_cold_under_value_churn() {
        // Same instance shape, changed demand and capacity values: the
        // warm re-solve must engage the retained basis and agree with a
        // cold solve to full precision; the structural size estimate
        // must not move, so a latched Auto decision cannot flip.
        let p0 = one_link_instance(100.0, 40.0);
        let first = p0.solve_exact_warm(None).unwrap();
        assert!(!first.warm_used);
        let mut p1 = p0.clone();
        p1.commodities[0].demand = 70.0;
        p1.link_capacity[0] = 55.0;
        assert_eq!(
            p1.size_estimate_with_basis(Some(&first.basis)),
            p0.size_estimate() + first.basis.len()
        );
        assert_eq!(p1.size_estimate(), p0.size_estimate());
        let warm = p1.solve_exact_warm(Some(&first.basis)).unwrap();
        let cold = p1.solve_exact().unwrap();
        assert_eq!(
            warm.solution.flows, cold.flows,
            "warm must match cold bitwise here"
        );
        assert!((warm.solution.total_flow - 55.0).abs() < 1e-6);
        assert!(p1.check_feasible(&warm.solution, 1e-9));
    }

    #[test]
    fn two_commodities_share_a_link_fairly_by_objective() {
        // Both want 60 over a 100-capacity link; optimum carries 100.
        let p = McfProblem {
            link_capacity: vec![100.0],
            commodities: vec![
                Commodity {
                    demand: 60.0,
                    paths: vec![PathSpec {
                        links: vec![0],
                        weight: 1.0,
                    }],
                },
                Commodity {
                    demand: 60.0,
                    paths: vec![PathSpec {
                        links: vec![0],
                        weight: 1.0,
                    }],
                },
            ],
            epsilon_weight: 1e-4,
        };
        let s = p.solve_exact().unwrap();
        assert!((s.total_flow - 100.0).abs() < 1e-6);
        assert!(p.check_feasible(&s, 1e-9));
    }

    #[test]
    fn short_path_preferred_when_capacity_allows() {
        // Two disjoint paths, both feasible: the cheap one must carry
        // the flow because of the -eps*w term.
        let p = McfProblem {
            link_capacity: vec![100.0, 100.0],
            commodities: vec![Commodity {
                demand: 50.0,
                paths: vec![
                    PathSpec {
                        links: vec![0],
                        weight: 1.0,
                    },
                    PathSpec {
                        links: vec![1],
                        weight: 10.0,
                    },
                ],
            }],
            epsilon_weight: 1e-3,
        };
        let s = p.solve_exact().unwrap();
        assert!((s.flows[0][0] - 50.0).abs() < 1e-6, "flows {:?}", s.flows);
        assert!(s.flows[0][1].abs() < 1e-6);

        let f = p.solve_fptas(0.05);
        assert!(f.flows[0][0] > f.flows[0][1], "fptas flows {:?}", f.flows);
    }

    #[test]
    fn overflow_spills_to_long_path() {
        let p = McfProblem {
            link_capacity: vec![30.0, 100.0],
            commodities: vec![Commodity {
                demand: 50.0,
                paths: vec![
                    PathSpec {
                        links: vec![0],
                        weight: 1.0,
                    },
                    PathSpec {
                        links: vec![1],
                        weight: 10.0,
                    },
                ],
            }],
            epsilon_weight: 1e-3,
        };
        let s = p.solve_exact().unwrap();
        assert!((s.total_flow - 50.0).abs() < 1e-6);
        assert!((s.flows[0][0] - 30.0).abs() < 1e-6);
        assert!((s.flows[0][1] - 20.0).abs() < 1e-6);
    }

    #[test]
    fn exact_link_prices_mark_bottlenecks() {
        // One 40-cap link carrying 100 of demand: binding, priced ~1
        // (one more unit of capacity = one more unit of flow).
        let p = one_link_instance(100.0, 40.0);
        let s = p.solve_exact().unwrap();
        assert!(
            (s.link_prices[0] - (1.0 - p.epsilon_weight)).abs() < 1e-6,
            "price {:?}",
            s.link_prices
        );
        // Demand-limited instance: the link is slack, price 0.
        let p = one_link_instance(30.0, 100.0);
        let s = p.solve_exact().unwrap();
        assert!(s.link_prices[0].abs() < 1e-9);
    }

    #[test]
    fn fptas_prices_highlight_the_same_bottleneck() {
        let p = McfProblem {
            link_capacity: vec![40.0, 10_000.0],
            commodities: vec![Commodity {
                demand: 100.0,
                paths: vec![PathSpec {
                    links: vec![0, 1],
                    weight: 1.0,
                }],
            }],
            epsilon_weight: 1e-4,
        };
        let s = p.solve_fptas(0.1);
        assert!(
            s.link_prices[0] > 10.0 * s.link_prices[1],
            "bottleneck must be priced far above the slack link: {:?}",
            s.link_prices
        );
    }

    #[test]
    fn empty_instance_is_trivial() {
        let p = McfProblem {
            link_capacity: vec![],
            commodities: vec![],
            epsilon_weight: 0.0,
        };
        let s = p.solve_exact().unwrap();
        assert_eq!(s.total_flow, 0.0);
        let f = p.solve_fptas(0.1);
        assert_eq!(f.total_flow, 0.0);
    }

    #[test]
    fn zero_demand_commodity_gets_nothing() {
        let p = one_link_instance(0.0, 50.0);
        let s = p.solve_exact().unwrap();
        assert_eq!(s.total_flow, 0.0);
        let f = p.solve_fptas(0.1);
        assert!(f.total_flow.abs() < 1e-9);
    }

    /// Random small instance generator shared by the property tests.
    fn random_instance(seed: u64) -> McfProblem {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n_links = rng.gen_range(2..6);
        let link_capacity: Vec<f64> = (0..n_links).map(|_| rng.gen_range(10.0..100.0)).collect();
        let n_comm = rng.gen_range(1..5);
        let commodities = (0..n_comm)
            .map(|_| {
                let n_paths = rng.gen_range(1..4);
                let paths = (0..n_paths)
                    .map(|i| {
                        let len = rng.gen_range(1..=n_links);
                        let mut links: Vec<usize> = (0..n_links).collect();
                        // Random subset of distinct links as a "path".
                        for j in (1..links.len()).rev() {
                            links.swap(j, rng.gen_range(0..=j));
                        }
                        links.truncate(len);
                        PathSpec {
                            links,
                            weight: 1.0 + i as f64,
                        }
                    })
                    .collect();
                Commodity {
                    demand: rng.gen_range(5.0..80.0),
                    paths,
                }
            })
            .collect();
        McfProblem {
            link_capacity,
            commodities,
            epsilon_weight: 1e-4,
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]
        #[test]
        fn fptas_close_to_exact_and_feasible(seed in 0u64..5000) {
            let p = random_instance(seed);
            let exact = p.solve_exact().unwrap();
            prop_assert!(p.check_feasible(&exact, 1e-7));
            let eps = 0.05;
            let approx = p.solve_fptas(eps);
            prop_assert!(p.check_feasible(&approx, 1e-7));
            // Garg–Könemann guarantee is (1-eps)^3-ish; allow slack.
            prop_assert!(
                approx.total_flow >= exact.total_flow * (1.0 - 3.5 * eps) - 1e-6,
                "approx {} vs exact {}", approx.total_flow, exact.total_flow
            );
            prop_assert!(approx.total_flow <= exact.total_flow + 1e-6);
        }

        #[test]
        fn exact_never_exceeds_demand_or_capacity(seed in 0u64..2000) {
            let p = random_instance(seed);
            let s = p.solve_exact().unwrap();
            prop_assert!(p.check_feasible(&s, 1e-7));
            prop_assert!(s.satisfied_ratio(&p) <= 1.0 + 1e-9);
        }

        #[test]
        fn fptas_bitwise_deterministic_across_thread_counts(seed in 0u64..800) {
            let p = random_instance(seed);
            let one = p.solve_fptas_with(0.1, 1);
            for threads in [2usize, 4, 7] {
                let par = p.solve_fptas_with(0.1, threads);
                prop_assert_eq!(&one.flows, &par.flows, "threads={}", threads);
                prop_assert_eq!(&one.link_prices, &par.link_prices);
                prop_assert!(one.total_flow.to_bits() == par.total_flow.to_bits());
            }
        }
    }

    #[test]
    fn size_estimate_counts_materialized_rows_and_nnz() {
        // 2 commodities with paths (2 demand rows), links {0,1} used
        // (2 link rows), link 2 untouched: m = 4. nnz = 3 path vars in
        // demand rows + 4 link memberships. Estimate = 2m² + nnz.
        let p = McfProblem {
            link_capacity: vec![10.0, 10.0, 10.0],
            commodities: vec![
                Commodity {
                    demand: 5.0,
                    paths: vec![
                        PathSpec {
                            links: vec![0],
                            weight: 1.0,
                        },
                        PathSpec {
                            links: vec![0, 1],
                            weight: 2.0,
                        },
                    ],
                },
                Commodity {
                    demand: 5.0,
                    paths: vec![PathSpec {
                        links: vec![1],
                        weight: 1.0,
                    }],
                },
            ],
            epsilon_weight: 1e-4,
        };
        assert_eq!(p.size_estimate(), 2 * 4 * 4 + 3 + 4);
        // Empty instance: no rows, no entries.
        let empty = McfProblem {
            link_capacity: vec![],
            commodities: vec![],
            epsilon_weight: 0.0,
        };
        assert_eq!(empty.size_estimate(), 0);
    }

    #[test]
    fn parallel_fptas_spawn_path_matches_inline() {
        // Enough paths (> 4096) that par_chunks_mut actually spawns
        // workers instead of running inline.
        let n_links = 64usize;
        let p = McfProblem {
            link_capacity: (0..n_links).map(|e| 50.0 + (e % 7) as f64 * 10.0).collect(),
            commodities: (0..2048)
                .map(|k| Commodity {
                    demand: 5.0 + (k % 11) as f64,
                    paths: (0..3)
                        .map(|t| PathSpec {
                            links: vec![(k * 3 + t) % n_links, (k * 5 + t * 2) % n_links],
                            weight: 1.0 + t as f64,
                        })
                        .collect(),
                })
                .collect(),
            epsilon_weight: 1e-4,
        };
        let a = p.solve_fptas_with(0.3, 1);
        let b = p.solve_fptas_with(0.3, 6);
        assert_eq!(a.flows, b.flows);
        assert!(p.check_feasible(&a, 1e-7));
        assert!(a.total_flow > 0.0);
    }

    #[test]
    fn parallel_fptas_matches_single_thread_on_shared_bottleneck() {
        // Dense sharing: every commodity crosses the same two links, so
        // the staleness revalidation path is exercised hard.
        let p = McfProblem {
            link_capacity: vec![50.0, 80.0, 120.0],
            commodities: (0..12)
                .map(|k| Commodity {
                    demand: 10.0 + k as f64,
                    paths: vec![
                        PathSpec {
                            links: vec![0, 1],
                            weight: 1.0,
                        },
                        PathSpec {
                            links: vec![2],
                            weight: 2.0 + k as f64 * 0.1,
                        },
                    ],
                })
                .collect(),
            epsilon_weight: 1e-4,
        };
        let a = p.solve_fptas_with(0.05, 1);
        let b = p.solve_fptas_with(0.05, 8);
        assert_eq!(a.flows, b.flows);
        assert!(p.check_feasible(&a, 1e-7));
        assert!(a.total_flow > 0.0);
    }
}
