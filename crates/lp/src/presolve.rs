//! LP presolve: cheap reductions applied before the simplex.
//!
//! Endpoint-granularity LPs (LP-all, NCFlow sub-LPs) carry a lot of
//! redundancy: many endpoint pairs of one site pair produce *identical*
//! link rows, and pairs whose tunnels avoid a link leave its row empty.
//! Presolve removes what the simplex would otherwise pivot around:
//!
//! 1. **empty rows** — no entries, trivially satisfiable;
//! 2. **duplicate rows** — identical entry sets; only the tightest
//!    (minimum rhs) can bind;
//! 3. **free null columns** — variables in no constraint: fixed at 0
//!    when their objective is ≤ 0, or flagged unbounded otherwise.
//!
//! [`Presolve::restore`] maps the reduced solution (point *and* duals)
//! back to the original index space.

use crate::simplex::{LinearProgram, LpError, LpSolution, LpStatus, SparseRow};

/// Bookkeeping to map a reduced solution back to the original LP.
#[derive(Debug, Clone)]
pub struct Presolve {
    /// For each kept row: its original index.
    kept_rows: Vec<usize>,
    /// For each kept variable: its original index.
    kept_vars: Vec<usize>,
    /// Original problem dimensions.
    orig_rows: usize,
    orig_vars: usize,
    /// A variable with positive objective and no constraints.
    unbounded: bool,
}

impl Presolve {
    /// Rows removed by presolve.
    pub fn rows_removed(&self) -> usize {
        self.orig_rows - self.kept_rows.len()
    }

    /// Variables removed by presolve.
    pub fn vars_removed(&self) -> usize {
        self.orig_vars - self.kept_vars.len()
    }

    /// Maps a reduced-space solution back to the original index space.
    /// Removed variables are 0; removed rows get dual 0 (they can never
    /// bind).
    pub fn restore(&self, reduced: LpSolution) -> LpSolution {
        let mut x = vec![0.0; self.orig_vars];
        for (r, &orig) in self.kept_vars.iter().enumerate() {
            x[orig] = reduced.x[r];
        }
        let mut duals = vec![0.0; self.orig_rows];
        for (r, &orig) in self.kept_rows.iter().enumerate() {
            duals[orig] = reduced.duals[r];
        }
        LpSolution {
            status: reduced.status,
            x,
            objective: reduced.objective,
            pivots: reduced.pivots,
            duals,
        }
    }
}

/// Applies the reductions, returning the reduced LP and the mapping.
pub fn presolve(lp: &LinearProgram) -> (LinearProgram, Presolve) {
    let n = lp.n_vars();

    // Null columns: variables appearing in no row.
    let mut in_constraint = vec![false; n];
    for row in &lp.rows {
        for &(j, c) in &row.entries {
            if c != 0.0 {
                in_constraint[j] = true;
            }
        }
    }
    let mut unbounded = false;
    let mut kept_vars = Vec::with_capacity(n);
    let mut var_map = vec![usize::MAX; n];
    for j in 0..n {
        if !in_constraint[j] {
            if lp.objective[j] > 0.0 {
                unbounded = true; // grows forever; keep for the solver?
            }
            // Fixed at 0 (or unbounded flagged) — drop either way.
            continue;
        }
        var_map[j] = kept_vars.len();
        kept_vars.push(j);
    }

    // Row canonicalization for duplicate detection.
    let canonical = |row: &SparseRow| -> Vec<(usize, u64)> {
        let mut v: Vec<(usize, u64)> = row
            .entries
            .iter()
            .filter(|&&(j, c)| c != 0.0 && var_map[j] != usize::MAX)
            .map(|&(j, c)| (var_map[j], c.to_bits()))
            .collect();
        v.sort_unstable();
        v
    };

    let mut best_rhs: std::collections::HashMap<Vec<(usize, u64)>, (usize, f64)> =
        std::collections::HashMap::new();
    for (i, row) in lp.rows.iter().enumerate() {
        let key = canonical(row);
        if key.is_empty() {
            continue; // empty row
        }
        match best_rhs.get(&key) {
            Some(&(_, rhs)) if rhs <= row.rhs => {}
            _ => {
                best_rhs.insert(key, (i, row.rhs));
            }
        }
    }
    let mut kept_rows: Vec<usize> = best_rhs.values().map(|&(i, _)| i).collect();
    kept_rows.sort_unstable();

    // Build the reduced LP.
    let objective: Vec<f64> = kept_vars.iter().map(|&j| lp.objective[j]).collect();
    let mut reduced = LinearProgram::maximize(objective);
    for &i in &kept_rows {
        let entries: Vec<(usize, f64)> = lp.rows[i]
            .entries
            .iter()
            .filter(|&&(j, c)| c != 0.0 && var_map[j] != usize::MAX)
            .map(|&(j, c)| (var_map[j], c))
            .collect();
        reduced.add_le(entries, lp.rows[i].rhs);
    }

    (
        reduced,
        Presolve {
            kept_rows,
            kept_vars,
            orig_rows: lp.rows.len(),
            orig_vars: n,
            unbounded,
        },
    )
}

/// Convenience: presolve, solve, restore. Detects unbounded null
/// columns without running the simplex.
pub fn solve_presolved(lp: &LinearProgram) -> Result<LpSolution, LpError> {
    let (reduced, map) = presolve(lp);
    if map.unbounded {
        return Ok(LpSolution {
            status: LpStatus::Unbounded,
            x: vec![0.0; lp.n_vars()],
            objective: f64::INFINITY,
            pivots: 0,
            duals: vec![0.0; lp.rows.len()],
        });
    }
    Ok(map.restore(reduced.solve()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn duplicate_rows_collapse_to_tightest() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_le(vec![(0, 1.0), (1, 1.0)], 10.0);
        lp.add_le(vec![(1, 1.0), (0, 1.0)], 4.0); // same row, tighter
        lp.add_le(vec![(0, 1.0), (1, 1.0)], 7.0); // same row, looser
        let (reduced, map) = presolve(&lp);
        assert_eq!(reduced.rows.len(), 1);
        assert_eq!(map.rows_removed(), 2);
        let s = solve_presolved(&lp).unwrap();
        assert!((s.objective - 4.0).abs() < 1e-9);
        assert_eq!(s.duals.len(), 3);
        // Only the tight duplicate carries the dual.
        assert!(s.duals[1] > 0.5);
        assert_eq!(s.duals[0], 0.0);
        assert_eq!(s.duals[2], 0.0);
    }

    #[test]
    fn empty_rows_and_null_columns_removed() {
        let mut lp = LinearProgram::maximize(vec![2.0, -1.0, 0.0]);
        lp.add_le(vec![(0, 1.0)], 5.0);
        lp.add_le(vec![], 3.0); // empty
        let (reduced, map) = presolve(&lp);
        assert_eq!(reduced.rows.len(), 1);
        assert_eq!(reduced.n_vars(), 1); // x1 (obj<0, no rows), x2 (null) gone
        assert_eq!(map.vars_removed(), 2);
        let s = solve_presolved(&lp).unwrap();
        assert!((s.objective - 10.0).abs() < 1e-9);
        assert_eq!(s.x, vec![5.0, 0.0, 0.0]);
    }

    #[test]
    fn unbounded_null_column_detected_without_solving() {
        let mut lp = LinearProgram::maximize(vec![1.0, 1.0]);
        lp.add_le(vec![(0, 1.0)], 5.0); // x1 unconstrained, obj > 0
        let s = solve_presolved(&lp).unwrap();
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn presolved_matches_direct_solve(seed in 0u64..2000) {
            use rand::{Rng, SeedableRng};
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let n = rng.gen_range(2..6);
            let obj: Vec<f64> = (0..n).map(|_| rng.gen_range(0.0..5.0)).collect();
            let mut lp = LinearProgram::maximize(obj);
            // Random rows with deliberate duplicates and bound rows.
            let base: Vec<(usize, f64)> = (0..n)
                .map(|j| (j, rng.gen_range(0.5..2.0)))
                .collect();
            lp.add_le(base.clone(), rng.gen_range(5.0..20.0));
            lp.add_le(base.clone(), rng.gen_range(5.0..20.0)); // duplicate
            for j in 0..n {
                lp.add_le(vec![(j, 1.0)], rng.gen_range(1.0..10.0));
            }
            let direct = lp.solve().unwrap();
            let pre = solve_presolved(&lp).unwrap();
            prop_assert_eq!(direct.status, LpStatus::Optimal);
            prop_assert!((direct.objective - pre.objective).abs()
                < 1e-6 * (1.0 + direct.objective.abs()),
                "direct {} vs presolved {}", direct.objective, pre.objective);
            prop_assert!(lp.is_feasible(&pre.x));
            prop_assert_eq!(pre.duals.len(), lp.rows.len());
        }
    }
}
