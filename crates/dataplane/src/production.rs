//! Production-style placement comparison (§7, Figures 15–17).
//!
//! The paper's production wins come from *where each app's flows land*:
//!
//! * the traditional approach hashes every flow across the pair's
//!   tunnels regardless of class;
//! * MegaTE places QoS-1 flows on the shortest (premium,
//!   highest-availability) tunnel and QoS-3 bulk on the cheapest one.
//!
//! We attach availability and cost attributes to tunnels (premium
//! shortest path vs economy alternates) and evaluate per-app latency,
//! availability and cost under both placements.

use crate::ecmp::ecmp_tunnel_seeded;
use megate_packet::{FiveTuple, Proto};
use megate_topo::{Graph, SitePair, TunnelId, TunnelTable};
use megate_traffic::{AppProfile, QosClass};

/// Per-Gbps monthly cost of the premium (shortest, SLA-backed) tunnel.
pub const PREMIUM_COST_PER_GBPS: f64 = 1.0;
/// Per-Gbps monthly cost of economy (longer, best-effort) tunnels.
pub const ECONOMY_COST_PER_GBPS: f64 = 0.5;

/// Availability of one link, derived from its tier: core links ride
/// DWDM long-haul (unprotected raw availability 99.995%), metro links
/// are 99.98%. The *premium* tunnel's protection (see
/// [`tunnel_availability`]) is what lifts paths to SLA grade.
pub fn link_availability(graph: &Graph, l: megate_topo::LinkId) -> f64 {
    if graph.link(l).capacity_mbps >= 100_000.0 {
        0.99995
    } else {
        0.9998
    }
}

/// Restoration speed-up of the premium path: 1+1 optical protection
/// plus sub-50ms fast reroute cut each link's effective downtime by two
/// orders of magnitude.
const PREMIUM_PROTECTION_FACTOR: f64 = 100.0;

/// Availability of a tunnel: product over its links; the pair's
/// shortest (premium) tunnel rides protected wavelengths, so each of
/// its links contributes a tenth of the raw downtime.
pub fn tunnel_availability(graph: &Graph, tunnels: &TunnelTable, t: TunnelId) -> f64 {
    let tun = tunnels.tunnel(t);
    let premium = tunnels.tunnels_for(tun.pair).first() == Some(&t);
    tun.links
        .iter()
        .map(|&l| {
            let raw = link_availability(graph, l);
            if premium {
                1.0 - (1.0 - raw) / PREMIUM_PROTECTION_FACTOR
            } else {
                raw
            }
        })
        .product()
}

/// Cost per Gbps of a tunnel: the pair's shortest tunnel is premium,
/// every alternate is economy transit.
pub fn tunnel_cost_per_gbps(tunnels: &TunnelTable, t: TunnelId) -> f64 {
    let pair = tunnels.tunnel(t).pair;
    if tunnels.tunnels_for(pair).first() == Some(&t) {
        PREMIUM_COST_PER_GBPS
    } else {
        ECONOMY_COST_PER_GBPS
    }
}

/// Which control plane places the flows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// Conventional TE: five-tuple hashing across tunnels.
    Traditional,
    /// MegaTE: per-class endpoint-granular placement.
    MegaTe,
}

/// One production app flow.
#[derive(Debug, Clone)]
pub struct AppFlow {
    /// Site pair the flow crosses.
    pub pair: SitePair,
    /// The flow's five-tuple (hash input for the traditional path).
    pub tuple: FiveTuple,
    /// Rate in Mbps.
    pub demand_mbps: f64,
}

/// Aggregated per-app outcome of one placement.
#[derive(Debug, Clone, PartialEq)]
pub struct AppOutcome {
    /// Demand-weighted mean path latency (ms).
    pub mean_latency_ms: f64,
    /// Demand-weighted mean path availability (fraction).
    pub availability: f64,
    /// Total cost (per-Gbps price × Gbps).
    pub cost: f64,
}

/// Picks the tunnel a placement gives one flow of an app.
pub fn place_flow(
    tunnels: &TunnelTable,
    app: &AppProfile,
    flow: &AppFlow,
    placement: Placement,
    ecmp_seed: u64,
) -> Option<TunnelId> {
    let ts = tunnels.tunnels_for(flow.pair);
    if ts.is_empty() {
        return None;
    }
    match placement {
        Placement::Traditional => ecmp_tunnel_seeded(tunnels, flow.pair, &flow.tuple, ecmp_seed),
        Placement::MegaTe => match app.qos {
            // Time-critical: the shortest premium tunnel.
            QosClass::Class1 => Some(ts[0]),
            // Default traffic: shortest as well (capacity permitting in
            // the full solver; the placement policy is the mechanism).
            QosClass::Class2 => Some(ts[0]),
            // Bulk: the cheapest tunnel (first economy alternate, or
            // the only tunnel when the pair has no alternate).
            QosClass::Class3 => Some(if ts.len() > 1 { ts[1] } else { ts[0] }),
        },
    }
}

/// Evaluates one app's flows under a placement.
pub fn evaluate_app(
    graph: &Graph,
    tunnels: &TunnelTable,
    app: &AppProfile,
    flows: &[AppFlow],
    placement: Placement,
    ecmp_seed: u64,
) -> AppOutcome {
    let mut lat = 0.0;
    let mut avail = 0.0;
    let mut cost = 0.0;
    let mut volume = 0.0;
    for f in flows {
        let Some(t) = place_flow(tunnels, app, f, placement, ecmp_seed) else {
            continue;
        };
        let w = tunnels.tunnel(t).weight;
        lat += f.demand_mbps * w;
        avail += f.demand_mbps * tunnel_availability(graph, tunnels, t);
        cost += (f.demand_mbps / 1000.0) * tunnel_cost_per_gbps(tunnels, t);
        volume += f.demand_mbps;
    }
    if volume <= 0.0 {
        return AppOutcome {
            mean_latency_ms: 0.0,
            availability: 1.0,
            cost: 0.0,
        };
    }
    AppOutcome {
        mean_latency_ms: lat / volume,
        availability: avail / volume,
        cost,
    }
}

/// Generates `n` flows of an app across the given pairs (deterministic:
/// ports enumerate, demands follow the app's mean).
pub fn app_flows(app: &AppProfile, pairs: &[SitePair], n: usize) -> Vec<AppFlow> {
    (0..n)
        .map(|i| {
            let pair = pairs[i % pairs.len()];
            AppFlow {
                pair,
                tuple: FiveTuple {
                    src_ip: [10, (pair.src.0 % 256) as u8, (i >> 8) as u8, i as u8],
                    dst_ip: [10, (pair.dst.0 % 256) as u8, 0, 1],
                    proto: Proto::Tcp,
                    src_port: 1024 + (i as u16 % 50_000),
                    dst_port: 443,
                },
                demand_mbps: app.mean_demand_mbps
                    * (0.75 + 0.5 * ((i * 7919 % 100) as f64) / 100.0),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use megate_topo::{deltacom, SiteId};
    use megate_traffic::app;

    fn fixture() -> (Graph, TunnelTable, Vec<SitePair>) {
        let g = deltacom();
        let pairs: Vec<SitePair> = (0..8)
            .map(|i| SitePair::new(SiteId(i), SiteId(100 - i)))
            .collect();
        let tunnels = TunnelTable::for_pairs(&g, &pairs, 4);
        (g, tunnels, pairs)
    }

    #[test]
    fn megate_cuts_latency_for_time_sensitive_apps() {
        let (g, tunnels, pairs) = fixture();
        for n in 1..=5u8 {
            let a = app(n);
            let flows = app_flows(a, &pairs, 200);
            let trad = evaluate_app(&g, &tunnels, a, &flows, Placement::Traditional, 3);
            let mega = evaluate_app(&g, &tunnels, a, &flows, Placement::MegaTe, 3);
            assert!(
                mega.mean_latency_ms < trad.mean_latency_ms,
                "app {n}: {} vs {}",
                mega.mean_latency_ms,
                trad.mean_latency_ms
            );
        }
    }

    #[test]
    fn megate_availability_meets_qos1_sla() {
        let (g, tunnels, pairs) = fixture();
        let a = app(6); // QoS1, 99.99% SLA
        let flows = app_flows(a, &pairs, 300);
        let mega = evaluate_app(&g, &tunnels, a, &flows, Placement::MegaTe, 0);
        assert!(
            mega.availability >= a.availability_sla,
            "availability {} < SLA {}",
            mega.availability,
            a.availability_sla
        );
        let trad = evaluate_app(&g, &tunnels, a, &flows, Placement::Traditional, 0);
        assert!(mega.availability >= trad.availability);
    }

    #[test]
    fn bulk_app_cost_drops_with_megate() {
        let (g, tunnels, pairs) = fixture();
        let a = app(9); // bulk transfer, QoS3
        let flows = app_flows(a, &pairs, 300);
        let trad = evaluate_app(&g, &tunnels, a, &flows, Placement::Traditional, 0);
        let mega = evaluate_app(&g, &tunnels, a, &flows, Placement::MegaTe, 0);
        assert!(
            mega.cost < trad.cost,
            "MegaTE cost {} must beat traditional {}",
            mega.cost,
            trad.cost
        );
    }

    #[test]
    fn qos3_app_still_meets_its_looser_sla() {
        let (g, tunnels, pairs) = fixture();
        let a = app(7); // QoS3, 99% SLA
        let flows = app_flows(a, &pairs, 200);
        let mega = evaluate_app(&g, &tunnels, a, &flows, Placement::MegaTe, 0);
        assert!(mega.availability >= a.availability_sla);
    }

    #[test]
    fn premium_tunnel_is_the_shortest() {
        let (_, tunnels, pairs) = fixture();
        for &pair in &pairs {
            let ts = tunnels.tunnels_for(pair);
            assert_eq!(tunnel_cost_per_gbps(&tunnels, ts[0]), PREMIUM_COST_PER_GBPS);
            for &t in &ts[1..] {
                assert_eq!(tunnel_cost_per_gbps(&tunnels, t), ECONOMY_COST_PER_GBPS);
            }
        }
    }

    #[test]
    fn empty_flows_trivial_outcome() {
        let (g, tunnels, _) = fixture();
        let a = app(1);
        let out = evaluate_app(&g, &tunnels, a, &[], Placement::MegaTe, 0);
        assert_eq!(out.cost, 0.0);
        assert_eq!(out.availability, 1.0);
    }
}
