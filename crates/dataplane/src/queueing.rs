//! Utilization-dependent queueing delay.
//!
//! The paper's latency metric sums per-hop latencies (§6.1); on a
//! loaded link the store-and-forward queue adds to the propagation
//! delay. We model the classic M/M/1-shaped inflation
//! `delay = base · (1 + K·ρ/(1−ρ))` with the utilization ρ capped
//! below saturation — enough to make "hot path vs cold detour"
//! trade-offs visible to simulations without a full queueing simulator.

/// Queueing contribution at full weight: at ρ = 0.5 the delay grows by
/// `K`, i.e. 10% with the default.
pub const QUEUE_WEIGHT: f64 = 0.1;

/// Utilization cap: beyond this the link is treated as saturated
/// (the M/M/1 term would diverge).
pub const MAX_UTILIZATION: f64 = 0.95;

/// Multiplicative delay factor for a link at utilization `rho`.
pub fn queueing_delay_factor(rho: f64) -> f64 {
    let rho = rho.clamp(0.0, MAX_UTILIZATION);
    1.0 + QUEUE_WEIGHT * rho / (1.0 - rho)
}

/// Effective per-link latency at the given utilization.
pub fn effective_latency_ms(base_ms: f64, rho: f64) -> f64 {
    base_ms * queueing_delay_factor(rho)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_has_no_queueing() {
        assert_eq!(queueing_delay_factor(0.0), 1.0);
        assert_eq!(effective_latency_ms(10.0, 0.0), 10.0);
    }

    #[test]
    fn factor_grows_monotonically() {
        let mut last = 0.0;
        for i in 0..=20 {
            let f = queueing_delay_factor(i as f64 / 20.0);
            assert!(f >= last);
            last = f;
        }
    }

    #[test]
    fn saturation_is_capped_not_infinite() {
        let f = queueing_delay_factor(1.0);
        assert!(f.is_finite());
        assert_eq!(f, queueing_delay_factor(MAX_UTILIZATION));
        assert_eq!(f, queueing_delay_factor(5.0)); // overload clamps too
    }

    #[test]
    fn half_load_adds_queue_weight() {
        let f = queueing_delay_factor(0.5);
        assert!((f - (1.0 + QUEUE_WEIGHT)).abs() < 1e-12);
    }

    #[test]
    fn negative_utilization_clamped() {
        assert_eq!(queueing_delay_factor(-3.0), 1.0);
    }
}
