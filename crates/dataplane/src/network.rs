//! Hop-by-hop frame walking over the site graph.
//!
//! [`WanNetwork`] connects host addresses to sites and walks a frame
//! from its ingress router to delivery, following SR hops (mutating the
//! frame like real routers do) or, for plain VXLAN frames, an
//! ECMP-hashed tunnel. Latency is the sum of traversed link latencies
//! (the paper's §6.1 latency metric).

use crate::ecmp::ecmp_tunnel_seeded;
use crate::queueing::effective_latency_ms;
use crate::router::{route_or_drop, RouterDecision};
use megate_packet::parse_megate_frame;
use megate_topo::{Graph, SiteId, SitePair, TunnelTable};
use std::collections::HashMap;

/// Maps outer (underlay) host addresses to the site they attach to.
#[derive(Debug, Clone, Default)]
pub struct HostRegistry {
    map: HashMap<[u8; 4], SiteId>,
}

impl HostRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a host address at a site.
    pub fn register(&mut self, addr: [u8; 4], site: SiteId) {
        self.map.insert(addr, site);
    }

    /// Site of a host address.
    pub fn site_of(&self, addr: [u8; 4]) -> Option<SiteId> {
        self.map.get(&addr).copied()
    }

    /// Number of registered hosts.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no hosts are registered.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// Result of walking one frame across the WAN.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteOutcome {
    /// Whether the frame reached its destination site.
    pub delivered: bool,
    /// Sites visited, ingress first.
    pub path: Vec<SiteId>,
    /// Total propagation latency in ms.
    pub latency_ms: f64,
    /// Why the frame was dropped (when `!delivered`).
    pub drop_reason: Option<String>,
}

/// The flow-level WAN: graph + tunnels + host registry.
#[derive(Debug, Clone)]
pub struct WanNetwork<'a> {
    /// Site graph.
    pub graph: &'a Graph,
    /// Pre-established tunnels (for conventional ECMP forwarding).
    pub tunnels: &'a TunnelTable,
    /// Host address → site mapping.
    pub hosts: HostRegistry,
    /// ECMP hash seed of this interval.
    pub ecmp_seed: u64,
    /// Links currently failed (frames crossing them are dropped).
    pub failed_links: Vec<megate_topo::LinkId>,
    /// Per-link utilization for queueing-aware latency (empty =
    /// propagation only). See [`crate::queueing`].
    pub link_utilization: Vec<f64>,
    /// `dataplane.frames_delivered`: frames that reached their
    /// destination site (process-wide, across all network instances).
    frames_delivered: megate_obs::Counter,
    /// `dataplane.frames_dropped`: frames lost for any reason (failed
    /// link, no tunnel, malformed, wrong-site SR walk).
    frames_dropped: megate_obs::Counter,
}

impl<'a> WanNetwork<'a> {
    /// A healthy network.
    pub fn new(graph: &'a Graph, tunnels: &'a TunnelTable, hosts: HostRegistry) -> Self {
        Self {
            graph,
            tunnels,
            hosts,
            ecmp_seed: 0,
            failed_links: Vec::new(),
            link_utilization: Vec::new(),
            frames_delivered: megate_obs::counter("dataplane.frames_delivered"),
            frames_dropped: megate_obs::counter("dataplane.frames_dropped"),
        }
    }

    /// Enables queueing-aware latency from a per-link utilization
    /// vector (e.g. a TE allocation's `link_loads` over capacities).
    pub fn with_utilization(mut self, utilization: Vec<f64>) -> Self {
        assert!(
            utilization.is_empty() || utilization.len() == self.graph.link_count(),
            "utilization vector must cover every link"
        );
        self.link_utilization = utilization;
        self
    }

    fn link_latency(&self, l: megate_topo::LinkId) -> f64 {
        let base = self.graph.link(l).latency_ms;
        match self.link_utilization.get(l.index()) {
            Some(&rho) => effective_latency_ms(base, rho),
            None => base,
        }
    }

    /// Walks a frame from its source host's site to delivery, mutating
    /// the frame's SR offset exactly as the routers would.
    pub fn route_frame(&self, frame: &mut [u8]) -> RouteOutcome {
        let out = self.route_frame_inner(frame);
        if out.delivered {
            self.frames_delivered.inc();
        } else {
            self.frames_dropped.inc();
        }
        out
    }

    fn route_frame_inner(&self, frame: &mut [u8]) -> RouteOutcome {
        let parsed = match parse_megate_frame(frame) {
            Ok(p) => p,
            Err(e) => {
                return RouteOutcome {
                    delivered: false,
                    path: Vec::new(),
                    latency_ms: 0.0,
                    drop_reason: Some(format!("malformed frame: {e}")),
                }
            }
        };
        let Some(src_site) = self.hosts.site_of(parsed.outer_src_ip) else {
            return self.dropped("unknown source host");
        };
        let Some(dst_site) = self.hosts.site_of(parsed.outer_dst_ip) else {
            return self.dropped("unknown destination host");
        };

        let mut path = vec![src_site];
        let mut latency = 0.0;
        if parsed.sr.is_some() {
            // SR walk: each router reads hop[offset], advances, forwards.
            let mut here = src_site;
            let max_hops = 64;
            for _ in 0..max_hops {
                match route_or_drop(frame) {
                    Some(RouterDecision::ForwardSr(next)) => match self.take_link(here, next) {
                        Ok(lat) => {
                            latency += lat;
                            here = next;
                            path.push(next);
                        }
                        Err(reason) => {
                            return RouteOutcome {
                                delivered: false,
                                path,
                                latency_ms: latency,
                                drop_reason: Some(reason),
                            }
                        }
                    },
                    Some(RouterDecision::DeliverLocal) => {
                        let delivered = here == dst_site;
                        return RouteOutcome {
                            delivered,
                            path,
                            latency_ms: latency,
                            drop_reason: (!delivered)
                                .then(|| "SR path ended at wrong site".to_string()),
                        };
                    }
                    Some(RouterDecision::Conventional) | None => {
                        return RouteOutcome {
                            delivered: false,
                            path,
                            latency_ms: latency,
                            drop_reason: Some("frame corrupted mid-path".into()),
                        }
                    }
                }
            }
            self.dropped("hop limit exceeded")
        } else {
            // Conventional: ingress router hashes onto a tunnel.
            if src_site == dst_site {
                return RouteOutcome {
                    delivered: true,
                    path,
                    latency_ms: 0.0,
                    drop_reason: None,
                };
            }
            let pair = SitePair::new(src_site, dst_site);
            let tuple = match parsed.inner_flow {
                megate_packet::FlowKey::Tuple { tuple, .. } => tuple,
                megate_packet::FlowKey::Fragment { .. } => {
                    // Routers hash what they can see; fragments reuse the
                    // outer header entropy. Simplify: drop to the first
                    // tunnel deterministically.
                    megate_packet::FiveTuple {
                        src_ip: parsed.outer_src_ip,
                        dst_ip: parsed.outer_dst_ip,
                        proto: megate_packet::Proto::Udp,
                        src_port: 0,
                        dst_port: 0,
                    }
                }
            };
            let Some(t) = ecmp_tunnel_seeded(self.tunnels, pair, &tuple, self.ecmp_seed) else {
                return self.dropped("no tunnel for pair");
            };
            let tunnel = self.tunnels.tunnel(t);
            for (&link, &site) in tunnel.links.iter().zip(tunnel.sites.iter().skip(1)) {
                if self.failed_links.contains(&link) {
                    return RouteOutcome {
                        delivered: false,
                        path,
                        latency_ms: latency,
                        drop_reason: Some("tunnel crosses failed link".into()),
                    };
                }
                latency += self.link_latency(link);
                path.push(site);
            }
            RouteOutcome {
                delivered: true,
                path,
                latency_ms: latency,
                drop_reason: None,
            }
        }
    }

    fn take_link(&self, from: SiteId, to: SiteId) -> Result<f64, String> {
        match self.graph.find_link(from, to) {
            Some(l) if self.failed_links.contains(&l) => Err(format!("link {from}->{to} failed")),
            Some(l) => Ok(self.link_latency(l)),
            None => Err(format!("no link {from}->{to}")),
        }
    }

    fn dropped(&self, reason: &str) -> RouteOutcome {
        RouteOutcome {
            delivered: false,
            path: Vec::new(),
            latency_ms: 0.0,
            drop_reason: Some(reason.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megate_packet::{FiveTuple, MegaTeFrameSpec, Proto};
    use megate_topo::b4;

    fn setup(graph: &Graph) -> (TunnelTable, HostRegistry) {
        let tunnels = TunnelTable::for_all_pairs(graph, 3);
        let mut hosts = HostRegistry::new();
        hosts.register([192, 168, 0, 1], SiteId(0));
        hosts.register([192, 168, 0, 2], SiteId(7));
        (tunnels, hosts)
    }

    fn tuple() -> FiveTuple {
        FiveTuple {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            proto: Proto::Udp,
            src_port: 7,
            dst_port: 8,
        }
    }

    #[test]
    fn sr_frame_follows_designated_tunnel() {
        let g = b4();
        let (tunnels, hosts) = setup(&g);
        let net = WanNetwork::new(&g, &tunnels, hosts);
        // Use the actual shortest tunnel's site list as the SR hops.
        let pair = SitePair::new(SiteId(0), SiteId(7));
        let t = tunnels.tunnels_for(pair)[0];
        let tun = tunnels.tunnel(t);
        let hops: Vec<u32> = tun.sites.iter().skip(1).map(|s| s.0).collect();
        let mut frame = MegaTeFrameSpec::simple(tuple(), 1, Some(hops)).build();
        let out = net.route_frame(&mut frame);
        assert!(out.delivered, "{:?}", out.drop_reason);
        assert_eq!(out.path, tun.sites);
        assert!((out.latency_ms - tun.weight).abs() < 1e-9);
    }

    #[test]
    fn conventional_frame_uses_hashed_tunnel() {
        let g = b4();
        let (tunnels, hosts) = setup(&g);
        let net = WanNetwork::new(&g, &tunnels, hosts);
        let mut frame = MegaTeFrameSpec::simple(tuple(), 1, None).build();
        let out = net.route_frame(&mut frame);
        assert!(out.delivered);
        assert!(out.latency_ms > 0.0);
        assert_eq!(out.path.first(), Some(&SiteId(0)));
        assert_eq!(out.path.last(), Some(&SiteId(7)));
    }

    #[test]
    fn sr_to_wrong_site_not_delivered() {
        let g = b4();
        let (tunnels, hosts) = setup(&g);
        let net = WanNetwork::new(&g, &tunnels, hosts);
        // SR path that ends at site 1 (a neighbour), not the dst site 7.
        let hops = vec![g.link(g.out_links(SiteId(0))[0]).dst.0];
        let mut frame = MegaTeFrameSpec::simple(tuple(), 1, Some(hops)).build();
        let out = net.route_frame(&mut frame);
        assert!(!out.delivered);
        assert!(out.drop_reason.unwrap().contains("wrong site"));
    }

    #[test]
    fn sr_over_missing_link_dropped() {
        let g = b4();
        let (tunnels, hosts) = setup(&g);
        let net = WanNetwork::new(&g, &tunnels, hosts);
        // Site 0 is not adjacent to every site; find a non-neighbour.
        let neighbours: Vec<SiteId> = g
            .out_links(SiteId(0))
            .iter()
            .map(|&l| g.link(l).dst)
            .collect();
        let far = g
            .site_ids()
            .find(|s| *s != SiteId(0) && !neighbours.contains(s))
            .unwrap();
        let mut frame = MegaTeFrameSpec::simple(tuple(), 1, Some(vec![far.0])).build();
        let out = net.route_frame(&mut frame);
        assert!(!out.delivered);
        assert!(out.drop_reason.unwrap().contains("no link"));
    }

    #[test]
    fn failed_link_drops_sr_traffic() {
        let g = b4();
        let (tunnels, hosts) = setup(&g);
        let pair = SitePair::new(SiteId(0), SiteId(7));
        let t = tunnels.tunnels_for(pair)[0];
        let tun = tunnels.tunnel(t).clone();
        let mut net = WanNetwork::new(&g, &tunnels, hosts);
        net.failed_links.push(tun.links[0]);
        let hops: Vec<u32> = tun.sites.iter().skip(1).map(|s| s.0).collect();
        let mut frame = MegaTeFrameSpec::simple(tuple(), 1, Some(hops)).build();
        let out = net.route_frame(&mut frame);
        assert!(!out.delivered);
        assert!(out.drop_reason.unwrap().contains("failed"));
    }

    #[test]
    fn queueing_inflates_latency_on_hot_links() {
        let g = b4();
        let (tunnels, hosts) = setup(&g);
        let cold = WanNetwork::new(&g, &tunnels, hosts.clone());
        let hot = WanNetwork::new(&g, &tunnels, hosts).with_utilization(vec![0.9; g.link_count()]);
        let mut f1 = MegaTeFrameSpec::simple(tuple(), 1, None).build();
        let mut f2 = f1.clone();
        let a = cold.route_frame(&mut f1);
        let b = hot.route_frame(&mut f2);
        assert!(a.delivered && b.delivered);
        assert!(
            b.latency_ms > a.latency_ms * 1.5,
            "hot {} vs cold {}",
            b.latency_ms,
            a.latency_ms
        );
    }

    #[test]
    fn unknown_hosts_rejected() {
        let g = b4();
        let (tunnels, _) = setup(&g);
        let net = WanNetwork::new(&g, &tunnels, HostRegistry::new());
        let mut frame = MegaTeFrameSpec::simple(tuple(), 1, None).build();
        let out = net.route_frame(&mut frame);
        assert!(!out.delivered);
        assert!(out.drop_reason.unwrap().contains("unknown source"));
    }
}
