//! Satisfied demand across a failure + recomputation window (§6.3).
//!
//! When a link fails, flows allocated to tunnels crossing it are lost
//! until the TE scheme recomputes and the new allocation is installed.
//! "NCFlow takes about 100 seconds to recompute ... a large portion of
//! network flows that have traversed the failed links will be dropped
//! during the TE recomputation period. In contrast, MegaTE takes less
//! than one second." Figure 12 plots the resulting satisfied demand;
//! the faster scheme's advantage grows with scale because both the
//! recompute time and the affected traffic grow.

use megate_topo::{LinkId, TunnelTable};

/// The timing of a failure event inside a TE interval.
#[derive(Debug, Clone, Copy)]
pub struct FailureWindow {
    /// Seconds the scheme needs to recompute + install a new allocation.
    pub recompute_seconds: f64,
    /// Length of the evaluation interval (a TE period, e.g. 300 s).
    pub interval_seconds: f64,
}

impl FailureWindow {
    /// A window within a standard 5-minute TE interval.
    pub fn within_te_interval(recompute_seconds: f64) -> Self {
        Self {
            recompute_seconds,
            interval_seconds: 300.0,
        }
    }
}

/// Average satisfied-demand ratio over the interval.
///
/// * `flows_before[t]` — Mbps the pre-failure allocation put on tunnel
///   `t` (dense by tunnel id);
/// * `flows_after[t]` — the recomputed allocation on the degraded
///   topology;
/// * during the recompute window, traffic on tunnels crossing a failed
///   link is dropped; afterwards the new allocation carries
///   `Σ flows_after`.
pub fn satisfied_under_failure(
    tunnels: &TunnelTable,
    flows_before: &[f64],
    flows_after: &[f64],
    failed: &[LinkId],
    total_demand_mbps: f64,
    window: FailureWindow,
) -> f64 {
    assert!(window.recompute_seconds >= 0.0);
    assert!(window.interval_seconds > 0.0);
    assert!(window.recompute_seconds <= window.interval_seconds);
    if total_demand_mbps <= 0.0 {
        return 1.0;
    }
    let surviving_rate: f64 = tunnels
        .all_tunnels()
        .filter(|t| !t.links.iter().any(|l| failed.contains(l)))
        .map(|t| flows_before[t.id.index()])
        .sum();
    let after_rate: f64 = flows_after.iter().sum();
    let w = window.recompute_seconds;
    let t_total = window.interval_seconds;
    let delivered = surviving_rate * w + after_rate * (t_total - w);
    (delivered / (total_demand_mbps * t_total)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use megate_topo::{b4, SiteId, SitePair};

    fn fixture() -> (megate_topo::Graph, TunnelTable) {
        let g = b4();
        let t = TunnelTable::for_pairs(
            &g,
            &[
                SitePair::new(SiteId(0), SiteId(7)),
                SitePair::new(SiteId(2), SiteId(9)),
            ],
            3,
        );
        (g, t)
    }

    #[test]
    fn no_failure_full_service() {
        let (_, tunnels) = fixture();
        let mut flows = vec![0.0; tunnels.tunnel_count()];
        flows[0] = 100.0;
        let r = satisfied_under_failure(
            &tunnels,
            &flows,
            &flows,
            &[],
            100.0,
            FailureWindow::within_te_interval(100.0),
        );
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn loss_proportional_to_window() {
        let (_, tunnels) = fixture();
        let victim = tunnels.all_tunnels().next().unwrap();
        let failed = vec![victim.links[0]];
        let mut flows = vec![0.0; tunnels.tunnel_count()];
        flows[victim.id.index()] = 100.0;

        let slow = satisfied_under_failure(
            &tunnels,
            &flows,
            &flows_after(&tunnels, &flows, &failed),
            &failed,
            100.0,
            FailureWindow::within_te_interval(100.0),
        );
        let fast = satisfied_under_failure(
            &tunnels,
            &flows,
            &flows_after(&tunnels, &flows, &failed),
            &failed,
            100.0,
            FailureWindow::within_te_interval(1.0),
        );
        assert!(fast > slow, "fast {fast} vs slow {slow}");
        // 100 s of 300 s fully dark, then fully restored: 2/3 served.
        assert!((slow - 2.0 / 3.0).abs() < 1e-9, "slow {slow}");
        assert!(fast > 0.99, "fast {fast}");
    }

    /// Recomputed allocation: move victim flows to the same pair's next
    /// healthy tunnel.
    fn flows_after(tunnels: &TunnelTable, before: &[f64], failed: &[LinkId]) -> Vec<f64> {
        let mut after = vec![0.0; before.len()];
        for t in tunnels.all_tunnels() {
            let f = before[t.id.index()];
            if f <= 0.0 {
                continue;
            }
            if !t.links.iter().any(|l| failed.contains(l)) {
                after[t.id.index()] += f;
            } else {
                // Find a healthy sibling tunnel.
                if let Some(&alt) = tunnels
                    .tunnels_for(t.pair)
                    .iter()
                    .find(|&&a| !tunnels.tunnel(a).links.iter().any(|l| failed.contains(l)))
                {
                    after[alt.index()] += f;
                }
            }
        }
        after
    }

    #[test]
    fn unaffected_tunnels_keep_flowing_during_window() {
        let (_, tunnels) = fixture();
        let victim = tunnels.all_tunnels().next().unwrap();
        let failed = vec![victim.links[0]];
        // Put traffic only on a tunnel that avoids the failed link.
        let healthy = tunnels
            .all_tunnels()
            .find(|t| !t.links.iter().any(|l| failed.contains(l)))
            .unwrap();
        let mut flows = vec![0.0; tunnels.tunnel_count()];
        flows[healthy.id.index()] = 50.0;
        let r = satisfied_under_failure(
            &tunnels,
            &flows,
            &flows,
            &failed,
            50.0,
            FailureWindow::within_te_interval(120.0),
        );
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_demand_is_trivially_satisfied() {
        let (_, tunnels) = fixture();
        let flows = vec![0.0; tunnels.tunnel_count()];
        let r = satisfied_under_failure(
            &tunnels,
            &flows,
            &flows,
            &[],
            0.0,
            FailureWindow::within_te_interval(10.0),
        );
        assert_eq!(r, 1.0);
    }
}
