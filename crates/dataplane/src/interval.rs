//! Multi-interval replay: the TE control loop over a sequence of
//! 5-minute intervals (§6.1's "typical day"), with optional failure
//! events — the engine behind diurnal replays and availability studies.
//!
//! The engine is solver-agnostic: the caller supplies a closure that
//! solves one interval (so `megate-solvers` stays a downstream choice),
//! and per interval the engine reports satisfied demand, rejected
//! flows and loss during failure-recompute windows.

use crate::failure_sim::{satisfied_under_failure, FailureWindow};
use megate_topo::{Graph, LinkId, TunnelTable};

/// One interval's inputs.
pub struct IntervalInput<'a> {
    /// Interval index (0-based).
    pub index: usize,
    /// Demand multiplier applied this interval (e.g. diurnal shape).
    pub demand_multiplier: f64,
    /// Links failing *at the start of* this interval (empty = healthy).
    pub failing_links: &'a [LinkId],
}

/// One interval's outputs, as reported by the caller's solver closure.
#[derive(Debug, Clone)]
pub struct IntervalSolve {
    /// Per-tunnel flow of the new allocation (dense by tunnel id), Mbps.
    pub tunnel_flow_mbps: Vec<f64>,
    /// Total demand this interval, Mbps.
    pub total_demand_mbps: f64,
    /// Wall-clock seconds the recompute took (drives the loss window
    /// when the interval began with a failure).
    pub recompute_seconds: f64,
}

/// Metrics of one replayed interval.
#[derive(Debug, Clone)]
pub struct IntervalMetrics {
    /// Interval index.
    pub index: usize,
    /// Satisfied-demand ratio of the interval (including any
    /// failure-window loss).
    pub satisfied: f64,
    /// Whether a failure hit this interval.
    pub failed: bool,
}

/// Replays `inputs` through `solve`, accounting failure windows against
/// the previous interval's allocation (flows keep riding the old paths
/// until the recompute lands — §6.3's mechanism).
pub fn replay_intervals<'a, F>(
    _graph: &Graph,
    tunnels: &TunnelTable,
    interval_seconds: f64,
    inputs: impl IntoIterator<Item = IntervalInput<'a>>,
    mut solve: F,
) -> Vec<IntervalMetrics>
where
    F: FnMut(&IntervalInput<'a>) -> IntervalSolve,
{
    let mut previous_flows: Option<Vec<f64>> = None;
    let mut out = Vec::new();
    for input in inputs {
        let solved = solve(&input);
        let satisfied = if input.failing_links.is_empty() {
            if solved.total_demand_mbps <= 0.0 {
                1.0
            } else {
                (solved.tunnel_flow_mbps.iter().sum::<f64>() / solved.total_demand_mbps).min(1.0)
            }
        } else {
            // Failure at interval start: the *previous* allocation
            // carries traffic (minus the dead tunnels) during the
            // recompute window, then the new one takes over.
            let before = previous_flows
                .clone()
                .unwrap_or_else(|| vec![0.0; solved.tunnel_flow_mbps.len()]);
            satisfied_under_failure(
                tunnels,
                &before,
                &solved.tunnel_flow_mbps,
                input.failing_links,
                solved.total_demand_mbps,
                FailureWindow {
                    recompute_seconds: solved.recompute_seconds.min(interval_seconds),
                    interval_seconds,
                },
            )
        };
        out.push(IntervalMetrics {
            index: input.index,
            satisfied,
            failed: !input.failing_links.is_empty(),
        });
        previous_flows = Some(solved.tunnel_flow_mbps);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use megate_topo::{b4, SiteId, SitePair};

    fn fixture() -> (Graph, TunnelTable) {
        let g = b4();
        let t = TunnelTable::for_pairs(&g, &[SitePair::new(SiteId(0), SiteId(7))], 3);
        (g, t)
    }

    #[test]
    fn healthy_intervals_report_plain_ratio() {
        let (g, tunnels) = fixture();
        let n_tunnels = tunnels.tunnel_count();
        let metrics = replay_intervals(
            &g,
            &tunnels,
            300.0,
            (0..3).map(|i| IntervalInput {
                index: i,
                demand_multiplier: 1.0,
                failing_links: &[],
            }),
            |_| IntervalSolve {
                tunnel_flow_mbps: {
                    let mut f = vec![0.0; n_tunnels];
                    f[0] = 80.0;
                    f
                },
                total_demand_mbps: 100.0,
                recompute_seconds: 0.1,
            },
        );
        assert_eq!(metrics.len(), 3);
        for m in &metrics {
            assert!((m.satisfied - 0.8).abs() < 1e-12);
            assert!(!m.failed);
        }
    }

    #[test]
    fn failure_interval_charges_the_recompute_window() {
        let (g, tunnels) = fixture();
        let victim = tunnels.all_tunnels().next().unwrap();
        let failed = vec![victim.links[0]];
        let n_tunnels = tunnels.tunnel_count();
        let healthy_idx = tunnels
            .all_tunnels()
            .find(|t| !t.links.contains(&failed[0]))
            .unwrap()
            .id
            .index();

        let inputs = [
            IntervalInput {
                index: 0,
                demand_multiplier: 1.0,
                failing_links: &[],
            },
            IntervalInput {
                index: 1,
                demand_multiplier: 1.0,
                failing_links: &failed,
            },
        ];
        let victim_idx = victim.id.index();
        let metrics = replay_intervals(&g, &tunnels, 300.0, inputs, |input| {
            let mut flows = vec![0.0; n_tunnels];
            if input.failing_links.is_empty() {
                flows[victim_idx] = 100.0; // pre-failure: on the doomed tunnel
            } else {
                flows[healthy_idx] = 100.0; // recomputed around the cut
            }
            IntervalSolve {
                tunnel_flow_mbps: flows,
                total_demand_mbps: 100.0,
                recompute_seconds: 30.0,
            }
        });
        assert!((metrics[0].satisfied - 1.0).abs() < 1e-12);
        assert!(metrics[1].failed);
        // 30 s of 300 s dark: 90% delivered.
        assert!(
            (metrics[1].satisfied - 0.9).abs() < 1e-9,
            "{}",
            metrics[1].satisfied
        );
    }

    #[test]
    fn empty_replay_is_empty() {
        let (g, tunnels) = fixture();
        let metrics = replay_intervals(&g, &tunnels, 300.0, std::iter::empty(), |_| unreachable!());
        assert!(metrics.is_empty());
    }
}
