//! Per-router forwarding on real frame bytes (§5.2, "Router
//! implementation").

use megate_packet::{advance_sr_offset, parse_megate_frame, Result as WireResult, WireError};
use megate_topo::SiteId;

/// What a router decided to do with one frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterDecision {
    /// SR header present and not exhausted: forward to this site (the
    /// router also advanced the offset in the frame).
    ForwardSr(SiteId),
    /// SR path exhausted: the frame has arrived at its last WAN hop,
    /// deliver toward the destination host.
    DeliverLocal,
    /// No MegaTE SR information: conventional forwarding applies (the
    /// caller picks a tunnel via ECMP hashing).
    Conventional,
}

/// Inspects (and for SR frames, mutates) a frame at one router.
///
/// A frame whose VXLAN header carries the MegaTE flag is forwarded along
/// `hop[offset]`, and the offset is incremented in place. Malformed
/// frames yield an error; routers drop such packets.
pub fn route_decision(frame: &mut [u8]) -> WireResult<RouterDecision> {
    let parsed = parse_megate_frame(frame)?;
    match parsed.sr {
        None => Ok(RouterDecision::Conventional),
        Some((offset, hops)) => {
            if (offset as usize) < hops.len() {
                let next = SiteId(hops[offset as usize]);
                advance_sr_offset(frame)?;
                Ok(RouterDecision::ForwardSr(next))
            } else {
                Ok(RouterDecision::DeliverLocal)
            }
        }
    }
}

/// Convenience for simulations: drop verdict for malformed frames.
pub fn route_or_drop(frame: &mut [u8]) -> Option<RouterDecision> {
    match route_decision(frame) {
        Ok(d) => Some(d),
        Err(WireError::Truncated) | Err(WireError::Malformed) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megate_packet::{FiveTuple, MegaTeFrameSpec, Proto};

    fn tuple() -> FiveTuple {
        FiveTuple {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            proto: Proto::Udp,
            src_port: 1,
            dst_port: 2,
        }
    }

    #[test]
    fn sr_frame_walks_hops_then_delivers() {
        let mut frame = MegaTeFrameSpec::simple(tuple(), 1, Some(vec![5, 9])).build();
        assert_eq!(
            route_decision(&mut frame).unwrap(),
            RouterDecision::ForwardSr(SiteId(5))
        );
        assert_eq!(
            route_decision(&mut frame).unwrap(),
            RouterDecision::ForwardSr(SiteId(9))
        );
        assert_eq!(
            route_decision(&mut frame).unwrap(),
            RouterDecision::DeliverLocal
        );
        // Idempotent once exhausted.
        assert_eq!(
            route_decision(&mut frame).unwrap(),
            RouterDecision::DeliverLocal
        );
    }

    #[test]
    fn plain_vxlan_is_conventional() {
        let mut frame = MegaTeFrameSpec::simple(tuple(), 1, None).build();
        assert_eq!(
            route_decision(&mut frame).unwrap(),
            RouterDecision::Conventional
        );
    }

    #[test]
    fn malformed_frames_dropped() {
        let mut junk = vec![1u8; 30];
        assert_eq!(route_or_drop(&mut junk), None);
    }
}
