//! Multi-core batched data-plane drivers (DESIGN.md §5d).
//!
//! Ties the layers of the batched fast path together: a seeded
//! deterministic [`TrafficGen`] builds a frame trace, a producer shards
//! frames to N worker cores over lock-free SPSC rings (RSS-style, by a
//! hash of the inner IP pair so all fragments of a datagram land on one
//! core), and each worker drains [`megate_packet::FrameBatch`]es
//! through [`SimKernel::tc_egress_batch`] against its private
//! [`CpuShard`], merging on a sync tick. [`run_single_frame`] is the
//! frame-at-a-time baseline the `fig_dataplane` bench compares against;
//! `tests/dataplane_batch.rs` asserts both paths leave identical
//! shared-map state.

use megate_hoststack::{CpuShard, InstanceId, Pid, SimKernel, TcStats};
use megate_packet::{FiveTuple, FrameBatch, MegaTeFrameSpec, Proto};
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

// ---------------------------------------------------------------------
// SPSC ring
// ---------------------------------------------------------------------

/// A bounded lock-free single-producer/single-consumer ring.
///
/// One cache-friendly slot array indexed by free-running head/tail
/// counters; the producer writes a slot then releases `tail`, the
/// consumer takes a slot then releases `head`. Safety rests on the
/// handle split below: [`Producer`] and [`Consumer`] are not `Clone`,
/// so each side has exactly one thread.
struct SpscRing<T> {
    slots: Box<[UnsafeCell<Option<T>>]>,
    /// Next slot the consumer will take (free-running).
    head: AtomicUsize,
    /// Next slot the producer will fill (free-running).
    tail: AtomicUsize,
}

// The slot at `i` is touched by exactly one side at a time: the
// producer before the tail release at `i`, the consumer after it.
unsafe impl<T: Send> Send for SpscRing<T> {}
unsafe impl<T: Send> Sync for SpscRing<T> {}

/// Producer handle of an SPSC ring (exactly one per ring).
pub struct Producer<T> {
    ring: Arc<SpscRing<T>>,
}

/// Consumer handle of an SPSC ring (exactly one per ring).
pub struct Consumer<T> {
    ring: Arc<SpscRing<T>>,
}

/// Create a bounded SPSC ring with `capacity` slots.
pub fn spsc_ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    assert!(capacity > 0, "ring needs capacity");
    let slots = (0..capacity).map(|_| UnsafeCell::new(None)).collect();
    let ring = Arc::new(SpscRing {
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
        },
        Consumer { ring },
    )
}

impl<T> Producer<T> {
    /// Try to enqueue; hands the value back when the ring is full.
    pub fn push(&self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail - head == ring.slots.len() {
            return Err(value);
        }
        let slot = &ring.slots[tail % ring.slots.len()];
        unsafe { *slot.get() = Some(value) };
        ring.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }
}

impl<T> Consumer<T> {
    /// Try to dequeue; `None` when the ring is empty.
    pub fn pop(&self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        let slot = &ring.slots[head % ring.slots.len()];
        let value = unsafe { (*slot.get()).take() };
        ring.head.store(head + 1, Ordering::Release);
        value
    }
}

// ---------------------------------------------------------------------
// Deterministic traffic generation
// ---------------------------------------------------------------------

/// Shape of the synthetic egress workload.
#[derive(Debug, Clone, Copy)]
pub struct TrafficProfile {
    /// Distinct five-tuples in the trace (kept far below `traffic_map`
    /// capacity so LRU pressure cannot skew the equivalence check).
    pub flows: usize,
    /// Virtual instances the flows are spread over.
    pub instances: usize,
    /// Out of 1000 flows, how many have a TE path installed (and so
    /// receive an SR header at egress).
    pub routed_per_mille: u32,
    /// Out of 1000 frames, how many are emitted as a first+second
    /// fragment pair (two frames, consecutively).
    pub frag_per_mille: u32,
    /// Out of 1000 frames, how many are non-VXLAN noise the TC chain
    /// must pass untouched.
    pub noise_per_mille: u32,
    /// Inner payload bytes per frame.
    pub payload_len: usize,
}

impl Default for TrafficProfile {
    fn default() -> Self {
        Self {
            flows: 2048,
            instances: 128,
            routed_per_mille: 500,
            frag_per_mille: 30,
            noise_per_mille: 20,
            payload_len: 256,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn flow_tuple(i: usize) -> FiveTuple {
    FiveTuple {
        src_ip: [10, 1, (i >> 8) as u8, i as u8],
        dst_ip: [
            10,
            128 + ((i >> 10) & 0x3F) as u8,
            (i >> 4) as u8,
            (i & 0xF) as u8,
        ],
        proto: Proto::Udp,
        src_port: 10_000 + (i % 40_000) as u16,
        dst_port: 443,
    }
}

/// The shard key the producer hashes frames on: the inner IP pair,
/// i.e. what NIC RSS sees. Fragments carry no ports, so keying on the
/// IP pair (not the full five-tuple) keeps every fragment of a datagram
/// on the same worker — the ordering precondition of §5d.
fn shard_key(t: &FiveTuple) -> u64 {
    let mut h =
        u64::from(u32::from_be_bytes(t.src_ip)) << 32 | u64::from(u32::from_be_bytes(t.dst_ip));
    // One splitmix round to spread adjacent addresses across cores.
    splitmix64(&mut h)
}

/// A pre-generated deterministic frame trace.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Raw egress frames, in arrival order.
    pub frames: Vec<Vec<u8>>,
    /// Per-frame shard key (RSS hash of the inner IP pair).
    pub shard_keys: Vec<u64>,
    /// The profile the trace was generated from.
    pub profile: TrafficProfile,
}

impl Trace {
    /// Frames in the trace.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// True when the trace holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

/// Seeded deterministic egress traffic generator.
///
/// Same seed + profile → byte-identical trace, which is what makes the
/// batched-vs-serial equivalence test meaningful. Fragment pairs get a
/// globally unique IP-ID from a counter so trace-level `frag_map`
/// behaviour never depends on hash collisions.
#[derive(Debug)]
pub struct TrafficGen {
    rng: u64,
    profile: TrafficProfile,
    next_ipid: u16,
}

impl TrafficGen {
    /// A generator for `profile` seeded with `seed`.
    pub fn new(seed: u64, profile: TrafficProfile) -> Self {
        Self {
            rng: seed ^ 0xD6E8_FEB8_6659_FD93,
            profile,
            next_ipid: 1,
        }
    }

    /// Generate a trace of at least `frames` frames (fragment pairs may
    /// add one extra at the boundary).
    pub fn generate(&mut self, frames: usize) -> Trace {
        let p = self.profile;
        let mut out = Trace {
            frames: Vec::with_capacity(frames + 1),
            shard_keys: Vec::with_capacity(frames + 1),
            profile: p,
        };
        let mut noise_seq = 0u64;
        while out.frames.len() < frames {
            let roll = splitmix64(&mut self.rng) % 1000;
            if roll < u64::from(p.noise_per_mille) {
                // Non-VXLAN noise: plain bytes the parser must reject.
                let mut junk = vec![0u8; 60];
                let fill = splitmix64(&mut self.rng);
                junk[..8].copy_from_slice(&fill.to_be_bytes());
                out.frames.push(junk);
                // Round-robin noise across cores.
                out.shard_keys.push(noise_seq);
                noise_seq += 1;
                continue;
            }
            let flow = (splitmix64(&mut self.rng) as usize) % p.flows;
            let tuple = flow_tuple(flow);
            let key = shard_key(&tuple);
            let vni = 1 + (flow % p.instances) as u32;
            if roll < u64::from(p.noise_per_mille) + u64::from(p.frag_per_mille) {
                // A fragmented datagram: first fragment (ports visible,
                // MF set) then the follow-on fragment (offset > 0).
                let ipid = self.next_ipid;
                self.next_ipid = self.next_ipid.wrapping_add(1).max(1);
                let mut first = MegaTeFrameSpec::simple(tuple, vni, None);
                first.inner_ipid = ipid;
                first.inner_fragment = (0, true);
                first.payload_len = p.payload_len;
                let mut second = MegaTeFrameSpec::simple(tuple, vni, None);
                second.inner_ipid = ipid;
                second.inner_fragment = (1480, false);
                second.payload_len = p.payload_len / 2;
                out.frames.push(first.build());
                out.shard_keys.push(key);
                out.frames.push(second.build());
                out.shard_keys.push(key);
            } else {
                let mut spec = MegaTeFrameSpec::simple(tuple, vni, None);
                spec.payload_len = p.payload_len;
                out.frames.push(spec.build());
                out.shard_keys.push(key);
            }
        }
        out
    }
}

/// Install the profile's control state on a kernel: every flow gets an
/// owning instance (`env_map`/`contk_map` → `inf_map`), and the routed
/// share gets a 3-hop TE path in `path_map`.
pub fn install_profile(kernel: &SimKernel, profile: &TrafficProfile) {
    for flow in 0..profile.flows {
        let tuple = flow_tuple(flow);
        let instance = InstanceId(1 + (flow % profile.instances) as u64);
        let pid = Pid(1000 + flow as u32);
        kernel
            .spawn_process(instance, pid)
            .expect("env_map sized for profile");
        kernel
            .open_connection(pid, tuple)
            .expect("contk_map sized for profile");
        if (flow as u32) % 1000 < profile.routed_per_mille {
            kernel
                .maps()
                .path_map
                .update((instance, tuple.dst_ip), vec![2, 7, 11])
                .expect("path_map sized for profile");
        }
    }
}

// ---------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------

/// What one driver run measured.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Frames processed.
    pub frames: usize,
    /// Wall-clock for the processing loop.
    pub elapsed: std::time::Duration,
    /// Throughput in frames per second, from wall-clock. On a machine
    /// with fewer hardware threads than configured cores this measures
    /// scheduler time-slicing, not the pipeline — see
    /// [`pipeline_frames_per_sec`](Self::pipeline_frames_per_sec).
    pub frames_per_sec: f64,
    /// Thread CPU time the producer spent sharding and pushing frames,
    /// excluding time blocked on full rings (backpressure, not work).
    pub producer_busy: std::time::Duration,
    /// The busiest worker's thread CPU time (batch processing + sync
    /// ticks). Workers share nothing between sync ticks, so the slowest
    /// worker bounds steady-state throughput.
    pub max_worker_busy: std::time::Duration,
    /// Modeled steady-state throughput: `frames / max(producer_busy,
    /// max_worker_busy)`. With as many hardware threads as configured
    /// cores the stages overlap and this is what wall-clock converges
    /// to; it is the honest multi-core number when the bench host has
    /// fewer physical cores than the sweep point. Equals the wall-clock
    /// figure for the single-frame path.
    pub pipeline_frames_per_sec: f64,
    /// Median per-frame latency in nanoseconds (per-batch time divided
    /// by batch length for the batched path).
    pub ns_per_frame_p50: u64,
    /// 99th-percentile per-frame latency in nanoseconds.
    pub ns_per_frame_p99: u64,
    /// Kernel TC counters accumulated by this run.
    pub stats: TcStats,
}

/// Per-thread CPU time in nanoseconds (shared helper in `megate-obs`).
///
/// Stage busy times are measured on this clock, not wall-clock, so they
/// exclude involuntary preemption: when the bench host has fewer
/// hardware threads than configured cores, an `Instant` span around a
/// batch silently includes every other thread's scheduler quantum and
/// the modeled pipeline throughput becomes noise.
use megate_obs::thread_cpu_ns;

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn report(
    frames: usize,
    elapsed: std::time::Duration,
    producer_busy: std::time::Duration,
    max_worker_busy: std::time::Duration,
    mut samples: Vec<u64>,
    stats: TcStats,
) -> RunReport {
    samples.sort_unstable();
    let secs = elapsed.as_secs_f64();
    let bottleneck = producer_busy.max(max_worker_busy).as_secs_f64();
    RunReport {
        frames,
        elapsed,
        frames_per_sec: if secs > 0.0 {
            frames as f64 / secs
        } else {
            f64::INFINITY
        },
        producer_busy,
        max_worker_busy,
        pipeline_frames_per_sec: if bottleneck > 0.0 {
            frames as f64 / bottleneck
        } else {
            f64::INFINITY
        },
        ns_per_frame_p50: quantile(&samples, 0.50),
        ns_per_frame_p99: quantile(&samples, 0.99),
        stats,
    }
}

/// The frame-at-a-time baseline: every frame through
/// [`SimKernel::tc_egress`], shared maps touched per frame.
pub fn run_single_frame(kernel: &SimKernel, trace: &Trace) -> RunReport {
    let frames_ctr = megate_obs::counter("dataplane.frames");
    let lat = megate_obs::histogram("dataplane.single.ns_per_frame");
    let before = kernel.stats();
    let mut samples = Vec::with_capacity(trace.len() / 64 + 1);
    let start = std::time::Instant::now();
    let cpu0 = thread_cpu_ns();
    // Time in 64-frame chunks so clock-read overhead amortizes the same
    // way it does per batch on the batched path.
    for chunk in trace.frames.chunks(64) {
        let t0 = std::time::Instant::now();
        for frame in chunk {
            let mut f = frame.clone();
            kernel.tc_egress(&mut f);
        }
        let ns = t0.elapsed().as_nanos() as u64 / chunk.len() as u64;
        samples.push(ns);
        lat.record(ns);
    }
    let busy = std::time::Duration::from_nanos(thread_cpu_ns().saturating_sub(cpu0));
    let elapsed = start.elapsed();
    frames_ctr.add(trace.len() as u64);
    let after = kernel.stats();
    // The single-frame path is one stage on one thread: the whole loop
    // (frame copy included — the batched path's producer does the same
    // copy into the arena) is its busy time.
    report(
        trace.len(),
        elapsed,
        busy,
        busy,
        samples,
        diff_stats(before, after),
    )
}

fn diff_stats(before: TcStats, after: TcStats) -> TcStats {
    TcStats {
        frames: after.frames - before.frames,
        sr_inserted: after.sr_inserted - before.sr_inserted,
        attributed: after.attributed - before.attributed,
        fragments_resolved: after.fragments_resolved - before.fragments_resolved,
        accounting_misses: after.accounting_misses - before.accounting_misses,
    }
}

/// Knobs of the batched multi-core driver.
#[derive(Debug, Clone, Copy)]
pub struct WorkerConfig {
    /// Worker cores (one SPSC ring + one [`CpuShard`] each).
    pub cores: usize,
    /// Frames per [`FrameBatch`] handed to a worker.
    pub batch_size: usize,
    /// Batches a worker processes between sync ticks.
    pub sync_every: usize,
    /// Ring capacity in batches.
    pub ring_depth: usize,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            cores: 4,
            batch_size: 64,
            sync_every: 16,
            ring_depth: 64,
        }
    }
}

/// The batched multi-core path: the producer shards the trace by RSS
/// key onto per-core SPSC rings; each worker drains batches through
/// [`SimKernel::tc_egress_batch`] on its private [`CpuShard`], syncing
/// every [`WorkerConfig::sync_every`] batches and once at the end, so
/// the shared maps end up complete when this returns.
pub fn run_batched(kernel: &SimKernel, trace: &Trace, cfg: WorkerConfig) -> RunReport {
    assert!(cfg.cores > 0 && cfg.batch_size > 0 && cfg.sync_every > 0);
    let frames_ctr = megate_obs::counter("dataplane.frames");
    let batches_ctr = megate_obs::counter("dataplane.batches");
    let stall_ctr = megate_obs::counter("dataplane.ring_full_stalls");
    let lat = megate_obs::histogram("dataplane.batch.ns_per_frame");
    megate_obs::gauge("dataplane.cores").set(cfg.cores as i64);

    let before = kernel.stats();
    let mut producers = Vec::with_capacity(cfg.cores);
    let mut consumers = Vec::with_capacity(cfg.cores);
    for _ in 0..cfg.cores {
        let (p, c) = spsc_ring::<FrameBatch>(cfg.ring_depth);
        producers.push(p);
        consumers.push(c);
    }

    let start = std::time::Instant::now();
    let (results, producer_busy): (Vec<(Vec<u64>, u64)>, std::time::Duration) =
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(cfg.cores);
            for consumer in consumers {
                let kernel = &*kernel;
                let lat = lat.clone();
                let batches_ctr = batches_ctr.clone();
                handles.push(scope.spawn(move || {
                    let mut cpu = CpuShard::new();
                    let mut samples = Vec::new();
                    let mut busy_ns = 0u64;
                    let mut since_sync = 0usize;
                    loop {
                        let Some(mut batch) = consumer.pop() else {
                            // Yield rather than spin: with more workers
                            // than hardware threads a pure spin starves
                            // the producer for whole scheduler quanta.
                            std::thread::yield_now();
                            continue;
                        };
                        if batch.is_empty() {
                            break; // producer's end-of-stream sentinel
                        }
                        let n = batch.len();
                        let t0 = std::time::Instant::now();
                        let c0 = thread_cpu_ns();
                        kernel.tc_egress_batch(&mut batch, &mut cpu);
                        busy_ns += thread_cpu_ns().saturating_sub(c0);
                        let per_frame = t0.elapsed().as_nanos() as u64 / n as u64;
                        samples.push(per_frame);
                        lat.record(per_frame);
                        batches_ctr.inc();
                        since_sync += 1;
                        if since_sync >= cfg.sync_every {
                            let c0 = thread_cpu_ns();
                            kernel.sync_cpu(&mut cpu);
                            busy_ns += thread_cpu_ns().saturating_sub(c0);
                            since_sync = 0;
                        }
                    }
                    let c0 = thread_cpu_ns();
                    kernel.sync_cpu(&mut cpu);
                    busy_ns += thread_cpu_ns().saturating_sub(c0);
                    (samples, busy_ns)
                }));
            }

            // Producer (this thread): shard frames onto per-core batches.
            // Time blocked on full rings is tracked separately — it is
            // backpressure from workers, not producer work. Arenas are
            // sized from the trace's mean frame length (+ headroom) so
            // steady-state batch building never reallocates.
            let total_bytes: usize = trace.frames.iter().map(Vec::len).sum();
            let frame_hint = total_bytes / trace.len().max(1) + 64;
            let mut building: Vec<FrameBatch> = (0..cfg.cores)
                .map(|_| FrameBatch::with_capacity(cfg.batch_size, frame_hint))
                .collect();
            let mut wait_ns = 0u64;
            let mut send = |core: usize, batch: FrameBatch, producers: &[Producer<FrameBatch>]| {
                let mut pending = batch;
                if let Err(b) = producers[core].push(pending) {
                    let blocked = thread_cpu_ns();
                    stall_ctr.inc();
                    pending = b;
                    loop {
                        std::thread::yield_now();
                        match producers[core].push(pending) {
                            Ok(()) => break,
                            Err(b) => {
                                stall_ctr.inc();
                                pending = b;
                            }
                        }
                    }
                    wait_ns += thread_cpu_ns().saturating_sub(blocked);
                }
            };
            let produce_cpu0 = thread_cpu_ns();
            for (frame, key) in trace.frames.iter().zip(&trace.shard_keys) {
                let core = (key % cfg.cores as u64) as usize;
                building[core].push(frame);
                if building[core].len() >= cfg.batch_size {
                    let full = std::mem::replace(
                        &mut building[core],
                        FrameBatch::with_capacity(cfg.batch_size, frame_hint),
                    );
                    send(core, full, &producers);
                }
            }
            for (core, batch) in building.into_iter().enumerate() {
                if !batch.is_empty() {
                    send(core, batch, &producers);
                }
                send(core, FrameBatch::new(), &producers); // sentinel
            }
            let produce_ns = thread_cpu_ns().saturating_sub(produce_cpu0);
            let busy = std::time::Duration::from_nanos(produce_ns.saturating_sub(wait_ns));
            let results = handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect();
            (results, busy)
        });
    let elapsed = start.elapsed();
    frames_ctr.add(trace.len() as u64);
    let after = kernel.stats();
    let max_worker_busy =
        std::time::Duration::from_nanos(results.iter().map(|(_, busy)| *busy).max().unwrap_or(0));
    let merged: Vec<u64> = results
        .into_iter()
        .flat_map(|(samples, _)| samples)
        .collect();
    report(
        trace.len(),
        elapsed,
        producer_busy,
        max_worker_busy,
        merged,
        diff_stats(before, after),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spsc_ring_is_fifo_and_bounded() {
        let (p, c) = spsc_ring::<u32>(2);
        assert!(p.push(1).is_ok());
        assert!(p.push(2).is_ok());
        assert_eq!(p.push(3), Err(3));
        assert_eq!(c.pop(), Some(1));
        assert!(p.push(3).is_ok());
        assert_eq!(c.pop(), Some(2));
        assert_eq!(c.pop(), Some(3));
        assert_eq!(c.pop(), None);
    }

    #[test]
    fn spsc_ring_cross_thread_delivery() {
        let (p, c) = spsc_ring::<usize>(8);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..10_000 {
                    let mut v = i;
                    loop {
                        match p.push(v) {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            });
            let mut expected = 0;
            while expected < 10_000 {
                if let Some(v) = c.pop() {
                    assert_eq!(v, expected);
                    expected += 1;
                } else {
                    std::hint::spin_loop();
                }
            }
        });
    }

    #[test]
    fn trace_generation_is_deterministic() {
        let profile = TrafficProfile::default();
        let a = TrafficGen::new(42, profile).generate(2000);
        let b = TrafficGen::new(42, profile).generate(2000);
        assert_eq!(a.frames, b.frames);
        assert_eq!(a.shard_keys, b.shard_keys);
        let c = TrafficGen::new(43, profile).generate(2000);
        assert_ne!(a.frames, c.frames, "different seed, different trace");
    }

    #[test]
    fn trace_contains_all_advertised_kinds() {
        let profile = TrafficProfile {
            frag_per_mille: 100,
            noise_per_mille: 100,
            ..TrafficProfile::default()
        };
        let trace = TrafficGen::new(7, profile).generate(4000);
        let mut noise = 0;
        let mut frags = 0;
        for f in &trace.frames {
            match megate_packet::parse_megate_frame(f) {
                Err(_) => noise += 1,
                Ok(p) => {
                    if matches!(p.inner_flow, megate_packet::FlowKey::Fragment { .. }) {
                        frags += 1;
                    }
                }
            }
        }
        assert!(noise > 0, "no noise frames generated");
        assert!(frags > 0, "no fragment frames generated");
    }

    #[test]
    fn fragment_pairs_share_a_shard_key() {
        let profile = TrafficProfile {
            frag_per_mille: 200,
            ..TrafficProfile::default()
        };
        let trace = TrafficGen::new(11, profile).generate(2000);
        for i in 0..trace.len() {
            if let Ok(p) = megate_packet::parse_megate_frame(&trace.frames[i]) {
                if matches!(p.inner_flow, megate_packet::FlowKey::Fragment { .. }) {
                    assert_eq!(
                        trace.shard_keys[i],
                        trace.shard_keys[i - 1],
                        "fragment at {i} not colocated with its first fragment"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_driver_matches_serial_driver() {
        let profile = TrafficProfile {
            flows: 256,
            ..TrafficProfile::default()
        };
        let trace = TrafficGen::new(1234, profile).generate(5000);

        let serial = SimKernel::new();
        install_profile(&serial, &profile);
        let serial_report = run_single_frame(&serial, &trace);

        let batched = SimKernel::new();
        install_profile(&batched, &profile);
        let cfg = WorkerConfig {
            cores: 3,
            batch_size: 32,
            sync_every: 4,
            ring_depth: 16,
        };
        let batched_report = run_batched(&batched, &trace, cfg);

        let mut a = serial.maps().traffic_map.snapshot();
        let mut b = batched.maps().traffic_map.snapshot();
        a.sort();
        b.sort();
        assert_eq!(a, b, "traffic_map state must be identical");
        assert_eq!(
            serial_report.stats, batched_report.stats,
            "TC counters must match"
        );
        assert!(
            batched_report.stats.sr_inserted > 0,
            "workload must exercise SR path"
        );
        assert!(batched_report.stats.fragments_resolved > 0);
    }
}
