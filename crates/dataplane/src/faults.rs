//! Adverse-condition fault injection for data-plane simulations —
//! the same knobs smoltcp's examples expose (`--drop-chance`,
//! `--corrupt-chance`): random packet drops and single-octet
//! corruption, applied between hops.
//!
//! MegaTE's robustness claim on the data plane is that *no* malformed
//! frame can wedge a router or a host program (they drop it and move
//! on); this module is what the tests use to hammer that property.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What the injector did to a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultOutcome {
    /// Frame passed through unmodified.
    Passed,
    /// Frame was dropped.
    Dropped,
    /// One octet was flipped in place.
    Corrupted {
        /// Byte offset that was damaged.
        offset: usize,
    },
}

/// A deterministic (seeded) fault injector.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    /// Probability of dropping a frame, in `[0, 1]`.
    pub drop_chance: f64,
    /// Probability of flipping one octet, in `[0, 1]`.
    pub corrupt_chance: f64,
    rng: StdRng,
}

impl FaultInjector {
    /// A new injector; chances are probabilities in `[0, 1]`.
    pub fn new(drop_chance: f64, corrupt_chance: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&drop_chance), "drop chance in [0,1]");
        assert!(
            (0.0..=1.0).contains(&corrupt_chance),
            "corrupt chance in [0,1]"
        );
        Self {
            drop_chance,
            corrupt_chance,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Applies faults to one frame.
    pub fn apply(&mut self, frame: &mut Vec<u8>) -> FaultOutcome {
        if self.drop_chance > 0.0 && self.rng.gen_bool(self.drop_chance) {
            frame.clear();
            return FaultOutcome::Dropped;
        }
        if !frame.is_empty() && self.corrupt_chance > 0.0 && self.rng.gen_bool(self.corrupt_chance)
        {
            let offset = self.rng.gen_range(0..frame.len());
            let bit = 1u8 << self.rng.gen_range(0..8);
            frame[offset] ^= bit;
            return FaultOutcome::Corrupted { offset };
        }
        FaultOutcome::Passed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::route_or_drop;
    use megate_packet::{FiveTuple, MegaTeFrameSpec, Proto};

    fn frame() -> Vec<u8> {
        MegaTeFrameSpec::simple(
            FiveTuple {
                src_ip: [10, 0, 0, 1],
                dst_ip: [10, 0, 0, 2],
                proto: Proto::Udp,
                src_port: 1,
                dst_port: 2,
            },
            3,
            Some(vec![1, 2]),
        )
        .build()
    }

    #[test]
    fn zero_chances_pass_everything() {
        let mut inj = FaultInjector::new(0.0, 0.0, 1);
        for _ in 0..100 {
            let mut f = frame();
            assert_eq!(inj.apply(&mut f), FaultOutcome::Passed);
        }
    }

    #[test]
    fn drop_rate_roughly_matches_chance() {
        let mut inj = FaultInjector::new(0.15, 0.0, 7);
        let dropped = (0..2000)
            .filter(|_| inj.apply(&mut frame()) == FaultOutcome::Dropped)
            .count();
        let rate = dropped as f64 / 2000.0;
        assert!((rate - 0.15).abs() < 0.04, "rate {rate}");
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut inj = FaultInjector::new(0.0, 1.0, 9);
        let original = frame();
        let mut f = original.clone();
        match inj.apply(&mut f) {
            FaultOutcome::Corrupted { offset } => {
                assert_eq!(f.len(), original.len());
                let diff: u8 = f[offset] ^ original[offset];
                assert_eq!(diff.count_ones(), 1);
                assert!(f
                    .iter()
                    .zip(&original)
                    .enumerate()
                    .all(|(i, (a, b))| i == offset || a == b));
            }
            other => panic!("expected corruption, got {other:?}"),
        }
    }

    #[test]
    fn routers_survive_a_corruption_storm() {
        // Hammer the router decision path with corrupted frames: every
        // outcome must be a clean decision or a clean drop — no panic.
        let mut inj = FaultInjector::new(0.0, 1.0, 11);
        for _ in 0..2000 {
            let mut f = frame();
            inj.apply(&mut f);
            let _ = route_or_drop(&mut f);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut inj = FaultInjector::new(0.3, 0.3, seed);
            (0..50).map(|_| inj.apply(&mut frame())).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    #[should_panic(expected = "drop chance")]
    fn bad_probability_rejected() {
        FaultInjector::new(1.5, 0.0, 0);
    }
}
