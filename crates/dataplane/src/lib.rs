//! Flow-level WAN data-plane simulator (§5.2, §6).
//!
//! * [`router`] — WAN router behaviour on real frame bytes: "the router
//!   site profiles the packet and analyzes the VXLAN header to identify
//!   if the packet uses MegaTE SR information. If it is identified as a
//!   MegaTE SR header, the router obtains the hop information from the
//!   SR header and forwards the packet to the specified path" (§5.2);
//! * [`ecmp`] — the conventional hash-based tunnel choice (§2.2's
//!   five-tuple hashing) that motivates the paper's Figure 2;
//! * [`network`] — hop-by-hop frame walking over the site graph with
//!   propagation latency accounting and a host→site registry;
//! * [`failure_sim`] — satisfied demand across a link-failure +
//!   recompute window (§6.3, Figure 12);
//! * [`production`] — the production-style placement comparison behind
//!   Figures 15–17 (latency, availability, cost per app);
//! * [`workers`] — the multi-core batched host-stack drivers (§5,
//!   DESIGN.md §5d): seeded traffic generation, per-core SPSC rings,
//!   and the batched-vs-single-frame comparison behind `fig_dataplane`.

pub mod ecmp;
pub mod failure_sim;
pub mod faults;
pub mod interval;
pub mod network;
pub mod production;
pub mod queueing;
pub mod router;
pub mod workers;

pub use ecmp::{ecmp_tunnel, ecmp_tunnel_seeded};
pub use failure_sim::{satisfied_under_failure, FailureWindow};
pub use faults::{FaultInjector, FaultOutcome};
pub use interval::{replay_intervals, IntervalInput, IntervalMetrics, IntervalSolve};
pub use network::{HostRegistry, RouteOutcome, WanNetwork};
pub use queueing::{effective_latency_ms, queueing_delay_factor};
pub use router::{route_decision, RouterDecision};
pub use workers::{
    install_profile, run_batched, run_single_frame, RunReport, Trace, TrafficGen, TrafficProfile,
    WorkerConfig,
};
