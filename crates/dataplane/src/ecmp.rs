//! Conventional hash-based tunnel selection (§2.1–2.2).
//!
//! "The hash function of packet splitting cannot guarantee that all
//! flows from the same virtual instances are routed on the same TE
//! tunnel" — routers hash the five-tuple onto the pair's tunnel set.
//! Different connections of one tenant (different ports) land on
//! different tunnels, producing the bimodal latency of Figure 2.

use megate_packet::FiveTuple;
use megate_topo::{SitePair, TunnelId, TunnelTable};

/// Picks the tunnel a conventional router hashes this flow onto.
/// Returns `None` when the pair has no tunnels.
pub fn ecmp_tunnel(table: &TunnelTable, pair: SitePair, tuple: &FiveTuple) -> Option<TunnelId> {
    ecmp_tunnel_seeded(table, pair, tuple, 0)
}

/// Seeded variant: real routers occasionally re-seed their hash (config
/// pushes, LAG changes), remapping flows between tunnels over time —
/// the mechanism behind Figure 2's latency jumps.
pub fn ecmp_tunnel_seeded(
    table: &TunnelTable,
    pair: SitePair,
    tuple: &FiveTuple,
    seed: u64,
) -> Option<TunnelId> {
    let tunnels = table.tunnels_for(pair);
    if tunnels.is_empty() {
        return None;
    }
    let h = tuple.hash_u64() ^ seed.wrapping_mul(0x9E3779B97F4A7C15);
    Some(tunnels[(h % tunnels.len() as u64) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use megate_packet::Proto;
    use megate_topo::{b4, SiteId};

    fn tuple(port: u16) -> FiveTuple {
        FiveTuple {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            proto: Proto::Tcp,
            src_port: port,
            dst_port: 443,
        }
    }

    fn table() -> (TunnelTable, SitePair) {
        let g = b4();
        let pair = SitePair::new(SiteId(0), SiteId(7));
        let t = TunnelTable::for_pairs(&g, &[pair], 4);
        (t, pair)
    }

    #[test]
    fn same_tuple_always_same_tunnel() {
        let (t, pair) = table();
        let a = ecmp_tunnel(&t, pair, &tuple(1000)).unwrap();
        for _ in 0..10 {
            assert_eq!(ecmp_tunnel(&t, pair, &tuple(1000)).unwrap(), a);
        }
    }

    #[test]
    fn different_ports_spread_over_tunnels() {
        let (t, pair) = table();
        let mut seen = std::collections::HashSet::new();
        for p in 0..64 {
            seen.insert(ecmp_tunnel(&t, pair, &tuple(p)).unwrap());
        }
        assert!(seen.len() >= 2, "hashing must spread flows: {seen:?}");
    }

    #[test]
    fn reseeding_remaps_some_flows() {
        let (t, pair) = table();
        let before: Vec<_> = (0..32)
            .map(|p| ecmp_tunnel_seeded(&t, pair, &tuple(p), 0))
            .collect();
        let after: Vec<_> = (0..32)
            .map(|p| ecmp_tunnel_seeded(&t, pair, &tuple(p), 1))
            .collect();
        assert_ne!(before, after, "a reseed must move at least one flow");
    }

    #[test]
    fn empty_pair_returns_none() {
        let g = b4();
        let t = TunnelTable::new();
        let pair = SitePair::new(SiteId(0), SiteId(1));
        let _ = g;
        assert_eq!(ecmp_tunnel(&t, pair, &tuple(1)), None);
    }
}
