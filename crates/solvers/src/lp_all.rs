//! LP-all: the exact endpoint-granularity MCF baseline (§6.1).
//!
//! "LP-all scheme is a linear programming (LP) algorithm that solves the
//! multi-commodity flow (MCF) problem for the demands between
//! endpoints." One fractional commodity per endpoint pair — optimal
//! (it upper-bounds every indivisible allocation), but the LP grows with
//! the endpoint count and hits the memory wall exactly as the paper
//! reports for hyper-scale instances.

use crate::types::{SolveError, TeAllocation, TeProblem, TeScheme};
use megate_lp::{Commodity, LpError, McfProblem, PathSpec};
use std::time::Instant;

/// The LP-all baseline.
#[derive(Debug, Clone)]
pub struct LpAllScheme {
    /// The objective's short-path `ε`.
    pub epsilon_weight: f64,
}

impl Default for LpAllScheme {
    fn default() -> Self {
        Self {
            epsilon_weight: 1e-4,
        }
    }
}

impl TeScheme for LpAllScheme {
    fn name(&self) -> &'static str {
        "LP-all"
    }

    fn solve(&self, problem: &TeProblem) -> Result<TeAllocation, SolveError> {
        let start = Instant::now();
        let caps = problem.link_capacities();

        // One commodity per endpoint demand, sharing its site pair's
        // tunnel set (host-to-site links have "sufficient" capacity per
        // §4.1, so the WAN paths are the site tunnels).
        let mut commodity_tunnels: Vec<Vec<megate_topo::TunnelId>> = Vec::new();
        let mut commodities: Vec<Commodity> = Vec::new();
        for pair in problem.demands.pairs() {
            let tunnel_ids = problem.tunnels.tunnels_for(pair);
            if tunnel_ids.is_empty() {
                continue;
            }
            let paths: Vec<PathSpec> = tunnel_ids
                .iter()
                .map(|&t| {
                    let tun = problem.tunnels.tunnel(t);
                    PathSpec {
                        links: tun.links.iter().map(|l| l.index()).collect(),
                        weight: tun.weight,
                    }
                })
                .collect();
            for &i in problem.demands.indices_for(pair) {
                commodities.push(Commodity {
                    demand: problem.demands.demands()[i].demand_mbps,
                    paths: paths.clone(),
                });
                commodity_tunnels.push(tunnel_ids.to_vec());
            }
        }
        if commodities.is_empty() {
            return Ok(TeAllocation {
                scheme: self.name().into(),
                tunnel_flow_mbps: vec![0.0; problem.tunnels.tunnel_count()],
                endpoint_assignment: None,
                solve_time: start.elapsed(),
                endpoint_stage: None,
            });
        }

        let mcf = McfProblem {
            link_capacity: caps,
            commodities,
            epsilon_weight: self.epsilon_weight,
        };
        let sol = mcf.solve_exact().map_err(|e| match e {
            LpError::TooLarge { entries, cap } => SolveError::OutOfMemory {
                estimated_bytes: entries * 8,
                budget_bytes: cap * 8,
            },
            other => SolveError::Lp(other.to_string()),
        })?;

        let mut tunnel_flow_mbps = vec![0.0; problem.tunnels.tunnel_count()];
        for (k, tunnels) in commodity_tunnels.iter().enumerate() {
            for (t_idx, &t) in tunnels.iter().enumerate() {
                tunnel_flow_mbps[t.index()] += sol.flows[k][t_idx];
            }
        }
        Ok(TeAllocation {
            scheme: self.name().into(),
            tunnel_flow_mbps,
            endpoint_assignment: None,
            solve_time: start.elapsed(),
            endpoint_stage: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::megate::MegaTeScheme;
    use megate_topo::{b4, EndpointCatalog, TunnelTable, WeibullEndpoints};
    use megate_traffic::{DemandSet, TrafficConfig};

    fn fixture(pairs: usize, load: f64) -> (megate_topo::Graph, TunnelTable, DemandSet) {
        let g = b4();
        let tunnels = TunnelTable::for_all_pairs(&g, 3);
        let cat = EndpointCatalog::generate(&g, 400, WeibullEndpoints::with_scale(30.0), 3);
        let mut demands = DemandSet::generate(
            &g,
            &cat,
            &TrafficConfig {
                endpoint_pairs: pairs,
                site_pairs: 20,
                sigma: 0.8,
                ..Default::default()
            },
        );
        demands.scale_to_load(&g, load);
        (g, tunnels, demands)
    }

    #[test]
    fn optimal_and_feasible_on_small_instance() {
        let (g, tunnels, demands) = fixture(120, 1.5);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = LpAllScheme::default().solve(&p).unwrap();
        assert!(alloc.check_feasible(&p, 1e-6));
        assert!(alloc.satisfied_ratio(&p) > 0.3);
    }

    #[test]
    fn upper_bounds_megate() {
        let (g, tunnels, demands) = fixture(150, 1.5);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let lp = LpAllScheme::default().solve(&p).unwrap();
        let mt = MegaTeScheme::default().solve(&p).unwrap();
        // Fractional optimum dominates any indivisible allocation
        // (tiny tolerance for kbps rounding inside MegaTE).
        assert!(
            lp.satisfied_mbps() >= mt.satisfied_mbps() * 0.999,
            "LP {} vs MegaTE {}",
            lp.satisfied_mbps(),
            mt.satisfied_mbps()
        );
    }

    #[test]
    fn megate_is_near_optimal_like_figure10() {
        let (g, tunnels, demands) = fixture(200, 1.0);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let lp = LpAllScheme::default()
            .solve(&p)
            .unwrap()
            .satisfied_ratio(&p);
        let mt = MegaTeScheme::default()
            .solve(&p)
            .unwrap()
            .satisfied_ratio(&p);
        // Figure 10: MegaTE within a whisker of LP-all (88.1 vs 88.2%).
        assert!(mt > lp - 0.03, "MegaTE {mt} vs LP-all {lp}");
    }

    #[test]
    fn blows_memory_on_huge_instances() {
        let g = b4();
        let tunnels = TunnelTable::for_all_pairs(&g, 4);
        let cat = EndpointCatalog::generate(&g, 40_000, WeibullEndpoints::with_scale(100.0), 1);
        let demands = DemandSet::generate(
            &g,
            &cat,
            &TrafficConfig {
                endpoint_pairs: 30_000,
                ..Default::default()
            },
        );
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        match LpAllScheme::default().solve(&p) {
            Err(SolveError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn empty_instance_is_zero() {
        let g = b4();
        let tunnels = TunnelTable::for_all_pairs(&g, 2);
        let demands = DemandSet::default();
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = LpAllScheme::default().solve(&p).unwrap();
        assert_eq!(alloc.satisfied_mbps(), 0.0);
    }
}
