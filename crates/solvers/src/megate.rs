//! MegaTE's two-stage optimization (Algorithm 1, §4.2).
//!
//! 1. **SiteMerge** — aggregate endpoint demands per site pair:
//!    `D_k = Σ_i d_k^i`;
//! 2. **MaxSiteFlow** — the site-level MCF LP (Equation 2), solved
//!    exactly (simplex) when small, or with the Garg–Könemann FPTAS at
//!    scale;
//! 3. **MaxEndpointFlow** — per site pair, tunnels in ascending-weight
//!    order, select the endpoint subset for each tunnel's allocation
//!    `F_{k,t}`. Site pairs are independent and run in parallel (the
//!    paper's "parallelizable" note on line 11). The production path
//!    ([`MegaTeScheme::max_endpoint_flow_all`]) runs the flat
//!    [`megate_ssp::SolverScratch`] kernel with work-stealing across
//!    workers; [`MegaTeScheme::max_endpoint_flow`] is the allocating
//!    scalar reference the equivalence suite pins the flat path to.
//!
//! The result is the binary assignment `f_{k,t}^i` of Equation 1:
//! every endpoint flow rides exactly one tunnel or is rejected.

use crate::types::{flows_from_assignment, SolveError, TeAllocation, TeProblem, TeScheme};
use megate_lp::{Commodity, McfProblem, PathSpec};
use megate_ssp::{fast_ssp, FastSspConfig};
use megate_topo::{SitePair, TunnelId};
use std::time::Instant;

/// How the first-stage LP is solved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LpMode {
    /// Pick exact vs FPTAS from the instance size (default). The
    /// decision compares [`McfProblem::size_estimate_with_basis`] —
    /// which is purely structural, counting any retained warm-start
    /// state but no demand/capacity *values* — against
    /// [`MegaTeConfig::auto_exact_entry_cap`]. The incremental engine
    /// ([`crate::incremental::IncrementalEngine`]) resolves this once
    /// per instance shape and latches the choice, so a warm re-solve
    /// can never flip exact↔FPTAS mid-stream.
    Auto,
    /// Always the exact sparse revised simplex (memory-walled).
    Exact,
    /// Always the multiplicative-weights FPTAS with the given ε.
    Fptas(f64),
}

/// [`LpMode`] with `Auto` resolved to a concrete solver — what the
/// incremental engine latches per instance shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum ResolvedLpMode {
    /// Exact sparse revised simplex.
    Exact,
    /// FPTAS at this ε.
    Fptas(f64),
}

/// Tuning knobs for the MegaTE scheme.
#[derive(Debug, Clone)]
pub struct MegaTeConfig {
    /// FastSSP's `ε′` (Appendix A.2; "close to 0").
    pub fastssp_epsilon: f64,
    /// First-stage LP strategy.
    pub lp_mode: LpMode,
    /// ε of the FPTAS when `Auto` escalates to it.
    pub auto_fptas_eps: f64,
    /// `Auto` uses the exact simplex while the revised solver's
    /// working set ([`McfProblem::size_estimate`]) stays under this
    /// many entries.
    pub auto_exact_entry_cap: usize,
    /// Worker threads for the parallel `MaxEndpointFlow` stage.
    pub threads: usize,
    /// The objective's `ε` preferring shorter paths (Equation 1).
    pub epsilon_weight: f64,
    /// Final repair pass: first-fit still-unassigned flows onto tunnels
    /// with *actual* residual link capacity. Algorithm 1 confines each
    /// pair to its LP allocation `F_{k,t}`; when `|I_k|` is small the
    /// fractional split can strand capacity that an indivisible flow
    /// could still use. The repair only ever adds feasible assignments.
    pub residual_repair: bool,
}

impl Default for MegaTeConfig {
    fn default() -> Self {
        Self {
            fastssp_epsilon: 0.1,
            lp_mode: LpMode::Auto,
            auto_fptas_eps: 0.05,
            auto_exact_entry_cap: 4_000_000,
            threads: num_threads(),
            epsilon_weight: 1e-4,
            residual_repair: true,
        }
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// The MegaTE two-stage scheme.
#[derive(Debug, Clone, Default)]
pub struct MegaTeScheme {
    /// Configuration.
    pub config: MegaTeConfig,
}

impl MegaTeScheme {
    /// A scheme with explicit configuration.
    pub fn new(config: MegaTeConfig) -> Self {
        Self { config }
    }

    /// Stage 1+2: returns `(pairs, F)` where `F[k][t]` is the site-level
    /// bandwidth allocation of pair `k` on its `t`-th tunnel (ascending
    /// weight) — `MaxSiteFlow`'s output.
    pub fn max_site_flow(
        &self,
        problem: &TeProblem,
    ) -> Result<(Vec<SitePair>, Vec<Vec<f64>>), SolveError> {
        let pairs_demand = crate::types::aggregated_pairs(problem);
        if pairs_demand.is_empty() {
            return Ok((Vec::new(), Vec::new()));
        }
        let mcf = self.build_mcf(problem, &pairs_demand);
        let mode = self.resolve_mode(&mcf, None);
        let solution = self.solve_mcf(&mcf, mode)?;
        let pairs: Vec<SitePair> = pairs_demand.iter().map(|&(p, _)| p).collect();
        Ok((pairs, solution.flows))
    }

    /// Builds the stage-1 MCF from aggregated pair demands: one
    /// commodity per pair in `pairs_demand` order, one path per tunnel
    /// (ascending weight), full-graph link capacities.
    pub(crate) fn build_mcf(
        &self,
        problem: &TeProblem,
        pairs_demand: &[(SitePair, f64)],
    ) -> McfProblem {
        let commodities: Vec<Commodity> = pairs_demand
            .iter()
            .map(|&(pair, demand)| Commodity {
                demand,
                paths: problem
                    .tunnels
                    .tunnels_for(pair)
                    .iter()
                    .map(|&t| {
                        let tun = problem.tunnels.tunnel(t);
                        PathSpec {
                            links: tun.links.iter().map(|l| l.index()).collect(),
                            weight: tun.weight,
                        }
                    })
                    .collect(),
            })
            .collect();
        McfProblem {
            link_capacity: problem.link_capacities(),
            commodities,
            epsilon_weight: self.config.epsilon_weight,
        }
    }

    /// Resolves [`LpMode`] for this instance; `Auto` sizes the revised
    /// solver's working set including any retained warm-start state
    /// (both structural, so the decision is value-independent).
    pub(crate) fn resolve_mode(
        &self,
        mcf: &McfProblem,
        warm: Option<&megate_lp::LpBasis>,
    ) -> ResolvedLpMode {
        match self.config.lp_mode {
            LpMode::Exact => ResolvedLpMode::Exact,
            LpMode::Fptas(eps) => ResolvedLpMode::Fptas(eps),
            LpMode::Auto => {
                if mcf.size_estimate_with_basis(warm) <= self.config.auto_exact_entry_cap {
                    ResolvedLpMode::Exact
                } else {
                    ResolvedLpMode::Fptas(self.config.auto_fptas_eps)
                }
            }
        }
    }

    /// Solves the MCF with an already-resolved mode.
    pub(crate) fn solve_mcf(
        &self,
        mcf: &McfProblem,
        mode: ResolvedLpMode,
    ) -> Result<megate_lp::McfSolution, SolveError> {
        let threads = self.config.threads.max(1);
        match mode {
            ResolvedLpMode::Exact => mcf.solve_exact().map_err(|e| SolveError::Lp(e.to_string())),
            ResolvedLpMode::Fptas(eps) => Ok(mcf.solve_fptas_with(eps, threads)),
        }
    }

    /// Stage 3: `MaxEndpointFlow` for one site pair — selects, for each
    /// tunnel in ascending-weight order, the subset of still-unassigned
    /// endpoint demands filling `F_{k,t}`, via FastSSP. Returns
    /// `(demand index, tunnel)` picks.
    pub fn max_endpoint_flow(
        &self,
        problem: &TeProblem,
        pair: SitePair,
        site_flow: &[f64],
    ) -> Vec<(usize, TunnelId)> {
        let tunnels = problem.tunnels.tunnels_for(pair);
        debug_assert_eq!(tunnels.len(), site_flow.len());
        let indices = problem.demands.indices_for(pair);
        let demands = problem.demands.demands();

        // Work in kbps integers: demands round to nearest, capacities
        // floor — so the integer solution can never overfill F_{k,t}.
        // Each endpoint's item value is pair-constant, so it is rounded
        // once here instead of once per tunnel.
        let kbps: Vec<u64> = indices
            .iter()
            .map(|&i| (demands[i].demand_mbps * 1000.0).round().max(1.0) as u64)
            .collect();
        // `unassigned` holds positions into `indices`/`kbps`. `order`
        // is the same set sorted (value desc, position asc) exactly
        // once; after each tunnel both are maintained by filtering out
        // the assigned positions, which preserves the relative order —
        // identical to the old per-tunnel clone + sort, minus the
        // `O(T · n log n)` cost.
        let mut unassigned: Vec<usize> = (0..indices.len()).collect();
        let mut order: Vec<usize> = (0..indices.len()).collect();
        order.sort_by(|&a, &b| kbps[b].cmp(&kbps[a]).then(a.cmp(&b)));
        let mut remaining_kbps: u64 = kbps.iter().sum();
        let mut picks = Vec::new();
        let cfg = FastSspConfig {
            epsilon_prime: self.config.fastssp_epsilon,
        };
        for (t_idx, &t) in tunnels.iter().enumerate() {
            if unassigned.is_empty() {
                break;
            }
            let capacity_kbps = (site_flow[t_idx] * 1000.0).floor() as u64;
            if capacity_kbps == 0 {
                continue;
            }

            // Fast path 1: the tunnel carries everything still
            // unassigned — selecting all is trivially optimal.
            if remaining_kbps <= capacity_kbps {
                for &u in &unassigned {
                    picks.push((indices[u], t));
                }
                unassigned.clear();
                break;
            }

            // Fast path 2: greedy over descending sizes. A greedy fill
            // that lands exactly on the capacity is provably optimal
            // for the subset-sum, so FastSSP can be skipped.
            let mut acc = 0u64;
            let mut exact = vec![false; indices.len()];
            for &u in &order {
                if acc + kbps[u] <= capacity_kbps {
                    acc += kbps[u];
                    exact[u] = true;
                    if acc == capacity_kbps {
                        break;
                    }
                }
            }
            if acc == capacity_kbps {
                for &u in &unassigned {
                    if exact[u] {
                        picks.push((indices[u], t));
                        remaining_kbps -= kbps[u];
                    }
                }
                unassigned.retain(|&u| !exact[u]);
                order.retain(|&u| !exact[u]);
                continue;
            }

            let items: Vec<u64> = unassigned.iter().map(|&u| kbps[u]).collect();
            let sol = fast_ssp(&items, capacity_kbps, cfg);
            let mut taken = vec![false; indices.len()];
            for &sel in &sol.solution.selected {
                taken[unassigned[sel]] = true;
                picks.push((indices[unassigned[sel]], t));
                remaining_kbps -= kbps[unassigned[sel]];
            }
            unassigned.retain(|&u| !taken[u]);
            order.retain(|&u| !taken[u]);
        }
        picks
    }

    /// Stage 3 over **all** site pairs: the production path. Runs the
    /// flat [`megate_ssp::SolverScratch`] kernel (zero steady-state allocation,
    /// one sort per pair) across `threads` workers with work-stealing
    /// over the site pairs, writing tunnel choices into `assignment`.
    ///
    /// Scheduling: the pairs are split into `threads` contiguous
    /// ranges, each with an atomic cursor. A worker drains its own
    /// range first, then claims from the fullest remaining victim —
    /// so one elephant pair cannot strand the other workers behind a
    /// fixed round-robin shard. The merged result is nonetheless
    /// **deterministic and bitwise-identical to the serial path**:
    /// site pairs touch disjoint demand indices, every pair is claimed
    /// exactly once (the cursor `fetch_add` is the claim), and each
    /// pair's selection depends only on its own demands and `F_k` —
    /// never on which worker ran it or in what order (DESIGN.md §5e).
    pub fn max_endpoint_flow_all(
        &self,
        problem: &TeProblem,
        pairs: &[SitePair],
        site_flows: &[Vec<f64>],
        assignment: &mut [Option<TunnelId>],
    ) -> crate::types::EndpointStageStats {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let wall_start = Instant::now();
        megate_ssp::flat::register_metrics();
        let threads = self.config.threads.max(1).min(pairs.len().max(1));
        let mut stats = crate::types::EndpointStageStats {
            threads,
            pairs: pairs.len(),
            ..Default::default()
        };
        if pairs.is_empty() {
            return stats;
        }

        // Contiguous ranges with one claim cursor each. `ends[w]` is
        // exclusive; range w covers pairs[starts[w]..ends[w]].
        let per = pairs.len().div_ceil(threads);
        let ranges: Vec<(usize, usize)> = (0..threads)
            .map(|w| (w * per, ((w + 1) * per).min(pairs.len())))
            .collect();
        let cursors: Vec<AtomicUsize> = ranges.iter().map(|&(s, _)| AtomicUsize::new(s)).collect();

        let cfg = FastSspConfig {
            epsilon_prime: self.config.fastssp_epsilon,
        };
        let pair_endpoints = megate_obs::histogram("solver.pair_endpoints");
        let demands = problem.demands.demands();

        // One worker's loop: claim pairs (own range, then steal), solve
        // each with the flat kernel, return (picks, busy_ns, stolen).
        let run_worker = |w: usize| {
            let busy_start = megate_obs::thread_cpu_ns();
            let mut scratch = megate_ssp::take_scratch();
            let mut picks: Vec<(usize, TunnelId)> = Vec::new();
            let mut stolen = 0usize;
            let mut victim = w;
            loop {
                let k = cursors[victim].fetch_add(1, Ordering::Relaxed);
                if k >= ranges[victim].1 {
                    // Range drained; pick the victim with the most
                    // unclaimed pairs left (own range first pass).
                    let next = (0..threads)
                        .filter(|&v| v != victim)
                        .max_by_key(|&v| {
                            ranges[v]
                                .1
                                .saturating_sub(cursors[v].load(Ordering::Relaxed))
                        })
                        .filter(|&v| cursors[v].load(Ordering::Relaxed) < ranges[v].1);
                    match next {
                        Some(v) => {
                            victim = v;
                            continue;
                        }
                        None => break,
                    }
                }
                if victim != w {
                    stolen += 1;
                }
                let pair = pairs[k];
                let tunnels = problem.tunnels.tunnels_for(pair);
                let indices = problem.demands.indices_for(pair);
                pair_endpoints.record(indices.len() as u64);
                scratch.begin_pair_with(indices.len(), |p| {
                    (demands[indices[p]].demand_mbps * 1000.0).round().max(1.0) as u64
                });
                for (t_idx, &t) in tunnels.iter().enumerate() {
                    if scratch.is_done() {
                        break;
                    }
                    let capacity_kbps = (site_flows[k][t_idx] * 1000.0).floor() as u64;
                    if capacity_kbps == 0 {
                        continue;
                    }
                    for &u in scratch.select_for_tunnel(capacity_kbps, cfg) {
                        picks.push((indices[u as usize], t));
                    }
                }
            }
            megate_ssp::recycle_scratch(scratch);
            (picks, megate_obs::thread_cpu_ns() - busy_start, stolen)
        };

        // (tunnel picks, busy ns, pairs stolen) per worker.
        type WorkerResult = (Vec<(usize, TunnelId)>, u64, usize);
        let results: Vec<WorkerResult> = if threads == 1 {
            vec![run_worker(0)]
        } else {
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|w| scope.spawn(move |_| run_worker(w)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("worker"))
                    .collect()
            })
            .expect("scope")
        };

        let mut total_stolen = 0usize;
        for (picks, busy_ns, stolen) in results {
            for (i, t) in picks {
                debug_assert!(assignment[i].is_none(), "demand assigned twice");
                assignment[i] = Some(t);
            }
            let busy = std::time::Duration::from_nanos(busy_ns);
            stats.total_busy += busy;
            stats.max_worker_busy = stats.max_worker_busy.max(busy);
            total_stolen += stolen;
        }
        stats.pairs_stolen = total_stolen;
        megate_obs::counter("solver.pairs_stolen").add(total_stolen as u64);
        stats.wall = wall_start.elapsed();
        stats
    }
}

impl TeScheme for MegaTeScheme {
    fn name(&self) -> &'static str {
        "MegaTE"
    }

    fn solve(&self, problem: &TeProblem) -> Result<TeAllocation, SolveError> {
        let start = Instant::now();
        let (pairs, site_flows) = {
            let _span = megate_obs::span("solver.max_site_flow");
            self.max_site_flow(problem)?
        };

        // Worker threads have their own span stacks, so ssp.* spans
        // opened inside max_endpoint_flow surface as flat paths; this
        // span still times the whole stage from the coordinator.
        let endpoint_span = megate_obs::span("solver.max_endpoint_flow");
        let mut assignment: Vec<Option<TunnelId>> = vec![None; problem.demands.len()];
        let stage = self.max_endpoint_flow_all(problem, &pairs, &site_flows, &mut assignment);
        drop(endpoint_span);

        if self.config.residual_repair {
            let _span = megate_obs::span("solver.repair");
            self.repair_with_residuals(problem, &mut assignment);
        }

        let tunnel_flow_mbps = flows_from_assignment(problem, &assignment);
        Ok(TeAllocation {
            scheme: self.name().to_string(),
            tunnel_flow_mbps,
            endpoint_assignment: Some(assignment),
            solve_time: start.elapsed(),
            endpoint_stage: Some(stage),
        })
    }
}

impl MegaTeScheme {
    /// First-fits still-unassigned demands (largest first) onto their
    /// pair's tunnels (shortest first) wherever every traversed link
    /// still has headroom. Strictly feasibility-preserving.
    pub(crate) fn repair_with_residuals(
        &self,
        problem: &TeProblem,
        assignment: &mut [Option<TunnelId>],
    ) {
        let mut loads = vec![0.0f64; problem.graph.link_count()];
        let demands = problem.demands.demands();
        for (i, choice) in assignment.iter().enumerate() {
            if let Some(t) = choice {
                let d = demands[i].demand_mbps;
                for &e in &problem.tunnels.tunnel(*t).links {
                    loads[e.index()] += d;
                }
            }
        }
        // Demand index -> site pair, precomputed once.
        let mut pair_of: Vec<Option<SitePair>> = vec![None; demands.len()];
        for pair in problem.demands.pairs() {
            for &i in problem.demands.indices_for(pair) {
                pair_of[i] = Some(pair);
            }
        }
        let candidates: Vec<(usize, SitePair)> = (0..assignment.len())
            .filter(|&i| assignment[i].is_none() && demands[i].demand_mbps > 0.0)
            .filter_map(|i| pair_of[i].map(|p| (i, p)))
            .collect();
        self.repair_candidates(problem, assignment, candidates, &mut loads);
    }

    /// The repair core behind [`repair_with_residuals`]: first-fits the
    /// given `(endpoint index, site pair)` candidates — largest demand
    /// first; `candidates` must be in ascending index order so ties
    /// break like the full pass — onto their pair's tunnels wherever
    /// `loads` leaves headroom, updating `loads` in place. The warm
    /// path calls this directly with only the dirty pairs' endpoints.
    ///
    /// [`repair_with_residuals`]: Self::repair_with_residuals
    pub(crate) fn repair_candidates(
        &self,
        problem: &TeProblem,
        assignment: &mut [Option<TunnelId>],
        mut candidates: Vec<(usize, SitePair)>,
        loads: &mut [f64],
    ) {
        let caps = problem.link_capacities();
        let demands = problem.demands.demands();
        candidates
            .sort_by(|&(a, _), &(b, _)| demands[b].demand_mbps.total_cmp(&demands[a].demand_mbps));
        for &(i, pair) in &candidates {
            let d = demands[i].demand_mbps;
            for &t in problem.tunnels.tunnels_for(pair) {
                let tun = problem.tunnels.tunnel(t);
                let fits = tun
                    .links
                    .iter()
                    .all(|&e| loads[e.index()] + d <= caps[e.index()] + 1e-9);
                if fits {
                    for &e in &tun.links {
                        loads[e.index()] += d;
                    }
                    assignment[i] = Some(t);
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megate_topo::{b4, EndpointCatalog, TunnelTable, WeibullEndpoints};
    use megate_traffic::{DemandSet, TrafficConfig};

    fn fixture(pairs: usize, load: f64) -> (megate_topo::Graph, TunnelTable, DemandSet) {
        let g = b4();
        let tunnels = TunnelTable::for_all_pairs(&g, 4);
        let cat = EndpointCatalog::generate(&g, 600, WeibullEndpoints::with_scale(50.0), 3);
        let mut demands = DemandSet::generate(
            &g,
            &cat,
            &TrafficConfig {
                endpoint_pairs: pairs,
                site_pairs: 20,
                sigma: 0.8,
                seed: 2,
                ..Default::default()
            },
        );
        demands.scale_to_load(&g, load);
        (g, tunnels, demands)
    }

    #[test]
    fn solves_underloaded_instance_nearly_fully() {
        let (g, tunnels, demands) = fixture(300, 0.3);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = MegaTeScheme::default().solve(&p).unwrap();
        assert!(alloc.check_feasible(&p, 1e-6));
        let ratio = alloc.satisfied_ratio(&p);
        assert!(ratio > 0.95, "satisfied {ratio}");
    }

    #[test]
    fn respects_capacity_under_overload() {
        let (g, tunnels, demands) = fixture(300, 3.0);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = MegaTeScheme::default().solve(&p).unwrap();
        assert!(alloc.check_feasible(&p, 1e-6));
        let ratio = alloc.satisfied_ratio(&p);
        assert!(ratio < 1.0, "overloaded instance cannot be fully satisfied");
        assert!(
            ratio > 0.1,
            "should still carry meaningful traffic: {ratio}"
        );
        assert!(alloc.max_link_utilization(&p) <= 1.0 + 1e-6);
    }

    #[test]
    fn every_flow_rides_one_tunnel_of_its_pair() {
        let (g, tunnels, demands) = fixture(200, 1.0);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = MegaTeScheme::default().solve(&p).unwrap();
        let assign = alloc.endpoint_assignment.as_ref().unwrap();
        for pair in demands.pairs() {
            let ts = tunnels.tunnels_for(pair);
            for &i in demands.indices_for(pair) {
                if let Some(t) = assign[i] {
                    assert!(ts.contains(&t));
                }
            }
        }
    }

    #[test]
    fn parallel_and_serial_agree() {
        let (g, tunnels, demands) = fixture(250, 0.8);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let serial = MegaTeScheme::new(MegaTeConfig {
            threads: 1,
            ..Default::default()
        })
        .solve(&p)
        .unwrap();
        let parallel = MegaTeScheme::new(MegaTeConfig {
            threads: 8,
            ..Default::default()
        })
        .solve(&p)
        .unwrap();
        assert_eq!(serial.endpoint_assignment, parallel.endpoint_assignment);
    }

    #[test]
    fn exact_and_fptas_modes_land_close() {
        let (g, tunnels, demands) = fixture(200, 1.2);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let exact = MegaTeScheme::new(MegaTeConfig {
            lp_mode: LpMode::Exact,
            ..Default::default()
        })
        .solve(&p)
        .unwrap();
        let fptas = MegaTeScheme::new(MegaTeConfig {
            lp_mode: LpMode::Fptas(0.05),
            ..Default::default()
        })
        .solve(&p)
        .unwrap();
        assert!(fptas.check_feasible(&p, 1e-6));
        let re = exact.satisfied_ratio(&p);
        let rf = fptas.satisfied_ratio(&p);
        assert!(rf > re - 0.25, "exact {re} fptas {rf}");
    }

    #[test]
    fn prefers_short_tunnels() {
        let (g, tunnels, demands) = fixture(200, 0.3);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = MegaTeScheme::default().solve(&p).unwrap();
        let assign = alloc.endpoint_assignment.as_ref().unwrap();
        // Under light load most flows should ride their pair's shortest
        // tunnel (the objective's -eps*w term).
        let mut on_shortest = 0usize;
        let mut total = 0usize;
        for pair in demands.pairs() {
            let ts = tunnels.tunnels_for(pair);
            for &i in demands.indices_for(pair) {
                if let Some(t) = assign[i] {
                    total += 1;
                    if t == ts[0] {
                        on_shortest += 1;
                    }
                }
            }
        }
        assert!(total > 0);
        assert!(
            on_shortest as f64 / total as f64 > 0.8,
            "{on_shortest}/{total} on shortest"
        );
    }

    #[test]
    fn auto_solves_exactly_past_old_dense_tableau_cap() {
        // Regression for the Auto sizing heuristic. This Deltacom
        // instance's *dense* tableau exceeds the 4M-entry cap, so the
        // old heuristic fell back to the FPTAS; the revised working-set
        // estimate (m² + nnz) is far smaller, so Auto now solves it
        // exactly. Bitwise-equal flows against LpMode::Exact prove the
        // exact path was taken (the FPTAS never reproduces simplex
        // output exactly).
        let g = megate_topo::deltacom();
        let tunnels = TunnelTable::for_all_pairs(&g, 4);
        let cat = EndpointCatalog::generate(&g, 2600, WeibullEndpoints::with_scale(50.0), 5);
        let mut demands = DemandSet::generate(
            &g,
            &cat,
            &TrafficConfig {
                endpoint_pairs: 2600,
                site_pairs: 1300,
                sigma: 0.8,
                seed: 5,
                ..Default::default()
            },
        );
        demands.scale_to_load(&g, 0.9);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };

        let pairs = crate::types::aggregated_pairs(&p);
        let n_vars: usize = pairs
            .iter()
            .map(|&(pair, _)| tunnels.tunnels_for(pair).len())
            .sum();
        let n_rows = pairs.len() + p.link_capacities().len();
        let dense_tableau = (n_rows + 1) * (n_vars + n_rows + 1);
        let cap = MegaTeConfig::default().auto_exact_entry_cap;
        assert!(
            dense_tableau > cap,
            "instance must exceed the old dense estimate: {dense_tableau} vs {cap}"
        );

        let auto = MegaTeScheme::default();
        let exact = MegaTeScheme::new(MegaTeConfig {
            lp_mode: LpMode::Exact,
            ..Default::default()
        });
        let (_, f_auto) = auto.max_site_flow(&p).unwrap();
        let (_, f_exact) = exact.max_site_flow(&p).unwrap();
        assert_eq!(f_auto, f_exact, "Auto must have taken the exact path");
    }

    #[test]
    fn empty_demands_yield_zero_allocation() {
        let g = b4();
        let tunnels = TunnelTable::for_all_pairs(&g, 2);
        let demands = DemandSet::default();
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = MegaTeScheme::default().solve(&p).unwrap();
        assert_eq!(alloc.satisfied_mbps(), 0.0);
        assert!(alloc.check_feasible(&p, 1e-9));
    }
}
