//! TEAL-like baseline: fast learned-warm-start + iterative projection.
//!
//! TEAL (Xu et al., SIGCOMM'23) runs a trained GNN forward pass to
//! propose per-commodity splits, then a few ADMM iterations to restore
//! feasibility, on a GPU. No trained model or GPU is available here, so
//! we substitute the same *algorithmic shape* (see DESIGN.md):
//!
//! * **warm start** — a softmax over tunnel weights proposes each
//!   endpoint pair's split (what the NN inference produces);
//! * **projection iterations** — alternate scaling flows down on
//!   overloaded links and clamping each commodity to its demand (the
//!   ADMM role), followed by one greedy refill pass over residual
//!   capacity.
//!
//! The result is fast (linear per iteration in total path length),
//! slightly sub-optimal — the character the paper measures (§6.2:
//! ~94% vs 96.8% satisfied) — and memory-bounded by the per-commodity
//! embedding state a real TEAL keeps, which we model to reproduce the
//! hyper-scale OOM wall.

use crate::types::{SolveError, TeAllocation, TeProblem, TeScheme};
use megate_topo::TunnelId;
use std::time::Instant;

/// Bytes of per-commodity state a TEAL-like model carries (GNN
/// embeddings + ADMM duals). Sized after TEAL's published hidden dims.
const PER_COMMODITY_STATE_BYTES: usize = 6 * 1024;

/// The TEAL-like scheme.
#[derive(Debug, Clone)]
pub struct TealScheme {
    /// Projection iterations (TEAL uses a handful of ADMM steps).
    pub iterations: usize,
    /// Softmax temperature over tunnel weights for the warm start.
    pub temperature: f64,
    /// Memory budget for per-commodity state; exceeding it fails with
    /// [`SolveError::OutOfMemory`].
    pub memory_budget_bytes: usize,
}

impl Default for TealScheme {
    fn default() -> Self {
        Self {
            iterations: 12,
            temperature: 5.0,
            memory_budget_bytes: 8 << 30, // 8 GB — one accelerator's RAM
        }
    }
}

impl TeScheme for TealScheme {
    fn name(&self) -> &'static str {
        "TEAL"
    }

    fn solve(&self, problem: &TeProblem) -> Result<TeAllocation, SolveError> {
        let start = Instant::now();
        let n = problem.demands.len();
        let estimated = n * PER_COMMODITY_STATE_BYTES;
        if estimated > self.memory_budget_bytes {
            return Err(SolveError::OutOfMemory {
                estimated_bytes: estimated,
                budget_bytes: self.memory_budget_bytes,
            });
        }

        let caps = problem.link_capacities();
        let demands = problem.demands.demands();

        // Flatten commodity -> (demand index, tunnels).
        let mut flat: Vec<(usize, &[TunnelId])> = Vec::with_capacity(n);
        for pair in problem.demands.pairs() {
            let ts = problem.tunnels.tunnels_for(pair);
            if ts.is_empty() {
                continue;
            }
            for &i in problem.demands.indices_for(pair) {
                flat.push((i, ts));
            }
        }

        // Warm start: softmax over -w_t/temperature.
        let mut flows: Vec<Vec<f64>> = flat
            .iter()
            .map(|&(i, ts)| {
                let ws: Vec<f64> = ts
                    .iter()
                    .map(|&t| (-problem.tunnels.tunnel(t).weight / self.temperature).exp())
                    .collect();
                let z: f64 = ws.iter().sum();
                ws.iter().map(|w| demands[i].demand_mbps * w / z).collect()
            })
            .collect();

        // Projection iterations.
        for _ in 0..self.iterations {
            // Link loads.
            let mut loads = vec![0.0f64; caps.len()];
            for (c, &(_, ts)) in flat.iter().enumerate() {
                for (t_idx, &t) in ts.iter().enumerate() {
                    let f = flows[c][t_idx];
                    if f > 0.0 {
                        for &e in &problem.tunnels.tunnel(t).links {
                            loads[e.index()] += f;
                        }
                    }
                }
            }
            let scale: Vec<f64> = loads
                .iter()
                .zip(&caps)
                .map(|(&l, &c)| if l > c { c / l } else { 1.0 })
                .collect();
            // Scale each path flow by its worst link's factor.
            for (c, &(i, ts)) in flat.iter().enumerate() {
                let mut total = 0.0;
                for (t_idx, &t) in ts.iter().enumerate() {
                    let mut s = 1.0f64;
                    for &e in &problem.tunnels.tunnel(t).links {
                        s = s.min(scale[e.index()]);
                    }
                    flows[c][t_idx] *= s;
                    total += flows[c][t_idx];
                }
                // Clamp to demand.
                let d = demands[i].demand_mbps;
                if total > d && total > 0.0 {
                    let f = d / total;
                    for v in &mut flows[c] {
                        *v *= f;
                    }
                }
            }
        }

        // Greedy refill of residual capacity (shortest tunnel first).
        let mut loads = vec![0.0f64; caps.len()];
        for (c, &(_, ts)) in flat.iter().enumerate() {
            for (t_idx, &t) in ts.iter().enumerate() {
                for &e in &problem.tunnels.tunnel(t).links {
                    loads[e.index()] += flows[c][t_idx];
                }
            }
        }
        for (c, &(i, ts)) in flat.iter().enumerate() {
            let carried: f64 = flows[c].iter().sum();
            let mut want = (demands[i].demand_mbps - carried).max(0.0);
            if want <= 0.0 {
                continue;
            }
            for (t_idx, &t) in ts.iter().enumerate() {
                if want <= 0.0 {
                    break;
                }
                let tun = problem.tunnels.tunnel(t);
                let headroom = tun
                    .links
                    .iter()
                    .map(|&e| caps[e.index()] - loads[e.index()])
                    .fold(f64::INFINITY, f64::min)
                    .max(0.0);
                let add = want.min(headroom);
                if add > 0.0 {
                    flows[c][t_idx] += add;
                    for &e in &tun.links {
                        loads[e.index()] += add;
                    }
                    want -= add;
                }
            }
        }

        let mut tunnel_flow_mbps = vec![0.0; problem.tunnels.tunnel_count()];
        for (c, &(_, ts)) in flat.iter().enumerate() {
            for (t_idx, &t) in ts.iter().enumerate() {
                tunnel_flow_mbps[t.index()] += flows[c][t_idx];
            }
        }
        Ok(TeAllocation {
            scheme: self.name().into(),
            tunnel_flow_mbps,
            endpoint_assignment: None,
            solve_time: start.elapsed(),
            endpoint_stage: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_all::LpAllScheme;
    use megate_topo::{b4, EndpointCatalog, TunnelTable, WeibullEndpoints};
    use megate_traffic::{DemandSet, TrafficConfig};

    fn fixture(pairs: usize, load: f64) -> (megate_topo::Graph, TunnelTable, DemandSet) {
        let g = b4();
        let tunnels = TunnelTable::for_all_pairs(&g, 3);
        let cat = EndpointCatalog::generate(&g, 400, WeibullEndpoints::with_scale(30.0), 3);
        let mut demands = DemandSet::generate(
            &g,
            &cat,
            &TrafficConfig {
                endpoint_pairs: pairs,
                site_pairs: 20,
                sigma: 0.8,
                seed: 1,
                ..Default::default()
            },
        );
        demands.scale_to_load(&g, load);
        (g, tunnels, demands)
    }

    #[test]
    fn feasible_and_decent_quality() {
        let (g, tunnels, demands) = fixture(200, 1.5);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let teal = TealScheme::default().solve(&p).unwrap();
        assert!(teal.check_feasible(&p, 1e-6));
        let lp = LpAllScheme::default().solve(&p).unwrap();
        let r_teal = teal.satisfied_ratio(&p);
        let r_lp = lp.satisfied_ratio(&p);
        assert!(r_teal <= r_lp + 1e-6, "TEAL {r_teal} vs LP {r_lp}");
        assert!(r_teal > r_lp * 0.85, "TEAL too weak: {r_teal} vs {r_lp}");
    }

    #[test]
    fn underload_fully_satisfied() {
        let (g, tunnels, demands) = fixture(150, 0.2);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let teal = TealScheme::default().solve(&p).unwrap();
        assert!(teal.satisfied_ratio(&p) > 0.99);
    }

    #[test]
    fn memory_wall_at_scale() {
        let (g, tunnels, demands) = fixture(100, 1.0);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let tiny = TealScheme {
            memory_budget_bytes: 1024,
            ..Default::default()
        };
        match tiny.solve(&p) {
            Err(SolveError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn deterministic() {
        let (g, tunnels, demands) = fixture(120, 1.0);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let a = TealScheme::default().solve(&p).unwrap();
        let b = TealScheme::default().solve(&p).unwrap();
        assert_eq!(a.tunnel_flow_mbps, b.tunnel_flow_mbps);
    }
}
