//! Incremental re-optimization: a persistent, warm-started,
//! dirty-set-driven solve engine (DESIGN.md §5f).
//!
//! The stateless [`MegaTeScheme::solve`] re-derives the entire
//! allocation every interval even when almost nothing changed — the
//! control loop then publishes a tiny diff of a full solve. The
//! [`IncrementalEngine`] keeps solver state alive across intervals and
//! solves *the diff*:
//!
//! * a [`DirtySet`] keyed by site pair marks which pairs' inputs
//!   actually changed — a pair is dirty when any of its endpoint
//!   demand values moved, or when the capacity of any link traversed
//!   by any of its tunnels changed;
//! * **clean pairs carry their endpoint allocations forward verbatim**
//!   (the final post-repair picks from the previous interval, whose
//!   loads provably still fit: clean pairs only traverse links whose
//!   capacity is unchanged, and their loads are a subset of the
//!   previous feasible loads);
//! * dirty pairs re-run the pipeline on the **residual** capacity left
//!   by the carried allocations: a dirty-subset `MaxSiteFlow` LP —
//!   warm-started from the retained simplex basis when the dirty set
//!   has the same shape as last interval — then FastSSP stage 3 via
//!   the pooled [`megate_ssp::SolverScratch`] kernel, then a repair
//!   pass restricted to the dirty pairs' endpoints against the merged
//!   link loads (every per-interval cost is `O(dirty)` plus a few flat
//!   `O(endpoints)` scans — no full re-aggregation, no global repair);
//! * the exact-vs-FPTAS choice of [`LpMode::Auto`] is resolved once
//!   per instance shape at cold-solve time and **latched**, so a warm
//!   re-solve of a small dirty subset can never flip modes mid-stream.
//!
//! Equivalence properties pinned by `tests/incremental.rs`:
//!
//! * **churn = 0** → the engine returns the previous allocation
//!   verbatim (zero allocation diff, near-zero work);
//! * **100 % dirty** → the warm path degenerates to exactly the cold
//!   pipeline (full pair set, full capacities, no basis reuse) and is
//!   bitwise-identical to [`MegaTeScheme::solve`];
//! * warm-path allocations never violate link capacity (the carried
//!   loads are feasible by construction, the dirty LP is capped by the
//!   residual, and the repair pass is feasibility-preserving).
//!
//! Drift bound: residual-freeze is an approximation — a warm interval
//! optimizes dirty pairs against frozen clean allocations, so repeated
//! warm solves can drift from the full optimum. The caller bounds the
//! drift with a forced periodic cold solve
//! ([`IncrementalConfig::cold_every`]) and by falling back to cold
//! whenever churn exceeds [`IncrementalConfig::warm_churn_max_ppm`].
//!
//! [`LpMode::Auto`]: crate::megate::LpMode::Auto

use crate::megate::{MegaTeScheme, ResolvedLpMode};
use crate::types::{
    aggregated_pairs, flows_from_assignment, EndpointStageStats, SolveError, TeAllocation,
    TeProblem, TeScheme,
};
use megate_lp::LpBasis;
use megate_topo::{LinkId, SitePair, TunnelId};
use megate_traffic::{DemandSet, QosClass};
use std::collections::BTreeSet;
use std::time::Instant;

/// Knobs for the incremental engine.
#[derive(Debug, Clone)]
pub struct IncrementalConfig {
    /// The underlying two-stage solver configuration.
    pub solver: crate::megate::MegaTeConfig,
    /// Solve QoS classes sequentially on residual capacity (§4.1),
    /// with warm-start state retained **per class**.
    pub qos_sequential: bool,
    /// Warm solves are only attempted while the dirty-pair churn stays
    /// at or below this many parts-per-million of the pair set; above
    /// it a full cold solve is cheaper and exact. `1_000_000` permits
    /// warm solves even at 100 % dirty (useful for equivalence tests —
    /// the warm path is bitwise-identical to cold there).
    pub warm_churn_max_ppm: i64,
    /// Force a cold solve every this many solves to bound the drift of
    /// repeated residual-freeze warm intervals. `0` disables the
    /// forced cadence (drift is then bounded only by churn).
    pub cold_every: u64,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        Self {
            solver: crate::megate::MegaTeConfig::default(),
            qos_sequential: false,
            warm_churn_max_ppm: 250_000,
            cold_every: 32,
        }
    }
}

/// The set of site pairs whose inputs changed since the retained
/// solve — the unit of re-work for a warm interval.
#[derive(Debug, Clone, Default)]
pub struct DirtySet {
    dirty: BTreeSet<SitePair>,
    total: usize,
}

impl DirtySet {
    /// An empty dirty set over a pair universe of `total` pairs.
    pub fn new(total: usize) -> Self {
        Self {
            dirty: BTreeSet::new(),
            total,
        }
    }

    /// A fully dirty set (every pair re-solves).
    pub fn all(pairs: &[SitePair]) -> Self {
        Self {
            dirty: pairs.iter().copied().collect(),
            total: pairs.len(),
        }
    }

    /// Marks a pair dirty (idempotent).
    pub fn mark(&mut self, pair: SitePair) {
        self.dirty.insert(pair);
    }

    /// Whether this pair must re-solve.
    pub fn contains(&self, pair: SitePair) -> bool {
        self.dirty.contains(&pair)
    }

    /// Number of dirty pairs.
    pub fn len(&self) -> usize {
        self.dirty.len()
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.dirty.is_empty()
    }

    /// Size of the pair universe.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Dirty fraction in parts per million (0 for an empty universe).
    pub fn churn_ppm(&self) -> i64 {
        if self.total == 0 {
            0
        } else {
            ((self.dirty.len() as f64 / self.total as f64) * 1e6) as i64
        }
    }
}

/// What one engine solve reports alongside the allocation.
#[derive(Debug, Clone, Default)]
pub struct IncrementalReport {
    /// Whether this interval ran the full cold pipeline.
    pub cold: bool,
    /// Dirty pairs re-solved this interval (= total pairs when cold).
    pub dirty_pairs: usize,
    /// Size of the pair universe across classes.
    pub total_pairs: usize,
    /// Endpoint allocations carried forward verbatim from the retained
    /// state (0 when cold).
    pub carried_endpoints: usize,
}

/// Retained per-class solver state: everything a warm interval needs
/// to carry clean pairs forward and re-solve dirty ones.
struct CoreState {
    /// The demand set this state's *shape* was established for
    /// (structure compared to detect shape change). Values inside it
    /// go stale across warm solves — current values live in
    /// `demand_values`, updated with a cheap memcpy instead of
    /// re-cloning the whole set every interval.
    demands: DemandSet,
    /// Current per-demand values (parallel to `demands.demands()`),
    /// compared bitwise against incoming demands to build the dirty
    /// set.
    demand_values: Vec<f64>,
    /// Link capacities this state was solved against.
    caps: Vec<f64>,
    /// LP pair universe, in commodity order (sorted by `SitePair`).
    pairs: Vec<SitePair>,
    /// `F_{k,t}` per pair, parallel to `pairs`.
    site_flows: Vec<Vec<f64>>,
    /// Final (post-repair) assignment of the last interval — what
    /// clean pairs carry forward verbatim.
    assignment: Vec<Option<TunnelId>>,
    /// Final dense tunnel flows of the last interval.
    tunnel_flows: Vec<f64>,
    /// Link index → positions in `pairs` of every pair with a tunnel
    /// traversing that link (the capacity-delta dirty rule).
    pairs_on_link: Vec<Vec<u32>>,
    /// The latched `Auto` resolution for this instance shape.
    mode: ResolvedLpMode,
    /// Retained simplex basis of the last warm dirty-subset LP, keyed
    /// by the dirty pair list it was solved for. Never used when the
    /// dirty set covers every pair (keeps 100 %-dirty bitwise-cold).
    basis: Option<(Vec<SitePair>, LpBasis)>,
}

/// One warm-startable solve core (one per QoS class when sequential).
#[derive(Default)]
struct Core {
    state: Option<CoreState>,
}

/// The parts one core contributes to the interval's merged allocation.
struct CoreOutput {
    assignment: Vec<Option<TunnelId>>,
    tunnel_flows: Vec<f64>,
    stage: Option<EndpointStageStats>,
    carried_endpoints: usize,
}

impl Core {
    /// Whether the retained state covers an instance of identical
    /// *shape*: same link count, same pair sequence, same per-pair
    /// demand indices, same endpoints and QoS classes. Demand values
    /// and capacities may differ (that is churn, not shape change).
    fn shape_matches(&self, demands: &DemandSet, n_links: usize) -> bool {
        let Some(st) = &self.state else {
            return false;
        };
        if st.caps.len() != n_links || st.demands.len() != demands.len() {
            return false;
        }
        if !st.demands.pairs().eq(demands.pairs()) {
            return false;
        }
        for pair in demands.pairs() {
            if st.demands.indices_for(pair) != demands.indices_for(pair) {
                return false;
            }
        }
        st.demands
            .demands()
            .iter()
            .zip(demands.demands())
            .all(|(a, b)| a.src == b.src && a.dst == b.dst && a.qos == b.qos)
    }

    /// Computes the dirty set of a same-shaped instance: pairs whose
    /// demand values changed, plus pairs whose tunnel set traverses a
    /// link whose capacity changed. Callers must have checked
    /// [`shape_matches`](Self::shape_matches) first.
    ///
    /// Returns `None` when value churn moved a pair in or out of the
    /// LP commodity universe (its aggregate demand crossed zero, in
    /// either direction): the retained state is then misaligned and
    /// the instance must re-solve cold. Only changed pairs need the
    /// check — an unchanged pair's aggregate cannot move.
    fn dirty_set(
        &self,
        demands: &DemandSet,
        tunnels: &megate_topo::TunnelTable,
        caps: &[f64],
    ) -> Option<DirtySet> {
        let st = self
            .state
            .as_ref()
            .expect("dirty_set requires retained state");
        let mut ds = DirtySet::new(st.pairs.len());
        let new = demands.demands();
        for pair in demands.pairs() {
            let idxs = demands.indices_for(pair);
            let changed = idxs
                .iter()
                .any(|&i| st.demand_values[i] != new[i].demand_mbps);
            if !changed {
                continue;
            }
            let in_universe = st.pairs.binary_search(&pair).is_ok();
            // Mirror `aggregated_pairs`: a pair is a commodity iff its
            // aggregate demand is positive and it has tunnels.
            let should_be = idxs.iter().map(|&i| new[i].demand_mbps).sum::<f64>() > 0.0
                && !tunnels.tunnels_for(pair).is_empty();
            if should_be != in_universe {
                return None;
            }
            if in_universe {
                ds.mark(pair);
            }
        }
        for (e, (&new_cap, &old_cap)) in caps.iter().zip(&st.caps).enumerate() {
            if new_cap != old_cap {
                for &k in &st.pairs_on_link[e] {
                    ds.mark(st.pairs[k as usize]);
                }
            }
        }
        Some(ds)
    }

    /// The full cold pipeline — a faithful mirror of
    /// [`MegaTeScheme::solve`] that additionally captures the internal
    /// state a warm interval needs. Bitwise-identical output.
    fn solve_cold(
        &mut self,
        scheme: &MegaTeScheme,
        problem: &TeProblem,
    ) -> Result<CoreOutput, SolveError> {
        let caps = problem.link_capacities();
        let pairs_demand = aggregated_pairs(problem);
        let (pairs, site_flows, mode) = if pairs_demand.is_empty() {
            (Vec::new(), Vec::new(), ResolvedLpMode::Exact)
        } else {
            let _span = megate_obs::span("solver.max_site_flow");
            let mcf = scheme.build_mcf(problem, &pairs_demand);
            let mode = scheme.resolve_mode(&mcf, None);
            let sol = scheme.solve_mcf(&mcf, mode)?;
            let pairs: Vec<SitePair> = pairs_demand.iter().map(|&(p, _)| p).collect();
            (pairs, sol.flows, mode)
        };

        let endpoint_span = megate_obs::span("solver.max_endpoint_flow");
        let mut assignment: Vec<Option<TunnelId>> = vec![None; problem.demands.len()];
        let stage = scheme.max_endpoint_flow_all(problem, &pairs, &site_flows, &mut assignment);
        drop(endpoint_span);
        if scheme.config.residual_repair {
            let _span = megate_obs::span("solver.repair");
            scheme.repair_with_residuals(problem, &mut assignment);
        }
        let tunnel_flows = flows_from_assignment(problem, &assignment);

        let mut pairs_on_link: Vec<Vec<u32>> = vec![Vec::new(); caps.len()];
        for (k, &pair) in pairs.iter().enumerate() {
            for &t in problem.tunnels.tunnels_for(pair) {
                for &e in &problem.tunnels.tunnel(t).links {
                    pairs_on_link[e.index()].push(k as u32);
                }
            }
        }
        for v in &mut pairs_on_link {
            // Pushes per pair are grouped (pairs visited in ascending
            // k), so consecutive dedup removes all duplicates.
            v.dedup();
        }

        self.state = Some(CoreState {
            demands: problem.demands.clone(),
            demand_values: problem
                .demands
                .demands()
                .iter()
                .map(|d| d.demand_mbps)
                .collect(),
            caps,
            pairs,
            site_flows,
            assignment: assignment.clone(),
            tunnel_flows: tunnel_flows.clone(),
            pairs_on_link,
            mode,
            basis: None,
        });
        Ok(CoreOutput {
            assignment,
            tunnel_flows,
            stage: Some(stage),
            carried_endpoints: 0,
        })
    }

    /// The warm pipeline: carry clean pairs' final picks forward,
    /// re-solve dirty pairs on the residual capacity, then repair only
    /// the dirty pairs' endpoints against the merged link loads.
    fn solve_warm(
        &mut self,
        scheme: &MegaTeScheme,
        problem: &TeProblem,
        dirty: &DirtySet,
    ) -> Result<CoreOutput, SolveError> {
        let st = self
            .state
            .as_mut()
            .expect("solve_warm requires retained state");
        let caps = problem.link_capacities();
        let demands = problem.demands;

        // Churn-zero fast path: nothing dirty and capacities bitwise
        // unchanged — the previous allocation is still exactly right.
        if dirty.is_empty() && caps == st.caps {
            let carried = st.assignment.iter().filter(|a| a.is_some()).count();
            return Ok(CoreOutput {
                assignment: st.assignment.clone(),
                tunnel_flows: st.tunnel_flows.clone(),
                stage: None,
                carried_endpoints: carried,
            });
        }

        debug_assert!(
            aggregated_pairs(problem)
                .iter()
                .map(|&(p, _)| p)
                .eq(st.pairs.iter().copied()),
            "shape-matched instance must aggregate to the same pair universe"
        );
        let npairs = st.pairs.len();
        let dirty_pos: Vec<usize> = (0..npairs)
            .filter(|&k| dirty.contains(st.pairs[k]))
            .collect();

        // Mark the dirty pairs' endpoints (endpoint index → pair);
        // every other endpoint carries last interval's final pick.
        let new = demands.demands();
        let mut dirty_ep: Vec<Option<SitePair>> = vec![None; demands.len()];
        for &k in &dirty_pos {
            let pair = st.pairs[k];
            for &i in demands.indices_for(pair) {
                dirty_ep[i] = Some(pair);
            }
        }

        // Carry clean pairs' post-repair picks forward verbatim and
        // account their link loads. Clean pairs only traverse links
        // with unchanged capacity (the capacity-delta dirty rule), and
        // their loads are a subset of last interval's feasible loads,
        // so the residual below is non-negative by construction.
        let mut assignment = st.assignment.clone();
        let mut carried = 0usize;
        let mut clean_loads = vec![0.0f64; caps.len()];
        for (i, choice) in assignment.iter_mut().enumerate() {
            if dirty_ep[i].is_some() {
                *choice = None;
            } else if let Some(t) = *choice {
                carried += 1;
                let d = new[i].demand_mbps;
                for &e in &problem.tunnels.tunnel(t).links {
                    clean_loads[e.index()] += d;
                }
            }
        }
        let residual: Vec<f64> = caps
            .iter()
            .zip(&clean_loads)
            .map(|(&c, &l)| (c - l).max(0.0))
            .collect();

        // Dirty-subset MaxSiteFlow on the residual, with the latched
        // mode. The retained simplex basis re-enters only when the
        // dirty set is a *proper* subset with the same pair list as
        // last interval — at 100 % dirty the LP is the full cold
        // instance and must stay bitwise-identical to it.
        if !dirty_pos.is_empty() {
            let _span = megate_obs::span("solver.max_site_flow");
            // Aggregate only the dirty pairs (same per-pair index order
            // as `aggregated_pairs`, so the sums — and therefore the
            // 100 %-dirty LP — are bitwise-identical to the cold path).
            let dirty_demand: Vec<(SitePair, f64)> = dirty_pos
                .iter()
                .map(|&k| {
                    let pair = st.pairs[k];
                    let total: f64 = demands
                        .indices_for(pair)
                        .iter()
                        .map(|&i| new[i].demand_mbps)
                        .sum();
                    (pair, total)
                })
                .collect();
            let mut mcf = scheme.build_mcf(problem, &dirty_demand);
            mcf.link_capacity = residual;
            let sol = match st.mode {
                ResolvedLpMode::Exact => {
                    let key: Vec<SitePair> = dirty_demand.iter().map(|&(p, _)| p).collect();
                    let warm_basis = if dirty_pos.len() < npairs {
                        st.basis.as_ref().filter(|(k, _)| *k == key).map(|(_, b)| b)
                    } else {
                        None
                    };
                    let w = mcf
                        .solve_exact_warm(warm_basis)
                        .map_err(|e| SolveError::Lp(e.to_string()))?;
                    st.basis = (dirty_pos.len() < npairs).then_some((key, w.basis));
                    w.solution
                }
                ResolvedLpMode::Fptas(eps) => {
                    mcf.solve_fptas_with(eps, scheme.config.threads.max(1))
                }
            };
            for (j, &k) in dirty_pos.iter().enumerate() {
                st.site_flows[k] = sol.flows[j].clone();
            }
        }

        // FastSSP stage 3 for the dirty pairs only, writing into the
        // assignment alongside the carried picks.
        let endpoint_span = megate_obs::span("solver.max_endpoint_flow");
        let dirty_site_pairs: Vec<SitePair> = dirty_pos.iter().map(|&k| st.pairs[k]).collect();
        let dirty_flows: Vec<Vec<f64>> = dirty_pos
            .iter()
            .map(|&k| st.site_flows[k].clone())
            .collect();
        let stage =
            scheme.max_endpoint_flow_all(problem, &dirty_site_pairs, &dirty_flows, &mut assignment);
        drop(endpoint_span);

        // Repair only the dirty pairs' endpoints. The merged loads are
        // the carried clean loads plus the dirty stage-3 loads; the
        // dirty contributions (and the candidate list) accumulate in
        // endpoint index order, so at 100 % dirty — where the clean
        // loads are exactly zero — this reproduces the cold global
        // repair pass bitwise. Clean unassigned endpoints are not
        // retried: their repair chances are re-derived at the next
        // cold solve (part of the residual-freeze drift bound).
        if scheme.config.residual_repair {
            let _span = megate_obs::span("solver.repair");
            let mut loads = clean_loads;
            let mut candidates: Vec<(usize, SitePair)> = Vec::new();
            for (i, mark) in dirty_ep.iter().enumerate() {
                let Some(pair) = *mark else { continue };
                match assignment[i] {
                    Some(t) => {
                        let d = new[i].demand_mbps;
                        for &e in &problem.tunnels.tunnel(t).links {
                            loads[e.index()] += d;
                        }
                    }
                    None if new[i].demand_mbps > 0.0 => candidates.push((i, pair)),
                    None => {}
                }
            }
            scheme.repair_candidates(problem, &mut assignment, candidates, &mut loads);
        }

        // Refresh only the dirty pairs' tunnel flows. A tunnel belongs
        // to exactly one site pair, and clean endpoints kept both their
        // picks and demand values, so clean tunnels' sums are bitwise
        // unchanged from last interval; dirty tunnels re-accumulate in
        // endpoint index order — the same order `flows_from_assignment`
        // uses, keeping the 100 %-dirty case bitwise-cold.
        let mut tunnel_flows = st.tunnel_flows.clone();
        for &k in &dirty_pos {
            for &t in problem.tunnels.tunnels_for(st.pairs[k]) {
                tunnel_flows[t.index()] = 0.0;
            }
        }
        for (i, mark) in dirty_ep.iter().enumerate() {
            if mark.is_some() {
                if let Some(t) = assignment[i] {
                    tunnel_flows[t.index()] += new[i].demand_mbps;
                }
            }
        }

        for (v, d) in st.demand_values.iter_mut().zip(new) {
            *v = d.demand_mbps;
        }
        st.caps = caps;
        st.assignment = assignment.clone();
        st.tunnel_flows = tunnel_flows.clone();
        Ok(CoreOutput {
            assignment,
            tunnel_flows,
            stage: Some(stage),
            carried_endpoints: carried,
        })
    }
}

/// A persistent solve engine that lives across controller intervals
/// and decides warm-vs-cold per solve. See the module docs for the
/// warm-interval semantics and equivalence guarantees.
pub struct IncrementalEngine {
    scheme: MegaTeScheme,
    config: IncrementalConfig,
    /// One core when single-shot; one per QoS class when sequential
    /// (basis and carried state retained per class).
    cores: Vec<Core>,
    warm_solves_since_cold: u64,
}

impl IncrementalEngine {
    /// Builds an engine; registers the `solver.warm_solves`,
    /// `solver.cold_solves` and `solver.dirty_pairs` counters up front
    /// so they are present in snapshots even before any solve.
    pub fn new(config: IncrementalConfig) -> Self {
        megate_obs::counter("solver.warm_solves");
        megate_obs::counter("solver.cold_solves");
        megate_obs::counter("solver.dirty_pairs");
        let cores = if config.qos_sequential {
            QosClass::IN_PRIORITY_ORDER
                .iter()
                .map(|_| Core::default())
                .collect()
        } else {
            vec![Core::default()]
        };
        Self {
            scheme: MegaTeScheme::new(config.solver.clone()),
            config,
            cores,
            warm_solves_since_cold: 0,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &IncrementalConfig {
        &self.config
    }

    /// Whether any retained warm state exists.
    pub fn has_warm_state(&self) -> bool {
        self.cores.iter().any(|c| c.state.is_some())
    }

    /// Discards all retained state (bases, carried allocations); the
    /// next solve is cold. Callers invoke this whenever the published
    /// allocation diverged from the engine's view — e.g. after the
    /// controller published a deadline-fallback allocation — so a
    /// stale basis can never warm-start against the wrong baseline.
    pub fn invalidate(&mut self) {
        for core in &mut self.cores {
            core.state = None;
        }
        self.warm_solves_since_cold = 0;
    }

    /// Solves the interval, deciding warm-vs-cold from the retained
    /// state, the dirty-set churn, and the forced-cold cadence.
    /// `force_cold` overrides the decision (topology events, external
    /// churn signals such as the `solver.diff_churn_ppm` gauge).
    pub fn solve(
        &mut self,
        problem: &TeProblem,
        force_cold: bool,
    ) -> Result<(TeAllocation, IncrementalReport), SolveError> {
        let start = Instant::now();
        let cadence_cold = self.config.cold_every != 0
            && self.warm_solves_since_cold + 1 >= self.config.cold_every;
        let mut cold = force_cold || cadence_cold;
        // The single-core path computes its dirty set once, here, and
        // hands it to the solve; the QoS path estimates churn up front
        // and recomputes per class (lower classes' residual capacities
        // are only known mid-pass).
        let mut single_ds: Option<DirtySet> = None;
        if !cold {
            if self.config.qos_sequential {
                match self.upfront_churn_ppm(problem) {
                    Some(ppm) => cold = ppm > self.config.warm_churn_max_ppm,
                    None => cold = true, // shape change or no retained state
                }
            } else {
                if self.cores[0].shape_matches(problem.demands, problem.graph.link_count()) {
                    let caps = problem.link_capacities();
                    single_ds = self.cores[0].dirty_set(problem.demands, problem.tunnels, &caps);
                }
                match &single_ds {
                    Some(ds) => cold = ds.churn_ppm() > self.config.warm_churn_max_ppm,
                    None => cold = true, // shape/universe change or no state
                }
            }
        }

        let (mut alloc, mut report) = if self.config.qos_sequential {
            self.solve_qos(problem, cold)?
        } else {
            self.solve_single(problem, cold, single_ds)?
        };
        alloc.solve_time = start.elapsed();
        report.cold = cold;

        if cold {
            self.warm_solves_since_cold = 0;
            megate_obs::counter("solver.cold_solves").inc();
            report.dirty_pairs = report.total_pairs;
        } else {
            self.warm_solves_since_cold += 1;
            megate_obs::counter("solver.warm_solves").inc();
            megate_obs::counter("solver.dirty_pairs").add(report.dirty_pairs as u64);
        }
        Ok((alloc, report))
    }

    /// Pre-solve churn estimate across the per-class cores (the QoS
    /// path only), against each core's retained capacities; the top
    /// class additionally sees the current graph capacities. `None`
    /// means a warm solve is not possible (no state, instance shape
    /// changed, or the pair universe moved).
    fn upfront_churn_ppm(&self, problem: &TeProblem) -> Option<i64> {
        let n_links = problem.graph.link_count();
        let caps = problem.link_capacities();
        let mut dirty = 0usize;
        let mut total = 0usize;
        for (ci, &qos) in QosClass::IN_PRIORITY_ORDER.iter().enumerate() {
            let (class_demands, _) = problem.demands.filter_qos_with_map(qos);
            let core = &self.cores[ci];
            if class_demands.is_empty() {
                if core.state.is_some() {
                    return None;
                }
                continue;
            }
            if !core.shape_matches(&class_demands, n_links) {
                return None;
            }
            let st = core.state.as_ref().expect("shape match implies state");
            // The top class runs on the real graph; lower classes'
            // residuals are only known mid-pass, so estimate their
            // capacity churn as zero (the pass computes it for real).
            let ds = if ci == 0 {
                core.dirty_set(&class_demands, problem.tunnels, &caps)?
            } else {
                core.dirty_set(&class_demands, problem.tunnels, &st.caps)?
            };
            dirty += ds.len();
            total += ds.total();
        }
        if total == 0 {
            return Some(0);
        }
        Some(((dirty as f64 / total as f64) * 1e6) as i64)
    }

    fn solve_single(
        &mut self,
        problem: &TeProblem,
        cold: bool,
        ds: Option<DirtySet>,
    ) -> Result<(TeAllocation, IncrementalReport), SolveError> {
        let out = if cold {
            self.cores[0].solve_cold(&self.scheme, problem)?
        } else {
            let ds = ds.expect("warm single solve requires the precomputed dirty set");
            let out = self.cores[0].solve_warm(&self.scheme, problem, &ds)?;
            let report = IncrementalReport {
                cold: false,
                dirty_pairs: ds.len(),
                total_pairs: ds.total(),
                carried_endpoints: out.carried_endpoints,
            };
            return Ok((self.wrap_single(out), report));
        };
        let total = self.cores[0].state.as_ref().map_or(0, |s| s.pairs.len());
        let report = IncrementalReport {
            cold: true,
            dirty_pairs: total,
            total_pairs: total,
            carried_endpoints: 0,
        };
        Ok((self.wrap_single(out), report))
    }

    fn wrap_single(&self, out: CoreOutput) -> TeAllocation {
        TeAllocation {
            scheme: self.scheme.name().to_string(),
            tunnel_flow_mbps: out.tunnel_flows,
            endpoint_assignment: Some(out.assignment),
            solve_time: std::time::Duration::ZERO, // set by solve()
            endpoint_stage: out.stage,
        }
    }

    /// The QoS-sequential pass — a faithful mirror of
    /// [`crate::qos::solve_per_qos`] (same spans, same residual
    /// arithmetic, same merge), with a warm-startable core per class.
    /// In steady state a clean higher class leaves a bitwise-identical
    /// residual, so lower classes stay clean too.
    fn solve_qos(
        &mut self,
        problem: &TeProblem,
        cold: bool,
    ) -> Result<(TeAllocation, IncrementalReport), SolveError> {
        let mut residual = problem.graph.clone();
        let mut tunnel_flow_mbps = vec![0.0; problem.tunnels.tunnel_count()];
        let mut merged_assignment = vec![None; problem.demands.len()];
        let mut endpoint_stage: Option<EndpointStageStats> = None;
        let mut report = IncrementalReport::default();

        for (ci, &qos) in QosClass::IN_PRIORITY_ORDER.iter().enumerate() {
            let (class_demands, back_map) = problem.demands.filter_qos_with_map(qos);
            if class_demands.is_empty() {
                if cold {
                    self.cores[ci].state = None;
                }
                continue;
            }
            let _span = megate_obs::span(match qos {
                QosClass::Class1 => "solver.qos.class1",
                QosClass::Class2 => "solver.qos.class2",
                QosClass::Class3 => "solver.qos.class3",
            });
            let sub = TeProblem {
                graph: &residual,
                tunnels: problem.tunnels,
                demands: &class_demands,
            };
            let out = if cold {
                self.cores[ci].solve_cold(&self.scheme, &sub)?
            } else {
                let sub_caps = sub.link_capacities();
                match self.cores[ci].dirty_set(&class_demands, problem.tunnels, &sub_caps) {
                    Some(ds) => {
                        report.dirty_pairs += ds.len();
                        self.cores[ci].solve_warm(&self.scheme, &sub, &ds)?
                    }
                    // Unreachable after the upfront universe check (the
                    // check is capacity-independent), but a cold class
                    // solve is always a safe answer.
                    None => self.cores[ci].solve_cold(&self.scheme, &sub)?,
                }
            };
            report.total_pairs += self.cores[ci].state.as_ref().map_or(0, |s| s.pairs.len());
            report.carried_endpoints += out.carried_endpoints;

            for (t, f) in out.tunnel_flows.iter().enumerate() {
                tunnel_flow_mbps[t] += f;
            }
            for (sub_i, &choice) in out.assignment.iter().enumerate() {
                merged_assignment[back_map[sub_i]] = choice;
            }
            if let Some(s) = &out.stage {
                endpoint_stage
                    .get_or_insert_with(EndpointStageStats::default)
                    .merge(s);
            }

            // Subtract this class's load from the residual — the same
            // arithmetic as solve_per_qos, so residuals (and therefore
            // lower-class dirty sets) match the stateless path bitwise.
            let mut loads = vec![0.0; residual.link_count()];
            for t in problem.tunnels.all_tunnels() {
                let f = out.tunnel_flows[t.id.index()];
                if f > 0.0 {
                    for &e in &t.links {
                        loads[e.index()] += f;
                    }
                }
            }
            for (e, load) in loads.into_iter().enumerate() {
                if load > 0.0 {
                    let link = residual.link_mut(LinkId(e as u32));
                    link.capacity_mbps = (link.capacity_mbps - load).max(f64::MIN_POSITIVE);
                }
            }
        }

        let alloc = TeAllocation {
            scheme: format!("{}+QoS", self.scheme.name()),
            tunnel_flow_mbps,
            endpoint_assignment: Some(merged_assignment),
            solve_time: std::time::Duration::ZERO, // set by solve()
            endpoint_stage,
        };
        Ok((alloc, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qos::solve_per_qos;
    use megate_topo::{b4, EndpointCatalog, TunnelTable, WeibullEndpoints};
    use megate_traffic::TrafficConfig;

    fn fixture(load: f64) -> (megate_topo::Graph, TunnelTable, DemandSet) {
        let g = b4();
        let tunnels = TunnelTable::for_all_pairs(&g, 3);
        let cat = EndpointCatalog::generate(&g, 300, WeibullEndpoints::with_scale(30.0), 3);
        let mut demands = DemandSet::generate(
            &g,
            &cat,
            &TrafficConfig {
                endpoint_pairs: 400,
                site_pairs: 16,
                sigma: 0.8,
                seed: 23,
                ..Default::default()
            },
        );
        demands.scale_to_load(&g, load);
        (g, tunnels, demands)
    }

    fn engine(qos_sequential: bool) -> IncrementalEngine {
        IncrementalEngine::new(IncrementalConfig {
            qos_sequential,
            cold_every: 0,
            ..Default::default()
        })
    }

    #[test]
    fn cold_solve_is_bitwise_identical_to_stateless_scheme() {
        let (g, tunnels, demands) = fixture(0.8);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let stateless = MegaTeScheme::default().solve(&p).unwrap();
        let mut eng = engine(false);
        let (alloc, report) = eng.solve(&p, false).unwrap();
        assert!(report.cold, "first solve must be cold");
        assert_eq!(report.dirty_pairs, report.total_pairs);
        assert_eq!(alloc.scheme, stateless.scheme);
        assert_eq!(alloc.tunnel_flow_mbps, stateless.tunnel_flow_mbps);
        assert_eq!(alloc.endpoint_assignment, stateless.endpoint_assignment);
    }

    #[test]
    fn cold_qos_solve_is_bitwise_identical_to_solve_per_qos() {
        let (g, tunnels, demands) = fixture(1.2);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let stateless = solve_per_qos(&MegaTeScheme::default(), &p).unwrap();
        let mut eng = engine(true);
        let (alloc, report) = eng.solve(&p, false).unwrap();
        assert!(report.cold);
        assert_eq!(alloc.scheme, stateless.scheme);
        assert_eq!(alloc.tunnel_flow_mbps, stateless.tunnel_flow_mbps);
        assert_eq!(alloc.endpoint_assignment, stateless.endpoint_assignment);
    }

    #[test]
    fn zero_churn_returns_previous_allocation_verbatim() {
        let (g, tunnels, demands) = fixture(0.8);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let mut eng = engine(false);
        let (first, _) = eng.solve(&p, false).unwrap();
        let (second, report) = eng.solve(&p, false).unwrap();
        assert!(!report.cold, "unchanged instance must warm-solve");
        assert_eq!(report.dirty_pairs, 0);
        assert!(report.carried_endpoints > 0);
        assert_eq!(second.tunnel_flow_mbps, first.tunnel_flow_mbps);
        assert_eq!(second.endpoint_assignment, first.endpoint_assignment);
        assert!(
            second.endpoint_stage.is_none(),
            "no stage-3 work on zero churn"
        );
    }

    #[test]
    fn warm_solve_after_demand_churn_is_partial_and_feasible() {
        let (g, tunnels, mut demands) = fixture(0.8);
        {
            let p = TeProblem {
                graph: &g,
                tunnels: &tunnels,
                demands: &demands,
            };
            let mut eng = engine(false);
            eng.solve(&p, false).unwrap();
            // Perturb one pair's demands: only that pair goes dirty.
            let pair = demands.pairs().next().unwrap();
            let idxs: Vec<usize> = demands.indices_for(pair).to_vec();
            for i in idxs {
                let d = demands.demands()[i].demand_mbps;
                demands.set_demand_mbps(i, d * 1.3);
            }
            let p = TeProblem {
                graph: &g,
                tunnels: &tunnels,
                demands: &demands,
            };
            let (alloc, report) = eng.solve(&p, false).unwrap();
            assert!(!report.cold, "tiny churn must warm-solve");
            assert!(report.dirty_pairs >= 1);
            assert!(
                report.dirty_pairs < report.total_pairs,
                "only the perturbed pair re-solves: {} of {}",
                report.dirty_pairs,
                report.total_pairs
            );
            assert!(report.carried_endpoints > 0);
            assert!(alloc.check_feasible(&p, 1e-6));
        }
    }

    #[test]
    fn capacity_churn_dirties_only_pairs_on_the_link() {
        let (g, tunnels, demands) = fixture(0.8);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let mut eng = engine(false);
        eng.solve(&p, false).unwrap();
        let mut shrunk = g.clone();
        let link = megate_topo::LinkId(0);
        shrunk.link_mut(link).capacity_mbps *= 0.7;
        let p2 = TeProblem {
            graph: &shrunk,
            tunnels: &tunnels,
            demands: &demands,
        };
        let (alloc, report) = eng.solve(&p2, false).unwrap();
        assert!(!report.cold);
        assert!(report.dirty_pairs >= 1, "someone traverses link 0");
        assert!(
            alloc.check_feasible(&p2, 1e-6),
            "shrunk capacity must be respected"
        );
    }

    #[test]
    fn cold_cadence_forces_periodic_full_solves() {
        let (g, tunnels, demands) = fixture(0.8);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let mut eng = IncrementalEngine::new(IncrementalConfig {
            cold_every: 3,
            ..Default::default()
        });
        let mut colds = 0;
        for _ in 0..7 {
            let (_, report) = eng.solve(&p, false).unwrap();
            if report.cold {
                colds += 1;
            }
        }
        // Solve 1 is cold (no state); thereafter every third solve.
        assert_eq!(colds, 3, "cold cadence of 3 over 7 solves");
    }

    #[test]
    fn invalidate_discards_warm_state() {
        let (g, tunnels, demands) = fixture(0.8);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let mut eng = engine(false);
        eng.solve(&p, false).unwrap();
        assert!(eng.has_warm_state());
        eng.invalidate();
        assert!(!eng.has_warm_state());
        let (_, report) = eng.solve(&p, false).unwrap();
        assert!(report.cold, "post-invalidate solve must be cold");
    }
}
