//! NCFlow-like baseline: cluster, solve subproblems in parallel, merge.
//!
//! NCFlow (Abuzaid et al., NSDI'21) contracts the topology into
//! disjoint clusters, solves a flow subproblem per cluster in parallel,
//! and reconciles. We keep that skeleton at endpoint granularity:
//!
//! 1. sites are clustered geographically (k-means on coordinates,
//!    `⌈√|V|⌉` clusters, seeded/deterministic);
//! 2. every endpoint-pair commodity belongs to its (src-cluster,
//!    dst-cluster) group; each link's capacity is pre-partitioned among
//!    the groups whose tunnels cross it, in proportion to group demand
//!    (the contraction step — and the source of NCFlow's few-percent
//!    optimality loss the paper measures in Figure 10);
//! 3. each group's endpoint-granularity MCF is solved exactly with the
//!    dense simplex, groups in parallel; results merge by summation.
//!
//! Per-group LPs are much smaller than LP-all's single LP, so the
//! scheme survives to larger endpoint counts before hitting the memory
//! wall — but unlike MegaTE it still scales its LP work with the
//! endpoint count, reproducing Figure 9's runtime growth.

use crate::types::{SolveError, TeAllocation, TeProblem, TeScheme};
use megate_lp::{Commodity, LpError, McfProblem, PathSpec};
use megate_topo::{SiteId, SitePair, TunnelId};
use std::collections::HashMap;
use std::time::Instant;

/// The NCFlow-like scheme.
#[derive(Debug, Clone)]
pub struct NcFlowScheme {
    /// Short-path `ε` of the per-group objectives.
    pub epsilon_weight: f64,
    /// Worker threads for the parallel per-group solves.
    pub threads: usize,
    /// k-means iterations for site clustering.
    pub kmeans_iters: usize,
}

impl Default for NcFlowScheme {
    fn default() -> Self {
        Self {
            epsilon_weight: 1e-4,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            kmeans_iters: 12,
        }
    }
}

impl NcFlowScheme {
    /// Deterministic geographic k-means over site coordinates.
    /// Returns cluster id per site.
    pub fn cluster_sites(&self, graph: &megate_topo::Graph) -> Vec<usize> {
        let n = graph.site_count();
        if n == 0 {
            return Vec::new();
        }
        let k = ((n as f64).sqrt().ceil() as usize).clamp(1, n);
        // Deterministic init: spread seeds over the site list.
        let mut centers: Vec<(f64, f64)> = (0..k)
            .map(|c| graph.site(SiteId((c * n / k) as u32)).pos)
            .collect();
        let mut assign = vec![0usize; n];
        for _ in 0..self.kmeans_iters {
            for (s, slot) in assign.iter_mut().enumerate() {
                let p = graph.site(SiteId(s as u32)).pos;
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for (c, &(cx, cy)) in centers.iter().enumerate() {
                    let d = (p.0 - cx).powi(2) + (p.1 - cy).powi(2);
                    if d < best_d {
                        best_d = d;
                        best = c;
                    }
                }
                *slot = best;
            }
            let mut sums = vec![(0.0, 0.0, 0usize); k];
            for s in 0..n {
                let p = graph.site(SiteId(s as u32)).pos;
                let e = &mut sums[assign[s]];
                e.0 += p.0;
                e.1 += p.1;
                e.2 += 1;
            }
            for (c, &(sx, sy, cnt)) in sums.iter().enumerate() {
                if cnt > 0 {
                    centers[c] = (sx / cnt as f64, sy / cnt as f64);
                }
            }
        }
        assign
    }
}

/// One cluster-pair group of commodities.
struct Group {
    /// Demand indices (into the problem's demand list).
    demand_idx: Vec<usize>,
    /// Site pairs involved (for tunnel lookups).
    pairs: Vec<SitePair>,
    /// Total demand of the group.
    total_demand: f64,
}

impl TeScheme for NcFlowScheme {
    fn name(&self) -> &'static str {
        "NCFlow"
    }

    fn solve(&self, problem: &TeProblem) -> Result<TeAllocation, SolveError> {
        let start = Instant::now();
        let clusters = self.cluster_sites(problem.graph);

        // Group commodities by cluster pair.
        let mut groups: HashMap<(usize, usize), Group> = HashMap::new();
        for pair in problem.demands.pairs() {
            if problem.tunnels.tunnels_for(pair).is_empty() {
                continue;
            }
            let key = (clusters[pair.src.index()], clusters[pair.dst.index()]);
            let g = groups.entry(key).or_insert_with(|| Group {
                demand_idx: Vec::new(),
                pairs: Vec::new(),
                total_demand: 0.0,
            });
            g.pairs.push(pair);
            for &i in problem.demands.indices_for(pair) {
                g.demand_idx.push(i);
                g.total_demand += problem.demands.demands()[i].demand_mbps;
            }
        }
        if groups.is_empty() {
            return Ok(TeAllocation {
                scheme: self.name().into(),
                tunnel_flow_mbps: vec![0.0; problem.tunnels.tunnel_count()],
                endpoint_assignment: None,
                solve_time: start.elapsed(),
                endpoint_stage: None,
            });
        }
        let mut groups: Vec<Group> = {
            let mut v: Vec<((usize, usize), Group)> = groups.into_iter().collect();
            v.sort_by_key(|&(k, _)| k); // deterministic order
            v.into_iter().map(|(_, g)| g).collect()
        };

        // Pre-partition link capacity among groups in proportion to the
        // demand each group could put on the link (contraction step).
        let caps = problem.link_capacities();
        let n_links = caps.len();
        let mut link_group_demand: Vec<Vec<f64>> = vec![vec![0.0; groups.len()]; n_links];
        for (gi, g) in groups.iter().enumerate() {
            for &pair in &g.pairs {
                let pair_demand: f64 = problem
                    .demands
                    .indices_for(pair)
                    .iter()
                    .map(|&i| problem.demands.demands()[i].demand_mbps)
                    .sum();
                // Weight the partition by where the demand would go:
                // full weight on the primary (shortest) tunnel, a
                // quarter on alternates kept for spill-over.
                for (rank, &t) in problem.tunnels.tunnels_for(pair).iter().enumerate() {
                    let w = if rank == 0 { 1.0 } else { 0.25 };
                    for &e in &problem.tunnels.tunnel(t).links {
                        link_group_demand[e.index()][gi] += w * pair_demand;
                    }
                }
            }
        }
        let group_link_caps: Vec<Vec<f64>> = (0..groups.len())
            .map(|gi| {
                (0..n_links)
                    .map(|e| {
                        let total: f64 = link_group_demand[e].iter().sum();
                        if total <= 0.0 {
                            0.0
                        } else {
                            caps[e] * link_group_demand[e][gi] / total
                        }
                    })
                    .collect()
            })
            .collect();

        // Solve each group's endpoint-granularity MCF in parallel.
        type GroupResult = Result<Vec<(TunnelId, f64)>, SolveError>;
        let results: Vec<GroupResult> = crossbeam::thread::scope(|scope| {
            let threads = self.threads.max(1);
            let groups_ref: &Vec<Group> = &groups;
            let group_caps_ref = &group_link_caps;
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    scope.spawn(move |_| {
                        let mut out: Vec<(usize, GroupResult)> = Vec::new();
                        let mut gi = w;
                        while gi < groups_ref.len() {
                            out.push((
                                gi,
                                solve_group(
                                    problem,
                                    &groups_ref[gi],
                                    &group_caps_ref[gi],
                                    self.epsilon_weight,
                                ),
                            ));
                            gi += threads;
                        }
                        out
                    })
                })
                .collect();
            let mut merged: Vec<Option<GroupResult>> =
                (0..groups_ref.len()).map(|_| None).collect();
            for h in handles {
                for (gi, r) in h.join().expect("worker") {
                    merged[gi] = Some(r);
                }
            }
            merged
                .into_iter()
                .map(|r| r.expect("all groups solved"))
                .collect()
        })
        .expect("scope");
        groups.clear();

        let mut tunnel_flow_mbps = vec![0.0; problem.tunnels.tunnel_count()];
        for r in results {
            for (t, f) in r? {
                tunnel_flow_mbps[t.index()] += f;
            }
        }
        Ok(TeAllocation {
            scheme: self.name().into(),
            tunnel_flow_mbps,
            endpoint_assignment: None,
            solve_time: start.elapsed(),
            endpoint_stage: None,
        })
    }
}

fn solve_group(
    problem: &TeProblem,
    group: &Group,
    link_caps: &[f64],
    epsilon_weight: f64,
) -> Result<Vec<(TunnelId, f64)>, SolveError> {
    let mut commodity_tunnels: Vec<&[TunnelId]> = Vec::new();
    let mut commodities: Vec<Commodity> = Vec::new();
    for &pair in &group.pairs {
        let tunnel_ids = problem.tunnels.tunnels_for(pair);
        let paths: Vec<PathSpec> = tunnel_ids
            .iter()
            .map(|&t| {
                let tun = problem.tunnels.tunnel(t);
                PathSpec {
                    links: tun.links.iter().map(|l| l.index()).collect(),
                    weight: tun.weight,
                }
            })
            .collect();
        for &i in problem.demands.indices_for(pair) {
            commodities.push(Commodity {
                demand: problem.demands.demands()[i].demand_mbps,
                paths: paths.clone(),
            });
            commodity_tunnels.push(tunnel_ids);
        }
    }
    let mcf = McfProblem {
        link_capacity: link_caps.to_vec(),
        commodities,
        epsilon_weight,
    };
    let sol = mcf.solve_exact().map_err(|e| match e {
        LpError::TooLarge { entries, cap } => SolveError::OutOfMemory {
            estimated_bytes: entries * 8,
            budget_bytes: cap * 8,
        },
        other => SolveError::Lp(other.to_string()),
    })?;
    let mut out = Vec::new();
    for (k, tunnels) in commodity_tunnels.iter().enumerate() {
        for (t_idx, &t) in tunnels.iter().enumerate() {
            if sol.flows[k][t_idx] > 0.0 {
                out.push((t, sol.flows[k][t_idx]));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp_all::LpAllScheme;
    use megate_topo::{b4, deltacom, EndpointCatalog, TunnelTable, WeibullEndpoints};
    use megate_traffic::{DemandSet, TrafficConfig};

    fn fixture(pairs: usize, load: f64) -> (megate_topo::Graph, TunnelTable, DemandSet) {
        let g = b4();
        let tunnels = TunnelTable::for_all_pairs(&g, 3);
        let cat = EndpointCatalog::generate(&g, 400, WeibullEndpoints::with_scale(30.0), 3);
        let mut demands = DemandSet::generate(
            &g,
            &cat,
            &TrafficConfig {
                endpoint_pairs: pairs,
                site_pairs: 20,
                sigma: 0.8,
                seed: 1,
                ..Default::default()
            },
        );
        demands.scale_to_load(&g, load);
        (g, tunnels, demands)
    }

    #[test]
    fn clustering_covers_all_sites_deterministically() {
        let g = deltacom();
        let s = NcFlowScheme::default();
        let a = s.cluster_sites(&g);
        let b = s.cluster_sites(&g);
        assert_eq!(a, b);
        assert_eq!(a.len(), g.site_count());
        let k = ((g.site_count() as f64).sqrt().ceil()) as usize;
        assert!(a.iter().all(|&c| c < k));
        // Multiple clusters actually used.
        let used: std::collections::HashSet<_> = a.iter().collect();
        assert!(used.len() > 1);
    }

    #[test]
    fn feasible_and_below_lp_all() {
        let (g, tunnels, demands) = fixture(200, 1.5);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let nc = NcFlowScheme::default().solve(&p).unwrap();
        assert!(nc.check_feasible(&p, 1e-6));
        let lp = LpAllScheme::default().solve(&p).unwrap();
        assert!(
            nc.satisfied_mbps() <= lp.satisfied_mbps() + 1e-6,
            "NCFlow {} vs LP {}",
            nc.satisfied_mbps(),
            lp.satisfied_mbps()
        );
        // The contraction loses a few percent, not half the traffic.
        assert!(nc.satisfied_mbps() > lp.satisfied_mbps() * 0.7);
    }

    #[test]
    fn underload_nearly_fully_satisfied() {
        let (g, tunnels, demands) = fixture(150, 0.2);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let nc = NcFlowScheme::default().solve(&p).unwrap();
        assert!(nc.satisfied_ratio(&p) > 0.9, "{}", nc.satisfied_ratio(&p));
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (g, tunnels, demands) = fixture(150, 1.0);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let a = NcFlowScheme {
            threads: 1,
            ..Default::default()
        }
        .solve(&p)
        .unwrap();
        let b = NcFlowScheme {
            threads: 8,
            ..Default::default()
        }
        .solve(&p)
        .unwrap();
        for (x, y) in a.tunnel_flow_mbps.iter().zip(&b.tunnel_flow_mbps) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_instance_is_zero() {
        let g = b4();
        let tunnels = TunnelTable::for_all_pairs(&g, 2);
        let demands = DemandSet::default();
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = NcFlowScheme::default().solve(&p).unwrap();
        assert_eq!(alloc.satisfied_mbps(), 0.0);
    }
}
