//! TE schemes: MegaTE's two-stage optimization and the paper's three
//! baselines (§4, §6.1).
//!
//! | Scheme | Module | Granularity | Character |
//! |---|---|---|---|
//! | **MegaTE** | [`megate`] | endpoint (binary `f_{k,t}^i`) | Algorithm 1: contraction → `MaxSiteFlow` LP → per-pair `MaxEndpointFlow` via FastSSP, parallel across site pairs |
//! | LP-all | [`lp_all`] | endpoint (fractional) | one MCF over every endpoint pair; exact but memory-walled (§6.2's OOM behaviour) |
//! | NCFlow-like | [`ncflow`] | endpoint (fractional) | topology clustering, per-cluster subproblems, merge (Abuzaid et al., NSDI'21 skeleton) |
//! | TEAL-like | [`teal`] | endpoint (fractional) | warm start + iterative capacity projection standing in for TEAL's GNN+ADMM (see DESIGN.md substitutions) |
//!
//! All schemes consume a [`TeProblem`] and produce a [`TeAllocation`]
//! with uniform metrics (satisfied demand, link loads, latency), so the
//! bench harness can sweep them interchangeably. QoS-sequential
//! allocation (§4.1) wraps any scheme via [`qos::solve_per_qos`].

#![warn(missing_docs)]

pub mod diff;
pub mod incremental;
pub mod lp_all;
pub mod maxallflow;
pub mod megate;
pub mod ncflow;
pub mod qos;
pub mod teal;
pub mod types;

pub use diff::{
    diff_endpoint_paths, endpoint_paths, AllocationDiff, AllocationPaths, EndpointPathSet,
};
pub use incremental::{DirtySet, IncrementalConfig, IncrementalEngine, IncrementalReport};
pub use lp_all::LpAllScheme;
pub use maxallflow::ExhaustiveScheme;
pub use megate::{LpMode, MegaTeConfig, MegaTeScheme};
pub use ncflow::NcFlowScheme;
pub use qos::solve_per_qos;
pub use teal::TealScheme;
pub use types::{EndpointStageStats, SolveError, TeAllocation, TeProblem, TeScheme};
