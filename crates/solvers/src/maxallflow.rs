//! Exact reference for the paper's `MaxAllFlow` ILP (Equation 1).
//!
//! ```text
//! max  Σ d_k^i f_{k,t}^i − ε Σ w_t d_k^i f_{k,t}^i
//! s.t. Σ d f L(t,e) ≤ c_e          (links)
//!      Σ_t f_{k,t}^i ≤ 1           (one tunnel per flow)
//!      f ∈ {0,1}
//! ```
//!
//! The problem is NP-hard (Appendix A.1 reduces 0-1 knapsack to it), so
//! this solver enumerates all `(|T_k|+1)^n` assignments and only
//! accepts tiny instances. Its purpose is testing: it certifies that
//! MegaTE's two-stage approximation is close to the true integer
//! optimum, not merely to the LP relaxation.

use crate::types::{flows_from_assignment, SolveError, TeAllocation, TeProblem, TeScheme};
use megate_topo::TunnelId;
use std::time::Instant;

/// Hard cap on enumerated assignments (~4^10).
const MAX_ASSIGNMENTS: u64 = 2_000_000;

/// The exhaustive `MaxAllFlow` solver.
#[derive(Debug, Clone)]
pub struct ExhaustiveScheme {
    /// The objective's ε preferring shorter paths.
    pub epsilon_weight: f64,
}

impl Default for ExhaustiveScheme {
    fn default() -> Self {
        Self {
            epsilon_weight: 1e-4,
        }
    }
}

impl TeScheme for ExhaustiveScheme {
    fn name(&self) -> &'static str {
        "MaxAllFlow-exact"
    }

    fn solve(&self, problem: &TeProblem) -> Result<TeAllocation, SolveError> {
        let start = Instant::now();
        // Flatten demands with their tunnel options.
        let demands = problem.demands.demands();
        let mut options: Vec<&[TunnelId]> = vec![&[]; demands.len()];
        for pair in problem.demands.pairs() {
            let ts = problem.tunnels.tunnels_for(pair);
            for &i in problem.demands.indices_for(pair) {
                options[i] = ts;
            }
        }
        // Size gate.
        let mut combos: u64 = 1;
        for o in &options {
            combos = combos.saturating_mul(o.len() as u64 + 1);
            if combos > MAX_ASSIGNMENTS {
                return Err(SolveError::OutOfMemory {
                    estimated_bytes: usize::MAX,
                    budget_bytes: MAX_ASSIGNMENTS as usize,
                });
            }
        }

        let caps = problem.link_capacities();
        let mut best_obj = f64::NEG_INFINITY;
        let mut best: Vec<Option<TunnelId>> = vec![None; demands.len()];
        let mut current: Vec<Option<TunnelId>> = vec![None; demands.len()];
        let mut loads = vec![0.0f64; caps.len()];

        // Depth-first enumeration with incremental link loads and
        // capacity pruning.
        #[allow(clippy::too_many_arguments)]
        fn dfs(
            i: usize,
            problem: &TeProblem,
            options: &[&[TunnelId]],
            caps: &[f64],
            loads: &mut Vec<f64>,
            current: &mut Vec<Option<TunnelId>>,
            obj: f64,
            eps: f64,
            best_obj: &mut f64,
            best: &mut Vec<Option<TunnelId>>,
        ) {
            if i == options.len() {
                if obj > *best_obj {
                    *best_obj = obj;
                    best.clone_from(current);
                }
                return;
            }
            let d = problem.demands.demands()[i].demand_mbps;
            // Option: reject the flow.
            current[i] = None;
            dfs(
                i + 1,
                problem,
                options,
                caps,
                loads,
                current,
                obj,
                eps,
                best_obj,
                best,
            );
            // Options: each tunnel, if it fits.
            for &t in options[i] {
                let tun = problem.tunnels.tunnel(t);
                let fits = tun
                    .links
                    .iter()
                    .all(|&e| loads[e.index()] + d <= caps[e.index()] + 1e-9);
                if !fits {
                    continue;
                }
                for &e in &tun.links {
                    loads[e.index()] += d;
                }
                current[i] = Some(t);
                let gain = d * (1.0 - eps * tun.weight);
                dfs(
                    i + 1,
                    problem,
                    options,
                    caps,
                    loads,
                    current,
                    obj + gain,
                    eps,
                    best_obj,
                    best,
                );
                for &e in &tun.links {
                    loads[e.index()] -= d;
                }
            }
            current[i] = None;
        }

        dfs(
            0,
            problem,
            &options,
            &caps,
            &mut loads,
            &mut current,
            0.0,
            self.epsilon_weight,
            &mut best_obj,
            &mut best,
        );

        let tunnel_flow_mbps = flows_from_assignment(problem, &best);
        Ok(TeAllocation {
            scheme: self.name().into(),
            tunnel_flow_mbps,
            endpoint_assignment: Some(best),
            solve_time: start.elapsed(),
            endpoint_stage: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::megate::MegaTeScheme;
    use megate_topo::{EndpointId, Graph, SitePair, TunnelTable};
    use megate_traffic::{DemandSet, EndpointDemand, QosClass};
    use proptest::prelude::*;

    /// Tiny two-path fixture: one site pair with a 100-cap short path
    /// and a 100-cap long path.
    fn tiny(demands_mbps: &[f64]) -> (Graph, TunnelTable, DemandSet) {
        let mut g = Graph::new();
        let a = g.add_site("a", (0.0, 0.0));
        let b = g.add_site("b", (1.0, 0.0));
        let c = g.add_site("c", (0.5, 1.0));
        g.add_bidi_link(a, b, 100.0, 1.0);
        g.add_bidi_link(a, c, 100.0, 2.0);
        g.add_bidi_link(c, b, 100.0, 2.0);
        let pair = SitePair::new(a, b);
        let tunnels = TunnelTable::for_pairs(&g, &[pair], 2);
        let mut set = DemandSet::default();
        for (i, &d) in demands_mbps.iter().enumerate() {
            set.push(
                pair,
                EndpointDemand {
                    src: EndpointId(2 * i as u64),
                    dst: EndpointId(2 * i as u64 + 1),
                    demand_mbps: d,
                    qos: QosClass::Class2,
                },
            );
        }
        (g, tunnels, set)
    }

    #[test]
    fn knapsack_instance_solved_exactly() {
        // Two paths of 100 each; flows 60+60+60: no path holds two 60s,
        // so the integer optimum carries exactly two flows (120 Mbps) —
        // while the LP relaxation would split and carry 200/3 more.
        let (g, tunnels, demands) = tiny(&[60.0, 60.0, 60.0]);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = ExhaustiveScheme::default().solve(&p).unwrap();
        assert!(alloc.check_feasible(&p, 1e-9));
        assert!((alloc.satisfied_mbps() - 120.0).abs() < 1e-9);
        // And 40+40+60+60 fits fully: 40+60 on each path.
        let (g, tunnels, demands) = tiny(&[40.0, 40.0, 60.0, 60.0]);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = ExhaustiveScheme::default().solve(&p).unwrap();
        assert!((alloc.satisfied_mbps() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn prefers_short_path_on_ties() {
        let (g, tunnels, demands) = tiny(&[50.0]);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = ExhaustiveScheme::default().solve(&p).unwrap();
        let t = alloc.endpoint_assignment.as_ref().unwrap()[0].unwrap();
        assert_eq!(tunnels.tunnel(t).weight, 1.0, "short path wins the ε term");
    }

    #[test]
    fn oversize_instance_rejected() {
        let (g, tunnels, demands) = tiny(&[1.0; 30]);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        assert!(matches!(
            ExhaustiveScheme::default().solve(&p),
            Err(SolveError::OutOfMemory { .. })
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn megate_close_to_integer_optimum(
            demands in proptest::collection::vec(10.0f64..80.0, 1..7),
        ) {
            let (g, tunnels, set) = tiny(&demands);
            let p = TeProblem { graph: &g, tunnels: &tunnels, demands: &set };
            let exact = ExhaustiveScheme::default().solve(&p).unwrap();
            let mega = MegaTeScheme::default().solve(&p).unwrap();
            prop_assert!(mega.check_feasible(&p, 1e-6));
            // MegaTE can't beat the integer optimum...
            prop_assert!(
                mega.satisfied_mbps() <= exact.satisfied_mbps() + 1e-6,
                "mega {} > exact {}", mega.satisfied_mbps(), exact.satisfied_mbps()
            );
            // ...and on these tiny instances lands within 25% of it
            // (FastSSP's error is bounded by the largest rejected flow,
            // which is material when |I_k| is this small).
            prop_assert!(
                mega.satisfied_mbps() >= exact.satisfied_mbps() * 0.75 - 1e-6,
                "mega {} << exact {}", mega.satisfied_mbps(), exact.satisfied_mbps()
            );
        }
    }
}
