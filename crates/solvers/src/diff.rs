//! Interval-over-interval allocation diffing.
//!
//! The controller republishes configuration *state*; what the wire
//! should carry is *change*. In steady state (the prediction-friendly
//! stability both Teal and online-TE exploit) most endpoints keep the
//! exact same `(dst → SR hops)` set between TE intervals, so the
//! delta-versioned control loop publishes per-endpoint deltas only for
//! the endpoints whose set moved. This module extracts the per-source
//! path sets from a [`TeAllocation`] and diffs two consecutive
//! intervals at endpoint granularity.

use crate::types::TeAllocation;
use megate_topo::{EndpointId, TunnelId, TunnelTable};
use megate_traffic::DemandSet;
use std::collections::BTreeMap;

/// One source endpoint's TE state: destination endpoint → SR hop list
/// (site ids after the source's own site). Map semantics mirror the
/// host's `path_map`: one path per destination, last write wins.
pub type EndpointPathSet = BTreeMap<EndpointId, Vec<u32>>;

/// Per-source-endpoint path sets of a whole interval.
pub type AllocationPaths = BTreeMap<EndpointId, EndpointPathSet>;

/// Extracts every source endpoint's `(dst → SR hops)` set from a
/// per-demand tunnel assignment. Rejected demands (`None`) contribute
/// nothing — their traffic falls back to ECMP.
pub fn endpoint_paths(
    demands: &DemandSet,
    tunnels: &TunnelTable,
    assignment: &[Option<TunnelId>],
) -> AllocationPaths {
    let mut per_src: AllocationPaths = BTreeMap::new();
    for (i, choice) in assignment.iter().enumerate() {
        let Some(t) = choice else { continue };
        let d = &demands.demands()[i];
        let hops: Vec<u32> = tunnels
            .tunnel(*t)
            .sites
            .iter()
            .skip(1)
            .map(|s| s.0)
            .collect();
        per_src.entry(d.src).or_default().insert(d.dst, hops);
    }
    per_src
}

impl TeAllocation {
    /// The per-source path sets behind this allocation, or `None` for
    /// fractional schemes without endpoint assignments.
    pub fn endpoint_paths(
        &self,
        demands: &DemandSet,
        tunnels: &TunnelTable,
    ) -> Option<AllocationPaths> {
        self.endpoint_assignment
            .as_ref()
            .map(|a| endpoint_paths(demands, tunnels, a))
    }
}

/// How two consecutive intervals' path sets differ, at source-endpoint
/// granularity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AllocationDiff {
    /// Endpoints whose path set is new or modified.
    pub changed: Vec<EndpointId>,
    /// Endpoints that had a path set and now have none.
    pub removed: Vec<EndpointId>,
    /// Endpoints whose path set is identical to last interval.
    pub unchanged: Vec<EndpointId>,
}

impl AllocationDiff {
    /// Fraction of previously-or-currently configured endpoints that
    /// moved (changed or removed). `0.0` for two empty intervals.
    pub fn churn_ratio(&self) -> f64 {
        let moved = self.changed.len() + self.removed.len();
        let total = moved + self.unchanged.len();
        if total == 0 {
            0.0
        } else {
            moved as f64 / total as f64
        }
    }
}

/// Diffs two intervals' path sets. Output vectors are sorted by
/// endpoint id (inherited from the `BTreeMap` iteration order).
pub fn diff_endpoint_paths(prev: &AllocationPaths, next: &AllocationPaths) -> AllocationDiff {
    let mut diff = AllocationDiff::default();
    for (ep, paths) in next {
        match prev.get(ep) {
            Some(old) if old == paths => diff.unchanged.push(*ep),
            _ => diff.changed.push(*ep),
        }
    }
    for ep in prev.keys() {
        if !next.contains_key(ep) {
            diff.removed.push(*ep);
        }
    }
    // Interval-over-interval churn, in parts per million (gauges are
    // integers): the paper's delta savings hinge on this staying low.
    megate_obs::gauge("solver.diff_churn_ppm").set((diff.churn_ratio() * 1e6) as i64);
    diff
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_per_qos, MegaTeScheme, TeProblem};
    use megate_topo::{b4, EndpointCatalog, WeibullEndpoints};
    use megate_traffic::TrafficConfig;

    type RawEndpoint<'a> = (u64, &'a [(u64, &'a [u32])]);

    fn paths(entries: &[RawEndpoint<'_>]) -> AllocationPaths {
        entries
            .iter()
            .map(|(src, dsts)| {
                (
                    EndpointId(*src),
                    dsts.iter()
                        .map(|(dst, hops)| (EndpointId(*dst), hops.to_vec()))
                        .collect(),
                )
            })
            .collect()
    }

    #[test]
    fn identical_intervals_are_all_unchanged() {
        let a = paths(&[(1, &[(2, &[5, 6])]), (3, &[(4, &[7])])]);
        let d = diff_endpoint_paths(&a, &a.clone());
        assert!(d.changed.is_empty() && d.removed.is_empty());
        assert_eq!(d.unchanged.len(), 2);
        assert_eq!(d.churn_ratio(), 0.0);
    }

    #[test]
    fn modified_added_and_removed_are_separated() {
        let prev = paths(&[(1, &[(2, &[5])]), (3, &[(4, &[7])]), (9, &[(2, &[1])])]);
        let next = paths(&[(1, &[(2, &[6])]), (3, &[(4, &[7])]), (8, &[(2, &[1])])]);
        let d = diff_endpoint_paths(&prev, &next);
        assert_eq!(d.changed, vec![EndpointId(1), EndpointId(8)]);
        assert_eq!(d.removed, vec![EndpointId(9)]);
        assert_eq!(d.unchanged, vec![EndpointId(3)]);
        assert!((d.churn_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn dst_set_shrink_counts_as_changed() {
        let prev = paths(&[(1, &[(2, &[5]), (3, &[6])])]);
        let next = paths(&[(1, &[(2, &[5])])]);
        let d = diff_endpoint_paths(&prev, &next);
        assert_eq!(d.changed, vec![EndpointId(1)]);
        assert!(d.removed.is_empty());
    }

    #[test]
    fn solver_reruns_on_same_demands_produce_zero_churn() {
        let g = b4();
        let tunnels = TunnelTable::for_all_pairs(&g, 3);
        let cat = EndpointCatalog::generate(&g, 120, WeibullEndpoints::with_scale(10.0), 3);
        let mut demands = DemandSet::generate(
            &g,
            &cat,
            &TrafficConfig {
                endpoint_pairs: 80,
                site_pairs: 12,
                ..Default::default()
            },
        );
        demands.scale_to_load(&g, 0.4);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let scheme = MegaTeScheme::default();
        let a1 = solve_per_qos(&scheme, &p).unwrap();
        let a2 = solve_per_qos(&scheme, &p).unwrap();
        let p1 = a1.endpoint_paths(&demands, &tunnels).unwrap();
        let p2 = a2.endpoint_paths(&demands, &tunnels).unwrap();
        assert!(!p1.is_empty());
        let d = diff_endpoint_paths(&p1, &p2);
        assert_eq!(d.churn_ratio(), 0.0, "deterministic solver, same demands");
    }
}
