//! Problem/solution types shared by every TE scheme.

use megate_topo::{Graph, LinkId, SitePair, TunnelId, TunnelTable};
use megate_traffic::{DemandSet, QosClass};
use std::time::Duration;

/// One TE instance: topology, pre-established tunnels, and the
/// endpoint-pair demands of a TE interval (Table 1's inputs).
#[derive(Debug, Clone, Copy)]
pub struct TeProblem<'a> {
    /// The site graph `G(V, E)` with capacities `c_e`.
    pub graph: &'a Graph,
    /// Pre-established tunnels `T_k` with weights `w_t` and `L(t, e)`.
    pub tunnels: &'a TunnelTable,
    /// Endpoint-pair demands `{d_k^i}`.
    pub demands: &'a DemandSet,
}

impl<'a> TeProblem<'a> {
    /// Total demand in Mbps.
    pub fn total_demand_mbps(&self) -> f64 {
        self.demands.total_mbps()
    }

    /// Residual link capacities (full capacities of the graph).
    pub fn link_capacities(&self) -> Vec<f64> {
        self.graph
            .link_ids()
            .map(|l| self.graph.link(l).capacity_mbps)
            .collect()
    }
}

/// Failure modes of a TE solve.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The scheme's working set exceeds its memory budget — the paper's
    /// "out-of-memory issues" for conventional schemes at hyper-scale.
    OutOfMemory {
        /// Estimated bytes the solve would need.
        estimated_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
    },
    /// The underlying LP failed.
    Lp(String),
    /// The instance has no demands or tunnels to work with.
    Empty,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::OutOfMemory {
                estimated_bytes,
                budget_bytes,
            } => write!(
                f,
                "out of memory: needs ~{estimated_bytes} bytes, budget {budget_bytes}"
            ),
            SolveError::Lp(e) => write!(f, "LP failure: {e}"),
            SolveError::Empty => write!(f, "empty TE instance"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Runtime profile of the parallel `MaxEndpointFlow` stage (stage 3).
///
/// Filled by [`crate::megate::MegaTeScheme`]'s flat work-stealing path.
/// Busy times are per-thread CPU time ([`megate_obs::thread_cpu_ns`]),
/// not wall-clock, so they exclude scheduler preemption — the figure
/// `fig_solver_scale` judges core scaling on (a host with fewer
/// hardware threads than configured workers would otherwise make the
/// speedup look like scheduling noise).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EndpointStageStats {
    /// Wall-clock duration of the whole stage (coordinator view).
    pub wall: Duration,
    /// CPU busy time of the busiest worker — the stage's critical path.
    pub max_worker_busy: Duration,
    /// Sum of all workers' CPU busy time (the serial-equivalent work).
    pub total_busy: Duration,
    /// Worker threads the stage ran with.
    pub threads: usize,
    /// Site pairs solved.
    pub pairs: usize,
    /// Pairs claimed from another worker's range (work-stealing events).
    pub pairs_stolen: usize,
}

impl EndpointStageStats {
    /// Merges another stage's profile into this one (QoS classes run
    /// the stage once per class; the interval profile is their sum,
    /// with `threads` the maximum seen).
    pub fn merge(&mut self, other: &EndpointStageStats) {
        self.wall += other.wall;
        self.max_worker_busy += other.max_worker_busy;
        self.total_busy += other.total_busy;
        self.threads = self.threads.max(other.threads);
        self.pairs += other.pairs;
        self.pairs_stolen += other.pairs_stolen;
    }
}

/// A TE allocation in uniform form.
///
/// Fractional schemes fill only `tunnel_flow_mbps`; endpoint-granular
/// schemes (MegaTE) additionally record the binary per-demand decision
/// `f_{k,t}^i` in `endpoint_assignment` (index parallel to
/// `problem.demands.demands()`), from which the tunnel flows are
/// derived.
#[derive(Debug, Clone)]
pub struct TeAllocation {
    /// Scheme name (for reports).
    pub scheme: String,
    /// Flow placed on each tunnel, dense by `TunnelId` index, Mbps.
    pub tunnel_flow_mbps: Vec<f64>,
    /// Per-demand tunnel choice; `None` = demand rejected. Absent for
    /// fractional schemes.
    pub endpoint_assignment: Option<Vec<Option<TunnelId>>>,
    /// Wall-clock solve time.
    pub solve_time: Duration,
    /// Stage-3 runtime profile; `None` for schemes without the stage.
    pub endpoint_stage: Option<EndpointStageStats>,
}

impl TeAllocation {
    /// Total satisfied demand in Mbps.
    pub fn satisfied_mbps(&self) -> f64 {
        self.tunnel_flow_mbps.iter().sum()
    }

    /// Satisfied-demand ratio (the paper's headline §6.2 metric).
    pub fn satisfied_ratio(&self, problem: &TeProblem) -> f64 {
        let total = problem.total_demand_mbps();
        if total <= 0.0 {
            1.0
        } else {
            self.satisfied_mbps() / total
        }
    }

    /// Load per link implied by the tunnel flows.
    pub fn link_loads(&self, problem: &TeProblem) -> Vec<f64> {
        let mut loads = vec![0.0; problem.graph.link_count()];
        for t in problem.tunnels.all_tunnels() {
            let f = self.tunnel_flow_mbps[t.id.index()];
            if f > 0.0 {
                for &e in &t.links {
                    loads[e.index()] += f;
                }
            }
        }
        loads
    }

    /// Maximum link utilization.
    pub fn max_link_utilization(&self, problem: &TeProblem) -> f64 {
        self.link_loads(problem)
            .iter()
            .zip(problem.graph.link_ids())
            .map(|(&load, l)| load / problem.graph.link(l).capacity_mbps)
            .fold(0.0, f64::max)
    }

    /// Feasibility: link capacities respected, per-pair flow within the
    /// pair's demand, endpoint assignments (when present) consistent
    /// with the tunnel flows and the demands' site pairs.
    pub fn check_feasible(&self, problem: &TeProblem, rel_tol: f64) -> bool {
        // Link capacities.
        let loads = self.link_loads(problem);
        for (e, &load) in loads.iter().enumerate() {
            let cap = problem.graph.link(LinkId(e as u32)).capacity_mbps;
            if load > cap * (1.0 + rel_tol) + 1e-6 {
                return false;
            }
        }
        // Per-pair totals within demand.
        for pair in problem.demands.pairs() {
            let demand: f64 = problem
                .demands
                .indices_for(pair)
                .iter()
                .map(|&i| problem.demands.demands()[i].demand_mbps)
                .sum();
            let flow: f64 = problem
                .tunnels
                .tunnels_for(pair)
                .iter()
                .map(|&t| self.tunnel_flow_mbps[t.index()])
                .sum();
            if flow > demand * (1.0 + rel_tol) + 1e-6 {
                return false;
            }
        }
        // Endpoint-assignment consistency.
        if let Some(assign) = &self.endpoint_assignment {
            if assign.len() != problem.demands.len() {
                return false;
            }
            let mut derived = vec![0.0; self.tunnel_flow_mbps.len()];
            for pair in problem.demands.pairs() {
                let pair_tunnels = problem.tunnels.tunnels_for(pair);
                for &i in problem.demands.indices_for(pair) {
                    if let Some(t) = assign[i] {
                        if !pair_tunnels.contains(&t) {
                            return false; // assigned to a foreign tunnel
                        }
                        derived[t.index()] += problem.demands.demands()[i].demand_mbps;
                    }
                }
            }
            for (a, b) in derived.iter().zip(&self.tunnel_flow_mbps) {
                if (a - b).abs() > 1e-3 * (1.0 + b.abs()) {
                    return false;
                }
            }
        }
        true
    }

    /// Demand-weighted mean path latency of a QoS class, in the tunnel
    /// table's weight units (ms) — the Figure 11 metric.
    ///
    /// With endpoint assignments the true per-flow latency is known;
    /// fractional schemes spread each pair's traffic over tunnels in
    /// proportion to the aggregate flows (exactly the paper's complaint:
    /// "once the aggregated traffic contains the flow with multiple
    /// classes, the higher class will be mistakenly allocated to the
    /// path with larger network latency").
    pub fn mean_latency_ms(&self, problem: &TeProblem, qos: Option<QosClass>) -> f64 {
        let mut weighted = 0.0;
        let mut volume = 0.0;
        match &self.endpoint_assignment {
            Some(assign) => {
                for (i, d) in problem.demands.demands().iter().enumerate() {
                    if qos.is_some_and(|q| d.qos != q) {
                        continue;
                    }
                    if let Some(t) = assign[i] {
                        weighted += d.demand_mbps * problem.tunnels.tunnel(t).weight;
                        volume += d.demand_mbps;
                    }
                }
            }
            None => {
                for pair in problem.demands.pairs() {
                    let class_demand: f64 = problem
                        .demands
                        .indices_for(pair)
                        .iter()
                        .map(|&i| &problem.demands.demands()[i])
                        .filter(|d| qos.is_none_or(|q| d.qos == q))
                        .map(|d| d.demand_mbps)
                        .sum();
                    if class_demand <= 0.0 {
                        continue;
                    }
                    let tunnels = problem.tunnels.tunnels_for(pair);
                    let pair_flow: f64 = tunnels
                        .iter()
                        .map(|&t| self.tunnel_flow_mbps[t.index()])
                        .sum();
                    if pair_flow <= 0.0 {
                        continue;
                    }
                    // The class's carried share rides tunnels pro rata.
                    let carried = class_demand.min(pair_flow);
                    for &t in tunnels {
                        let share = self.tunnel_flow_mbps[t.index()] / pair_flow;
                        weighted += carried * share * problem.tunnels.tunnel(t).weight;
                    }
                    volume += carried;
                }
            }
        }
        if volume <= 0.0 {
            0.0
        } else {
            weighted / volume
        }
    }

    /// Demand-weighted mean *normalized* latency of a QoS class: each
    /// flow's path latency divided by its pair's shortest-tunnel
    /// latency (1.0 = everything on the shortest path). This is Figure
    /// 11's "normalized packet latency", comparable across site pairs
    /// of different geographic stretch.
    pub fn mean_normalized_latency(&self, problem: &TeProblem, qos: Option<QosClass>) -> f64 {
        let mut weighted = 0.0;
        let mut volume = 0.0;
        let base_of = |pair| {
            problem
                .tunnels
                .tunnels_for(pair)
                .first()
                .map(|&t| problem.tunnels.tunnel(t).weight.max(1e-9))
        };
        match &self.endpoint_assignment {
            Some(assign) => {
                for pair in problem.demands.pairs() {
                    let Some(base) = base_of(pair) else { continue };
                    for &i in problem.demands.indices_for(pair) {
                        let d = &problem.demands.demands()[i];
                        if qos.is_some_and(|q| d.qos != q) {
                            continue;
                        }
                        if let Some(t) = assign[i] {
                            weighted += d.demand_mbps * problem.tunnels.tunnel(t).weight / base;
                            volume += d.demand_mbps;
                        }
                    }
                }
            }
            None => {
                for pair in problem.demands.pairs() {
                    let Some(base) = base_of(pair) else { continue };
                    let class_demand: f64 = problem
                        .demands
                        .indices_for(pair)
                        .iter()
                        .map(|&i| &problem.demands.demands()[i])
                        .filter(|d| qos.is_none_or(|q| d.qos == q))
                        .map(|d| d.demand_mbps)
                        .sum();
                    if class_demand <= 0.0 {
                        continue;
                    }
                    let tunnels = problem.tunnels.tunnels_for(pair);
                    let pair_flow: f64 = tunnels
                        .iter()
                        .map(|&t| self.tunnel_flow_mbps[t.index()])
                        .sum();
                    if pair_flow <= 0.0 {
                        continue;
                    }
                    let carried = class_demand.min(pair_flow);
                    for &t in tunnels {
                        let share = self.tunnel_flow_mbps[t.index()] / pair_flow;
                        weighted += carried * share * problem.tunnels.tunnel(t).weight / base;
                    }
                    volume += carried;
                }
            }
        }
        if volume <= 0.0 {
            0.0
        } else {
            weighted / volume
        }
    }

    /// Satisfied Mbps restricted to one QoS class (needs endpoint
    /// assignments; fractional schemes cannot attribute flow to classes).
    pub fn satisfied_mbps_for_qos(&self, problem: &TeProblem, qos: QosClass) -> Option<f64> {
        let assign = self.endpoint_assignment.as_ref()?;
        let mut sum = 0.0;
        for (i, d) in problem.demands.demands().iter().enumerate() {
            if d.qos == qos && assign[i].is_some() {
                sum += d.demand_mbps;
            }
        }
        Some(sum)
    }
}

/// A TE scheme: anything that can solve a [`TeProblem`].
pub trait TeScheme {
    /// Scheme name as used in the paper's figures.
    fn name(&self) -> &'static str;

    /// Solves the instance.
    fn solve(&self, problem: &TeProblem) -> Result<TeAllocation, SolveError>;
}

/// Derives dense tunnel flows from an endpoint assignment.
pub(crate) fn flows_from_assignment(
    problem: &TeProblem,
    assignment: &[Option<TunnelId>],
) -> Vec<f64> {
    let mut flows = vec![0.0; problem.tunnels.tunnel_count()];
    for (i, choice) in assignment.iter().enumerate() {
        if let Some(t) = choice {
            flows[t.index()] += problem.demands.demands()[i].demand_mbps;
        }
    }
    flows
}

/// Groups a demand set's site pairs for schemes that aggregate: returns
/// `(pair, D_k)` for every demand-bearing pair with tunnels.
pub(crate) fn aggregated_pairs(problem: &TeProblem) -> Vec<(SitePair, f64)> {
    problem
        .demands
        .site_demands(None)
        .into_iter()
        .filter(|(pair, _)| !problem.tunnels.tunnels_for(*pair).is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use megate_topo::{b4, EndpointCatalog, TunnelTable, WeibullEndpoints};
    use megate_traffic::TrafficConfig;

    fn fixture() -> (megate_topo::Graph, TunnelTable, EndpointCatalog, DemandSet) {
        let g = b4();
        let tunnels = TunnelTable::for_all_pairs(&g, 3);
        let cat = EndpointCatalog::generate(&g, 240, WeibullEndpoints::with_scale(20.0), 5);
        let demands = DemandSet::generate(
            &g,
            &cat,
            &TrafficConfig {
                endpoint_pairs: 200,
                ..Default::default()
            },
        );
        (g, tunnels, cat, demands)
    }

    #[test]
    fn empty_allocation_is_feasible_and_zero() {
        let (g, tunnels, _, demands) = fixture();
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = TeAllocation {
            scheme: "null".into(),
            tunnel_flow_mbps: vec![0.0; tunnels.tunnel_count()],
            endpoint_assignment: Some(vec![None; demands.len()]),
            solve_time: Duration::ZERO,
            endpoint_stage: None,
        };
        assert!(alloc.check_feasible(&p, 1e-9));
        assert_eq!(alloc.satisfied_mbps(), 0.0);
        assert_eq!(alloc.satisfied_ratio(&p), 0.0);
    }

    #[test]
    fn assignment_to_foreign_tunnel_detected() {
        let (g, tunnels, _, demands) = fixture();
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        // Assign demand 0 to a tunnel of a *different* pair.
        let pair0 = demands.pairs().next().unwrap();
        let foreign = tunnels
            .pairs()
            .iter()
            .find(|&&q| q != pair0)
            .copied()
            .unwrap();
        let bad_t = tunnels.tunnels_for(foreign)[0];
        let mut assign = vec![None; demands.len()];
        let i0 = demands.indices_for(pair0)[0];
        assign[i0] = Some(bad_t);
        let alloc = TeAllocation {
            scheme: "bad".into(),
            tunnel_flow_mbps: flows_from_assignment(&p, &assign),
            endpoint_assignment: Some(assign),
            solve_time: Duration::ZERO,
            endpoint_stage: None,
        };
        assert!(!alloc.check_feasible(&p, 1e-9));
    }

    #[test]
    fn derived_flows_must_match_declared() {
        let (g, tunnels, _, demands) = fixture();
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let pair0 = demands.pairs().next().unwrap();
        let t0 = tunnels.tunnels_for(pair0)[0];
        let mut assign = vec![None; demands.len()];
        let i0 = demands.indices_for(pair0)[0];
        assign[i0] = Some(t0);
        let mut alloc = TeAllocation {
            scheme: "x".into(),
            tunnel_flow_mbps: flows_from_assignment(&p, &assign),
            endpoint_assignment: Some(assign),
            solve_time: Duration::ZERO,
            endpoint_stage: None,
        };
        assert!(alloc.check_feasible(&p, 1e-9));
        alloc.tunnel_flow_mbps[t0.index()] *= 2.0; // declare bogus flow
        assert!(!alloc.check_feasible(&p, 1e-9));
    }

    #[test]
    fn latency_prefers_assigned_short_tunnels() {
        let (g, tunnels, _, demands) = fixture();
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        // Assign everything to the shortest tunnel of its pair.
        let mut short = vec![None; demands.len()];
        let mut long = vec![None; demands.len()];
        for pair in demands.pairs() {
            let ts = tunnels.tunnels_for(pair);
            for &i in demands.indices_for(pair) {
                short[i] = Some(ts[0]);
                long[i] = Some(*ts.last().unwrap());
            }
        }
        let mk = |assign: Vec<Option<TunnelId>>| TeAllocation {
            scheme: "t".into(),
            tunnel_flow_mbps: flows_from_assignment(&p, &assign),
            endpoint_assignment: Some(assign),
            solve_time: Duration::ZERO,
            endpoint_stage: None,
        };
        let a_short = mk(short);
        let a_long = mk(long);
        assert!(
            a_short.mean_latency_ms(&p, None) < a_long.mean_latency_ms(&p, None),
            "short {} vs long {}",
            a_short.mean_latency_ms(&p, None),
            a_long.mean_latency_ms(&p, None)
        );
    }

    #[test]
    fn aggregated_pairs_match_site_demands() {
        let (g, tunnels, _, demands) = fixture();
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let pairs = aggregated_pairs(&p);
        let total: f64 = pairs.iter().map(|(_, d)| d).sum();
        assert!((total - demands.total_mbps()).abs() < 1e-6);
    }
}
