//! QoS-sequential allocation (§4.1).
//!
//! "We determine bandwidth allocation rate by invoking MaxAllFlow
//! separately for QoS classes in priority order. Once a higher QoS
//! class is allocated, the remaining capacity of link e is updated by
//! `c_e ← c_e − Σ d f L(t,e)`, which is then used for the lower QoS
//! class."
//!
//! [`solve_per_qos`] wraps any [`TeScheme`], solving class 1 on the full
//! topology, then class 2 on the residual, then class 3, and merging
//! the three allocations back into one whole-interval allocation with
//! original demand indexing.

use crate::types::{EndpointStageStats, SolveError, TeAllocation, TeProblem, TeScheme};
use megate_topo::LinkId;
use megate_traffic::QosClass;
use std::time::{Duration, Instant};

/// Solves the instance class by class on residual capacity.
pub fn solve_per_qos<S: TeScheme>(
    scheme: &S,
    problem: &TeProblem,
) -> Result<TeAllocation, SolveError> {
    let start = Instant::now();
    let mut residual = problem.graph.clone();
    let mut tunnel_flow_mbps = vec![0.0; problem.tunnels.tunnel_count()];
    let mut merged_assignment = vec![None; problem.demands.len()];
    let mut any_assignment = false;
    let mut all_classes_assignable = true;
    let mut endpoint_stage: Option<EndpointStageStats> = None;

    for qos in QosClass::IN_PRIORITY_ORDER {
        let (class_demands, back_map) = problem.demands.filter_qos_with_map(qos);
        if class_demands.is_empty() {
            continue;
        }
        // Per-class allocation time (span names must be static).
        let _span = megate_obs::span(match qos {
            QosClass::Class1 => "solver.qos.class1",
            QosClass::Class2 => "solver.qos.class2",
            QosClass::Class3 => "solver.qos.class3",
        });
        let sub = TeProblem {
            graph: &residual,
            tunnels: problem.tunnels,
            demands: &class_demands,
        };
        let alloc = scheme.solve(&sub)?;

        // Merge flows and (when present) per-demand assignments.
        for (t, f) in alloc.tunnel_flow_mbps.iter().enumerate() {
            tunnel_flow_mbps[t] += f;
        }
        match &alloc.endpoint_assignment {
            Some(assign) => {
                any_assignment = true;
                for (sub_i, &choice) in assign.iter().enumerate() {
                    merged_assignment[back_map[sub_i]] = choice;
                }
            }
            None => all_classes_assignable = false,
        }
        // The interval's stage-3 profile is the sum over classes (each
        // class runs MaxEndpointFlow once on its sub-problem).
        if let Some(s) = &alloc.endpoint_stage {
            endpoint_stage
                .get_or_insert_with(EndpointStageStats::default)
                .merge(s);
        }

        // Subtract this class's load from the residual capacities.
        let loads = alloc.link_loads(&sub);
        for (e, load) in loads.into_iter().enumerate() {
            if load > 0.0 {
                let link = residual.link_mut(LinkId(e as u32));
                link.capacity_mbps = (link.capacity_mbps - load).max(f64::MIN_POSITIVE);
            }
        }
    }

    Ok(TeAllocation {
        scheme: format!("{}+QoS", scheme.name()),
        tunnel_flow_mbps,
        endpoint_assignment: (any_assignment && all_classes_assignable)
            .then_some(merged_assignment),
        solve_time: start.elapsed() + Duration::ZERO,
        endpoint_stage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::megate::MegaTeScheme;
    use crate::teal::TealScheme;
    use megate_topo::{b4, EndpointCatalog, TunnelTable, WeibullEndpoints};
    use megate_traffic::{DemandSet, TrafficConfig};

    fn fixture(load: f64) -> (megate_topo::Graph, TunnelTable, DemandSet) {
        let g = b4();
        let tunnels = TunnelTable::for_all_pairs(&g, 3);
        let cat = EndpointCatalog::generate(&g, 400, WeibullEndpoints::with_scale(30.0), 3);
        let mut demands = DemandSet::generate(
            &g,
            &cat,
            &TrafficConfig {
                endpoint_pairs: 600,
                site_pairs: 20,
                sigma: 0.8,
                seed: 13,
                ..Default::default()
            },
        );
        demands.scale_to_load(&g, load);
        (g, tunnels, demands)
    }

    #[test]
    fn merged_allocation_feasible_on_original_graph() {
        let (g, tunnels, demands) = fixture(1.5);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = solve_per_qos(&MegaTeScheme::default(), &p).unwrap();
        assert!(alloc.check_feasible(&p, 1e-6));
        assert!(alloc.endpoint_assignment.is_some());
    }

    #[test]
    fn class1_gets_priority_under_overload() {
        let (g, tunnels, demands) = fixture(3.0);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = solve_per_qos(&MegaTeScheme::default(), &p).unwrap();
        let demand_of = |q| {
            demands
                .demands()
                .iter()
                .filter(|d| d.qos == q)
                .map(|d| d.demand_mbps)
                .sum::<f64>()
        };
        let sat1 = alloc.satisfied_mbps_for_qos(&p, QosClass::Class1).unwrap();
        let sat3 = alloc.satisfied_mbps_for_qos(&p, QosClass::Class3).unwrap();
        let r1 = sat1 / demand_of(QosClass::Class1);
        let r3 = sat3 / demand_of(QosClass::Class3);
        assert!(
            r1 > r3,
            "class 1 must be better served under overload: {r1} vs {r3}"
        );
        assert!(r1 > 0.9, "class 1 nearly fully served: {r1}");
    }

    #[test]
    fn class1_latency_beats_class3_with_megate() {
        let (g, tunnels, demands) = fixture(2.0);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = solve_per_qos(&MegaTeScheme::default(), &p).unwrap();
        // Normalized (per-pair) latency, as in Figure 11 — class 1
        // allocates first and lands on the shortest tunnels.
        let l1 = alloc.mean_normalized_latency(&p, Some(QosClass::Class1));
        let l3 = alloc.mean_normalized_latency(&p, Some(QosClass::Class3));
        assert!(l1 <= l3 + 1e-9, "QoS1 normalized latency {l1} vs QoS3 {l3}");
    }

    #[test]
    fn fractional_scheme_merges_without_assignment() {
        let (g, tunnels, demands) = fixture(1.0);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let alloc = solve_per_qos(&TealScheme::default(), &p).unwrap();
        assert!(alloc.endpoint_assignment.is_none());
        assert!(alloc.check_feasible(&p, 1e-6));
        assert!(alloc.satisfied_mbps() > 0.0);
    }

    #[test]
    fn qos_split_total_close_to_single_shot() {
        let (g, tunnels, demands) = fixture(1.0);
        let p = TeProblem {
            graph: &g,
            tunnels: &tunnels,
            demands: &demands,
        };
        let single = MegaTeScheme::default().solve(&p).unwrap();
        let per_qos = solve_per_qos(&MegaTeScheme::default(), &p).unwrap();
        // Sequential allocation sacrifices little total throughput.
        assert!(
            per_qos.satisfied_mbps() > single.satisfied_mbps() * 0.9,
            "per-qos {} vs single {}",
            per_qos.satisfied_mbps(),
            single.satisfied_mbps()
        );
    }
}
