//! Wire formats for MegaTE's data plane (§5, Figure 7).
//!
//! In the virtualized cloud, inner Ethernet frames are VXLAN-encapsulated
//! in UDP/IP (RFC 7348). MegaTE inserts its segment-routing header
//! *after* the VXLAN header and flags its presence in the VXLAN reserved
//! field, so WAN routers can identify and follow the specified route:
//!
//! ```text
//! | Eth | IPv4 | UDP | VXLAN (flag) | MegaTE SR | inner Eth | inner IPv4 | ... |
//! ```
//!
//! Parsing follows the smoltcp idiom: zero-copy typed wrappers over a
//! byte buffer (`Packet<&[u8]>` to read, `Packet<&mut [u8]>` to write),
//! with `new_checked` guarding every length assumption so malformed
//! input can never panic. The [`batch`] module adds the arena-backed
//! fast path: frames packed into one buffer, parsed in a single pass
//! into flat descriptors, and SR-labelled in one vectorized rebuild.

#![warn(missing_docs)]

pub mod batch;
pub mod builder;
pub mod ethernet;
pub mod fivetuple;
pub mod ipv4;
pub mod pcap;
pub mod srheader;
pub mod tcp;
pub mod udp;
pub mod vxlan;

pub use batch::{parse_batch, parse_descriptor, FrameBatch, FrameDescriptor};
pub use builder::{
    advance_sr_offset, insert_sr_header, parse_megate_frame, strip_sr_header, MegaTeFrameSpec,
    ParsedFrame,
};
pub use ethernet::EthernetFrame;
pub use fivetuple::{classify_ipv4, FiveTuple, FlowKey, Proto};
pub use ipv4::Ipv4Packet;
pub use pcap::{parse_pcap, PcapRecord, PcapWriter};
pub use srheader::SrHeader;
pub use tcp::TcpSegment;
pub use udp::UdpDatagram;
pub use vxlan::VxlanHeader;

/// Errors surfaced by all `new_checked`-style constructors and field
/// accessors in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// Buffer too short for the header (or for a declared length field).
    Truncated,
    /// A field holds a value the format forbids.
    Malformed,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "buffer truncated"),
            WireError::Malformed => write!(f, "malformed field"),
        }
    }
}

impl std::error::Error for WireError {}

/// Crate-wide result alias.
pub type Result<T> = core::result::Result<T, WireError>;

pub(crate) fn read_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_be_bytes([buf[at], buf[at + 1]])
}

pub(crate) fn write_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
}

pub(crate) fn read_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_be_bytes([buf[at], buf[at + 1], buf[at + 2], buf[at + 3]])
}

pub(crate) fn write_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_be_bytes());
}
