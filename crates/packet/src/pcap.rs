//! Minimal libpcap capture writer/reader.
//!
//! Simulations can dump every frame they emit into a standard `.pcap`
//! file (classic format, microsecond resolution, LINKTYPE_ETHERNET) and
//! open it in Wireshark to inspect VXLAN/SR headers — the same
//! debugging affordance smoltcp's examples provide with `--pcap`.

use crate::{Result, WireError};

/// Classic pcap magic (microsecond timestamps, native endian written
/// as little-endian here).
const MAGIC: u32 = 0xA1B2_C3D4;
/// LINKTYPE_ETHERNET.
const LINKTYPE: u32 = 1;
/// Snapshot length we declare.
const SNAPLEN: u32 = 65_535;

/// An in-memory pcap capture being written.
#[derive(Debug, Clone)]
pub struct PcapWriter {
    buf: Vec<u8>,
    packets: usize,
}

impl Default for PcapWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl PcapWriter {
    /// A capture with the global header written.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(1024);
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // version major
        buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&SNAPLEN.to_le_bytes());
        buf.extend_from_slice(&LINKTYPE.to_le_bytes());
        Self { buf, packets: 0 }
    }

    /// Appends one frame at the given timestamp.
    pub fn write_frame(&mut self, ts_secs: u32, ts_micros: u32, frame: &[u8]) {
        let caplen = frame.len().min(SNAPLEN as usize) as u32;
        self.buf.extend_from_slice(&ts_secs.to_le_bytes());
        self.buf.extend_from_slice(&ts_micros.to_le_bytes());
        self.buf.extend_from_slice(&caplen.to_le_bytes());
        self.buf
            .extend_from_slice(&(frame.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(&frame[..caplen as usize]);
        self.packets += 1;
    }

    /// Number of packets written.
    pub fn packet_count(&self) -> usize {
        self.packets
    }

    /// The capture bytes (write them to a `.pcap` file).
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the capture bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// One record read back from a capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Seconds part of the timestamp.
    pub ts_secs: u32,
    /// Microseconds part of the timestamp.
    pub ts_micros: u32,
    /// Captured frame bytes.
    pub frame: Vec<u8>,
}

/// Parses a classic pcap capture (as produced by [`PcapWriter`]).
pub fn parse_pcap(data: &[u8]) -> Result<Vec<PcapRecord>> {
    if data.len() < 24 {
        return Err(WireError::Truncated);
    }
    let magic = u32::from_le_bytes(data[0..4].try_into().expect("sized"));
    if magic != MAGIC {
        return Err(WireError::Malformed);
    }
    let mut at = 24usize;
    let mut out = Vec::new();
    while at < data.len() {
        if data.len() - at < 16 {
            return Err(WireError::Truncated);
        }
        let ts_secs = u32::from_le_bytes(data[at..at + 4].try_into().expect("sized"));
        let ts_micros = u32::from_le_bytes(data[at + 4..at + 8].try_into().expect("sized"));
        let caplen = u32::from_le_bytes(data[at + 8..at + 12].try_into().expect("sized")) as usize;
        at += 16;
        if data.len() - at < caplen {
            return Err(WireError::Truncated);
        }
        out.push(PcapRecord {
            ts_secs,
            ts_micros,
            frame: data[at..at + caplen].to_vec(),
        });
        at += caplen;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::MegaTeFrameSpec;
    use crate::fivetuple::{FiveTuple, Proto};

    fn tuple() -> FiveTuple {
        FiveTuple {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            proto: Proto::Udp,
            src_port: 1,
            dst_port: 2,
        }
    }

    #[test]
    fn roundtrip_frames() {
        let f1 = MegaTeFrameSpec::simple(tuple(), 5, None).build();
        let f2 = MegaTeFrameSpec::simple(tuple(), 5, Some(vec![1, 2, 3])).build();
        let mut w = PcapWriter::new();
        w.write_frame(100, 1, &f1);
        w.write_frame(100, 2, &f2);
        assert_eq!(w.packet_count(), 2);
        let records = parse_pcap(w.as_bytes()).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].frame, f1);
        assert_eq!(records[1].frame, f2);
        assert_eq!(records[1].ts_micros, 2);
        // The captured SR frame still parses as a MegaTE frame.
        let parsed = crate::builder::parse_megate_frame(&records[1].frame).unwrap();
        assert_eq!(parsed.sr.unwrap().1, vec![1, 2, 3]);
    }

    #[test]
    fn empty_capture_has_header_only() {
        let w = PcapWriter::new();
        assert_eq!(w.as_bytes().len(), 24);
        assert!(parse_pcap(w.as_bytes()).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = PcapWriter::new().into_bytes();
        bytes[0] ^= 0xFF;
        assert_eq!(parse_pcap(&bytes).err(), Some(WireError::Malformed));
    }

    #[test]
    fn truncated_record_rejected() {
        let mut w = PcapWriter::new();
        w.write_frame(0, 0, &[1, 2, 3, 4]);
        let bytes = w.into_bytes();
        assert_eq!(
            parse_pcap(&bytes[..bytes.len() - 2]).err(),
            Some(WireError::Truncated)
        );
    }
}
