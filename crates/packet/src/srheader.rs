//! The MegaTE segment-routing header (Figure 7(b)).
//!
//! Inserted directly after the VXLAN header when the VXLAN reserved-
//! field flag is set:
//!
//! ```text
//! | Hop Number (1B) | Offset (1B) | Reserved (2B) | Hop[0] (4B) | ... |
//! ```
//!
//! * **Hop Number** — total number of hops;
//! * **Offset** — index of the current hop in `hop[]`; each WAN router
//!   forwards to `hop[offset]` and increments the offset;
//! * **Hop[]** — the sequence of next-hop site identifiers specifying
//!   the packet's path across the WAN.

use crate::{read_u16, read_u32, write_u16, write_u32, Result, WireError};

mod field {
    pub const HOP_NUMBER: usize = 0;
    pub const OFFSET: usize = 1;
    pub const RESERVED: usize = 2;
    pub const HOPS: usize = 4;
}

/// Fixed part of the SR header, before the hop array.
pub const FIXED_LEN: usize = field::HOPS;

/// Maximum hops encodable (Hop Number is one byte).
pub const MAX_HOPS: usize = 255;

/// Total header length for a given hop count.
pub fn len_for_hops(hops: usize) -> usize {
    FIXED_LEN + 4 * hops
}

/// A typed wrapper over a MegaTE SR header.
#[derive(Debug, Clone)]
pub struct SrHeader<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> SrHeader<T> {
    /// Wraps a buffer, verifying the fixed part and the declared hop
    /// array fit, and that `offset <= hop_number`.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let buf = buffer.as_ref();
        if buf.len() < FIXED_LEN {
            return Err(WireError::Truncated);
        }
        let hops = buf[field::HOP_NUMBER] as usize;
        if buf.len() < len_for_hops(hops) {
            return Err(WireError::Truncated);
        }
        if buf[field::OFFSET] as usize > hops {
            return Err(WireError::Malformed);
        }
        Ok(Self { buffer })
    }

    /// Consumes the wrapper, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Total number of hops.
    pub fn hop_number(&self) -> u8 {
        self.buffer.as_ref()[field::HOP_NUMBER]
    }

    /// Current offset into the hop array.
    pub fn offset(&self) -> u8 {
        self.buffer.as_ref()[field::OFFSET]
    }

    /// Reserved field.
    pub fn reserved(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::RESERVED)
    }

    /// Hop at index `i`.
    ///
    /// # Panics
    /// Panics if `i >= hop_number()` — `new_checked` guarantees the
    /// array is present for all declared hops.
    pub fn hop(&self, i: usize) -> u32 {
        assert!(i < self.hop_number() as usize, "hop index out of range");
        read_u32(self.buffer.as_ref(), field::HOPS + 4 * i)
    }

    /// All hops as a vector.
    pub fn hops(&self) -> Vec<u32> {
        (0..self.hop_number() as usize)
            .map(|i| self.hop(i))
            .collect()
    }

    /// The hop a router should forward to now, or `None` when the path
    /// is exhausted (packet has arrived).
    pub fn current_hop(&self) -> Option<u32> {
        let off = self.offset() as usize;
        if off < self.hop_number() as usize {
            Some(self.hop(off))
        } else {
            None
        }
    }

    /// Header length in bytes (fixed part + declared hop array).
    pub fn header_len(&self) -> usize {
        len_for_hops(self.hop_number() as usize)
    }

    /// Payload after the hop array (the inner Ethernet frame).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> SrHeader<T> {
    /// Initializes the header with a hop list and offset 0.
    ///
    /// # Panics
    /// Panics if `hops.len() > MAX_HOPS` or the buffer is too small.
    pub fn init(&mut self, hops: &[u32]) {
        assert!(hops.len() <= MAX_HOPS, "too many hops");
        let need = len_for_hops(hops.len());
        let buf = self.buffer.as_mut();
        assert!(
            buf.len() >= need,
            "buffer too small for {} hops",
            hops.len()
        );
        buf[field::HOP_NUMBER] = hops.len() as u8;
        buf[field::OFFSET] = 0;
        write_u16(buf, field::RESERVED, 0);
        for (i, &h) in hops.iter().enumerate() {
            write_u32(buf, field::HOPS + 4 * i, h);
        }
    }

    /// Advances the offset by one — what each WAN router does after
    /// forwarding. Returns the new offset.
    ///
    /// # Panics
    /// Panics when the path is already exhausted.
    pub fn advance(&mut self) -> u8 {
        let off = self.offset();
        assert!(
            (off as usize) < self.hop_number() as usize,
            "cannot advance past the last hop"
        );
        self.buffer.as_mut()[field::OFFSET] = off + 1;
        off + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn init_and_walk_path() {
        let mut buf = vec![0u8; len_for_hops(3) + 4];
        let mut sr = SrHeader::new_checked(&mut buf[..]).unwrap();
        sr.init(&[7, 8, 9]);
        assert_eq!(sr.hop_number(), 3);
        assert_eq!(sr.offset(), 0);
        assert_eq!(sr.hops(), vec![7, 8, 9]);
        assert_eq!(sr.current_hop(), Some(7));
        sr.advance();
        assert_eq!(sr.current_hop(), Some(8));
        sr.advance();
        sr.advance();
        assert_eq!(sr.current_hop(), None);
    }

    #[test]
    #[should_panic(expected = "cannot advance")]
    fn advancing_past_end_panics() {
        let mut buf = vec![0u8; len_for_hops(1)];
        let mut sr = SrHeader::new_checked(&mut buf[..]).unwrap();
        sr.init(&[1]);
        sr.advance();
        sr.advance();
    }

    #[test]
    fn truncated_hop_array_rejected() {
        let mut buf = [0u8; 7]; // declares 1 hop but can't hold it
        buf[0] = 1;
        assert_eq!(
            SrHeader::new_checked(&buf[..]).err(),
            Some(WireError::Truncated)
        );
    }

    #[test]
    fn offset_beyond_hop_number_rejected() {
        let mut buf = vec![0u8; len_for_hops(2)];
        buf[0] = 2;
        buf[1] = 3; // offset 3 > hop_number 2
        assert_eq!(
            SrHeader::new_checked(&buf[..]).err(),
            Some(WireError::Malformed)
        );
    }

    #[test]
    fn zero_hop_header_is_valid_and_exhausted() {
        let buf = [0u8; FIXED_LEN];
        let sr = SrHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(sr.hop_number(), 0);
        assert_eq!(sr.current_hop(), None);
        assert_eq!(sr.header_len(), FIXED_LEN);
    }

    #[test]
    fn payload_follows_hop_array() {
        let mut buf = vec![0u8; len_for_hops(2) + 3];
        {
            let mut sr = SrHeader::new_checked(&mut buf[..]).unwrap();
            sr.init(&[1, 2]);
        }
        buf[len_for_hops(2)] = 0x55;
        let sr = SrHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(sr.payload()[0], 0x55);
    }

    proptest! {
        #[test]
        fn roundtrip_arbitrary_paths(hops in proptest::collection::vec(any::<u32>(), 0..32)) {
            let mut buf = vec![0u8; len_for_hops(hops.len())];
            let mut sr = SrHeader::new_checked(&mut buf[..]).unwrap();
            sr.init(&hops);
            prop_assert_eq!(sr.hops(), hops.clone());
            // Walk the whole path.
            for (i, &h) in hops.iter().enumerate() {
                prop_assert_eq!(sr.offset() as usize, i);
                prop_assert_eq!(sr.current_hop(), Some(h));
                sr.advance();
            }
            prop_assert_eq!(sr.current_hop(), None);
        }

        #[test]
        fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            if let Ok(sr) = SrHeader::new_checked(&data[..]) {
                let _ = (sr.hop_number(), sr.offset(), sr.hops(), sr.current_hop());
                let _ = sr.payload().len();
            }
        }
    }
}
