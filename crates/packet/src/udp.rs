//! UDP datagrams — the outer transport of VXLAN encapsulation.

use crate::{read_u16, write_u16, Result, WireError};

mod field {
    pub const SRC_PORT: usize = 0;
    pub const DST_PORT: usize = 2;
    pub const LENGTH: usize = 4;
    pub const CHECKSUM: usize = 6;
    pub const PAYLOAD: usize = 8;
}

/// UDP header length.
pub const HEADER_LEN: usize = field::PAYLOAD;

/// IANA-assigned VXLAN destination port.
pub const VXLAN_PORT: u16 = 4789;

/// A typed wrapper over a UDP datagram.
#[derive(Debug, Clone)]
pub struct UdpDatagram<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> UdpDatagram<T> {
    /// Wraps a buffer, verifying the header fits and the declared
    /// length is consistent.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let buf = buffer.as_ref();
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let len = read_u16(buf, field::LENGTH) as usize;
        if len < HEADER_LEN || len > buf.len() {
            return Err(WireError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Consumes the wrapper, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::SRC_PORT)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::DST_PORT)
    }

    /// Declared datagram length (header + payload).
    pub fn len(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::LENGTH)
    }

    /// True when the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.len() as usize == HEADER_LEN
    }

    /// Payload bytes (respects the declared length).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[field::PAYLOAD..self.len() as usize]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> UdpDatagram<T> {
    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        write_u16(self.buffer.as_mut(), field::SRC_PORT, p);
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        write_u16(self.buffer.as_mut(), field::DST_PORT, p);
    }

    /// Sets the declared length.
    pub fn set_len(&mut self, len: u16) {
        write_u16(self.buffer.as_mut(), field::LENGTH, len);
    }

    /// Sets the checksum field (0 = not computed; legal for UDP/IPv4
    /// and what VXLAN encapsulators commonly emit).
    pub fn set_checksum(&mut self, c: u16) {
        write_u16(self.buffer.as_mut(), field::CHECKSUM, c);
    }

    /// Mutable payload (respects the declared length).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let len = self.len() as usize;
        &mut self.buffer.as_mut()[field::PAYLOAD..len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ports_and_len() {
        let mut buf = [0u8; 20];
        buf[4..6].copy_from_slice(&20u16.to_be_bytes());
        let mut u = UdpDatagram::new_checked(&mut buf[..]).unwrap();
        u.set_src_port(12345);
        u.set_dst_port(VXLAN_PORT);
        assert_eq!(u.src_port(), 12345);
        assert_eq!(u.dst_port(), 4789);
        assert_eq!(u.payload().len(), 12);
        assert!(!u.is_empty());
    }

    #[test]
    fn truncated_and_inconsistent_lengths_rejected() {
        assert_eq!(
            UdpDatagram::new_checked(&[0u8; 7][..]).err(),
            Some(WireError::Truncated)
        );
        let mut buf = [0u8; 12];
        buf[4..6].copy_from_slice(&40u16.to_be_bytes()); // longer than buffer
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).err(),
            Some(WireError::Truncated)
        );
        let mut buf = [0u8; 12];
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // shorter than header
        assert_eq!(
            UdpDatagram::new_checked(&buf[..]).err(),
            Some(WireError::Truncated)
        );
    }

    #[test]
    fn empty_payload_detected() {
        let mut buf = [0u8; 8];
        buf[4..6].copy_from_slice(&8u16.to_be_bytes());
        let u = UdpDatagram::new_checked(&buf[..]).unwrap();
        assert!(u.is_empty());
        assert_eq!(u.payload(), &[] as &[u8]);
    }
}
