//! VXLAN headers (RFC 7348) with the MegaTE SR-presence flag.
//!
//! ```text
//!  0                   1                   2                   3
//!  0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1 2 3 4 5 6 7 8 9 0 1
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |R R R R I R R R|          Reserved                             |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! |                VXLAN Network Identifier (VNI) |   Reserved    |
//! +-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+-+
//! ```
//!
//! The paper's eBPF program "inserts a flag in the Reserved field of the
//! VXLAN header to indicate whether the packet is inserted with the
//! MegaTE SR information" (§5.2). We use the top bit of the first
//! reserved byte (byte 1) for that flag, leaving the RFC's I flag and
//! VNI untouched.

use crate::{Result, WireError};

mod field {
    pub const FLAGS: usize = 0;
    pub const MEGATE_FLAG_BYTE: usize = 1;
    pub const VNI: core::ops::Range<usize> = 4..7;
}

/// VXLAN header length.
pub const HEADER_LEN: usize = 8;

/// RFC 7348 "VNI present" flag bit (bit 3 of byte 0).
const I_FLAG: u8 = 0x08;

/// MegaTE's "SR header follows" flag (top bit of reserved byte 1).
const MEGATE_SR_FLAG: u8 = 0x80;

/// A typed wrapper over a VXLAN header + payload.
#[derive(Debug, Clone)]
pub struct VxlanHeader<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> VxlanHeader<T> {
    /// Wraps a buffer, verifying it holds the 8-byte header.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Consumes the wrapper, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// RFC 7348 I flag (VNI valid).
    pub fn vni_present(&self) -> bool {
        self.buffer.as_ref()[field::FLAGS] & I_FLAG != 0
    }

    /// The 24-bit VXLAN network identifier.
    pub fn vni(&self) -> u32 {
        let b = &self.buffer.as_ref()[field::VNI];
        u32::from_be_bytes([0, b[0], b[1], b[2]])
    }

    /// True when the MegaTE SR flag is set — an SR header follows.
    pub fn has_megate_sr(&self) -> bool {
        self.buffer.as_ref()[field::MEGATE_FLAG_BYTE] & MEGATE_SR_FLAG != 0
    }

    /// Payload after the VXLAN header (the SR header when flagged,
    /// otherwise the inner Ethernet frame).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[HEADER_LEN..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> VxlanHeader<T> {
    /// Initializes a standard header with the I flag set and the VNI.
    pub fn init(&mut self, vni: u32) {
        assert!(vni < (1 << 24), "VNI is 24-bit");
        let buf = self.buffer.as_mut();
        buf[..HEADER_LEN].fill(0);
        buf[field::FLAGS] = I_FLAG;
        let b = vni.to_be_bytes();
        buf[field::VNI].copy_from_slice(&b[1..4]);
    }

    /// Sets or clears the MegaTE SR flag.
    pub fn set_megate_sr(&mut self, on: bool) {
        let byte = &mut self.buffer.as_mut()[field::MEGATE_FLAG_BYTE];
        if on {
            *byte |= MEGATE_SR_FLAG;
        } else {
            *byte &= !MEGATE_SR_FLAG;
        }
    }

    /// Mutable payload after the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_sets_i_flag_and_vni() {
        let mut buf = [0u8; 16];
        let mut v = VxlanHeader::new_checked(&mut buf[..]).unwrap();
        v.init(0xABCDEF);
        assert!(v.vni_present());
        assert_eq!(v.vni(), 0xABCDEF);
        assert!(!v.has_megate_sr());
    }

    #[test]
    fn megate_flag_roundtrip_preserves_vni() {
        let mut buf = [0u8; 8];
        let mut v = VxlanHeader::new_checked(&mut buf[..]).unwrap();
        v.init(42);
        v.set_megate_sr(true);
        assert!(v.has_megate_sr());
        assert_eq!(v.vni(), 42);
        assert!(v.vni_present());
        v.set_megate_sr(false);
        assert!(!v.has_megate_sr());
        assert_eq!(v.vni(), 42);
    }

    #[test]
    fn short_buffer_rejected() {
        assert_eq!(
            VxlanHeader::new_checked(&[0u8; 7][..]).err(),
            Some(WireError::Truncated)
        );
    }

    #[test]
    #[should_panic(expected = "24-bit")]
    fn oversized_vni_panics() {
        let mut buf = [0u8; 8];
        let mut v = VxlanHeader::new_checked(&mut buf[..]).unwrap();
        v.init(1 << 24);
    }

    #[test]
    fn payload_follows_header() {
        let mut buf = [0u8; 12];
        buf[8] = 0x99;
        let v = VxlanHeader::new_checked(&buf[..]).unwrap();
        assert_eq!(v.payload()[0], 0x99);
    }
}
