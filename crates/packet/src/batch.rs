//! Arena-backed frame batches and the single-pass batch parser — the
//! data-plane fast path's memory layout (DESIGN.md §5d).
//!
//! The single-frame TC path handles one owned `Vec<u8>` at a time:
//! every frame is its own allocation, every parse re-derives the same
//! header offsets, and SR insertion `splice`s bytes in the middle of
//! the buffer. At millions of frames per second that is allocator
//! traffic and cache misses, not parsing. This module amortizes all of
//! it:
//!
//! * [`FrameBatch`] — frames packed back-to-back in one reusable byte
//!   arena, addressed by `(offset, len)` spans; pushing a frame is a
//!   bump-pointer copy and clearing a batch frees nothing.
//! * [`FrameDescriptor`] — the flat, `Copy` result of parsing one
//!   frame: every offset and field the TC chain needs, no heap.
//! * [`parse_batch`] — one pass over the arena filling a reusable
//!   descriptor vector; each frame's headers are walked exactly once
//!   (Ethernet → IPv4 → UDP → VXLAN → optional SR → inner Ethernet → inner
//!   IPv4), and unlike [`crate::parse_megate_frame`] no hop vector is
//!   allocated — the descriptor only records *whether* an SR header is
//!   present and where one would be spliced.
//! * [`FrameBatch::apply_sr`] — vectorized SR insertion: one
//!   gather/scatter rebuild of the arena that splices every planned SR
//!   header in a single pass, byte-identical to calling
//!   [`crate::insert_sr_header`] per frame.

use crate::ethernet::{EthernetFrame, ETHERTYPE_IPV4, HEADER_LEN as ETH_LEN};
use crate::fivetuple::{classify_ipv4, FlowKey};
use crate::ipv4::{Ipv4Packet, PROTO_UDP};
use crate::srheader::{len_for_hops, SrHeader, MAX_HOPS};
use crate::udp::{UdpDatagram, HEADER_LEN as UDP_LEN, VXLAN_PORT};
use crate::vxlan::{VxlanHeader, HEADER_LEN as VXLAN_LEN};
use crate::{Result, WireError};

/// A batch of frames packed contiguously into one byte arena.
///
/// Frames are appended with [`push`](Self::push) and addressed by
/// index; [`clear`](Self::clear) resets the batch while keeping both
/// allocations, so a steady-state worker reuses the same two buffers
/// for every batch it processes.
#[derive(Debug, Clone, Default)]
pub struct FrameBatch {
    /// All frame bytes, back to back.
    bytes: Vec<u8>,
    /// Per-frame `(offset, len)` into `bytes`.
    spans: Vec<(u32, u32)>,
    /// Scratch arena for [`apply_sr`](Self::apply_sr) rebuilds, kept
    /// around so repeated SR passes allocate nothing.
    scratch: Vec<u8>,
}

impl FrameBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty batch with arena space for `frames` frames of
    /// `frame_len` bytes pre-reserved.
    pub fn with_capacity(frames: usize, frame_len: usize) -> Self {
        Self {
            bytes: Vec::with_capacity(frames * frame_len),
            spans: Vec::with_capacity(frames),
            scratch: Vec::new(),
        }
    }

    /// Appends a frame (bump-pointer copy into the arena).
    pub fn push(&mut self, frame: &[u8]) {
        let off = self.bytes.len();
        self.bytes.extend_from_slice(frame);
        self.spans.push((off as u32, frame.len() as u32));
    }

    /// Number of frames in the batch.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when the batch holds no frames.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total arena bytes currently used.
    pub fn arena_len(&self) -> usize {
        self.bytes.len()
    }

    /// The `i`-th frame's bytes.
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn frame(&self, i: usize) -> &[u8] {
        let (off, len) = self.spans[i];
        &self.bytes[off as usize..(off + len) as usize]
    }

    /// Mutable access to the `i`-th frame's bytes (fixed length — use
    /// [`apply_sr`](Self::apply_sr) for size-changing rewrites).
    ///
    /// # Panics
    /// Panics when `i >= len()`.
    pub fn frame_mut(&mut self, i: usize) -> &mut [u8] {
        let (off, len) = self.spans[i];
        &mut self.bytes[off as usize..(off + len) as usize]
    }

    /// Iterates over all frames in order.
    pub fn frames(&self) -> impl Iterator<Item = &[u8]> {
        self.spans
            .iter()
            .map(|&(off, len)| &self.bytes[off as usize..(off + len) as usize])
    }

    /// Empties the batch, retaining the arena allocations for reuse.
    pub fn clear(&mut self) {
        self.bytes.clear();
        self.spans.clear();
    }

    /// Vectorized SR insertion: splices an SR header into every frame
    /// whose `plans` entry is `Some(hops)`, in one gather/scatter pass
    /// over the arena. Each rewritten frame is byte-identical to what
    /// [`crate::insert_sr_header`] would produce; `None` frames are
    /// kept verbatim (their bytes are not even re-examined).
    ///
    /// `descs` must be the descriptors [`parse_batch`] produced for
    /// this batch — the rebuild trusts their offsets. Returns the
    /// number of frames that received a header.
    ///
    /// Frames planned for insertion must have parsed as VXLAN without
    /// an existing SR header ([`WireError::Malformed`] otherwise, with
    /// the batch left untouched); hop lists are bounded by
    /// [`MAX_HOPS`].
    pub fn apply_sr(
        &mut self,
        descs: &[FrameDescriptor],
        plans: &[Option<&[u32]>],
    ) -> Result<usize> {
        assert_eq!(descs.len(), self.len(), "descriptor count must match batch");
        assert_eq!(plans.len(), self.len(), "plan count must match batch");
        // Validate before touching the arena so an error leaves the
        // batch unchanged.
        for (desc, plan) in descs.iter().zip(plans) {
            if let Some(hops) = plan {
                if !desc.vxlan || desc.has_sr || hops.len() > MAX_HOPS {
                    return Err(WireError::Malformed);
                }
            }
        }
        let mut inserted = 0usize;
        self.scratch.clear();
        self.scratch.reserve(self.bytes.len());
        let mut new_spans = Vec::with_capacity(self.spans.len());
        for i in 0..self.spans.len() {
            let (off, len) = self.spans[i];
            let src = &self.bytes[off as usize..(off + len) as usize];
            let new_off = self.scratch.len() as u32;
            match plans[i] {
                None => self.scratch.extend_from_slice(src),
                Some(hops) => {
                    let desc = &descs[i];
                    let sr_at = desc.sr_insert_at as usize;
                    let sr_len = len_for_hops(hops.len());
                    // Gather: prefix, zeroed SR bytes, suffix.
                    self.scratch.extend_from_slice(&src[..sr_at]);
                    self.scratch.extend(std::iter::repeat_n(0u8, sr_len));
                    self.scratch.extend_from_slice(&src[sr_at..]);
                    let frame =
                        &mut self.scratch[new_off as usize..new_off as usize + src.len() + sr_len];
                    // Scatter: initialize the SR header, flag the VXLAN
                    // header, and patch the outer lengths + checksum —
                    // the same fix-ups `insert_sr_header` performs.
                    SrHeader::new_checked(&mut frame[sr_at..])?.init(hops);
                    let vxlan_at = sr_at - VXLAN_LEN;
                    VxlanHeader::new_checked(&mut frame[vxlan_at..])?.set_megate_sr(true);
                    let udp_at = ETH_LEN + desc.ip_header_len as usize;
                    let mut udp = UdpDatagram::new_checked(&mut frame[udp_at..])?;
                    let new_udp_len = udp.len() + sr_len as u16;
                    udp.set_len(new_udp_len);
                    let seg = &mut frame[ETH_LEN..];
                    let total = u16::from_be_bytes([seg[2], seg[3]]) + sr_len as u16;
                    seg[2..4].copy_from_slice(&total.to_be_bytes());
                    Ipv4Packet::new_checked(seg)?.fill_checksum();
                    inserted += 1;
                }
            }
            new_spans.push((new_off, self.scratch.len() as u32 - new_off));
        }
        std::mem::swap(&mut self.bytes, &mut self.scratch);
        self.spans = new_spans;
        Ok(inserted)
    }
}

/// The flat, heap-free result of parsing one frame of a batch.
///
/// Everything the TC chain needs to account and label the frame,
/// pre-resolved to plain fields so the per-frame hot loop touches no
/// wrapper types and performs no allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameDescriptor {
    /// True when the frame parsed as a well-formed VXLAN-in-UDP frame;
    /// false for noise (non-IPv4, non-UDP, wrong port, truncated…),
    /// in which case every other field is zeroed/meaningless and the
    /// frame must pass untouched.
    pub vxlan: bool,
    /// VXLAN network identifier.
    pub vni: u32,
    /// Outer (underlay) IPv4 source.
    pub outer_src_ip: [u8; 4],
    /// Outer (underlay) IPv4 destination.
    pub outer_dst_ip: [u8; 4],
    /// Inner flow classification; `None` only when `vxlan` is false.
    pub flow: Option<FlowKey>,
    /// Inner IPv4 total length — what flow accounting bills.
    pub inner_ip_len: u16,
    /// True when the frame already carries a MegaTE SR header.
    pub has_sr: bool,
    /// Byte offset where an SR header sits (`has_sr`) or would be
    /// spliced (directly after the VXLAN header).
    pub sr_insert_at: u32,
    /// Outer IPv4 header length (IHL × 4), needed by the SR splice to
    /// find the UDP header again.
    pub ip_header_len: u8,
}

impl FrameDescriptor {
    /// The descriptor every non-VXLAN (noise) frame gets.
    pub const NOISE: FrameDescriptor = FrameDescriptor {
        vxlan: false,
        vni: 0,
        outer_src_ip: [0; 4],
        outer_dst_ip: [0; 4],
        flow: None,
        inner_ip_len: 0,
        has_sr: false,
        sr_insert_at: 0,
        ip_header_len: 0,
    };
}

/// Parses one frame into a [`FrameDescriptor`], walking each header
/// exactly once and allocating nothing. Malformed frames yield
/// [`FrameDescriptor::NOISE`] rather than an error — on the TC fast
/// path unparseable frames are forwarded untouched, never dropped.
pub fn parse_descriptor(frame: &[u8]) -> FrameDescriptor {
    parse_descriptor_inner(frame).unwrap_or(FrameDescriptor::NOISE)
}

fn parse_descriptor_inner(frame: &[u8]) -> Result<FrameDescriptor> {
    let eth = EthernetFrame::new_checked(frame)?;
    if eth.ethertype() != ETHERTYPE_IPV4 {
        return Err(WireError::Malformed);
    }
    let ip = Ipv4Packet::new_checked(eth.payload())?;
    if ip.protocol() != PROTO_UDP {
        return Err(WireError::Malformed);
    }
    let ip_header_len = ip.header_len();
    let udp = UdpDatagram::new_checked(ip.payload())?;
    if udp.dst_port() != VXLAN_PORT {
        return Err(WireError::Malformed);
    }
    let vxlan = VxlanHeader::new_checked(udp.payload())?;
    if !vxlan.vni_present() {
        return Err(WireError::Malformed);
    }
    let sr_insert_at = ETH_LEN + ip_header_len + UDP_LEN + VXLAN_LEN;
    let (has_sr, inner_bytes) = if vxlan.has_megate_sr() {
        let sr = SrHeader::new_checked(vxlan.payload())?;
        (true, &vxlan.payload()[sr.header_len()..])
    } else {
        (false, vxlan.payload())
    };
    let inner_eth = EthernetFrame::new_checked(inner_bytes)?;
    if inner_eth.ethertype() != ETHERTYPE_IPV4 {
        return Err(WireError::Malformed);
    }
    let inner_ip = Ipv4Packet::new_checked(inner_eth.payload())?;
    let flow = classify_ipv4(&inner_ip)?;
    Ok(FrameDescriptor {
        vxlan: true,
        vni: vxlan.vni(),
        outer_src_ip: ip.src_addr(),
        outer_dst_ip: ip.dst_addr(),
        flow: Some(flow),
        inner_ip_len: inner_ip.total_len(),
        has_sr,
        sr_insert_at: sr_insert_at as u32,
        ip_header_len: ip_header_len as u8,
    })
}

/// Parses every frame of a batch into `out` (cleared first), one
/// descriptor per frame in order. `out` is a caller-owned scratch
/// vector so steady-state batch processing performs no allocation.
pub fn parse_batch(batch: &FrameBatch, out: &mut Vec<FrameDescriptor>) {
    out.clear();
    out.reserve(batch.len());
    out.extend(batch.frames().map(parse_descriptor));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fivetuple::{FiveTuple, Proto};
    use crate::{insert_sr_header, parse_megate_frame, MegaTeFrameSpec};
    use proptest::prelude::*;

    fn tuple(port: u16) -> FiveTuple {
        FiveTuple {
            src_ip: [10, 1, 0, 5],
            dst_ip: [10, 2, 0, 9],
            proto: Proto::Udp,
            src_port: port,
            dst_port: 80,
        }
    }

    #[test]
    fn arena_roundtrips_frames() {
        let mut b = FrameBatch::with_capacity(4, 128);
        let f1 = MegaTeFrameSpec::simple(tuple(1), 7, None).build();
        let f2 = MegaTeFrameSpec::simple(tuple(2), 7, Some(vec![1, 2])).build();
        b.push(&f1);
        b.push(&f2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.frame(0), &f1[..]);
        assert_eq!(b.frame(1), &f2[..]);
        assert_eq!(b.arena_len(), f1.len() + f2.len());
        let collected: Vec<&[u8]> = b.frames().collect();
        assert_eq!(collected, vec![&f1[..], &f2[..]]);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.arena_len(), 0);
    }

    #[test]
    fn descriptor_agrees_with_full_parser() {
        let mut spec = MegaTeFrameSpec::simple(tuple(5), 42, Some(vec![3, 1, 4]));
        spec.inner_ipid = 0x7777;
        let frame = spec.build();
        let d = parse_descriptor(&frame);
        let p = parse_megate_frame(&frame).unwrap();
        assert!(d.vxlan);
        assert_eq!(d.vni, p.vni);
        assert_eq!(d.outer_src_ip, p.outer_src_ip);
        assert_eq!(d.outer_dst_ip, p.outer_dst_ip);
        assert_eq!(d.flow, Some(p.inner_flow));
        assert_eq!(d.inner_ip_len, p.inner_ip_len);
        assert!(d.has_sr);
        assert_eq!(d.sr_insert_at as usize, p.sr_byte_offset.unwrap());
    }

    #[test]
    fn noise_frames_classified_not_vxlan() {
        assert_eq!(parse_descriptor(&[0xAA; 40]), FrameDescriptor::NOISE);
        assert_eq!(parse_descriptor(&[]), FrameDescriptor::NOISE);
        // Wrong UDP port.
        let mut f = MegaTeFrameSpec::simple(tuple(1), 1, None).build();
        let off = ETH_LEN + crate::ipv4::HEADER_LEN + 2;
        f[off..off + 2].copy_from_slice(&53u16.to_be_bytes());
        assert!(!parse_descriptor(&f).vxlan);
    }

    #[test]
    fn parse_batch_fills_in_order_and_reuses_scratch() {
        let mut b = FrameBatch::new();
        b.push(&MegaTeFrameSpec::simple(tuple(1), 1, None).build());
        b.push(&[0u8; 10]);
        b.push(&MegaTeFrameSpec::simple(tuple(2), 2, None).build());
        let mut descs = Vec::new();
        parse_batch(&b, &mut descs);
        assert_eq!(descs.len(), 3);
        assert!(descs[0].vxlan && !descs[1].vxlan && descs[2].vxlan);
        assert_eq!(descs[2].vni, 2);
        // Reuse with a different batch: old contents replaced.
        let mut b2 = FrameBatch::new();
        b2.push(&MegaTeFrameSpec::simple(tuple(3), 3, None).build());
        parse_batch(&b2, &mut descs);
        assert_eq!(descs.len(), 1);
        assert_eq!(descs[0].vni, 3);
    }

    #[test]
    fn apply_sr_matches_single_frame_insertion() {
        let frames: Vec<Vec<u8>> = (0..5)
            .map(|i| MegaTeFrameSpec::simple(tuple(i), 9, None).build())
            .collect();
        let mut batch = FrameBatch::new();
        for f in &frames {
            batch.push(f);
        }
        let mut descs = Vec::new();
        parse_batch(&batch, &mut descs);
        let hops: Vec<Vec<u32>> = vec![vec![1], vec![], vec![2, 3, 4], vec![5, 6], vec![7]];
        let plans: Vec<Option<&[u32]>> =
            vec![Some(&hops[0]), None, Some(&hops[2]), None, Some(&hops[4])];
        let n = batch.apply_sr(&descs, &plans).unwrap();
        assert_eq!(n, 3);
        for (i, f) in frames.iter().enumerate() {
            let mut expect = f.clone();
            if let Some(h) = plans[i] {
                insert_sr_header(&mut expect, h).unwrap();
            }
            assert_eq!(batch.frame(i), &expect[..], "frame {i}");
        }
    }

    #[test]
    fn apply_sr_rejects_bad_targets_and_leaves_batch_intact() {
        let mut batch = FrameBatch::new();
        batch.push(&MegaTeFrameSpec::simple(tuple(1), 1, Some(vec![9])).build());
        batch.push(&[0xAA; 30]);
        let before: Vec<Vec<u8>> = batch.frames().map(<[u8]>::to_vec).collect();
        let mut descs = Vec::new();
        parse_batch(&batch, &mut descs);
        let hops = [1u32, 2];
        // Frame 0 already has SR.
        let plans: Vec<Option<&[u32]>> = vec![Some(&hops), None];
        assert_eq!(batch.apply_sr(&descs, &plans), Err(WireError::Malformed));
        // Frame 1 is noise.
        let plans: Vec<Option<&[u32]>> = vec![None, Some(&hops)];
        assert_eq!(batch.apply_sr(&descs, &plans), Err(WireError::Malformed));
        let after: Vec<Vec<u8>> = batch.frames().map(<[u8]>::to_vec).collect();
        assert_eq!(before, after, "failed apply must not change the arena");
    }

    proptest! {
        #[test]
        fn descriptor_never_panics_on_arbitrary_bytes(
            data in proptest::collection::vec(any::<u8>(), 0..200)
        ) {
            let _ = parse_descriptor(&data);
        }

        #[test]
        fn batched_sr_equals_serial_sr(
            ports in proptest::collection::vec(any::<u16>(), 1..12),
            hops in proptest::collection::vec(any::<u32>(), 0..8),
            mask in any::<u16>(),
        ) {
            let frames: Vec<Vec<u8>> = ports
                .iter()
                .map(|&p| MegaTeFrameSpec::simple(tuple(p), 4, None).build())
                .collect();
            let mut batch = FrameBatch::new();
            for f in &frames {
                batch.push(f);
            }
            let mut descs = Vec::new();
            parse_batch(&batch, &mut descs);
            let plans: Vec<Option<&[u32]>> = (0..frames.len())
                .map(|i| (mask >> (i % 16) & 1 == 1).then_some(&hops[..]))
                .collect();
            batch.apply_sr(&descs, &plans).unwrap();
            for (i, f) in frames.iter().enumerate() {
                let mut expect = f.clone();
                if let Some(h) = plans[i] {
                    insert_sr_header(&mut expect, h).unwrap();
                }
                prop_assert_eq!(batch.frame(i), &expect[..]);
            }
        }
    }
}
