//! Ethernet II frames (outer and VXLAN-inner).

use crate::{read_u16, write_u16, Result, WireError};

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;

mod field {
    pub const DST: core::ops::Range<usize> = 0..6;
    pub const SRC: core::ops::Range<usize> = 6..12;
    pub const ETHERTYPE: usize = 12;
    pub const PAYLOAD: usize = 14;
}

/// Length of the Ethernet II header.
pub const HEADER_LEN: usize = field::PAYLOAD;

/// A typed wrapper over an Ethernet II frame.
#[derive(Debug, Clone)]
pub struct EthernetFrame<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EthernetFrame<T> {
    /// Wraps a buffer, verifying it can hold the header.
    pub fn new_checked(buffer: T) -> Result<Self> {
        if buffer.as_ref().len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Consumes the wrapper, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Destination MAC address.
    pub fn dst_addr(&self) -> [u8; 6] {
        let mut a = [0u8; 6];
        a.copy_from_slice(&self.buffer.as_ref()[field::DST]);
        a
    }

    /// Source MAC address.
    pub fn src_addr(&self) -> [u8; 6] {
        let mut a = [0u8; 6];
        a.copy_from_slice(&self.buffer.as_ref()[field::SRC]);
        a
    }

    /// EtherType of the payload.
    pub fn ethertype(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::ETHERTYPE)
    }

    /// Payload bytes after the header.
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[field::PAYLOAD..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> EthernetFrame<T> {
    /// Sets the destination MAC.
    pub fn set_dst_addr(&mut self, addr: [u8; 6]) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&addr);
    }

    /// Sets the source MAC.
    pub fn set_src_addr(&mut self, addr: [u8; 6]) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&addr);
    }

    /// Sets the EtherType.
    pub fn set_ethertype(&mut self, ty: u16) {
        write_u16(self.buffer.as_mut(), field::ETHERTYPE, ty);
    }

    /// Mutable payload after the header.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.buffer.as_mut()[field::PAYLOAD..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_header_fields() {
        let mut buf = [0u8; 64];
        let mut f = EthernetFrame::new_checked(&mut buf[..]).unwrap();
        f.set_dst_addr([1, 2, 3, 4, 5, 6]);
        f.set_src_addr([7, 8, 9, 10, 11, 12]);
        f.set_ethertype(ETHERTYPE_IPV4);
        assert_eq!(f.dst_addr(), [1, 2, 3, 4, 5, 6]);
        assert_eq!(f.src_addr(), [7, 8, 9, 10, 11, 12]);
        assert_eq!(f.ethertype(), ETHERTYPE_IPV4);
    }

    #[test]
    fn short_buffer_rejected() {
        let buf = [0u8; 13];
        assert_eq!(
            EthernetFrame::new_checked(&buf[..]).err(),
            Some(WireError::Truncated)
        );
    }

    #[test]
    fn payload_starts_after_header() {
        let mut buf = [0u8; 20];
        buf[14] = 0xAB;
        let f = EthernetFrame::new_checked(&buf[..]).unwrap();
        assert_eq!(f.payload()[0], 0xAB);
        assert_eq!(f.payload().len(), 6);
    }
}
