//! Five-tuple flow keys.
//!
//! The five-tuple `<src_ip, dst_ip, proto, src_port, dst_port>` uniquely
//! identifies a connection (§1, footnote 1). Conventional TE hashes it
//! to pick a tunnel; MegaTE's host stack maps it to the originating
//! virtual instance instead. Non-first IP fragments carry no transport
//! header, so classification can also yield a fragment key that the
//! `frag_map` resolves (§5.1).

use crate::ipv4::{Ipv4Packet, PROTO_TCP, PROTO_UDP};
use crate::{read_u16, Result, WireError};

/// Transport protocol of a five-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Proto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Any other protocol number.
    Other(u8),
}

impl Proto {
    /// The IP protocol number.
    pub fn number(self) -> u8 {
        match self {
            Proto::Tcp => PROTO_TCP,
            Proto::Udp => PROTO_UDP,
            Proto::Other(n) => n,
        }
    }

    /// From an IP protocol number.
    pub fn from_number(n: u8) -> Self {
        match n {
            PROTO_TCP => Proto::Tcp,
            PROTO_UDP => Proto::Udp,
            other => Proto::Other(other),
        }
    }
}

/// A connection's five-tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FiveTuple {
    /// Source IPv4 address.
    pub src_ip: [u8; 4],
    /// Destination IPv4 address.
    pub dst_ip: [u8; 4],
    /// Transport protocol.
    pub proto: Proto,
    /// Source port (0 when the protocol has no ports).
    pub src_port: u16,
    /// Destination port (0 when the protocol has no ports).
    pub dst_port: u16,
}

impl FiveTuple {
    /// Deterministic 64-bit hash (FNV-1a) — the "hash function of packet
    /// splitting" conventional TE uses to spread flows over tunnels
    /// (§2.2). Exposed so the ECMP baseline and tests agree on it.
    pub fn hash_u64(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x100000001b3;
        let mut h = OFFSET;
        let mut eat = |b: u8| {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        };
        for b in self.src_ip {
            eat(b);
        }
        for b in self.dst_ip {
            eat(b);
        }
        eat(self.proto.number());
        for b in self.src_port.to_be_bytes() {
            eat(b);
        }
        for b in self.dst_port.to_be_bytes() {
            eat(b);
        }
        h
    }
}

impl std::fmt::Display for FiveTuple {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}:{} -> {}.{}.{}.{}:{} ({:?})",
            self.src_ip[0],
            self.src_ip[1],
            self.src_ip[2],
            self.src_ip[3],
            self.src_port,
            self.dst_ip[0],
            self.dst_ip[1],
            self.dst_ip[2],
            self.dst_ip[3],
            self.dst_port,
            self.proto
        )
    }
}

/// Result of classifying an IPv4 packet for flow accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKey {
    /// The packet carries its transport header: full five-tuple. The
    /// flag says whether this is the *first fragment* of a fragmented
    /// datagram (the host stack must then seed the `frag_map`).
    Tuple {
        /// The extracted five-tuple.
        tuple: FiveTuple,
        /// True when this is the first fragment of a larger datagram.
        first_fragment: bool,
        /// IP identification, meaningful when `first_fragment`.
        ipid: u16,
    },
    /// A non-first fragment: no ports available; resolve via `frag_map`.
    Fragment {
        /// IP identification shared with the first fragment.
        ipid: u16,
    },
}

/// Classifies an IPv4 packet into a [`FlowKey`].
///
/// Errors if the packet is too short to carry the ports it promises.
pub fn classify_ipv4<T: AsRef<[u8]>>(p: &Ipv4Packet<T>) -> Result<FlowKey> {
    if p.frag_offset() > 0 {
        return Ok(FlowKey::Fragment { ipid: p.ident() });
    }
    let proto = Proto::from_number(p.protocol());
    let (src_port, dst_port) = match proto {
        Proto::Tcp | Proto::Udp => {
            let pl = p.payload();
            if pl.len() < 4 {
                return Err(WireError::Truncated);
            }
            (read_u16(pl, 0), read_u16(pl, 2))
        }
        Proto::Other(_) => (0, 0),
    };
    Ok(FlowKey::Tuple {
        tuple: FiveTuple {
            src_ip: p.src_addr(),
            dst_ip: p.dst_addr(),
            proto,
            src_port,
            dst_port,
        },
        first_fragment: p.is_first_fragment(),
        ipid: p.ident(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Packet;

    fn make_udp_packet(frag_off: u16, more: bool) -> Vec<u8> {
        let mut buf = vec![0u8; 28];
        buf[0] = 0x45;
        buf[2..4].copy_from_slice(&28u16.to_be_bytes());
        let mut p = Ipv4Packet::new_checked(&mut buf[..]).unwrap();
        p.set_protocol(PROTO_UDP);
        p.set_src_addr([10, 0, 0, 1]);
        p.set_dst_addr([10, 0, 0, 2]);
        p.set_ident(0x1234);
        p.set_fragment(frag_off, more);
        let pl = p.payload_mut();
        pl[0..2].copy_from_slice(&1111u16.to_be_bytes());
        pl[2..4].copy_from_slice(&2222u16.to_be_bytes());
        buf
    }

    #[test]
    fn unfragmented_udp_yields_full_tuple() {
        let buf = make_udp_packet(0, false);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        match classify_ipv4(&p).unwrap() {
            FlowKey::Tuple {
                tuple,
                first_fragment,
                ..
            } => {
                assert_eq!(tuple.src_port, 1111);
                assert_eq!(tuple.dst_port, 2222);
                assert_eq!(tuple.proto, Proto::Udp);
                assert!(!first_fragment);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn first_fragment_flagged_with_ipid() {
        let buf = make_udp_packet(0, true);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        match classify_ipv4(&p).unwrap() {
            FlowKey::Tuple {
                first_fragment,
                ipid,
                ..
            } => {
                assert!(first_fragment);
                assert_eq!(ipid, 0x1234);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_first_fragment_has_no_ports() {
        let buf = make_udp_packet(1480, true);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(
            classify_ipv4(&p).unwrap(),
            FlowKey::Fragment { ipid: 0x1234 }
        );
    }

    #[test]
    fn icmp_like_proto_gets_zero_ports() {
        let mut buf = make_udp_packet(0, false);
        {
            let mut p = Ipv4Packet::new_checked(&mut buf[..]).unwrap();
            p.set_protocol(1); // ICMP
        }
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        match classify_ipv4(&p).unwrap() {
            FlowKey::Tuple { tuple, .. } => {
                assert_eq!(tuple.proto, Proto::Other(1));
                assert_eq!(tuple.src_port, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncated_transport_header_errors() {
        let mut buf = [0u8; 22]; // 20 header + 2 payload
        buf[0] = 0x45;
        buf[2..4].copy_from_slice(&22u16.to_be_bytes());
        buf[9] = PROTO_UDP;
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(classify_ipv4(&p).err(), Some(WireError::Truncated));
    }

    #[test]
    fn hash_is_stable_and_sensitive() {
        let buf = make_udp_packet(0, false);
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        let t = match classify_ipv4(&p).unwrap() {
            FlowKey::Tuple { tuple, .. } => tuple,
            _ => unreachable!(),
        };
        assert_eq!(t.hash_u64(), t.hash_u64());
        let mut t2 = t;
        t2.src_port = 1112;
        assert_ne!(t.hash_u64(), t2.hash_u64());
    }

    #[test]
    fn proto_number_roundtrip() {
        for n in [0u8, 1, 6, 17, 89, 255] {
            assert_eq!(Proto::from_number(n).number(), n);
        }
    }
}
