//! TCP segments — the inner transport most tenant flows actually use
//! (the five-tuple's ports live in the same offsets as UDP's, which is
//! what the flow classifier relies on; this wrapper exposes the rest of
//! the header for tests, pcap tooling and richer simulations).

use crate::{read_u16, read_u32, write_u16, write_u32, Result, WireError};

mod field {
    pub const SRC_PORT: usize = 0;
    pub const DST_PORT: usize = 2;
    pub const SEQ: usize = 4;
    pub const ACK: usize = 8;
    pub const DATA_OFF_FLAGS: usize = 12;
    pub const WINDOW: usize = 14;
    pub const CHECKSUM: usize = 16;
    pub const URGENT: usize = 18;
}

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;

/// TCP flag bits (low byte of the offset/flags word).
pub mod flags {
    /// Final segment.
    pub const FIN: u8 = 0x01;
    /// Synchronize sequence numbers.
    pub const SYN: u8 = 0x02;
    /// Reset the connection.
    pub const RST: u8 = 0x04;
    /// Push buffered data.
    pub const PSH: u8 = 0x08;
    /// Acknowledgement field valid.
    pub const ACK: u8 = 0x10;
}

/// A typed wrapper over a TCP segment.
#[derive(Debug, Clone)]
pub struct TcpSegment<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> TcpSegment<T> {
    /// Wraps a buffer, validating the data offset against the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let buf = buffer.as_ref();
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let data_off = (buf[field::DATA_OFF_FLAGS] >> 4) as usize * 4;
        if data_off < HEADER_LEN {
            return Err(WireError::Malformed);
        }
        if data_off > buf.len() {
            return Err(WireError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Consumes the wrapper, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Source port.
    pub fn src_port(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::SRC_PORT)
    }

    /// Destination port.
    pub fn dst_port(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::DST_PORT)
    }

    /// Sequence number.
    pub fn seq(&self) -> u32 {
        read_u32(self.buffer.as_ref(), field::SEQ)
    }

    /// Acknowledgement number.
    pub fn ack(&self) -> u32 {
        read_u32(self.buffer.as_ref(), field::ACK)
    }

    /// Header length in bytes (data offset × 4).
    pub fn header_len(&self) -> usize {
        (self.buffer.as_ref()[field::DATA_OFF_FLAGS] >> 4) as usize * 4
    }

    /// Raw flag byte.
    pub fn flags(&self) -> u8 {
        self.buffer.as_ref()[field::DATA_OFF_FLAGS + 1]
    }

    /// Is a given flag set?
    pub fn has_flag(&self, f: u8) -> bool {
        self.flags() & f != 0
    }

    /// Receive window.
    pub fn window(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::WINDOW)
    }

    /// Checksum field (not validated — needs the pseudo-header).
    pub fn checksum(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::CHECKSUM)
    }

    /// Payload after the header (per the data offset).
    pub fn payload(&self) -> &[u8] {
        &self.buffer.as_ref()[self.header_len()..]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> TcpSegment<T> {
    /// Initializes a 20-byte header (data offset 5, flags clear).
    pub fn init(&mut self) {
        let buf = self.buffer.as_mut();
        buf[..HEADER_LEN].fill(0);
        buf[field::DATA_OFF_FLAGS] = 5 << 4;
    }

    /// Sets the source port.
    pub fn set_src_port(&mut self, p: u16) {
        write_u16(self.buffer.as_mut(), field::SRC_PORT, p);
    }

    /// Sets the destination port.
    pub fn set_dst_port(&mut self, p: u16) {
        write_u16(self.buffer.as_mut(), field::DST_PORT, p);
    }

    /// Sets the sequence number.
    pub fn set_seq(&mut self, s: u32) {
        write_u32(self.buffer.as_mut(), field::SEQ, s);
    }

    /// Sets the acknowledgement number.
    pub fn set_ack(&mut self, a: u32) {
        write_u32(self.buffer.as_mut(), field::ACK, a);
    }

    /// Sets the flag byte.
    pub fn set_flags(&mut self, f: u8) {
        self.buffer.as_mut()[field::DATA_OFF_FLAGS + 1] = f;
    }

    /// Sets the receive window.
    pub fn set_window(&mut self, w: u16) {
        write_u16(self.buffer.as_mut(), field::WINDOW, w);
    }

    /// Sets the urgent pointer (kept for completeness; MegaTE ignores
    /// it, as do most stacks).
    pub fn set_urgent(&mut self, u: u16) {
        write_u16(self.buffer.as_mut(), field::URGENT, u);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_all_fields() {
        let mut buf = [0u8; 28];
        let mut t = {
            buf[12] = 5 << 4;
            TcpSegment::new_checked(&mut buf[..]).unwrap()
        };
        t.init();
        t.set_src_port(443);
        t.set_dst_port(51_000);
        t.set_seq(0xDEADBEEF);
        t.set_ack(0x01020304);
        t.set_flags(flags::SYN | flags::ACK);
        t.set_window(65_000);
        assert_eq!(t.src_port(), 443);
        assert_eq!(t.dst_port(), 51_000);
        assert_eq!(t.seq(), 0xDEADBEEF);
        assert_eq!(t.ack(), 0x01020304);
        assert!(t.has_flag(flags::SYN) && t.has_flag(flags::ACK));
        assert!(!t.has_flag(flags::FIN));
        assert_eq!(t.window(), 65_000);
        assert_eq!(t.payload().len(), 8);
    }

    #[test]
    fn data_offset_validation() {
        let mut buf = [0u8; 20];
        buf[12] = 4 << 4; // 16-byte header: illegal
        assert_eq!(
            TcpSegment::new_checked(&buf[..]).err(),
            Some(WireError::Malformed)
        );
        buf[12] = 8 << 4; // 32-byte header but only 20 bytes present
        assert_eq!(
            TcpSegment::new_checked(&buf[..]).err(),
            Some(WireError::Truncated)
        );
        assert_eq!(
            TcpSegment::new_checked(&[0u8; 10][..]).err(),
            Some(WireError::Truncated)
        );
    }

    #[test]
    fn options_shift_payload() {
        let mut buf = [0u8; 28];
        buf[12] = 6 << 4; // 24-byte header (one option word)
        buf[24] = 0x99;
        let t = TcpSegment::new_checked(&buf[..]).unwrap();
        assert_eq!(t.header_len(), 24);
        assert_eq!(t.payload()[0], 0x99);
    }

    #[test]
    fn ports_align_with_udp_layout() {
        // The flow classifier reads ports at offsets 0..4 regardless of
        // transport; TCP must match.
        let mut buf = [0u8; 20];
        buf[12] = 5 << 4;
        let mut t = TcpSegment::new_checked(&mut buf[..]).unwrap();
        t.set_src_port(0x1234);
        t.set_dst_port(0x5678);
        let raw = t.into_inner();
        assert_eq!(crate::read_u16(raw, 0), 0x1234);
        assert_eq!(crate::read_u16(raw, 2), 0x5678);
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            if let Ok(t) = TcpSegment::new_checked(&data[..]) {
                let _ = (t.src_port(), t.seq(), t.ack(), t.flags(), t.payload().len());
            }
        }
    }
}
