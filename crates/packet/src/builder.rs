//! Building and parsing complete MegaTE-encapsulated frames.
//!
//! Layout (Figure 7(a), plus the SR insertion of §5.2):
//!
//! ```text
//! outer Eth | outer IPv4 | UDP(4789) | VXLAN | [MegaTE SR] | inner Eth | inner IPv4 | L4 + payload
//! ```
//!
//! The builder emits what the host's TC-layer eBPF program would put on
//! the wire; the parser is what WAN routers and the receive path use.

use crate::ethernet::{EthernetFrame, ETHERTYPE_IPV4, HEADER_LEN as ETH_LEN};
use crate::fivetuple::{classify_ipv4, FiveTuple, FlowKey};
use crate::ipv4::{Ipv4Packet, HEADER_LEN as IP_LEN};
use crate::srheader::{len_for_hops, SrHeader};
use crate::udp::{UdpDatagram, HEADER_LEN as UDP_LEN, VXLAN_PORT};
use crate::vxlan::{VxlanHeader, HEADER_LEN as VXLAN_LEN};
use crate::{Result, WireError};

/// Everything needed to build one encapsulated frame.
#[derive(Debug, Clone)]
pub struct MegaTeFrameSpec {
    /// Outer (underlay) source IP — the source host's address.
    pub outer_src_ip: [u8; 4],
    /// Outer destination IP — the destination host's address.
    pub outer_dst_ip: [u8; 4],
    /// VXLAN network identifier of the tenant.
    pub vni: u32,
    /// Inner five-tuple of the tenant flow.
    pub inner: FiveTuple,
    /// Inner IP identification (for fragmentation tests).
    pub inner_ipid: u16,
    /// Inner fragmentation: `(offset_bytes, more_fragments)`.
    pub inner_fragment: (u16, bool),
    /// Inner L4 payload length in bytes.
    pub payload_len: usize,
    /// SR hop list; `None` builds a plain VXLAN frame (conventional TE).
    pub sr_hops: Option<Vec<u32>>,
}

impl MegaTeFrameSpec {
    /// A minimal spec for tests and examples.
    pub fn simple(inner: FiveTuple, vni: u32, sr_hops: Option<Vec<u32>>) -> Self {
        Self {
            outer_src_ip: [192, 168, 0, 1],
            outer_dst_ip: [192, 168, 0, 2],
            vni,
            inner,
            inner_ipid: 0,
            inner_fragment: (0, false),
            payload_len: 64,
            sr_hops,
        }
    }

    /// Builds the full frame bytes.
    pub fn build(&self) -> Vec<u8> {
        let sr_len = self.sr_hops.as_ref().map_or(0, |h| len_for_hops(h.len()));
        let inner_l4_len = UDP_LEN + self.payload_len;
        let inner_ip_len = IP_LEN + inner_l4_len;
        let inner_len = ETH_LEN + inner_ip_len;
        let udp_payload_len = VXLAN_LEN + sr_len + inner_len;
        let outer_ip_len = IP_LEN + UDP_LEN + udp_payload_len;
        let total = ETH_LEN + outer_ip_len;
        let mut buf = vec![0u8; total];

        // Outer Ethernet.
        {
            let mut eth = EthernetFrame::new_checked(&mut buf[..]).expect("sized");
            eth.set_dst_addr([0x02, 0, 0, 0, 0, 2]);
            eth.set_src_addr([0x02, 0, 0, 0, 0, 1]);
            eth.set_ethertype(ETHERTYPE_IPV4);
        }
        // Outer IPv4.
        let ip_start = ETH_LEN;
        {
            let seg = &mut buf[ip_start..];
            seg[0] = 0x45;
            seg[2..4].copy_from_slice(&(outer_ip_len as u16).to_be_bytes());
            let mut ip = Ipv4Packet::new_checked(seg).expect("sized");
            ip.set_ttl(64);
            ip.set_protocol(crate::ipv4::PROTO_UDP);
            ip.set_src_addr(self.outer_src_ip);
            ip.set_dst_addr(self.outer_dst_ip);
            ip.set_fragment(0, false);
            ip.fill_checksum();
        }
        // Outer UDP.
        let udp_start = ip_start + IP_LEN;
        {
            let seg = &mut buf[udp_start..];
            seg[4..6].copy_from_slice(&((UDP_LEN + udp_payload_len) as u16).to_be_bytes());
            let mut udp = UdpDatagram::new_checked(seg).expect("sized");
            // Entropy source port derived from the inner tuple, like
            // real VXLAN encapsulators.
            udp.set_src_port(0xC000 | (self.inner.hash_u64() as u16 & 0x3FFF));
            udp.set_dst_port(VXLAN_PORT);
            udp.set_checksum(0);
        }
        // VXLAN.
        let vxlan_start = udp_start + UDP_LEN;
        {
            let mut vx = VxlanHeader::new_checked(&mut buf[vxlan_start..]).expect("sized");
            vx.init(self.vni);
            vx.set_megate_sr(self.sr_hops.is_some());
        }
        // SR header.
        let mut inner_start = vxlan_start + VXLAN_LEN;
        if let Some(hops) = &self.sr_hops {
            let mut sr = SrHeader::new_checked(&mut buf[inner_start..]).expect("sized");
            sr.init(hops);
            inner_start += sr_len;
        }
        // Inner Ethernet.
        {
            let mut eth = EthernetFrame::new_checked(&mut buf[inner_start..]).expect("sized");
            eth.set_dst_addr([0x06, 0, 0, 0, 0, 2]);
            eth.set_src_addr([0x06, 0, 0, 0, 0, 1]);
            eth.set_ethertype(ETHERTYPE_IPV4);
        }
        // Inner IPv4 + L4.
        let inner_ip_start = inner_start + ETH_LEN;
        {
            let seg = &mut buf[inner_ip_start..];
            seg[0] = 0x45;
            seg[2..4].copy_from_slice(&(inner_ip_len as u16).to_be_bytes());
            let mut ip = Ipv4Packet::new_checked(seg).expect("sized");
            ip.set_ttl(64);
            ip.set_protocol(self.inner.proto.number());
            ip.set_src_addr(self.inner.src_ip);
            ip.set_dst_addr(self.inner.dst_ip);
            ip.set_ident(self.inner_ipid);
            ip.set_fragment(self.inner_fragment.0, self.inner_fragment.1);
            ip.fill_checksum();
            // Ports live in the first 4 bytes of both TCP and UDP, and a
            // non-first fragment has no transport header at all.
            if self.inner_fragment.0 == 0 {
                let pl = ip.payload_mut();
                pl[0..2].copy_from_slice(&self.inner.src_port.to_be_bytes());
                pl[2..4].copy_from_slice(&self.inner.dst_port.to_be_bytes());
                if self.inner.proto == crate::fivetuple::Proto::Udp {
                    pl[4..6].copy_from_slice(&(inner_l4_len as u16).to_be_bytes());
                }
            }
        }
        buf
    }
}

/// The interesting parts of a parsed MegaTE frame.
#[derive(Debug, Clone)]
pub struct ParsedFrame {
    /// Outer IP source (underlay).
    pub outer_src_ip: [u8; 4],
    /// Outer IP destination (underlay).
    pub outer_dst_ip: [u8; 4],
    /// VXLAN network identifier.
    pub vni: u32,
    /// SR state when the MegaTE flag was set: `(offset, hops)`.
    pub sr: Option<(u8, Vec<u32>)>,
    /// Byte offset of the SR header within the frame (for in-place
    /// mutation by routers); `None` without the flag.
    pub sr_byte_offset: Option<usize>,
    /// Flow key of the inner packet.
    pub inner_flow: FlowKey,
    /// Inner IPv4 total length (what flow accounting bills).
    pub inner_ip_len: u16,
    /// Total frame length on the wire.
    pub frame_len: usize,
}

/// Parses a full frame built by [`MegaTeFrameSpec::build`] (or any
/// VXLAN/UDP/IPv4 frame). Never panics on malformed input.
pub fn parse_megate_frame(frame: &[u8]) -> Result<ParsedFrame> {
    let eth = EthernetFrame::new_checked(frame)?;
    if eth.ethertype() != ETHERTYPE_IPV4 {
        return Err(WireError::Malformed);
    }
    let ip = Ipv4Packet::new_checked(eth.payload())?;
    if ip.protocol() != crate::ipv4::PROTO_UDP {
        return Err(WireError::Malformed);
    }
    let outer_src_ip = ip.src_addr();
    let outer_dst_ip = ip.dst_addr();
    let ip_header_len = ip.header_len();
    let udp = UdpDatagram::new_checked(ip.payload())?;
    if udp.dst_port() != VXLAN_PORT {
        return Err(WireError::Malformed);
    }
    let vxlan = VxlanHeader::new_checked(udp.payload())?;
    if !vxlan.vni_present() {
        return Err(WireError::Malformed);
    }
    let vni = vxlan.vni();

    let vxlan_payload_start = ETH_LEN + ip_header_len + UDP_LEN + crate::vxlan::HEADER_LEN;
    type SrParts<'a> = (Option<(u8, Vec<u32>)>, Option<usize>, &'a [u8]);
    let (sr, sr_byte_offset, inner_bytes): SrParts = if vxlan.has_megate_sr() {
        let sr = SrHeader::new_checked(vxlan.payload())?;
        let hl = sr.header_len();
        (
            Some((sr.offset(), sr.hops())),
            Some(vxlan_payload_start),
            &vxlan.payload()[hl..],
        )
    } else {
        (None, None, vxlan.payload())
    };

    let inner_eth = EthernetFrame::new_checked(inner_bytes)?;
    if inner_eth.ethertype() != ETHERTYPE_IPV4 {
        return Err(WireError::Malformed);
    }
    let inner_ip = Ipv4Packet::new_checked(inner_eth.payload())?;
    let inner_flow = classify_ipv4(&inner_ip)?;

    Ok(ParsedFrame {
        outer_src_ip,
        outer_dst_ip,
        vni,
        sr,
        sr_byte_offset,
        inner_flow,
        inner_ip_len: inner_ip.total_len(),
        frame_len: frame.len(),
    })
}

/// Advances the SR offset of a frame in place (what a WAN router does
/// after choosing the next hop). Errors when the frame carries no SR
/// header or the path is exhausted.
pub fn advance_sr_offset(frame: &mut [u8]) -> Result<()> {
    let parsed = parse_megate_frame(frame)?;
    let at = parsed.sr_byte_offset.ok_or(WireError::Malformed)?;
    let mut sr = SrHeader::new_checked(&mut frame[at..])?;
    if sr.current_hop().is_none() {
        return Err(WireError::Malformed);
    }
    sr.advance();
    Ok(())
}

/// Inserts a MegaTE SR header into a plain VXLAN frame in place (what
/// the TC-layer eBPF program does on egress, §5.2): splice the SR bytes
/// after the VXLAN header, set the VXLAN reserved-field flag, and fix
/// the outer IP/UDP lengths and the IP checksum.
///
/// Errors if the frame is not a well-formed VXLAN frame or already
/// carries an SR header.
pub fn insert_sr_header(frame: &mut Vec<u8>, hops: &[u32]) -> Result<()> {
    let parsed = parse_megate_frame(frame)?;
    if parsed.sr.is_some() {
        return Err(WireError::Malformed);
    }
    if hops.len() > crate::srheader::MAX_HOPS {
        return Err(WireError::Malformed);
    }
    // Recompute the outer header geometry.
    let eth = EthernetFrame::new_checked(&frame[..])?;
    let ip = Ipv4Packet::new_checked(eth.payload())?;
    let ip_header_len = ip.header_len();
    let sr_at = ETH_LEN + ip_header_len + UDP_LEN + crate::vxlan::HEADER_LEN;
    let sr_len = len_for_hops(hops.len());

    // Splice in zeroed SR bytes, then initialize them.
    frame.splice(sr_at..sr_at, std::iter::repeat_n(0u8, sr_len));
    {
        let mut sr = SrHeader::new_checked(&mut frame[sr_at..])?;
        sr.init(hops);
    }
    // Set the VXLAN flag.
    {
        let vxlan_at = ETH_LEN + ip_header_len + UDP_LEN;
        let mut vx = VxlanHeader::new_checked(&mut frame[vxlan_at..])?;
        vx.set_megate_sr(true);
    }
    // Fix outer UDP length.
    {
        let udp_at = ETH_LEN + ip_header_len;
        let mut udp = UdpDatagram::new_checked(&mut frame[udp_at..])?;
        let new_len = udp.len() + sr_len as u16;
        udp.set_len(new_len);
    }
    // Fix outer IP total length + checksum.
    {
        let seg = &mut frame[ETH_LEN..];
        let new_total = read_total_len(seg) + sr_len as u16;
        seg[2..4].copy_from_slice(&new_total.to_be_bytes());
        let mut ip = Ipv4Packet::new_checked(seg)?;
        ip.fill_checksum();
    }
    Ok(())
}

/// Removes the MegaTE SR header from a frame in place (the destination
/// host's receive path, restoring a standard VXLAN frame for the guest).
pub fn strip_sr_header(frame: &mut Vec<u8>) -> Result<()> {
    let parsed = parse_megate_frame(frame)?;
    let sr_at = parsed.sr_byte_offset.ok_or(WireError::Malformed)?;
    let sr_len = {
        let sr = SrHeader::new_checked(&frame[sr_at..])?;
        sr.header_len()
    };
    let ip_header_len = {
        let eth = EthernetFrame::new_checked(&frame[..])?;
        Ipv4Packet::new_checked(eth.payload())?.header_len()
    };
    frame.drain(sr_at..sr_at + sr_len);
    // Patch the outer IP total length first so the checked wrappers
    // below see a consistent buffer again.
    {
        let seg = &mut frame[ETH_LEN..];
        let new_total = read_total_len(seg) - sr_len as u16;
        seg[2..4].copy_from_slice(&new_total.to_be_bytes());
    }
    {
        let vxlan_at = ETH_LEN + ip_header_len + UDP_LEN;
        let mut vx = VxlanHeader::new_checked(&mut frame[vxlan_at..])?;
        vx.set_megate_sr(false);
    }
    {
        // Patch the UDP length raw: the checked wrapper would reject the
        // stale (too-long) declared length against the shrunk buffer.
        let len_at = ETH_LEN + ip_header_len + 4;
        let old = u16::from_be_bytes([frame[len_at], frame[len_at + 1]]);
        frame[len_at..len_at + 2].copy_from_slice(&(old - sr_len as u16).to_be_bytes());
    }
    {
        let mut ip = Ipv4Packet::new_checked(&mut frame[ETH_LEN..])?;
        ip.fill_checksum();
    }
    Ok(())
}

fn read_total_len(ip_bytes: &[u8]) -> u16 {
    u16::from_be_bytes([ip_bytes[2], ip_bytes[3]])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fivetuple::Proto;
    use proptest::prelude::*;

    fn tuple() -> FiveTuple {
        FiveTuple {
            src_ip: [10, 1, 0, 5],
            dst_ip: [10, 2, 0, 9],
            proto: Proto::Udp,
            src_port: 5555,
            dst_port: 80,
        }
    }

    #[test]
    fn build_parse_roundtrip_with_sr() {
        let spec = MegaTeFrameSpec::simple(tuple(), 77, Some(vec![3, 1, 4, 1, 5]));
        let frame = spec.build();
        let p = parse_megate_frame(&frame).unwrap();
        assert_eq!(p.vni, 77);
        let (off, hops) = p.sr.expect("SR present");
        assert_eq!(off, 0);
        assert_eq!(hops, vec![3, 1, 4, 1, 5]);
        match p.inner_flow {
            FlowKey::Tuple { tuple: t, .. } => assert_eq!(t, tuple()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn build_parse_roundtrip_without_sr() {
        let spec = MegaTeFrameSpec::simple(tuple(), 9, None);
        let frame = spec.build();
        let p = parse_megate_frame(&frame).unwrap();
        assert!(p.sr.is_none());
        assert!(p.sr_byte_offset.is_none());
        assert_eq!(p.vni, 9);
    }

    #[test]
    fn advance_walks_the_path_in_place() {
        let spec = MegaTeFrameSpec::simple(tuple(), 1, Some(vec![8, 9]));
        let mut frame = spec.build();
        advance_sr_offset(&mut frame).unwrap();
        let p = parse_megate_frame(&frame).unwrap();
        assert_eq!(p.sr.unwrap().0, 1);
        advance_sr_offset(&mut frame).unwrap();
        let p = parse_megate_frame(&frame).unwrap();
        assert_eq!(p.sr.unwrap().0, 2);
        // Path exhausted.
        assert_eq!(
            advance_sr_offset(&mut frame).err(),
            Some(WireError::Malformed)
        );
    }

    #[test]
    fn advance_without_sr_errors() {
        let mut frame = MegaTeFrameSpec::simple(tuple(), 1, None).build();
        assert_eq!(
            advance_sr_offset(&mut frame).err(),
            Some(WireError::Malformed)
        );
    }

    #[test]
    fn fragmented_inner_classified_as_fragment() {
        let mut spec = MegaTeFrameSpec::simple(tuple(), 2, Some(vec![1]));
        spec.inner_ipid = 0x4242;
        spec.inner_fragment = (1480, true);
        let frame = spec.build();
        let p = parse_megate_frame(&frame).unwrap();
        assert_eq!(p.inner_flow, FlowKey::Fragment { ipid: 0x4242 });
    }

    #[test]
    fn first_fragment_keeps_ports_and_flags() {
        let mut spec = MegaTeFrameSpec::simple(tuple(), 2, None);
        spec.inner_ipid = 7;
        spec.inner_fragment = (0, true);
        let frame = spec.build();
        let p = parse_megate_frame(&frame).unwrap();
        match p.inner_flow {
            FlowKey::Tuple {
                first_fragment,
                ipid,
                tuple: t,
            } => {
                assert!(first_fragment);
                assert_eq!(ipid, 7);
                assert_eq!(t.dst_port, 80);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let frame = MegaTeFrameSpec::simple(tuple(), 3, Some(vec![1, 2, 3])).build();
        for cut in 0..frame.len() {
            let _ = parse_megate_frame(&frame[..cut]); // must not panic
        }
    }

    #[test]
    fn non_vxlan_udp_rejected() {
        let mut frame = MegaTeFrameSpec::simple(tuple(), 3, None).build();
        // Overwrite the UDP destination port.
        let off = ETH_LEN + IP_LEN + 2;
        frame[off..off + 2].copy_from_slice(&53u16.to_be_bytes());
        assert_eq!(parse_megate_frame(&frame).err(), Some(WireError::Malformed));
    }

    #[test]
    fn insert_sr_matches_built_frame() {
        let hops = vec![4u32, 7, 2];
        let built = MegaTeFrameSpec::simple(tuple(), 5, Some(hops.clone())).build();
        let mut plain = MegaTeFrameSpec::simple(tuple(), 5, None).build();
        insert_sr_header(&mut plain, &hops).unwrap();
        assert_eq!(plain, built, "in-place insertion must equal direct build");
    }

    #[test]
    fn insert_then_strip_restores_plain_frame() {
        let plain = MegaTeFrameSpec::simple(tuple(), 6, None).build();
        let mut f = plain.clone();
        insert_sr_header(&mut f, &[9, 9, 9]).unwrap();
        assert_ne!(f, plain);
        strip_sr_header(&mut f).unwrap();
        assert_eq!(f, plain);
    }

    #[test]
    fn double_insert_rejected() {
        let mut f = MegaTeFrameSpec::simple(tuple(), 6, None).build();
        insert_sr_header(&mut f, &[1]).unwrap();
        assert_eq!(
            insert_sr_header(&mut f, &[2]).err(),
            Some(WireError::Malformed)
        );
    }

    #[test]
    fn strip_without_sr_rejected() {
        let mut f = MegaTeFrameSpec::simple(tuple(), 6, None).build();
        assert_eq!(strip_sr_header(&mut f).err(), Some(WireError::Malformed));
    }

    #[test]
    fn inserted_frame_has_valid_outer_checksum() {
        let mut f = MegaTeFrameSpec::simple(tuple(), 6, None).build();
        insert_sr_header(&mut f, &[1, 2]).unwrap();
        let eth = EthernetFrame::new_checked(&f[..]).unwrap();
        let ip = Ipv4Packet::new_checked(eth.payload()).unwrap();
        assert!(ip.verify_checksum());
        assert_eq!(ip.total_len() as usize, f.len() - ETH_LEN);
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = parse_megate_frame(&data);
        }

        #[test]
        fn insert_strip_roundtrip_arbitrary(
            hops in proptest::collection::vec(any::<u32>(), 0..16),
            vni in 0u32..(1 << 24),
        ) {
            let plain = MegaTeFrameSpec::simple(tuple(), vni, None).build();
            let mut f = plain.clone();
            insert_sr_header(&mut f, &hops).unwrap();
            let p = parse_megate_frame(&f).unwrap();
            prop_assert_eq!(p.sr.unwrap().1, hops);
            strip_sr_header(&mut f).unwrap();
            prop_assert_eq!(f, plain);
        }

        #[test]
        fn roundtrip_arbitrary_specs(
            vni in 0u32..(1 << 24),
            hops in proptest::collection::vec(any::<u32>(), 0..12),
            src_port in any::<u16>(),
            payload_len in 0usize..256,
            with_sr in any::<bool>(),
        ) {
            let mut t = tuple();
            t.src_port = src_port;
            let mut spec =
                MegaTeFrameSpec::simple(t, vni, with_sr.then(|| hops.clone()));
            spec.payload_len = payload_len;
            let frame = spec.build();
            let p = parse_megate_frame(&frame).unwrap();
            prop_assert_eq!(p.vni, vni);
            prop_assert_eq!(p.sr.is_some(), with_sr);
            if let Some((off, parsed_hops)) = p.sr {
                prop_assert_eq!(off, 0);
                prop_assert_eq!(parsed_hops, hops);
            }
            match p.inner_flow {
                FlowKey::Tuple { tuple: inner, .. } => {
                    prop_assert_eq!(inner.src_port, src_port);
                }
                other => prop_assert!(false, "unexpected {:?}", other),
            }
        }
    }
}
