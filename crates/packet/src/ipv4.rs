//! IPv4 packets, including the fragmentation fields MegaTE's flow
//! collector relies on (§5.1): fragments of one datagram share an
//! `identification` (*ipid*); only the first fragment carries the
//! transport header, so follow-on fragments are attributed to their
//! five-tuple via the `frag_map`.

use crate::{read_u16, write_u16, Result, WireError};

mod field {
    pub const VER_IHL: usize = 0;
    pub const TOTAL_LEN: usize = 2;
    pub const IDENT: usize = 4;
    pub const FLAGS_FRAG: usize = 6;
    pub const TTL: usize = 8;
    pub const PROTOCOL: usize = 9;
    pub const CHECKSUM: usize = 10;
    pub const SRC: core::ops::Range<usize> = 12..16;
    pub const DST: core::ops::Range<usize> = 16..20;
}

/// Minimum (and, without options, only) IPv4 header length we emit.
pub const HEADER_LEN: usize = 20;

/// "More fragments" flag bit.
const MF_BIT: u16 = 0x2000;
/// "Don't fragment" flag bit.
const DF_BIT: u16 = 0x4000;

/// IP protocol number for UDP.
pub const PROTO_UDP: u8 = 17;
/// IP protocol number for TCP.
pub const PROTO_TCP: u8 = 6;

/// A typed wrapper over an IPv4 packet.
#[derive(Debug, Clone)]
pub struct Ipv4Packet<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> Ipv4Packet<T> {
    /// Wraps a buffer, verifying version, IHL, and that the declared
    /// total length fits the buffer.
    pub fn new_checked(buffer: T) -> Result<Self> {
        let buf = buffer.as_ref();
        if buf.len() < HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let ver = buf[field::VER_IHL] >> 4;
        let ihl = (buf[field::VER_IHL] & 0x0f) as usize * 4;
        if ver != 4 || ihl < HEADER_LEN {
            return Err(WireError::Malformed);
        }
        let total = read_u16(buf, field::TOTAL_LEN) as usize;
        if total < ihl || total > buf.len() {
            return Err(WireError::Truncated);
        }
        Ok(Self { buffer })
    }

    /// Consumes the wrapper, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Header length in bytes (IHL × 4).
    pub fn header_len(&self) -> usize {
        (self.buffer.as_ref()[field::VER_IHL] & 0x0f) as usize * 4
    }

    /// Declared total length (header + payload).
    pub fn total_len(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::TOTAL_LEN)
    }

    /// Identification (*ipid*) — shared by all fragments of a datagram.
    pub fn ident(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::IDENT)
    }

    /// "More fragments" flag.
    pub fn more_fragments(&self) -> bool {
        read_u16(self.buffer.as_ref(), field::FLAGS_FRAG) & MF_BIT != 0
    }

    /// "Don't fragment" flag.
    pub fn dont_fragment(&self) -> bool {
        read_u16(self.buffer.as_ref(), field::FLAGS_FRAG) & DF_BIT != 0
    }

    /// Fragment offset in bytes.
    pub fn frag_offset(&self) -> u16 {
        (read_u16(self.buffer.as_ref(), field::FLAGS_FRAG) & 0x1fff) * 8
    }

    /// True if this packet is any fragment of a fragmented datagram.
    pub fn is_fragment(&self) -> bool {
        self.more_fragments() || self.frag_offset() > 0
    }

    /// True if this is the first fragment (offset 0, more to come).
    pub fn is_first_fragment(&self) -> bool {
        self.more_fragments() && self.frag_offset() == 0
    }

    /// Time-to-live.
    pub fn ttl(&self) -> u8 {
        self.buffer.as_ref()[field::TTL]
    }

    /// Transport protocol number.
    pub fn protocol(&self) -> u8 {
        self.buffer.as_ref()[field::PROTOCOL]
    }

    /// Header checksum field.
    pub fn checksum(&self) -> u16 {
        read_u16(self.buffer.as_ref(), field::CHECKSUM)
    }

    /// Source address.
    pub fn src_addr(&self) -> [u8; 4] {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.buffer.as_ref()[field::SRC]);
        a
    }

    /// Destination address.
    pub fn dst_addr(&self) -> [u8; 4] {
        let mut a = [0u8; 4];
        a.copy_from_slice(&self.buffer.as_ref()[field::DST]);
        a
    }

    /// Recomputes the header checksum and compares with the stored one.
    pub fn verify_checksum(&self) -> bool {
        checksum(&self.buffer.as_ref()[..self.header_len()]) == 0
    }

    /// Payload (respects the declared total length).
    pub fn payload(&self) -> &[u8] {
        let hl = self.header_len();
        let total = self.total_len() as usize;
        &self.buffer.as_ref()[hl..total]
    }
}

impl<T: AsRef<[u8]> + AsMut<[u8]>> Ipv4Packet<T> {
    /// Initializes version/IHL for a 20-byte header.
    pub fn init(&mut self) {
        self.buffer.as_mut()[field::VER_IHL] = 0x45;
    }

    /// Sets the declared total length.
    pub fn set_total_len(&mut self, len: u16) {
        write_u16(self.buffer.as_mut(), field::TOTAL_LEN, len);
    }

    /// Sets the identification (*ipid*).
    pub fn set_ident(&mut self, id: u16) {
        write_u16(self.buffer.as_mut(), field::IDENT, id);
    }

    /// Sets fragmentation state: byte offset (multiple of 8) and the
    /// "more fragments" flag.
    pub fn set_fragment(&mut self, offset_bytes: u16, more: bool) {
        assert_eq!(offset_bytes % 8, 0, "fragment offset must be 8-aligned");
        let mut v = offset_bytes / 8;
        if more {
            v |= MF_BIT;
        }
        write_u16(self.buffer.as_mut(), field::FLAGS_FRAG, v);
    }

    /// Sets TTL.
    pub fn set_ttl(&mut self, ttl: u8) {
        self.buffer.as_mut()[field::TTL] = ttl;
    }

    /// Sets the transport protocol.
    pub fn set_protocol(&mut self, proto: u8) {
        self.buffer.as_mut()[field::PROTOCOL] = proto;
    }

    /// Sets source address.
    pub fn set_src_addr(&mut self, a: [u8; 4]) {
        self.buffer.as_mut()[field::SRC].copy_from_slice(&a);
    }

    /// Sets destination address.
    pub fn set_dst_addr(&mut self, a: [u8; 4]) {
        self.buffer.as_mut()[field::DST].copy_from_slice(&a);
    }

    /// Computes and stores the header checksum.
    pub fn fill_checksum(&mut self) {
        write_u16(self.buffer.as_mut(), field::CHECKSUM, 0);
        let hl = self.header_len();
        let sum = checksum(&self.buffer.as_ref()[..hl]);
        write_u16(self.buffer.as_mut(), field::CHECKSUM, sum);
    }

    /// Mutable payload (respects the declared total length).
    pub fn payload_mut(&mut self) -> &mut [u8] {
        let hl = self.header_len();
        let total = self.total_len() as usize;
        &mut self.buffer.as_mut()[hl..total]
    }
}

/// RFC 1071 Internet checksum over `data` (assumed even-length padding
/// handled by caller; IPv4 headers are always a multiple of 4 bytes).
fn checksum(data: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = data.chunks_exact(2);
    for c in &mut chunks {
        sum += u16::from_be_bytes([c[0], c[1]]) as u32;
    }
    if let [last] = chunks.remainder() {
        sum += (*last as u32) << 8;
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn fresh(len: usize) -> Vec<u8> {
        let mut buf = vec![0u8; len];
        buf[0] = 0x45;
        buf[2..4].copy_from_slice(&(len as u16).to_be_bytes());
        buf
    }

    #[test]
    fn roundtrip_all_fields() {
        let mut buf = fresh(40);
        let mut p = Ipv4Packet::new_checked(&mut buf[..]).unwrap();
        p.set_ident(0xBEEF);
        p.set_ttl(63);
        p.set_protocol(PROTO_UDP);
        p.set_src_addr([10, 0, 0, 1]);
        p.set_dst_addr([10, 0, 0, 2]);
        p.set_fragment(0, false);
        p.fill_checksum();
        assert_eq!(p.ident(), 0xBEEF);
        assert_eq!(p.ttl(), 63);
        assert_eq!(p.protocol(), PROTO_UDP);
        assert_eq!(p.src_addr(), [10, 0, 0, 1]);
        assert_eq!(p.dst_addr(), [10, 0, 0, 2]);
        assert!(!p.is_fragment());
        assert!(p.verify_checksum());
    }

    #[test]
    fn fragment_flags_and_offsets() {
        let mut buf = fresh(40);
        let mut p = Ipv4Packet::new_checked(&mut buf[..]).unwrap();
        p.set_fragment(0, true);
        assert!(p.is_first_fragment());
        assert!(p.is_fragment());
        p.set_fragment(1480, true);
        assert_eq!(p.frag_offset(), 1480);
        assert!(!p.is_first_fragment());
        p.set_fragment(2960, false);
        assert!(p.is_fragment()); // last fragment: offset > 0, MF clear
        assert!(!p.more_fragments());
    }

    #[test]
    fn corrupting_header_breaks_checksum() {
        let mut buf = fresh(20);
        let mut p = Ipv4Packet::new_checked(&mut buf[..]).unwrap();
        p.set_src_addr([1, 2, 3, 4]);
        p.fill_checksum();
        assert!(p.verify_checksum());
        let inner = p.into_inner();
        inner[15] ^= 0xFF;
        let p = Ipv4Packet::new_checked(&inner[..]).unwrap();
        assert!(!p.verify_checksum());
    }

    #[test]
    fn rejects_wrong_version_and_short_buffers() {
        assert_eq!(
            Ipv4Packet::new_checked(&[0u8; 10][..]).err(),
            Some(WireError::Truncated)
        );
        let mut buf = fresh(20);
        buf[0] = 0x65; // IPv6 version nibble
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).err(),
            Some(WireError::Malformed)
        );
        let mut buf = fresh(20);
        buf[0] = 0x41; // IHL = 4 -> 16 bytes < minimum
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).err(),
            Some(WireError::Malformed)
        );
    }

    #[test]
    fn rejects_total_len_beyond_buffer() {
        let mut buf = fresh(20);
        buf[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert_eq!(
            Ipv4Packet::new_checked(&buf[..]).err(),
            Some(WireError::Truncated)
        );
    }

    #[test]
    fn payload_respects_total_len() {
        let mut buf = fresh(30);
        buf[2..4].copy_from_slice(&25u16.to_be_bytes());
        buf[24] = 0x77;
        let p = Ipv4Packet::new_checked(&buf[..]).unwrap();
        assert_eq!(p.payload().len(), 5);
        assert_eq!(p.payload()[4], 0x77);
    }

    #[test]
    #[should_panic(expected = "8-aligned")]
    fn unaligned_fragment_offset_panics() {
        let mut buf = fresh(20);
        let mut p = Ipv4Packet::new_checked(&mut buf[..]).unwrap();
        p.set_fragment(100, false);
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
            if let Ok(p) = Ipv4Packet::new_checked(&data[..]) {
                // Accessors must be safe on any accepted buffer.
                let _ = (p.ident(), p.ttl(), p.protocol(), p.frag_offset());
                let _ = (p.payload().len(), p.verify_checksum());
            }
        }

        #[test]
        fn checksum_roundtrip(src in any::<[u8; 4]>(), dst in any::<[u8; 4]>(),
                              id in any::<u16>(), ttl in any::<u8>()) {
            let mut buf = fresh(20);
            let mut p = Ipv4Packet::new_checked(&mut buf[..]).unwrap();
            p.set_src_addr(src);
            p.set_dst_addr(dst);
            p.set_ident(id);
            p.set_ttl(ttl);
            p.fill_checksum();
            prop_assert!(p.verify_checksum());
        }
    }
}
