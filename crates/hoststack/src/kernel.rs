//! The simulated kernel: hook points and event dispatch.
//!
//! [`SimKernel`] stands in for the Linux kernel of one end host. It
//! fires the same three hooks the paper attaches eBPF programs to, with
//! the same event payloads, and runs the programs in
//! [`crate::programs`] against shared [`crate::maps::EbpfMap`]s.

use crate::maps::MapError;
use crate::programs::{self, HostMaps};
use megate_packet::WireError;
use std::fmt;

/// A process identifier on the simulated host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u32);

/// A virtual instance (container/VM) identifier — the paper's `ins_id`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct InstanceId(pub u64);

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ins{}", self.0)
    }
}

/// Events observable from the kernel (for tests and tracing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelEvent {
    /// `sys_enter_execve` fired for a process of an instance.
    Execve {
        /// The process that called execve.
        pid: Pid,
        /// The instance that owns it.
        instance: InstanceId,
    },
    /// `ctnetlink_conntrack_event` fired for a new connection.
    Conntrack {
        /// The process that opened the connection.
        pid: Pid,
    },
    /// A frame traversed the TC egress hook.
    TcEgress {
        /// Outcome of the egress program chain.
        verdict: TcVerdict,
    },
}

/// Outcome of the TC egress program chain for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TcVerdict {
    /// Frame passed unchanged (no path installed / not attributable).
    Pass,
    /// Frame passed with a MegaTE SR header inserted.
    PassWithSr,
    /// Frame was not a parseable VXLAN frame; passed untouched.
    NotVxlan,
}

/// Per-host counters the TC programs maintain.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TcStats {
    /// Frames seen at egress.
    pub frames: u64,
    /// Frames that received an SR header.
    pub sr_inserted: u64,
    /// Frames attributed to an instance (inf_map hit).
    pub attributed: u64,
    /// Non-first fragments resolved via frag_map.
    pub fragments_resolved: u64,
    /// Map-full or lookup-miss events (accounting dropped, frame still
    /// forwarded — eBPF programs never drop on map pressure here).
    pub accounting_misses: u64,
}

/// The simulated kernel of one end host.
///
/// ```
/// use megate_hoststack::{SimKernel, InstanceId, Pid, TcVerdict};
/// use megate_packet::{FiveTuple, MegaTeFrameSpec, Proto};
///
/// let kernel = SimKernel::new();
/// let tuple = FiveTuple {
///     src_ip: [10, 0, 0, 1], dst_ip: [10, 0, 0, 2],
///     proto: Proto::Udp, src_port: 5000, dst_port: 443,
/// };
/// kernel.spawn_process(InstanceId(7), Pid(100)).unwrap();   // execve hook
/// kernel.open_connection(Pid(100), tuple).unwrap();         // conntrack hook
/// kernel.maps().path_map.update((InstanceId(7), tuple.dst_ip), vec![3, 9]).unwrap();
///
/// let mut frame = MegaTeFrameSpec::simple(tuple, 1, None).build();
/// assert_eq!(kernel.tc_egress(&mut frame), TcVerdict::PassWithSr);
/// ```
#[derive(Debug, Clone)]
pub struct SimKernel {
    maps: HostMaps,
    stats: std::sync::Arc<parking_lot::Mutex<TcStats>>,
}

impl Default for SimKernel {
    fn default() -> Self {
        Self::new()
    }
}

impl SimKernel {
    /// A kernel with default map sizes.
    pub fn new() -> Self {
        Self::with_maps(HostMaps::new())
    }

    /// A kernel over externally created maps (shared with an agent).
    pub fn with_maps(maps: HostMaps) -> Self {
        Self {
            maps,
            stats: std::sync::Arc::new(parking_lot::Mutex::new(TcStats::default())),
        }
    }

    /// The host's shared eBPF maps.
    pub fn maps(&self) -> &HostMaps {
        &self.maps
    }

    /// Counters maintained by the TC programs.
    pub fn stats(&self) -> TcStats {
        *self.stats.lock()
    }

    /// Simulates an instance starting a process: fires the
    /// `sys_enter_execve` tracepoint, which records `pid → ins_id`.
    pub fn spawn_process(&self, instance: InstanceId, pid: Pid) -> Result<(), MapError> {
        programs::on_execve(&self.maps, pid, instance)
    }

    /// Simulates a process opening a connection: fires the conntrack
    /// kprobe, which records `5tuple → pid` and joins it with `env_map`
    /// into `inf_map: 5tuple → ins_id`.
    pub fn open_connection(
        &self,
        pid: Pid,
        tuple: megate_packet::FiveTuple,
    ) -> Result<(), MapError> {
        programs::on_conntrack(&self.maps, pid, tuple)
    }

    /// Simulates an instance being decommissioned (§1: virtual
    /// instances are "dynamically provisioned and decommissioned"):
    /// removes every map entry attributed to it — its processes from
    /// `env_map`, its flows from `contk_map`/`inf_map`/`traffic_map`,
    /// and its installed paths — so a recycled five-tuple can never be
    /// attributed to a dead instance. Returns the number of entries
    /// removed.
    pub fn decommission_instance(&self, instance: InstanceId) -> usize {
        let mut removed = 0;
        for (pid, ins) in self.maps.env_map.snapshot() {
            if ins == instance && self.maps.env_map.delete(&pid).is_ok() {
                removed += 1;
            }
        }
        for (tuple, ins) in self.maps.inf_map.snapshot() {
            if ins == instance {
                if self.maps.inf_map.delete(&tuple).is_ok() {
                    removed += 1;
                }
                if self.maps.contk_map.delete(&tuple).is_ok() {
                    removed += 1;
                }
                if self.maps.traffic_map.delete(&tuple).is_ok() {
                    removed += 1;
                }
            }
        }
        for ((ins, dst), _) in self.maps.path_map.snapshot() {
            if ins == instance && self.maps.path_map.delete(&(ins, dst)).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Runs the TC egress chain on a frame: flow collection then SR
    /// insertion. The frame may grow in place (SR splice). Malformed
    /// frames pass untouched — an eBPF program must never wedge the
    /// datapath.
    pub fn tc_egress(&self, frame: &mut Vec<u8>) -> TcVerdict {
        let mut stats = self.stats.lock();
        stats.frames += 1;
        let verdict = match programs::tc_egress_chain(&self.maps, frame, &mut stats) {
            Ok(v) => v,
            Err(WireError::Truncated) | Err(WireError::Malformed) => TcVerdict::NotVxlan,
        };
        if verdict == TcVerdict::PassWithSr {
            stats.sr_inserted += 1;
        }
        verdict
    }

    /// Runs the batched TC egress fast path: parses the whole batch
    /// into flat descriptors in one pass, then hands it to
    /// [`programs::process_batch`] against the worker's
    /// [`CpuShard`](crate::batch::CpuShard).
    ///
    /// Accounting lands in the shard, not the shared maps — call
    /// [`sync_cpu`](Self::sync_cpu) to merge. Frames may grow in place
    /// (vectorized SR splice).
    pub fn tc_egress_batch(
        &self,
        batch: &mut megate_packet::FrameBatch,
        cpu: &mut crate::batch::CpuShard,
    ) -> crate::batch::BatchSummary {
        let parse = megate_obs::span("hoststack.batch.parse");
        let mut descs = std::mem::take(&mut cpu.descs);
        megate_packet::parse_batch(batch, &mut descs);
        drop(parse);
        let summary = programs::process_batch(&self.maps, batch, &descs, cpu);
        cpu.descs = descs;
        summary
    }

    /// The sync tick for one worker core: merges the shard's
    /// accumulated flow bytes, fragment seeds, and telemetry into the
    /// shared maps, and folds its counters into the kernel-wide
    /// [`TcStats`]. Returns the merged delta.
    pub fn sync_cpu(&self, cpu: &mut crate::batch::CpuShard) -> TcStats {
        let delta = cpu.merge_into(&self.maps);
        let mut stats = self.stats.lock();
        stats.frames += delta.frames;
        stats.sr_inserted += delta.sr_inserted;
        stats.attributed += delta.attributed;
        stats.fragments_resolved += delta.fragments_resolved;
        stats.accounting_misses += delta.accounting_misses;
        delta
    }

    /// Runs the TC ingress chain on a received frame: strips the MegaTE
    /// SR header (restoring a standard VXLAN frame for the guest) and
    /// bills ingress traffic. Malformed frames pass untouched.
    pub fn tc_ingress(&self, frame: &mut Vec<u8>) -> TcVerdict {
        let mut stats = self.stats.lock();
        stats.frames += 1;
        match programs::tc_ingress_chain(&self.maps, frame, &mut stats) {
            Ok(v) => v,
            Err(WireError::Truncated) | Err(WireError::Malformed) => TcVerdict::NotVxlan,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megate_packet::{FiveTuple, MegaTeFrameSpec, Proto};

    fn tuple(port: u16) -> FiveTuple {
        FiveTuple {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 9, 9, 9],
            proto: Proto::Udp,
            src_port: port,
            dst_port: 443,
        }
    }

    #[test]
    fn instance_identification_joins_maps() {
        let k = SimKernel::new();
        k.spawn_process(InstanceId(55), Pid(1000)).unwrap();
        k.open_connection(Pid(1000), tuple(1)).unwrap();
        assert_eq!(k.maps().inf_map.lookup(&tuple(1)), Some(InstanceId(55)));
    }

    #[test]
    fn connection_from_unknown_pid_skips_inf_map() {
        let k = SimKernel::new();
        // No execve seen for this pid: contk_map gets the entry but
        // inf_map cannot be joined.
        k.open_connection(Pid(77), tuple(2)).unwrap();
        assert_eq!(k.maps().contk_map.lookup(&tuple(2)), Some(Pid(77)));
        assert_eq!(k.maps().inf_map.lookup(&tuple(2)), None);
    }

    #[test]
    fn tc_egress_accounts_traffic() {
        let k = SimKernel::new();
        let mut frame = MegaTeFrameSpec::simple(tuple(3), 1, None).build();
        let v = k.tc_egress(&mut frame);
        assert_eq!(v, TcVerdict::Pass);
        let bytes = k.maps().traffic_map.lookup(&tuple(3)).unwrap();
        assert!(bytes > 0);
        assert_eq!(k.stats().frames, 1);
    }

    #[test]
    fn tc_egress_inserts_sr_when_path_installed() {
        let k = SimKernel::new();
        k.spawn_process(InstanceId(7), Pid(1)).unwrap();
        k.open_connection(Pid(1), tuple(4)).unwrap();
        k.maps()
            .path_map
            .update((InstanceId(7), tuple(4).dst_ip), vec![3, 1, 4])
            .unwrap();
        let mut frame = MegaTeFrameSpec::simple(tuple(4), 1, None).build();
        let v = k.tc_egress(&mut frame);
        assert_eq!(v, TcVerdict::PassWithSr);
        let parsed = megate_packet::parse_megate_frame(&frame).unwrap();
        assert_eq!(parsed.sr.unwrap().1, vec![3, 1, 4]);
        assert_eq!(k.stats().sr_inserted, 1);
    }

    #[test]
    fn decommission_scrubs_every_map() {
        let k = SimKernel::new();
        k.spawn_process(InstanceId(7), Pid(1)).unwrap();
        k.open_connection(Pid(1), tuple(1)).unwrap();
        k.maps()
            .path_map
            .update((InstanceId(7), tuple(1).dst_ip), vec![2])
            .unwrap();
        let mut frame = MegaTeFrameSpec::simple(tuple(1), 1, None).build();
        k.tc_egress(&mut frame); // fills traffic_map

        // Another instance stays untouched.
        k.spawn_process(InstanceId(8), Pid(2)).unwrap();
        k.open_connection(Pid(2), tuple(2)).unwrap();

        let removed = k.decommission_instance(InstanceId(7));
        assert!(removed >= 4, "env+inf+contk+traffic+path, got {removed}");
        assert_eq!(k.maps().env_map.lookup(&Pid(1)), None);
        assert_eq!(k.maps().inf_map.lookup(&tuple(1)), None);
        assert_eq!(k.maps().traffic_map.lookup(&tuple(1)), None);
        assert_eq!(
            k.maps().path_map.lookup(&(InstanceId(7), tuple(1).dst_ip)),
            None
        );
        // Instance 8 unaffected.
        assert_eq!(k.maps().inf_map.lookup(&tuple(2)), Some(InstanceId(8)));
    }

    #[test]
    fn recycled_tuple_not_attributed_to_dead_instance() {
        let k = SimKernel::new();
        k.spawn_process(InstanceId(7), Pid(1)).unwrap();
        k.open_connection(Pid(1), tuple(3)).unwrap();
        k.decommission_instance(InstanceId(7));
        // A new instance reuses the same five-tuple.
        k.spawn_process(InstanceId(9), Pid(3)).unwrap();
        k.open_connection(Pid(3), tuple(3)).unwrap();
        assert_eq!(k.maps().inf_map.lookup(&tuple(3)), Some(InstanceId(9)));
    }

    #[test]
    fn ingress_strips_sr_and_bills_traffic() {
        let k = SimKernel::new();
        let mut frame = MegaTeFrameSpec::simple(tuple(9), 1, Some(vec![3, 4])).build();
        let v = k.tc_ingress(&mut frame);
        assert_eq!(v, TcVerdict::PassWithSr);
        let parsed = megate_packet::parse_megate_frame(&frame).unwrap();
        assert!(parsed.sr.is_none(), "SR stripped before guest delivery");
        assert!(k.maps().traffic_map.lookup(&tuple(9)).unwrap() > 0);
        // Plain frames pass and still get billed.
        let mut plain = MegaTeFrameSpec::simple(tuple(9), 1, None).build();
        assert_eq!(k.tc_ingress(&mut plain), TcVerdict::Pass);
    }

    #[test]
    fn garbage_frames_pass_untouched() {
        let k = SimKernel::new();
        let mut junk = vec![0xAAu8; 40];
        let before = junk.clone();
        assert_eq!(k.tc_egress(&mut junk), TcVerdict::NotVxlan);
        assert_eq!(junk, before);
    }
}
