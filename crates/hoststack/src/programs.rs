//! The eBPF programs of Figure 6, as plain functions over shared maps.
//!
//! | Hook | Program | Maps touched |
//! |---|---|---|
//! | `sys_enter_execve` tracepoint | [`on_execve`] | `env_map` |
//! | `ctnetlink_conntrack_event` kprobe | [`on_conntrack`] | `contk_map`, `env_map` → `inf_map` |
//! | TC egress | [`tc_egress_chain`] | `traffic_map`, `frag_map`, `inf_map`, `path_map` |

use crate::kernel::{InstanceId, Pid, TcStats, TcVerdict};
use crate::maps::{EbpfMap, MapError};
use megate_packet::{
    insert_sr_header, parse_megate_frame, FiveTuple, FlowKey, Result as WireResult,
};

/// The per-host map set with the names and roles of Figure 6.
#[derive(Debug, Clone)]
pub struct HostMaps {
    /// `pid → ins_id`, filled at execve time.
    pub env_map: EbpfMap<Pid, InstanceId>,
    /// `5tuple → pid`, filled at connection setup.
    pub contk_map: EbpfMap<FiveTuple, Pid>,
    /// `5tuple → ins_id`, the join of the two above — instance
    /// identification (§5.1).
    pub inf_map: EbpfMap<FiveTuple, InstanceId>,
    /// `5tuple → bytes`, instance-level flow collection.
    pub traffic_map: EbpfMap<FiveTuple, u64>,
    /// `ipid → 5tuple`, resolving non-first IP fragments.
    pub frag_map: EbpfMap<u16, FiveTuple>,
    /// `(ins_id, dst_ip) → SR hop list`, the TE decision installed by
    /// the endpoint agent. The paper keys by instance; the destination
    /// address disambiguates instances talking to several remote sites.
    pub path_map: EbpfMap<(InstanceId, [u8; 4]), Vec<u32>>,
    /// Perf-event ring: per-event telemetry (new flows, SR insertions,
    /// accounting misses) streamed to user space.
    pub telemetry: crate::ringbuf::RingBuffer,
    /// Process-wide TC-chain counters, mirroring the per-call
    /// [`TcStats`] so fleet-level totals are visible without threading
    /// stats structs up through the simulation.
    pub(crate) tc_metrics: TcMetrics,
}

/// Counter handles for the TC chains, resolved once at map-set
/// construction so the per-packet path never touches the registry.
#[derive(Debug, Clone)]
pub(crate) struct TcMetrics {
    /// `hoststack.accounting_misses`: frames whose bytes could not be
    /// billed (map pressure or orphan fragments).
    accounting_misses: megate_obs::Counter,
    /// `hoststack.frag_orphans`: non-first fragments with no
    /// `frag_map` entry (subset of the misses above).
    frag_orphans: megate_obs::Counter,
    /// `hoststack.frag_resolved`: non-first fragments billed via
    /// `frag_map`.
    frag_resolved: megate_obs::Counter,
    /// `hoststack.sr_inserted`: frames that left with a fresh SR header.
    sr_inserted: megate_obs::Counter,
}

impl TcMetrics {
    fn new() -> Self {
        Self {
            accounting_misses: megate_obs::counter("hoststack.accounting_misses"),
            frag_orphans: megate_obs::counter("hoststack.frag_orphans"),
            frag_resolved: megate_obs::counter("hoststack.frag_resolved"),
            sr_inserted: megate_obs::counter("hoststack.sr_inserted"),
        }
    }
}

impl Default for HostMaps {
    fn default() -> Self {
        Self::new()
    }
}

impl HostMaps {
    /// Maps with production-like size bounds.
    pub fn new() -> Self {
        Self {
            env_map: EbpfMap::new("env_map", 65_536),
            contk_map: EbpfMap::new("contk_map", 262_144),
            inf_map: EbpfMap::new("inf_map", 262_144),
            traffic_map: EbpfMap::new_lru("traffic_map", 262_144),
            frag_map: EbpfMap::new_lru("frag_map", 16_384),
            path_map: EbpfMap::new("path_map", 262_144),
            telemetry: crate::ringbuf::RingBuffer::new(65_536),
            tc_metrics: TcMetrics::new(),
        }
    }
}

/// `tracepoint:syscalls/sys_enter_execve`: record which instance owns
/// the process.
pub fn on_execve(maps: &HostMaps, pid: Pid, instance: InstanceId) -> Result<(), MapError> {
    maps.env_map.update(pid, instance)
}

/// `kprobe:ctnetlink_conntrack_event`: record the connection's owner
/// pid, then join `env_map ⨝ contk_map → inf_map` so every five-tuple
/// maps to its originating instance.
pub fn on_conntrack(maps: &HostMaps, pid: Pid, tuple: FiveTuple) -> Result<(), MapError> {
    maps.contk_map.update(tuple, pid)?;
    if let Some(instance) = maps.env_map.lookup(&pid) {
        maps.inf_map.update(tuple, instance)?;
    }
    Ok(())
}

/// The TC egress chain: flow collection then SR insertion.
///
/// Flow collection (§5.1): bill the inner IPv4 length to the flow's
/// five-tuple in `traffic_map`. First fragments seed `frag_map`
/// (`ipid → 5tuple`); later fragments resolve through it.
///
/// SR insertion (§5.2): if `inf_map` attributes the flow to an instance
/// and `path_map` holds a TE path for it, splice the SR header after
/// the VXLAN header and set the VXLAN reserved-field flag.
pub fn tc_egress_chain(
    maps: &HostMaps,
    frame: &mut Vec<u8>,
    stats: &mut TcStats,
) -> WireResult<TcVerdict> {
    let parsed = parse_megate_frame(frame)?;

    // --- Flow collection ---
    let tuple = match parsed.inner_flow {
        FlowKey::Tuple { tuple, first_fragment, ipid } => {
            if first_fragment {
                // Seed frag_map so follow-on fragments resolve. Best
                // effort: on map pressure the fragment accounting is
                // lost but the frame is still forwarded.
                if maps.frag_map.update(ipid, tuple).is_err() {
                    stats.accounting_misses += 1;
                    maps.tc_metrics.accounting_misses.inc();
                }
            }
            Some(tuple)
        }
        FlowKey::Fragment { ipid } => match maps.frag_map.lookup(&ipid) {
            Some(t) => {
                stats.fragments_resolved += 1;
                maps.tc_metrics.frag_resolved.inc();
                Some(t)
            }
            None => {
                stats.accounting_misses += 1;
                maps.tc_metrics.accounting_misses.inc();
                maps.tc_metrics.frag_orphans.inc();
                None
            }
        },
    };
    if let Some(t) = tuple {
        let first_sighting = maps.traffic_map.lookup(&t).is_none();
        if maps
            .traffic_map
            .upsert_with(t, 0, |v| *v += parsed.inner_ip_len as u64)
            .is_err()
        {
            stats.accounting_misses += 1;
            maps.tc_metrics.accounting_misses.inc();
            maps.telemetry.publish(crate::ringbuf::TelemetryEvent::AccountingMiss);
        } else if first_sighting {
            maps.telemetry
                .publish(crate::ringbuf::TelemetryEvent::NewFlow { tuple: t });
        }
    }

    // --- SR insertion ---
    let Some(t) = tuple else {
        return Ok(TcVerdict::Pass);
    };
    if parsed.sr.is_some() {
        // Already labelled (shouldn't happen on egress) — leave as is.
        return Ok(TcVerdict::Pass);
    }
    let Some(instance) = maps.inf_map.lookup(&t) else {
        return Ok(TcVerdict::Pass);
    };
    stats.attributed += 1;
    let Some(hops) = maps.path_map.lookup(&(instance, t.dst_ip)) else {
        return Ok(TcVerdict::Pass);
    };
    insert_sr_header(frame, &hops)?;
    maps.tc_metrics.sr_inserted.inc();
    maps.telemetry.publish(crate::ringbuf::TelemetryEvent::SrInserted {
        instance,
        hops: hops.len() as u8,
    });
    Ok(TcVerdict::PassWithSr)
}

/// The TC ingress program at the destination host: if the frame carries
/// a (fully walked) MegaTE SR header, strip it and clear the VXLAN flag
/// so the guest sees a standard VXLAN frame; also bill ingress traffic
/// so both ends report the flow.
pub fn tc_ingress_chain(
    maps: &HostMaps,
    frame: &mut Vec<u8>,
    stats: &mut TcStats,
) -> WireResult<TcVerdict> {
    let parsed = parse_megate_frame(frame)?;
    if let FlowKey::Tuple { tuple, .. } = parsed.inner_flow {
        if maps
            .traffic_map
            .upsert_with(tuple, 0, |v| *v += parsed.inner_ip_len as u64)
            .is_err()
        {
            stats.accounting_misses += 1;
            maps.tc_metrics.accounting_misses.inc();
        }
    }
    if parsed.sr.is_some() {
        megate_packet::strip_sr_header(frame)?;
        return Ok(TcVerdict::PassWithSr); // SR was present and removed
    }
    Ok(TcVerdict::Pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use megate_packet::{MegaTeFrameSpec, Proto};

    fn tuple() -> FiveTuple {
        FiveTuple {
            src_ip: [172, 16, 0, 2],
            dst_ip: [172, 31, 0, 9],
            proto: Proto::Udp,
            src_port: 9999,
            dst_port: 53,
        }
    }

    #[test]
    fn fragmented_datagram_billed_to_one_tuple() {
        let maps = HostMaps::new();
        let mut stats = TcStats::default();
        // First fragment (offset 0, MF set).
        let mut spec = MegaTeFrameSpec::simple(tuple(), 3, None);
        spec.inner_ipid = 0xAA55;
        spec.inner_fragment = (0, true);
        spec.payload_len = 100;
        let mut f1 = spec.build();
        tc_egress_chain(&maps, &mut f1, &mut stats).unwrap();
        // Second fragment (offset > 0) — no ports inside.
        let mut spec2 = MegaTeFrameSpec::simple(tuple(), 3, None);
        spec2.inner_ipid = 0xAA55;
        spec2.inner_fragment = (1480, false);
        spec2.payload_len = 60;
        let mut f2 = spec2.build();
        tc_egress_chain(&maps, &mut f2, &mut stats).unwrap();

        assert_eq!(stats.fragments_resolved, 1);
        let total = maps.traffic_map.lookup(&tuple()).unwrap();
        // Both fragments' inner IP lengths accumulate on the same tuple.
        assert!(total > 160, "total {total}");
        assert_eq!(maps.traffic_map.len(), 1);
    }

    #[test]
    fn orphan_fragment_counts_as_miss() {
        let maps = HostMaps::new();
        let mut stats = TcStats::default();
        let mut spec = MegaTeFrameSpec::simple(tuple(), 3, None);
        spec.inner_ipid = 0x0101;
        spec.inner_fragment = (2960, false);
        let mut f = spec.build();
        tc_egress_chain(&maps, &mut f, &mut stats).unwrap();
        assert_eq!(stats.accounting_misses, 1);
        assert!(maps.traffic_map.is_empty());
    }

    #[test]
    fn no_path_means_plain_pass_but_attribution_counted() {
        let maps = HostMaps::new();
        let mut stats = TcStats::default();
        on_execve(&maps, Pid(5), InstanceId(99)).unwrap();
        on_conntrack(&maps, Pid(5), tuple()).unwrap();
        let mut f = MegaTeFrameSpec::simple(tuple(), 3, None).build();
        let v = tc_egress_chain(&maps, &mut f, &mut stats).unwrap();
        assert_eq!(v, TcVerdict::Pass);
        assert_eq!(stats.attributed, 1);
    }

    #[test]
    fn full_traffic_map_never_blocks_forwarding() {
        let maps = HostMaps {
            traffic_map: EbpfMap::new("tiny", 1),
            ..HostMaps::new()
        };
        let mut stats = TcStats::default();
        let mut t2 = tuple();
        t2.src_port = 1;
        let mut f1 = MegaTeFrameSpec::simple(tuple(), 3, None).build();
        let mut f2 = MegaTeFrameSpec::simple(t2, 3, None).build();
        assert_eq!(tc_egress_chain(&maps, &mut f1, &mut stats).unwrap(), TcVerdict::Pass);
        assert_eq!(tc_egress_chain(&maps, &mut f2, &mut stats).unwrap(), TcVerdict::Pass);
        assert_eq!(stats.accounting_misses, 1); // second flow not billed
    }

    #[test]
    fn telemetry_ring_sees_flow_and_sr_events() {
        let maps = HostMaps::new();
        let mut stats = TcStats::default();
        on_execve(&maps, Pid(5), InstanceId(99)).unwrap();
        on_conntrack(&maps, Pid(5), tuple()).unwrap();
        maps.path_map.update((InstanceId(99), tuple().dst_ip), vec![1, 2]).unwrap();

        let mut f = MegaTeFrameSpec::simple(tuple(), 3, None).build();
        tc_egress_chain(&maps, &mut f, &mut stats).unwrap();
        // Second frame of the same flow: no NewFlow event.
        let mut f2 = MegaTeFrameSpec::simple(tuple(), 3, None).build();
        tc_egress_chain(&maps, &mut f2, &mut stats).unwrap();

        let events = maps.telemetry.drain();
        let new_flows = events
            .iter()
            .filter(|e| matches!(e, crate::ringbuf::TelemetryEvent::NewFlow { .. }))
            .count();
        let sr = events
            .iter()
            .filter(|e| matches!(e, crate::ringbuf::TelemetryEvent::SrInserted { .. }))
            .count();
        assert_eq!(new_flows, 1, "one NewFlow for two frames of one flow");
        assert_eq!(sr, 2, "every labelled frame reports an SR insertion");
    }

    #[test]
    fn sr_not_reinserted_when_already_present() {
        let maps = HostMaps::new();
        let mut stats = TcStats::default();
        on_execve(&maps, Pid(5), InstanceId(99)).unwrap();
        on_conntrack(&maps, Pid(5), tuple()).unwrap();
        maps.path_map.update((InstanceId(99), tuple().dst_ip), vec![1]).unwrap();
        let mut f = MegaTeFrameSpec::simple(tuple(), 3, Some(vec![7, 8])).build();
        let v = tc_egress_chain(&maps, &mut f, &mut stats).unwrap();
        assert_eq!(v, TcVerdict::Pass);
        let parsed = parse_megate_frame(&f).unwrap();
        assert_eq!(parsed.sr.unwrap().1, vec![7, 8], "original SR kept");
    }
}
