//! The eBPF programs of Figure 6, as plain functions over shared maps.
//!
//! | Hook | Program | Maps touched |
//! |---|---|---|
//! | `sys_enter_execve` tracepoint | [`on_execve`] | `env_map` |
//! | `ctnetlink_conntrack_event` kprobe | [`on_conntrack`] | `contk_map`, `env_map` → `inf_map` |
//! | TC egress | [`tc_egress_chain`] | `traffic_map`, `frag_map`, `inf_map`, `path_map` |

use crate::batch::{BatchSummary, CpuShard};
use crate::kernel::{InstanceId, Pid, TcStats, TcVerdict};
use crate::maps::{EbpfMap, MapError};
use megate_packet::{
    insert_sr_header, parse_megate_frame, srheader::MAX_HOPS, FiveTuple, FlowKey, FrameBatch,
    FrameDescriptor, Result as WireResult,
};

/// The per-host map set with the names and roles of Figure 6.
#[derive(Debug, Clone)]
pub struct HostMaps {
    /// `pid → ins_id`, filled at execve time.
    pub env_map: EbpfMap<Pid, InstanceId>,
    /// `5tuple → pid`, filled at connection setup.
    pub contk_map: EbpfMap<FiveTuple, Pid>,
    /// `5tuple → ins_id`, the join of the two above — instance
    /// identification (§5.1).
    pub inf_map: EbpfMap<FiveTuple, InstanceId>,
    /// `5tuple → bytes`, instance-level flow collection.
    pub traffic_map: EbpfMap<FiveTuple, u64>,
    /// `ipid → 5tuple`, resolving non-first IP fragments.
    pub frag_map: EbpfMap<u16, FiveTuple>,
    /// `(ins_id, dst_ip) → SR hop list`, the TE decision installed by
    /// the endpoint agent. The paper keys by instance; the destination
    /// address disambiguates instances talking to several remote sites.
    pub path_map: EbpfMap<(InstanceId, [u8; 4]), Vec<u32>>,
    /// Perf-event ring: per-event telemetry (new flows, SR insertions,
    /// accounting misses) streamed to user space.
    pub telemetry: crate::ringbuf::RingBuffer,
    /// Process-wide TC-chain counters, mirroring the per-call
    /// [`TcStats`] so fleet-level totals are visible without threading
    /// stats structs up through the simulation.
    pub(crate) tc_metrics: TcMetrics,
}

/// Counter handles for the TC chains, resolved once at map-set
/// construction so the per-packet path never touches the registry.
#[derive(Debug, Clone)]
pub(crate) struct TcMetrics {
    /// `hoststack.accounting_misses`: frames whose bytes could not be
    /// billed (map pressure or orphan fragments).
    accounting_misses: megate_obs::Counter,
    /// `hoststack.frag_orphans`: non-first fragments with no
    /// `frag_map` entry (subset of the misses above).
    frag_orphans: megate_obs::Counter,
    /// `hoststack.frag_resolved`: non-first fragments billed via
    /// `frag_map`.
    frag_resolved: megate_obs::Counter,
    /// `hoststack.sr_inserted`: frames that left with a fresh SR header.
    sr_inserted: megate_obs::Counter,
}

impl TcMetrics {
    fn new() -> Self {
        Self {
            accounting_misses: megate_obs::counter("hoststack.accounting_misses"),
            frag_orphans: megate_obs::counter("hoststack.frag_orphans"),
            frag_resolved: megate_obs::counter("hoststack.frag_resolved"),
            sr_inserted: megate_obs::counter("hoststack.sr_inserted"),
        }
    }

    /// Folds a shard's accumulated counters in at sync-tick time — the
    /// batched path touches these process-wide counters once per merge,
    /// not once per frame.
    pub(crate) fn add_batch(&self, stats: &TcStats, frag_orphans: u64) {
        self.accounting_misses.add(stats.accounting_misses);
        self.frag_resolved.add(stats.fragments_resolved);
        self.frag_orphans.add(frag_orphans);
        self.sr_inserted.add(stats.sr_inserted);
    }
}

impl Default for HostMaps {
    fn default() -> Self {
        Self::new()
    }
}

impl HostMaps {
    /// Maps with production-like size bounds.
    pub fn new() -> Self {
        Self {
            env_map: EbpfMap::new("env_map", 65_536),
            contk_map: EbpfMap::new("contk_map", 262_144),
            inf_map: EbpfMap::new("inf_map", 262_144),
            traffic_map: EbpfMap::new_lru("traffic_map", 262_144),
            frag_map: EbpfMap::new_lru("frag_map", 16_384),
            path_map: EbpfMap::new("path_map", 262_144),
            telemetry: crate::ringbuf::RingBuffer::new(65_536),
            tc_metrics: TcMetrics::new(),
        }
    }
}

/// `tracepoint:syscalls/sys_enter_execve`: record which instance owns
/// the process.
pub fn on_execve(maps: &HostMaps, pid: Pid, instance: InstanceId) -> Result<(), MapError> {
    maps.env_map.update(pid, instance)
}

/// `kprobe:ctnetlink_conntrack_event`: record the connection's owner
/// pid, then join `env_map ⨝ contk_map → inf_map` so every five-tuple
/// maps to its originating instance.
pub fn on_conntrack(maps: &HostMaps, pid: Pid, tuple: FiveTuple) -> Result<(), MapError> {
    maps.contk_map.update(tuple, pid)?;
    if let Some(instance) = maps.env_map.lookup(&pid) {
        maps.inf_map.update(tuple, instance)?;
    }
    Ok(())
}

/// The TC egress chain: flow collection then SR insertion.
///
/// Flow collection (§5.1): bill the inner IPv4 length to the flow's
/// five-tuple in `traffic_map`. First fragments seed `frag_map`
/// (`ipid → 5tuple`); later fragments resolve through it.
///
/// SR insertion (§5.2): if `inf_map` attributes the flow to an instance
/// and `path_map` holds a TE path for it, splice the SR header after
/// the VXLAN header and set the VXLAN reserved-field flag.
pub fn tc_egress_chain(
    maps: &HostMaps,
    frame: &mut Vec<u8>,
    stats: &mut TcStats,
) -> WireResult<TcVerdict> {
    let parsed = parse_megate_frame(frame)?;

    // --- Flow collection ---
    let tuple = match parsed.inner_flow {
        FlowKey::Tuple {
            tuple,
            first_fragment,
            ipid,
        } => {
            if first_fragment {
                // Seed frag_map so follow-on fragments resolve. Best
                // effort: on map pressure the fragment accounting is
                // lost but the frame is still forwarded.
                if maps.frag_map.update(ipid, tuple).is_err() {
                    stats.accounting_misses += 1;
                    maps.tc_metrics.accounting_misses.inc();
                }
            }
            Some(tuple)
        }
        FlowKey::Fragment { ipid } => match maps.frag_map.lookup(&ipid) {
            Some(t) => {
                stats.fragments_resolved += 1;
                maps.tc_metrics.frag_resolved.inc();
                Some(t)
            }
            None => {
                stats.accounting_misses += 1;
                maps.tc_metrics.accounting_misses.inc();
                maps.tc_metrics.frag_orphans.inc();
                None
            }
        },
    };
    if let Some(t) = tuple {
        let first_sighting = maps.traffic_map.lookup(&t).is_none();
        if maps
            .traffic_map
            .upsert_with(t, 0, |v| *v += parsed.inner_ip_len as u64)
            .is_err()
        {
            stats.accounting_misses += 1;
            maps.tc_metrics.accounting_misses.inc();
            maps.telemetry
                .publish(crate::ringbuf::TelemetryEvent::AccountingMiss);
        } else if first_sighting {
            maps.telemetry
                .publish(crate::ringbuf::TelemetryEvent::NewFlow { tuple: t });
        }
    }

    // --- SR insertion ---
    let Some(t) = tuple else {
        return Ok(TcVerdict::Pass);
    };
    if parsed.sr.is_some() {
        // Already labelled (shouldn't happen on egress) — leave as is.
        return Ok(TcVerdict::Pass);
    }
    let Some(instance) = maps.inf_map.lookup(&t) else {
        return Ok(TcVerdict::Pass);
    };
    stats.attributed += 1;
    let Some(hops) = maps.path_map.lookup(&(instance, t.dst_ip)) else {
        return Ok(TcVerdict::Pass);
    };
    insert_sr_header(frame, &hops)?;
    maps.tc_metrics.sr_inserted.inc();
    maps.telemetry
        .publish(crate::ringbuf::TelemetryEvent::SrInserted {
            instance,
            hops: hops.len() as u8,
        });
    Ok(TcVerdict::PassWithSr)
}

/// The batched TC egress fast path: one map-lookup pass per batch,
/// shard-local accounting, vectorized SR insertion.
///
/// Semantically this is [`tc_egress_chain`] applied to every frame of
/// the batch, restructured for multi-core throughput (DESIGN.md §5d):
///
/// 1. **Collect** — resolve each descriptor's billing tuple and
///    accumulate bytes into the shard-local `traffic` map. First
///    fragments seed the shard's fragment overlay; non-first fragments
///    resolve through the overlay first (preserving in-order semantics
///    within the worker), then the shared `frag_map`.
/// 2. **Lookup** — a memoized pass over `inf_map`/`path_map`: each
///    distinct tuple (or `(instance, dst)` pair) is looked up at most
///    once per *sync epoch*, however many frames or batches share it.
///    The caches are dropped at merge time, so a changed TE path is
///    picked up on the next epoch — the same granularity at which the
///    shard publishes its accounting.
/// 3. **SR** — all insertions applied in one gather/scatter rebuild of
///    the arena ([`FrameBatch::apply_sr`]), byte-identical to serial
///    [`insert_sr_header`] calls.
///
/// Nothing is written to the shared maps here; that happens on the sync
/// tick ([`CpuShard::merge_into`]). Because flow accounting is
/// additive, the post-merge `traffic_map` state is identical to the
/// single-frame path's (`tests/dataplane_batch.rs` asserts it
/// bitwise). Non-VXLAN noise frames are counted and passed untouched,
/// like the single-frame path's `NotVxlan` verdict.
pub fn process_batch(
    maps: &HostMaps,
    batch: &mut FrameBatch,
    descs: &[FrameDescriptor],
    cpu: &mut CpuShard,
) -> BatchSummary {
    debug_assert_eq!(
        batch.len(),
        descs.len(),
        "descriptor array must match batch"
    );
    let mut summary = BatchSummary {
        frames: descs.len(),
        ..BatchSummary::default()
    };
    cpu.stats.frames += descs.len() as u64;

    // --- Stage 1: flow collection into the shard-local accumulators ---
    let collect = megate_obs::span("hoststack.batch.collect");
    cpu.tuples.clear();
    for desc in descs {
        if !desc.vxlan {
            cpu.tuples.push(None);
            continue;
        }
        summary.vxlan_frames += 1;
        let tuple = match desc.flow {
            Some(FlowKey::Tuple {
                tuple,
                first_fragment,
                ipid,
            }) => {
                if first_fragment {
                    // Seed the shard-local overlay; the shared frag_map
                    // gets it on the next sync tick.
                    cpu.frag.insert(ipid, tuple);
                }
                Some(tuple)
            }
            Some(FlowKey::Fragment { ipid }) => {
                // Overlay first: a first fragment seen earlier on this
                // worker (even in this very batch) must resolve, just
                // as it would frame-by-frame.
                match cpu
                    .frag
                    .get(&ipid)
                    .copied()
                    .or_else(|| maps.frag_map.lookup(&ipid))
                {
                    Some(t) => {
                        summary.fragments_resolved += 1;
                        cpu.stats.fragments_resolved += 1;
                        Some(t)
                    }
                    None => {
                        summary.accounting_misses += 1;
                        cpu.stats.accounting_misses += 1;
                        cpu.frag_orphans += 1;
                        None
                    }
                }
            }
            None => None,
        };
        if let Some(t) = tuple {
            *cpu.traffic.entry(t).or_insert(0) += desc.inner_ip_len as u64;
        }
        cpu.tuples.push(tuple);
    }
    drop(collect);

    // --- Stage 2: memoized lookup pass over inf_map/path_map ---
    // The shard caches persist across batches within the sync epoch and
    // are invalidated at merge time, so control-plane updates become
    // visible at epoch granularity (§5d).
    let lookup = megate_obs::span("hoststack.batch.lookup");
    let mut sr_keys: Vec<Option<(InstanceId, [u8; 4])>> = vec![None; descs.len()];
    for (i, desc) in descs.iter().enumerate() {
        let Some(t) = cpu.tuples[i] else { continue };
        if desc.has_sr {
            // Already labelled — leave as is (same as the serial path).
            continue;
        }
        let instance = *cpu
            .inf_cache
            .entry(t)
            .or_insert_with(|| maps.inf_map.lookup(&t));
        let Some(instance) = instance else { continue };
        summary.attributed += 1;
        cpu.stats.attributed += 1;
        let key = (instance, t.dst_ip);
        let hops = cpu
            .path_cache
            .entry(key)
            .or_insert_with(|| maps.path_map.lookup(&key));
        if hops.as_ref().is_some_and(|h| h.len() <= MAX_HOPS) {
            sr_keys[i] = Some(key);
        }
    }
    drop(lookup);

    // --- Stage 3: vectorized SR insertion ---
    let sr_span = megate_obs::span("hoststack.batch.sr");
    let plans: Vec<Option<&[u32]>> = sr_keys
        .iter()
        .map(|k| k.and_then(|key| cpu.path_cache.get(&key).and_then(|v| v.as_deref())))
        .collect();
    // All plan targets were pre-validated above, so this cannot fail.
    let inserted = batch
        .apply_sr(descs, &plans)
        .expect("pre-validated SR plans");
    summary.sr_inserted = inserted;
    cpu.stats.sr_inserted += inserted as u64;
    for key in sr_keys.into_iter().flatten() {
        let hops = cpu.path_cache[&key].as_ref().map_or(0, Vec::len);
        cpu.events.push(crate::ringbuf::TelemetryEvent::SrInserted {
            instance: key.0,
            hops: hops as u8,
        });
    }
    drop(sr_span);
    summary
}

/// The TC ingress program at the destination host: if the frame carries
/// a (fully walked) MegaTE SR header, strip it and clear the VXLAN flag
/// so the guest sees a standard VXLAN frame; also bill ingress traffic
/// so both ends report the flow.
pub fn tc_ingress_chain(
    maps: &HostMaps,
    frame: &mut Vec<u8>,
    stats: &mut TcStats,
) -> WireResult<TcVerdict> {
    let parsed = parse_megate_frame(frame)?;
    if let FlowKey::Tuple { tuple, .. } = parsed.inner_flow {
        if maps
            .traffic_map
            .upsert_with(tuple, 0, |v| *v += parsed.inner_ip_len as u64)
            .is_err()
        {
            stats.accounting_misses += 1;
            maps.tc_metrics.accounting_misses.inc();
        }
    }
    if parsed.sr.is_some() {
        megate_packet::strip_sr_header(frame)?;
        return Ok(TcVerdict::PassWithSr); // SR was present and removed
    }
    Ok(TcVerdict::Pass)
}

#[cfg(test)]
mod tests {
    use super::*;
    use megate_packet::{MegaTeFrameSpec, Proto};

    fn tuple() -> FiveTuple {
        FiveTuple {
            src_ip: [172, 16, 0, 2],
            dst_ip: [172, 31, 0, 9],
            proto: Proto::Udp,
            src_port: 9999,
            dst_port: 53,
        }
    }

    #[test]
    fn fragmented_datagram_billed_to_one_tuple() {
        let maps = HostMaps::new();
        let mut stats = TcStats::default();
        // First fragment (offset 0, MF set).
        let mut spec = MegaTeFrameSpec::simple(tuple(), 3, None);
        spec.inner_ipid = 0xAA55;
        spec.inner_fragment = (0, true);
        spec.payload_len = 100;
        let mut f1 = spec.build();
        tc_egress_chain(&maps, &mut f1, &mut stats).unwrap();
        // Second fragment (offset > 0) — no ports inside.
        let mut spec2 = MegaTeFrameSpec::simple(tuple(), 3, None);
        spec2.inner_ipid = 0xAA55;
        spec2.inner_fragment = (1480, false);
        spec2.payload_len = 60;
        let mut f2 = spec2.build();
        tc_egress_chain(&maps, &mut f2, &mut stats).unwrap();

        assert_eq!(stats.fragments_resolved, 1);
        let total = maps.traffic_map.lookup(&tuple()).unwrap();
        // Both fragments' inner IP lengths accumulate on the same tuple.
        assert!(total > 160, "total {total}");
        assert_eq!(maps.traffic_map.len(), 1);
    }

    #[test]
    fn orphan_fragment_counts_as_miss() {
        let maps = HostMaps::new();
        let mut stats = TcStats::default();
        let mut spec = MegaTeFrameSpec::simple(tuple(), 3, None);
        spec.inner_ipid = 0x0101;
        spec.inner_fragment = (2960, false);
        let mut f = spec.build();
        tc_egress_chain(&maps, &mut f, &mut stats).unwrap();
        assert_eq!(stats.accounting_misses, 1);
        assert!(maps.traffic_map.is_empty());
    }

    #[test]
    fn no_path_means_plain_pass_but_attribution_counted() {
        let maps = HostMaps::new();
        let mut stats = TcStats::default();
        on_execve(&maps, Pid(5), InstanceId(99)).unwrap();
        on_conntrack(&maps, Pid(5), tuple()).unwrap();
        let mut f = MegaTeFrameSpec::simple(tuple(), 3, None).build();
        let v = tc_egress_chain(&maps, &mut f, &mut stats).unwrap();
        assert_eq!(v, TcVerdict::Pass);
        assert_eq!(stats.attributed, 1);
    }

    #[test]
    fn full_traffic_map_never_blocks_forwarding() {
        let maps = HostMaps {
            traffic_map: EbpfMap::new("tiny", 1),
            ..HostMaps::new()
        };
        let mut stats = TcStats::default();
        let mut t2 = tuple();
        t2.src_port = 1;
        let mut f1 = MegaTeFrameSpec::simple(tuple(), 3, None).build();
        let mut f2 = MegaTeFrameSpec::simple(t2, 3, None).build();
        assert_eq!(
            tc_egress_chain(&maps, &mut f1, &mut stats).unwrap(),
            TcVerdict::Pass
        );
        assert_eq!(
            tc_egress_chain(&maps, &mut f2, &mut stats).unwrap(),
            TcVerdict::Pass
        );
        assert_eq!(stats.accounting_misses, 1); // second flow not billed
    }

    #[test]
    fn telemetry_ring_sees_flow_and_sr_events() {
        let maps = HostMaps::new();
        let mut stats = TcStats::default();
        on_execve(&maps, Pid(5), InstanceId(99)).unwrap();
        on_conntrack(&maps, Pid(5), tuple()).unwrap();
        maps.path_map
            .update((InstanceId(99), tuple().dst_ip), vec![1, 2])
            .unwrap();

        let mut f = MegaTeFrameSpec::simple(tuple(), 3, None).build();
        tc_egress_chain(&maps, &mut f, &mut stats).unwrap();
        // Second frame of the same flow: no NewFlow event.
        let mut f2 = MegaTeFrameSpec::simple(tuple(), 3, None).build();
        tc_egress_chain(&maps, &mut f2, &mut stats).unwrap();

        let events = maps.telemetry.drain();
        let new_flows = events
            .iter()
            .filter(|e| matches!(e, crate::ringbuf::TelemetryEvent::NewFlow { .. }))
            .count();
        let sr = events
            .iter()
            .filter(|e| matches!(e, crate::ringbuf::TelemetryEvent::SrInserted { .. }))
            .count();
        assert_eq!(new_flows, 1, "one NewFlow for two frames of one flow");
        assert_eq!(sr, 2, "every labelled frame reports an SR insertion");
    }

    #[test]
    fn sr_not_reinserted_when_already_present() {
        let maps = HostMaps::new();
        let mut stats = TcStats::default();
        on_execve(&maps, Pid(5), InstanceId(99)).unwrap();
        on_conntrack(&maps, Pid(5), tuple()).unwrap();
        maps.path_map
            .update((InstanceId(99), tuple().dst_ip), vec![1])
            .unwrap();
        let mut f = MegaTeFrameSpec::simple(tuple(), 3, Some(vec![7, 8])).build();
        let v = tc_egress_chain(&maps, &mut f, &mut stats).unwrap();
        assert_eq!(v, TcVerdict::Pass);
        let parsed = parse_megate_frame(&f).unwrap();
        assert_eq!(parsed.sr.unwrap().1, vec![7, 8], "original SR kept");
    }
}
