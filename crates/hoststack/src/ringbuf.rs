//! A perf-event-style ring buffer — eBPF's kernel→user event channel.
//!
//! Real deployments stream per-event telemetry (new-flow notifications,
//! SR-insertion events) through `BPF_MAP_TYPE_RINGBUF` rather than
//! polling hash maps. Semantics mirrored here: fixed capacity, the
//! *producer drops* when the consumer lags (and counts the drops —
//! `bpf_ringbuf_reserve` failing), and the consumer drains in order.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Events the TC programs publish (a telemetry superset of
/// [`crate::kernel::KernelEvent`], kept wire-friendly).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TelemetryEvent {
    /// A new flow appeared in `traffic_map`.
    NewFlow {
        /// The flow's five-tuple.
        tuple: megate_packet::FiveTuple,
    },
    /// An SR header was inserted for an instance.
    SrInserted {
        /// The owning instance.
        instance: crate::kernel::InstanceId,
        /// Hop count of the installed path.
        hops: u8,
    },
    /// Flow accounting was dropped (map pressure / orphan fragment).
    AccountingMiss,
}

/// A bounded MPSC ring buffer with producer-side drop semantics.
#[derive(Debug, Clone)]
pub struct RingBuffer {
    inner: Arc<Mutex<Inner>>,
    capacity: usize,
    /// Process-wide producer-drop export (`hoststack.ringbuf.drops`);
    /// registered at construction so the metric exists even at zero.
    drop_ctr: megate_obs::Counter,
}

#[derive(Debug)]
struct Inner {
    queue: VecDeque<TelemetryEvent>,
    dropped: u64,
}

impl RingBuffer {
    /// A ring holding up to `capacity` undelivered events.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring needs capacity");
        Self {
            inner: Arc::new(Mutex::new(Inner {
                queue: VecDeque::new(),
                dropped: 0,
            })),
            capacity,
            drop_ctr: megate_obs::counter("hoststack.ringbuf.drops"),
        }
    }

    /// Producer side: publish an event; drops (and counts) when full —
    /// kernel programs never block on a slow consumer.
    pub fn publish(&self, event: TelemetryEvent) -> bool {
        let mut g = self.inner.lock();
        if g.queue.len() >= self.capacity {
            g.dropped += 1;
            self.drop_ctr.inc();
            return false;
        }
        g.queue.push_back(event);
        true
    }

    /// Producer side, batched: publish a run of events under a single
    /// lock acquisition — the sync-tick analogue of
    /// [`publish`](Self::publish). Events past capacity are dropped
    /// and counted individually. Returns how many were accepted.
    pub fn publish_all(&self, events: impl IntoIterator<Item = TelemetryEvent>) -> usize {
        let mut g = self.inner.lock();
        let mut accepted = 0;
        for event in events {
            if g.queue.len() >= self.capacity {
                g.dropped += 1;
                self.drop_ctr.inc();
            } else {
                g.queue.push_back(event);
                accepted += 1;
            }
        }
        accepted
    }

    /// Consumer side: drain everything currently queued, in order.
    pub fn drain(&self) -> Vec<TelemetryEvent> {
        self.inner.lock().queue.drain(..).collect()
    }

    /// Events lost to backpressure since creation.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// Events currently waiting.
    pub fn len(&self) -> usize {
        self.inner.lock().queue.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use megate_packet::{FiveTuple, Proto};

    fn tuple(p: u16) -> FiveTuple {
        FiveTuple {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 0, 2],
            proto: Proto::Udp,
            src_port: p,
            dst_port: 1,
        }
    }

    #[test]
    fn fifo_order_preserved() {
        let rb = RingBuffer::new(8);
        for p in 0..5 {
            assert!(rb.publish(TelemetryEvent::NewFlow { tuple: tuple(p) }));
        }
        let events = rb.drain();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(
                e,
                &TelemetryEvent::NewFlow {
                    tuple: tuple(i as u16)
                }
            );
        }
        assert!(rb.is_empty());
    }

    #[test]
    fn producer_drops_when_full() {
        let rb = RingBuffer::new(2);
        assert!(rb.publish(TelemetryEvent::AccountingMiss));
        assert!(rb.publish(TelemetryEvent::AccountingMiss));
        assert!(!rb.publish(TelemetryEvent::AccountingMiss));
        assert_eq!(rb.dropped(), 1);
        assert_eq!(rb.len(), 2);
        // Draining frees capacity again.
        rb.drain();
        assert!(rb.publish(TelemetryEvent::AccountingMiss));
    }

    #[test]
    fn concurrent_producers_never_lose_accepted_events() {
        let rb = RingBuffer::new(100_000);
        std::thread::scope(|s| {
            for t in 0..4u16 {
                let rb = rb.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        rb.publish(TelemetryEvent::NewFlow {
                            tuple: tuple(t * 1000 + i),
                        });
                    }
                });
            }
        });
        assert_eq!(rb.len(), 4000);
        assert_eq!(rb.dropped(), 0);
    }
}
