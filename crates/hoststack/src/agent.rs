//! The endpoint agent: the user-space process on every end host.
//!
//! "In each end host, there is an endpoint agent, which is used for the
//! interaction between the controller and endpoint" (§5.1). Its two
//! jobs:
//!
//! * **Flow readout** — periodically (once per TE interval) join
//!   `inf_map ⨝ traffic_map` into instance-level flow records
//!   `(ins_id, volume)` and reset the counters;
//! * **Path installation** — when a new TE configuration version is
//!   pulled from the TE database (§3.2), write the per-instance paths
//!   into `path_map` so the TC program starts labelling packets.
//!
//! The agent is deliberately ignorant of *how* configurations arrive —
//! the bottom-up pull loop lives in `megate-tedb` / the core crate.

use crate::kernel::InstanceId;
use crate::programs::HostMaps;
use megate_packet::FiveTuple;
use std::collections::HashMap;

/// One instance-level flow record reported to the control plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRecord {
    /// Originating virtual instance.
    pub instance: InstanceId,
    /// The flow's five-tuple.
    pub tuple: FiveTuple,
    /// Bytes observed during the TE interval.
    pub bytes: u64,
}

/// A path to install for an instance's traffic toward a destination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathInstall {
    /// The instance whose packets get this path.
    pub instance: InstanceId,
    /// Destination address the path applies to.
    pub dst_ip: [u8; 4],
    /// SR hop list (site ids along the WAN).
    pub hops: Vec<u32>,
}

/// The user-space endpoint agent of one host.
#[derive(Debug, Clone)]
pub struct EndpointAgent {
    maps: HostMaps,
    config_version: u64,
    degraded: bool,
    /// Flight-recorder identity: the endpoint id this agent serves,
    /// stamped on [`megate_obs::trace::Stage::Install`] events so a
    /// propagation dump can follow one endpoint end to end. 0 (the
    /// default) means "unidentified" — events still record.
    ident: u64,
}

impl EndpointAgent {
    /// An agent sharing the host's eBPF maps.
    pub fn new(maps: HostMaps) -> Self {
        Self {
            maps,
            config_version: 0,
            degraded: false,
            ident: 0,
        }
    }

    /// Sets the agent's flight-recorder identity (its endpoint id).
    pub fn set_identity(&mut self, endpoint: u64) {
        self.ident = endpoint;
    }

    /// The agent's flight-recorder identity.
    pub fn identity(&self) -> u64 {
        self.ident
    }

    /// The TE configuration version currently installed.
    pub fn config_version(&self) -> u64 {
        self.config_version
    }

    /// Whether the agent has degraded to site-level/ECMP forwarding
    /// because its configuration went stale past the TTL.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Graceful degradation: stop steering on stale state. Flushes the
    /// SR `path_map` (egress falls back to site-level/ECMP forwarding —
    /// suboptimal but correct) and resets the local version to 0, so
    /// the next successful pull rebuilds full state from a cold start
    /// (complete delta replay or snapshot) rather than patching an
    /// emptied map.
    pub fn degrade(&mut self) {
        self.flush_paths();
        self.config_version = 0;
        self.degraded = true;
    }

    /// Reads and resets the interval's flow statistics, joined to
    /// instance ids. Flows that cannot be attributed to an instance
    /// (no `inf_map` entry) are returned with their tuple but dropped
    /// from the instance report, mirroring the paper's join of
    /// `inf_map` and `traffic_map`.
    pub fn collect_flows(&self) -> Vec<FlowRecord> {
        let counters = self.maps.traffic_map.drain();
        let mut out = Vec::with_capacity(counters.len());
        for (tuple, bytes) in counters {
            if let Some(instance) = self.maps.inf_map.lookup(&tuple) {
                out.push(FlowRecord {
                    instance,
                    tuple,
                    bytes,
                });
            }
        }
        // Deterministic report order.
        out.sort_by_key(|a| (a.instance, a.tuple));
        out
    }

    /// Aggregates a flow report to per-instance volumes — the
    /// `(ins_id, volume)` tuples the backend stores.
    pub fn per_instance_volume(records: &[FlowRecord]) -> HashMap<InstanceId, u64> {
        let mut m = HashMap::new();
        for r in records {
            *m.entry(r.instance).or_insert(0) += r.bytes;
        }
        m
    }

    /// Installs a new TE configuration: replaces the paths of every
    /// instance mentioned and bumps the local version. Returns how many
    /// entries were written (map-full failures are skipped and counted
    /// out of the return value).
    pub fn install_config(&mut self, version: u64, paths: &[PathInstall]) -> usize {
        let mut written = 0;
        for p in paths {
            if self
                .maps
                .path_map
                .update((p.instance, p.dst_ip), p.hops.clone())
                .is_ok()
            {
                written += 1;
            }
        }
        self.config_version = version;
        self.degraded = false;
        megate_obs::trace::record(
            megate_obs::trace::Stage::Install,
            version,
            self.ident,
            written as u64,
        );
        written
    }

    /// Installs a *full snapshot* for one instance: every previously
    /// installed path of that instance that the snapshot does not
    /// mention is withdrawn, then the snapshot's paths are written —
    /// leaving `path_map` exactly as if the instance had been
    /// configured from scratch. Entries of other instances are
    /// untouched. Returns how many entries were written.
    ///
    /// (The stale-entry sweep scans the map — fine for a per-host map;
    /// a real agent keeps its installed key set and deletes directly.)
    pub fn install_snapshot(
        &mut self,
        version: u64,
        instance: InstanceId,
        paths: &[PathInstall],
    ) -> usize {
        let keep: std::collections::HashSet<[u8; 4]> = paths.iter().map(|p| p.dst_ip).collect();
        for (key, _) in self.maps.path_map.snapshot() {
            if key.0 == instance && !keep.contains(&key.1) {
                let _ = self.maps.path_map.delete(&key);
            }
        }
        self.install_config(version, paths)
    }

    /// Applies a configuration *delta* in place against the installed
    /// `path_map`: upserts the changed paths, withdraws the removed
    /// destinations, bumps the local version. Starting from the state a
    /// full install of the delta's base version would leave, the result
    /// is identical to a full install of `version` — the equivalence
    /// the control-loop tests assert. Returns entries written.
    pub fn apply_delta(
        &mut self,
        version: u64,
        changed: &[PathInstall],
        removed: &[(InstanceId, [u8; 4])],
    ) -> usize {
        for key in removed {
            let _ = self.maps.path_map.delete(key);
        }
        self.install_config(version, changed)
    }

    /// Removes all installed paths (used when an instance is
    /// decommissioned or on agent restart).
    pub fn flush_paths(&self) {
        let _ = self.maps.path_map.drain();
    }

    /// Access to the shared maps (tests, kernel wiring).
    pub fn maps(&self) -> &HostMaps {
        &self.maps
    }
}

/// One `path_map` entry as returned by snapshots: the `(instance,
/// destination)` key and its SR hop list.
pub type PathMapEntry = ((InstanceId, [u8; 4]), Vec<u32>);

/// Registers a fresh instance lifecycle on a kernel: process start +
/// first connection. Convenience for simulations that bring up many
/// endpoints.
pub fn bring_up_instance(
    kernel: &crate::kernel::SimKernel,
    instance: InstanceId,
    pid: crate::kernel::Pid,
    tuples: &[FiveTuple],
) -> Result<(), crate::maps::MapError> {
    kernel.spawn_process(instance, pid)?;
    for &t in tuples {
        kernel.open_connection(pid, t)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{Pid, SimKernel};
    use megate_packet::{MegaTeFrameSpec, Proto};

    fn tuple(sp: u16) -> FiveTuple {
        FiveTuple {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 0, 1, 1],
            proto: Proto::Tcp,
            src_port: sp,
            dst_port: 80,
        }
    }

    fn run_frames(kernel: &SimKernel, t: FiveTuple, n: usize) {
        for _ in 0..n {
            let mut f = MegaTeFrameSpec::simple(t, 1, None).build();
            kernel.tc_egress(&mut f);
        }
    }

    #[test]
    fn collect_joins_and_resets() {
        let kernel = SimKernel::new();
        let agent = EndpointAgent::new(kernel.maps().clone());
        bring_up_instance(&kernel, InstanceId(1), Pid(100), &[tuple(1)]).unwrap();
        run_frames(&kernel, tuple(1), 3);

        let recs = agent.collect_flows();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].instance, InstanceId(1));
        assert!(recs[0].bytes > 0);
        // Second collection sees nothing: counters were reset.
        assert!(agent.collect_flows().is_empty());
    }

    #[test]
    fn unattributed_flows_excluded_from_report() {
        let kernel = SimKernel::new();
        let agent = EndpointAgent::new(kernel.maps().clone());
        run_frames(&kernel, tuple(9), 2); // no execve/conntrack seen
        assert!(agent.collect_flows().is_empty());
    }

    #[test]
    fn per_instance_volume_sums_flows() {
        let kernel = SimKernel::new();
        let agent = EndpointAgent::new(kernel.maps().clone());
        bring_up_instance(&kernel, InstanceId(1), Pid(100), &[tuple(1), tuple(2)]).unwrap();
        run_frames(&kernel, tuple(1), 2);
        run_frames(&kernel, tuple(2), 3);
        let recs = agent.collect_flows();
        let vol = EndpointAgent::per_instance_volume(&recs);
        assert_eq!(vol.len(), 1);
        assert!(vol[&InstanceId(1)] > 0);
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn install_config_bumps_version_and_activates_sr() {
        let kernel = SimKernel::new();
        let mut agent = EndpointAgent::new(kernel.maps().clone());
        bring_up_instance(&kernel, InstanceId(4), Pid(5), &[tuple(7)]).unwrap();

        assert_eq!(agent.config_version(), 0);
        let n = agent.install_config(
            3,
            &[PathInstall {
                instance: InstanceId(4),
                dst_ip: tuple(7).dst_ip,
                hops: vec![2, 6],
            }],
        );
        assert_eq!(n, 1);
        assert_eq!(agent.config_version(), 3);

        let mut f = MegaTeFrameSpec::simple(tuple(7), 1, None).build();
        let v = kernel.tc_egress(&mut f);
        assert_eq!(v, crate::kernel::TcVerdict::PassWithSr);
    }

    #[test]
    fn install_snapshot_withdraws_unmentioned_paths() {
        let kernel = SimKernel::new();
        let mut agent = EndpointAgent::new(kernel.maps().clone());
        let ins = InstanceId(4);
        agent.install_config(
            1,
            &[
                PathInstall {
                    instance: ins,
                    dst_ip: [10, 0, 0, 1],
                    hops: vec![2],
                },
                PathInstall {
                    instance: ins,
                    dst_ip: [10, 0, 0, 2],
                    hops: vec![3],
                },
            ],
        );
        // Another instance's entry must survive the snapshot install.
        agent.install_config(
            1,
            &[PathInstall {
                instance: InstanceId(9),
                dst_ip: [10, 0, 0, 1],
                hops: vec![7],
            }],
        );
        let n = agent.install_snapshot(
            2,
            ins,
            &[PathInstall {
                instance: ins,
                dst_ip: [10, 0, 0, 2],
                hops: vec![5],
            }],
        );
        assert_eq!(n, 1);
        assert_eq!(agent.config_version(), 2);
        let map = agent.maps().path_map.clone();
        assert_eq!(map.lookup(&(ins, [10, 0, 0, 1])), None, "withdrawn");
        assert_eq!(map.lookup(&(ins, [10, 0, 0, 2])), Some(vec![5]));
        assert_eq!(map.lookup(&(InstanceId(9), [10, 0, 0, 1])), Some(vec![7]));
    }

    #[test]
    fn delta_application_matches_snapshot_install() {
        let mk = |paths: &[PathInstall]| {
            let kernel = SimKernel::new();
            let mut agent = EndpointAgent::new(kernel.maps().clone());
            agent.install_config(1, paths);
            agent
        };
        let ins = InstanceId(4);
        let v1 = [
            PathInstall {
                instance: ins,
                dst_ip: [10, 0, 0, 1],
                hops: vec![2],
            },
            PathInstall {
                instance: ins,
                dst_ip: [10, 0, 0, 2],
                hops: vec![3, 4],
            },
        ];
        let v2 = [
            PathInstall {
                instance: ins,
                dst_ip: [10, 0, 0, 2],
                hops: vec![9],
            },
            PathInstall {
                instance: ins,
                dst_ip: [10, 0, 0, 3],
                hops: vec![1],
            },
        ];
        // Agent A: full snapshot install of v2.
        let mut a = mk(&v1);
        a.install_snapshot(2, ins, &v2);
        // Agent B: delta from v1 to v2.
        let mut b = mk(&v1);
        b.apply_delta(2, &v2, &[(ins, [10, 0, 0, 1])]);
        let sort = |mut v: Vec<PathMapEntry>| {
            v.sort();
            v
        };
        assert_eq!(
            sort(a.maps().path_map.snapshot()),
            sort(b.maps().path_map.snapshot()),
            "delta-applied state must equal snapshot install"
        );
        assert_eq!(a.config_version(), b.config_version());
    }

    #[test]
    fn flush_paths_disables_sr() {
        let kernel = SimKernel::new();
        let mut agent = EndpointAgent::new(kernel.maps().clone());
        bring_up_instance(&kernel, InstanceId(4), Pid(5), &[tuple(7)]).unwrap();
        agent.install_config(
            1,
            &[PathInstall {
                instance: InstanceId(4),
                dst_ip: tuple(7).dst_ip,
                hops: vec![2],
            }],
        );
        agent.flush_paths();
        let mut f = MegaTeFrameSpec::simple(tuple(7), 1, None).build();
        assert_eq!(kernel.tc_egress(&mut f), crate::kernel::TcVerdict::Pass);
    }

    #[test]
    fn degrade_flushes_paths_and_recovers_on_install() {
        let kernel = SimKernel::new();
        let mut agent = EndpointAgent::new(kernel.maps().clone());
        bring_up_instance(&kernel, InstanceId(4), Pid(5), &[tuple(7)]).unwrap();
        agent.install_config(
            5,
            &[PathInstall {
                instance: InstanceId(4),
                dst_ip: tuple(7).dst_ip,
                hops: vec![2],
            }],
        );
        assert!(!agent.is_degraded());
        agent.degrade();
        assert!(agent.is_degraded());
        assert_eq!(agent.config_version(), 0, "cold restart for the next pull");
        assert!(
            agent.maps().path_map.snapshot().is_empty(),
            "no SR steering while degraded"
        );
        // A fresh install (any successful pull) clears degradation.
        agent.install_config(
            6,
            &[PathInstall {
                instance: InstanceId(4),
                dst_ip: tuple(7).dst_ip,
                hops: vec![2],
            }],
        );
        assert!(!agent.is_degraded());
        assert_eq!(agent.config_version(), 6);
    }
}
