//! eBPF-style maps: bounded, shared key-value stores.
//!
//! "The eBPF maps are generic key-value stores used to store eBPF
//! program states, enabling communications among various eBPF programs
//! and between eBPF programs and user-space processes" (§5.1). We keep
//! the same semantics that shape real deployments: a fixed
//! `max_entries` bound (updates fail when full — kernel `E2BIG`/`ENOMEM`
//! behaviour), point lookups, and shared access from both the simulated
//! kernel and the user-space agent.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

/// Errors mirroring eBPF map syscall failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapError {
    /// The map is at `max_entries` and the key is new.
    Full,
    /// Key not present (delete/lookup-required paths).
    NotFound,
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::Full => write!(f, "map full"),
            MapError::NotFound => write!(f, "key not found"),
        }
    }
}

impl std::error::Error for MapError {}

/// Map flavour, mirroring `BPF_MAP_TYPE_HASH` vs `BPF_MAP_TYPE_LRU_HASH`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// Plain hash: inserting a new key into a full map fails.
    Hash,
    /// LRU hash: inserting into a full map evicts the least-recently-
    /// used entry (what production deployments use for `frag_map` and
    /// `traffic_map`, where stale flows must not wedge accounting).
    LruHash,
}

#[derive(Debug)]
struct MapInner<K, V> {
    data: HashMap<K, (V, u64)>, // value + last-touch tick
    tick: u64,
}

/// A bounded, thread-shared key-value map with eBPF update semantics.
///
/// Clones share the same underlying storage (like holding two fds to
/// one map).
#[derive(Debug)]
pub struct EbpfMap<K, V> {
    name: &'static str,
    max_entries: usize,
    kind: MapKind,
    inner: Arc<RwLock<MapInner<K, V>>>,
    /// Live entry count exported as `hoststack.map.<name>.occupancy`.
    /// Maintained by ±deltas on insert/evict/delete/drain, so every
    /// host's instance of a same-named map (e.g. each host's
    /// `traffic_map`) aggregates into one process-wide gauge.
    occupancy: megate_obs::Gauge,
}

impl<K, V> Clone for EbpfMap<K, V> {
    fn clone(&self) -> Self {
        Self {
            name: self.name,
            max_entries: self.max_entries,
            kind: self.kind,
            inner: Arc::clone(&self.inner),
            occupancy: self.occupancy.clone(),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> EbpfMap<K, V> {
    /// Creates a plain hash map with a capacity bound.
    pub fn new(name: &'static str, max_entries: usize) -> Self {
        Self::with_kind(name, max_entries, MapKind::Hash)
    }

    /// Creates an LRU hash map with a capacity bound.
    pub fn new_lru(name: &'static str, max_entries: usize) -> Self {
        Self::with_kind(name, max_entries, MapKind::LruHash)
    }

    /// Creates a map of the given kind.
    pub fn with_kind(name: &'static str, max_entries: usize, kind: MapKind) -> Self {
        assert!(max_entries > 0, "map must allow at least one entry");
        Self {
            name,
            max_entries,
            kind,
            inner: Arc::new(RwLock::new(MapInner {
                data: HashMap::new(),
                tick: 0,
            })),
            occupancy: megate_obs::gauge(&format!("hoststack.map.{name}.occupancy")),
        }
    }

    /// The map's flavour.
    pub fn kind(&self) -> MapKind {
        self.kind
    }

    /// The map's name (matching Figure 6's labels).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity bound.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.inner.read().data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().data.is_empty()
    }

    /// Point lookup (clones the value, like `bpf_map_lookup_elem` copies
    /// out). Refreshes LRU recency.
    pub fn lookup(&self, key: &K) -> Option<V> {
        let mut g = self.inner.write();
        g.tick += 1;
        let tick = g.tick;
        g.data.get_mut(key).map(|(v, t)| {
            *t = tick;
            v.clone()
        })
    }

    /// Insert-or-overwrite (`BPF_ANY`). A full plain-hash map rejects
    /// new keys with [`MapError::Full`]; a full LRU map evicts the
    /// least-recently-used entry instead.
    pub fn update(&self, key: K, value: V) -> Result<(), MapError> {
        let mut g = self.inner.write();
        g.tick += 1;
        let tick = g.tick;
        let new_key = !g.data.contains_key(&key);
        if new_key && g.data.len() >= self.max_entries {
            match self.kind {
                MapKind::Hash => return Err(MapError::Full),
                // The new key replaces the evicted one: occupancy
                // is unchanged.
                MapKind::LruHash => evict_lru(&mut g),
            }
        } else if new_key {
            self.occupancy.add(1);
        }
        g.data.insert(key, (value, tick));
        Ok(())
    }

    /// Read-modify-write of one entry, inserting `default` first when
    /// absent (the common eBPF counter-update idiom).
    pub fn upsert_with(&self, key: K, default: V, f: impl FnOnce(&mut V)) -> Result<(), MapError> {
        let mut g = self.inner.write();
        g.tick += 1;
        let tick = g.tick;
        let new_key = !g.data.contains_key(&key);
        if new_key && g.data.len() >= self.max_entries {
            match self.kind {
                MapKind::Hash => return Err(MapError::Full),
                MapKind::LruHash => evict_lru(&mut g),
            }
        } else if new_key {
            self.occupancy.add(1);
        }
        let entry = g.data.entry(key).or_insert((default, tick));
        entry.1 = tick;
        f(&mut entry.0);
        Ok(())
    }

    /// Bulk read-modify-write under a **single** lock acquisition — the
    /// sync-tick merge path of the batched TC chain (DESIGN.md §5d).
    ///
    /// For each `(key, value)` pair: an existing entry is combined via
    /// `combine(&mut current, value)`; a new key is inserted (calling
    /// `on_new` — the batched path's new-flow detection hook), subject
    /// to the same capacity rule as [`update`](Self::update): a full
    /// plain-hash map rejects the new key (counted in the returned
    /// total), a full LRU map evicts. Per-entry semantics are identical
    /// to calling [`upsert_with`](Self::upsert_with) in a loop; only
    /// the locking is amortized.
    pub fn upsert_many_with(
        &self,
        entries: impl IntoIterator<Item = (K, V)>,
        mut combine: impl FnMut(&mut V, V),
        mut on_new: impl FnMut(&K),
    ) -> usize {
        let mut g = self.inner.write();
        let mut rejected = 0usize;
        let mut inserted = 0i64;
        for (key, value) in entries {
            g.tick += 1;
            let tick = g.tick;
            if let Some(entry) = g.data.get_mut(&key) {
                entry.1 = tick;
                combine(&mut entry.0, value);
                continue;
            }
            if g.data.len() >= self.max_entries {
                match self.kind {
                    MapKind::Hash => {
                        rejected += 1;
                        continue;
                    }
                    MapKind::LruHash => evict_lru(&mut g),
                }
            } else {
                inserted += 1;
            }
            on_new(&key);
            g.data.insert(key, (value, tick));
        }
        self.occupancy.add(inserted);
        rejected
    }

    /// Deletes an entry.
    pub fn delete(&self, key: &K) -> Result<V, MapError> {
        let removed = self.inner.write().data.remove(key);
        if removed.is_some() {
            self.occupancy.sub(1);
        }
        removed.map(|(v, _)| v).ok_or(MapError::NotFound)
    }

    /// Snapshot of all entries (the user-space "iterate map" path the
    /// endpoint agent uses for periodic collection).
    pub fn snapshot(&self) -> Vec<(K, V)> {
        self.inner
            .read()
            .data
            .iter()
            .map(|(k, (v, _))| (k.clone(), v.clone()))
            .collect()
    }

    /// Removes and returns all entries atomically (collect-and-reset at
    /// the end of a TE period).
    pub fn drain(&self) -> Vec<(K, V)> {
        let out: Vec<(K, V)> = self
            .inner
            .write()
            .data
            .drain()
            .map(|(k, (v, _))| (k, v))
            .collect();
        self.occupancy.sub(out.len() as i64);
        out
    }
}

/// Evicts the least-recently-touched entry (linear scan — map sizes in
/// the simulation are modest, and real LRU maps amortize differently).
fn evict_lru<K: Eq + Hash + Clone, V>(g: &mut MapInner<K, V>) {
    if let Some(oldest) = g
        .data
        .iter()
        .min_by_key(|(_, (_, t))| *t)
        .map(|(k, _)| k.clone())
    {
        g.data.remove(&oldest);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_lookup_delete_cycle() {
        let m: EbpfMap<u32, String> = EbpfMap::new("test", 4);
        assert!(m.is_empty());
        m.update(1, "a".into()).unwrap();
        assert_eq!(m.lookup(&1), Some("a".into()));
        m.update(1, "b".into()).unwrap(); // overwrite allowed
        assert_eq!(m.lookup(&1), Some("b".into()));
        assert_eq!(m.delete(&1).unwrap(), "b");
        assert_eq!(m.delete(&1), Err(MapError::NotFound));
    }

    #[test]
    fn full_map_rejects_new_keys_but_allows_overwrites() {
        let m: EbpfMap<u32, u32> = EbpfMap::new("small", 2);
        m.update(1, 10).unwrap();
        m.update(2, 20).unwrap();
        assert_eq!(m.update(3, 30), Err(MapError::Full));
        m.update(2, 25).unwrap(); // existing key still updatable
        assert_eq!(m.lookup(&2), Some(25));
    }

    #[test]
    fn upsert_with_counts_like_traffic_map() {
        let m: EbpfMap<u8, u64> = EbpfMap::new("traffic", 8);
        for bytes in [100u64, 200, 50] {
            m.upsert_with(7, 0, |v| *v += bytes).unwrap();
        }
        assert_eq!(m.lookup(&7), Some(350));
    }

    #[test]
    fn clones_share_storage() {
        let a: EbpfMap<u8, u8> = EbpfMap::new("shared", 4);
        let b = a.clone();
        a.update(1, 1).unwrap();
        assert_eq!(b.lookup(&1), Some(1));
        b.delete(&1).unwrap();
        assert!(a.is_empty());
    }

    #[test]
    fn drain_empties_and_returns_all() {
        let m: EbpfMap<u8, u8> = EbpfMap::new("drain", 4);
        m.update(1, 1).unwrap();
        m.update(2, 2).unwrap();
        let mut all = m.drain();
        all.sort();
        assert_eq!(all, vec![(1, 1), (2, 2)]);
        assert!(m.is_empty());
    }

    #[test]
    fn lru_map_evicts_oldest_on_pressure() {
        let m: EbpfMap<u8, u8> = EbpfMap::new_lru("lru", 3);
        m.update(1, 1).unwrap();
        m.update(2, 2).unwrap();
        m.update(3, 3).unwrap();
        // Touch key 1 so key 2 becomes the LRU victim.
        assert_eq!(m.lookup(&1), Some(1));
        m.update(4, 4).unwrap(); // evicts 2
        assert_eq!(m.len(), 3);
        assert_eq!(m.lookup(&2), None);
        assert_eq!(m.lookup(&1), Some(1));
        assert_eq!(m.lookup(&4), Some(4));
    }

    #[test]
    fn lru_upsert_also_evicts() {
        let m: EbpfMap<u8, u64> = EbpfMap::new_lru("lru2", 2);
        m.upsert_with(1, 0, |v| *v += 1).unwrap();
        m.upsert_with(2, 0, |v| *v += 1).unwrap();
        m.upsert_with(3, 0, |v| *v += 1).unwrap(); // evicts 1
        assert_eq!(m.lookup(&1), None);
        assert_eq!(m.lookup(&3), Some(1));
        assert_eq!(m.kind(), MapKind::LruHash);
    }

    #[test]
    fn plain_hash_still_rejects_when_full() {
        let m: EbpfMap<u8, u8> = EbpfMap::new("plain", 1);
        m.update(1, 1).unwrap();
        assert_eq!(m.update(2, 2), Err(MapError::Full));
        assert_eq!(m.kind(), MapKind::Hash);
    }

    #[test]
    fn concurrent_counters_do_not_lose_updates() {
        let m: EbpfMap<u8, u64> = EbpfMap::new("conc", 4);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.upsert_with(0, 0, |v| *v += 1).unwrap();
                    }
                });
            }
        });
        assert_eq!(m.lookup(&0), Some(4000));
    }
}
