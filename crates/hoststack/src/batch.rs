//! Per-CPU shard-local accumulators for the batched TC fast path
//! (DESIGN.md §5d).
//!
//! The single-frame TC chain takes the shared-map write lock once per
//! frame; at millions of frames per second over N cores that lock is
//! the bottleneck, not the parsing. The batched path gives each worker
//! core a private [`CpuShard`]: flow bytes and fragment seeds
//! accumulate in thread-local hash maps with no synchronization at
//! all, and a periodic **sync tick** ([`CpuShard::merge_into`]) folds
//! them into the shared [`HostMaps`] under one lock acquisition per
//! map. Because flow accounting is additive (`bytes += len`) the final
//! `traffic_map` totals are bitwise identical to the single-frame
//! path's, whatever the merge cadence — `tests/dataplane_batch.rs`
//! proves it on mixed traces.
//!
//! Fragment resolution stays **ordered within a worker**: a non-first
//! fragment first consults the local overlay (seeds from earlier
//! frames of this worker not yet merged), then the shared `frag_map`.
//! Keeping all fragments of a datagram on one core — what NIC RSS
//! hashing on the IP pair does in production — therefore preserves the
//! single-frame path's resolution behaviour exactly.

use crate::kernel::TcStats;
use crate::programs::HostMaps;
use crate::ringbuf::TelemetryEvent;
use megate_packet::FiveTuple;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-xor hasher for the shard-local maps.
///
/// Shard accumulators are private to one thread and never face
/// adversarial keys, so the hot path skips SipHash's DoS hardening —
/// five-tuple hashing is a large share of per-frame batch cost.
#[derive(Debug, Default, Clone)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(26) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("chunk of 8")));
        }
        let mut last = 0u64;
        for &b in chunks.remainder() {
            last = last << 8 | u64::from(b);
        }
        self.add(last);
    }
    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }
    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }
    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub(crate) type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Summary of one [`process_batch`](crate::programs::process_batch)
/// call — the batch-granular analogue of the per-frame
/// [`TcVerdict`](crate::kernel::TcVerdict).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchSummary {
    /// Frames in the batch.
    pub frames: usize,
    /// Frames that parsed as VXLAN (billable).
    pub vxlan_frames: usize,
    /// Frames that left with a freshly inserted SR header.
    pub sr_inserted: usize,
    /// Frames attributed to an instance (`inf_map` hit).
    pub attributed: usize,
    /// Non-first fragments resolved (local overlay or shared map).
    pub fragments_resolved: usize,
    /// Frames whose bytes could not be billed (orphan fragments).
    pub accounting_misses: usize,
}

/// One worker core's private accumulator state.
///
/// Lives on the worker's stack/thread; never shared. All recording is
/// plain hash-map mutation, merged into the shared maps on the sync
/// tick. Scratch buffers for the per-batch lookup pass live here too,
/// so steady-state batch processing allocates nothing.
#[derive(Debug, Default)]
pub struct CpuShard {
    /// Locally accumulated `5tuple → bytes` deltas.
    pub(crate) traffic: FxMap<FiveTuple, u64>,
    /// Locally seeded `ipid → 5tuple` fragment resolutions, pending
    /// merge; doubles as the in-order overlay for non-first fragments
    /// arriving before the next sync tick.
    pub(crate) frag: FxMap<u16, FiveTuple>,
    /// Local TC counters since the last merge.
    pub(crate) stats: TcStats,
    /// Orphan-fragment subset of the misses in `stats`, tracked apart
    /// because the process-wide metrics split it out.
    pub(crate) frag_orphans: u64,
    /// Telemetry events (SR insertions) queued for the next merge.
    pub(crate) events: Vec<TelemetryEvent>,
    /// `5tuple → instance` lookup cache, memoized across the sync
    /// epoch: the shared `inf_map` is consulted at most once per
    /// distinct tuple between merges (control-plane reads are
    /// epoch-granular by design — §5d).
    pub(crate) inf_cache: FxMap<FiveTuple, Option<crate::kernel::InstanceId>>,
    /// `(instance, dst) → SR hops` lookup cache, memoized across the
    /// sync epoch like `inf_cache`.
    pub(crate) path_cache: FxMap<(crate::kernel::InstanceId, [u8; 4]), Option<Vec<u32>>>,
    /// Per-batch scratch: resolved billing tuple per frame.
    pub(crate) tuples: Vec<Option<FiveTuple>>,
    /// Per-batch scratch: reusable descriptor array for
    /// [`SimKernel::tc_egress_batch`](crate::kernel::SimKernel::tc_egress_batch).
    pub(crate) descs: Vec<megate_packet::FrameDescriptor>,
}

impl CpuShard {
    /// A fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flow-byte entries waiting for the next sync tick.
    pub fn pending_flows(&self) -> usize {
        self.traffic.len()
    }

    /// Fragment seeds waiting for the next sync tick.
    pub fn pending_frags(&self) -> usize {
        self.frag.len()
    }

    /// Local TC counters accumulated since the last merge.
    pub fn stats(&self) -> TcStats {
        self.stats
    }

    /// The sync tick: folds everything accumulated since the last
    /// merge into the shared maps, publishes queued telemetry, and
    /// returns (and resets) the local [`TcStats`] delta.
    ///
    /// Flow bytes are *added* to `traffic_map` (additive merge — order
    /// across shards cannot change totals) under one lock acquisition
    /// for the whole shard ([`crate::EbpfMap::upsert_many_with`]); fragment
    /// seeds are folded into `frag_map` the same way. A merge that
    /// fails on a full plain-hash map counts accounting misses exactly
    /// like the single-frame path. `NewFlow` telemetry fires here, for
    /// tuples the shared map had not seen — batch-path flow discovery
    /// is sync-tick-granular by design (§5d). The epoch-scoped
    /// `inf_map`/`path_map` caches are invalidated, so the next batch
    /// re-reads control state.
    pub fn merge_into(&mut self, maps: &HostMaps) -> TcStats {
        let span = megate_obs::span("hoststack.batch.merge");
        let events = &mut self.events;
        let rejected = maps.traffic_map.upsert_many_with(
            self.traffic.drain(),
            |total, bytes| *total += bytes,
            |tuple| events.push(TelemetryEvent::NewFlow { tuple: *tuple }),
        );
        self.stats.accounting_misses += rejected as u64;
        events.extend((0..rejected).map(|_| TelemetryEvent::AccountingMiss));
        let frag_rejected =
            maps.frag_map
                .upsert_many_with(self.frag.drain(), |cur, tuple| *cur = tuple, |_| {});
        self.stats.accounting_misses += frag_rejected as u64;
        maps.telemetry.publish_all(self.events.drain(..));
        maps.tc_metrics.add_batch(&self.stats, self.frag_orphans);
        self.frag_orphans = 0;
        self.inf_cache.clear();
        self.path_cache.clear();
        drop(span);
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{InstanceId, Pid, SimKernel};
    use megate_packet::{FrameBatch, MegaTeFrameSpec, Proto};

    fn tuple(port: u16) -> FiveTuple {
        FiveTuple {
            src_ip: [10, 0, 0, 1],
            dst_ip: [10, 9, 9, 9],
            proto: Proto::Udp,
            src_port: port,
            dst_port: 443,
        }
    }

    /// Two kernels, same frames: one per-frame, one batched+merged.
    /// Shared-map state must come out identical.
    #[test]
    fn batched_path_matches_single_frame_path() {
        let serial = SimKernel::new();
        let batched = SimKernel::new();
        for k in [&serial, &batched] {
            k.spawn_process(InstanceId(7), Pid(1)).unwrap();
            k.open_connection(Pid(1), tuple(1)).unwrap();
            k.maps()
                .path_map
                .update((InstanceId(7), tuple(1).dst_ip), vec![3, 1])
                .unwrap();
        }

        let mut frames = Vec::new();
        // Labelled flow, unlabelled flow, fragment pair, noise.
        frames.push(MegaTeFrameSpec::simple(tuple(1), 5, None).build());
        frames.push(MegaTeFrameSpec::simple(tuple(2), 5, None).build());
        let mut first = MegaTeFrameSpec::simple(tuple(1), 5, None);
        first.inner_ipid = 0xBEEF;
        first.inner_fragment = (0, true);
        frames.push(first.build());
        let mut second = MegaTeFrameSpec::simple(tuple(1), 5, None);
        second.inner_ipid = 0xBEEF;
        second.inner_fragment = (1480, false);
        frames.push(second.build());
        frames.push(vec![0xAA; 60]);

        let mut serial_frames = frames.clone();
        for f in &mut serial_frames {
            serial.tc_egress(f);
        }

        let mut batch = FrameBatch::new();
        for f in &frames {
            batch.push(f);
        }
        let mut cpu = CpuShard::new();
        let summary = batched.tc_egress_batch(&mut batch, &mut cpu);
        assert_eq!(summary.frames, 5);
        assert_eq!(summary.vxlan_frames, 4);
        assert_eq!(summary.fragments_resolved, 1);
        // Nothing shared until the sync tick.
        assert!(batched.maps().traffic_map.is_empty());
        batched.sync_cpu(&mut cpu);

        let mut a = serial.maps().traffic_map.snapshot();
        let mut b = batched.maps().traffic_map.snapshot();
        a.sort();
        b.sort();
        assert_eq!(a, b, "traffic_map totals must match bitwise");
        assert_eq!(
            serial.maps().frag_map.snapshot().len(),
            batched.maps().frag_map.snapshot().len()
        );
        assert_eq!(serial.stats(), batched.stats());
        // Rewritten frames are byte-identical too.
        for (i, f) in serial_frames.iter().enumerate() {
            assert_eq!(batch.frame(i), &f[..], "frame {i}");
        }
    }

    #[test]
    fn fragment_resolves_through_local_overlay_before_merge() {
        let k = SimKernel::new();
        let mut cpu = CpuShard::new();
        let mut first = MegaTeFrameSpec::simple(tuple(9), 3, None);
        first.inner_ipid = 0x0101;
        first.inner_fragment = (0, true);
        let mut second = MegaTeFrameSpec::simple(tuple(9), 3, None);
        second.inner_ipid = 0x0101;
        second.inner_fragment = (1480, false);

        // First fragment in one batch, second in the next — no sync
        // tick in between: the overlay must carry the seed across.
        let mut b1 = FrameBatch::new();
        b1.push(&first.build());
        k.tc_egress_batch(&mut b1, &mut cpu);
        let mut b2 = FrameBatch::new();
        b2.push(&second.build());
        let s = k.tc_egress_batch(&mut b2, &mut cpu);
        assert_eq!(s.fragments_resolved, 1);
        assert_eq!(s.accounting_misses, 0);
        assert_eq!(cpu.pending_frags(), 1);
        k.sync_cpu(&mut cpu);
        assert!(k.maps().frag_map.lookup(&0x0101).is_some());
    }

    #[test]
    fn merge_counts_misses_on_full_map_like_serial_path() {
        let maps = HostMaps {
            traffic_map: crate::maps::EbpfMap::new("tiny", 1),
            ..HostMaps::new()
        };
        let k = SimKernel::with_maps(maps);
        let mut cpu = CpuShard::new();
        let mut batch = FrameBatch::new();
        batch.push(&MegaTeFrameSpec::simple(tuple(1), 3, None).build());
        batch.push(&MegaTeFrameSpec::simple(tuple(2), 3, None).build());
        k.tc_egress_batch(&mut batch, &mut cpu);
        let delta = k.sync_cpu(&mut cpu);
        assert_eq!(delta.accounting_misses, 1, "second flow cannot fit");
        assert_eq!(k.stats().accounting_misses, 1);
    }

    #[test]
    fn new_flow_telemetry_fires_once_per_flow_at_merge() {
        let k = SimKernel::new();
        let mut cpu = CpuShard::new();
        let mut batch = FrameBatch::new();
        for _ in 0..3 {
            batch.push(&MegaTeFrameSpec::simple(tuple(4), 3, None).build());
        }
        k.tc_egress_batch(&mut batch, &mut cpu);
        k.sync_cpu(&mut cpu);
        let new_flows = k
            .maps()
            .telemetry
            .drain()
            .iter()
            .filter(|e| matches!(e, TelemetryEvent::NewFlow { .. }))
            .count();
        assert_eq!(new_flows, 1, "one NewFlow for three frames of one flow");
    }
}
