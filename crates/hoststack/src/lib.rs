//! Simulated eBPF-based host networking stack (§5.1, Figure 6).
//!
//! The paper attaches eBPF programs to three kernel hooks on every end
//! host:
//!
//! * `tracepoint:syscalls/sys_enter_execve` — records `(pid, ins_id)` in
//!   `env_map` when a virtual instance starts a process;
//! * `kprobe:ctnetlink_conntrack_event` — records `(5tuple, pid)` in
//!   `contk_map` when a process opens a connection, and joins the two
//!   maps into `inf_map: 5tuple → ins_id`;
//! * the TC (traffic control) egress hook — per packet: flow accounting
//!   into `traffic_map` (with `frag_map` resolving non-first IP
//!   fragments), and SR insertion from `path_map` (§5.2).
//!
//! Running true eBPF requires root and a recent kernel; this crate
//! executes the *identical map-manipulation and header-rewriting logic*
//! on a simulated kernel ([`SimKernel`]) that fires the same hooks with
//! the same event payloads, over real packet bytes (`megate-packet`).
//! Map types mirror eBPF semantics: bounded capacity, explicit
//! lookup/update/delete, shared between "kernel" programs and the
//! user-space [`agent::EndpointAgent`].
//!
//! Two execution models share that logic: the frame-at-a-time TC chain
//! ([`SimKernel::tc_egress`]) and the multi-core batched fast path
//! ([`SimKernel::tc_egress_batch`] + [`batch::CpuShard`]), which
//! accumulates accounting in per-CPU shards merged on a sync tick and
//! produces bitwise-identical `traffic_map` totals (DESIGN.md §5d).

#![warn(missing_docs)]

pub mod agent;
pub mod batch;
pub mod kernel;
pub mod maps;
pub mod programs;
pub mod ringbuf;

pub use agent::{EndpointAgent, FlowRecord, PathInstall, PathMapEntry};
pub use batch::{BatchSummary, CpuShard};
pub use kernel::{InstanceId, KernelEvent, Pid, SimKernel, TcStats, TcVerdict};
pub use maps::{EbpfMap, MapError, MapKind};
pub use programs::HostMaps;
pub use ringbuf::{RingBuffer, TelemetryEvent};
