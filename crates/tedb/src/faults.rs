//! Deterministic, seed-driven fault schedules for the TE database.
//!
//! A [`FaultPlan`] is a replayable timeline of shard faults — outages,
//! flapping (rapid down/up cycles), slow shards, lossy reads and
//! corrupting reads — generated from a [`FaultSpec`] seed. The chaos
//! harness drives one simulation tick at a time through
//! [`FaultPlan::apply_tick`]; identical seeds produce bitwise-identical
//! plans (guarded by a proptest below), so every chaos failure is
//! reproducible from its seed alone.
//!
//! The generator never schedules two overlapping faults of the same
//! kind on the same shard, and every fault ends by
//! [`FaultPlan::clear_tick`] — after that tick the database is
//! guaranteed healthy, which is what lets the chaos test assert
//! reconvergence "within two sync periods after faults clear".

use crate::store::{splitmix64, TeDatabase};
use std::collections::BTreeMap;

/// Parameters of a generated fault timeline. All probabilities are per
/// tick per shard; durations are in ticks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed of the whole timeline; same seed ⇒ same plan.
    pub seed: u64,
    /// Faults may *start* in ticks `[0, horizon)`; everything clears by
    /// [`FaultPlan::clear_tick`].
    pub horizon: u64,
    /// Chance per (tick, shard) that an outage starts.
    pub outage_rate: f64,
    /// Outage length in ticks (uniform in `[1, max_outage_ticks]`).
    pub max_outage_ticks: u64,
    /// Chance per (tick, shard) that a flapping burst starts: the shard
    /// alternates down/up every tick for `2 × flap_cycles` ticks.
    pub flap_rate: f64,
    /// Down/up cycles per flapping burst.
    pub flap_cycles: u64,
    /// Chance per (tick, shard) that a slow spell starts.
    pub slow_rate: f64,
    /// Injected latency during a slow spell, ns.
    pub slow_ns: u64,
    /// Chance per (tick, shard) that a lossy spell starts.
    pub loss_rate: f64,
    /// Read-loss probability during a lossy spell, ppm.
    pub loss_ppm: u32,
    /// Chance per (tick, shard) that a corrupting spell starts.
    pub corrupt_rate: f64,
    /// Read-corruption probability during a corrupting spell, ppm.
    pub corrupt_ppm: u32,
    /// Length of slow/lossy/corrupt spells, ticks.
    pub spell_ticks: u64,
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self {
            seed: 1,
            horizon: 24,
            outage_rate: 0.06,
            max_outage_ticks: 4,
            flap_rate: 0.03,
            flap_cycles: 2,
            slow_rate: 0.08,
            slow_ns: 200_000,
            loss_rate: 0.05,
            loss_ppm: 250_000,
            corrupt_rate: 0.04,
            corrupt_ppm: 200_000,
            spell_ticks: 3,
        }
    }
}

/// One scheduled state change on one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultEvent {
    /// Shard goes dark.
    Down {
        /// Target shard.
        shard: usize,
    },
    /// Shard recovers (triggers the repair pass on replicated DBs).
    Up {
        /// Target shard.
        shard: usize,
    },
    /// Shard starts (ns > 0) or stops (ns = 0) serving slowly.
    Slow {
        /// Target shard.
        shard: usize,
        /// Injected per-query latency; 0 ends the spell.
        ns: u64,
    },
    /// Shard starts (ppm > 0) or stops (ppm = 0) dropping reads.
    Lossy {
        /// Target shard.
        shard: usize,
        /// Read-loss probability; 0 ends the spell.
        ppm: u32,
    },
    /// Shard starts (ppm > 0) or stops (ppm = 0) corrupting reads.
    Corrupt {
        /// Target shard.
        shard: usize,
        /// Read-corruption probability; 0 ends the spell.
        ppm: u32,
    },
}

impl FaultEvent {
    /// Applies this event to the database.
    pub fn apply(&self, db: &TeDatabase) {
        match *self {
            FaultEvent::Down { shard } => db.set_shard_down(shard, true),
            FaultEvent::Up { shard } => db.set_shard_down(shard, false),
            FaultEvent::Slow { shard, ns } => db.set_shard_slow(shard, ns),
            FaultEvent::Lossy { shard, ppm } => db.set_shard_loss(shard, ppm),
            FaultEvent::Corrupt { shard, ppm } => db.set_shard_corrupt(shard, ppm),
        }
    }
}

/// A replayable fault timeline: tick → events firing at that tick.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Events by tick, in deterministic (shard, kind) order within a
    /// tick.
    pub events: BTreeMap<u64, Vec<FaultEvent>>,
    /// First tick at which the database is guaranteed fault-free and
    /// stays that way.
    pub clear_tick: u64,
}

/// Per-(shard, kind) occupancy so faults of one kind never overlap.
#[derive(Default, Clone, Copy)]
struct Busy {
    outage_until: u64,
    slow_until: u64,
    loss_until: u64,
    corrupt_until: u64,
}

impl FaultPlan {
    /// Generates the deterministic timeline for `n_shards` shards.
    /// Shard 0 is never faulted when `n_shards > 1`, so a replicated
    /// database always keeps at least one stable shard (and an
    /// unreplicated multi-shard run isn't trivially wedged forever).
    pub fn generate(spec: &FaultSpec, n_shards: usize) -> Self {
        let mut events: BTreeMap<u64, Vec<FaultEvent>> = BTreeMap::new();
        let mut busy = vec![Busy::default(); n_shards];
        let mut clear_tick = 0u64;
        let push = |events: &mut BTreeMap<u64, Vec<FaultEvent>>, tick: u64, ev: FaultEvent| {
            events.entry(tick).or_default().push(ev);
        };
        // One independent deterministic stream per (tick, shard, kind).
        let roll = |tick: u64, shard: usize, kind: u64| -> f64 {
            let x = splitmix64(
                spec.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (tick << 20)
                    ^ ((shard as u64) << 8)
                    ^ kind,
            );
            (x >> 11) as f64 / (1u64 << 53) as f64
        };
        let faultable = if n_shards > 1 {
            1..n_shards
        } else {
            0..n_shards
        };
        for tick in 0..spec.horizon {
            for shard in faultable.clone() {
                let b = &mut busy[shard];
                if tick >= b.outage_until {
                    if roll(tick, shard, 0) < spec.outage_rate {
                        let len = 1 + splitmix64(spec.seed ^ (tick << 32) ^ shard as u64)
                            % spec.max_outage_ticks.max(1);
                        push(&mut events, tick, FaultEvent::Down { shard });
                        push(&mut events, tick + len, FaultEvent::Up { shard });
                        b.outage_until = tick + len + 1;
                    } else if roll(tick, shard, 1) < spec.flap_rate {
                        // Flapping: down/up every tick for flap_cycles
                        // cycles.
                        let cycles = spec.flap_cycles.max(1);
                        for c in 0..cycles {
                            push(&mut events, tick + 2 * c, FaultEvent::Down { shard });
                            push(&mut events, tick + 2 * c + 1, FaultEvent::Up { shard });
                        }
                        b.outage_until = tick + 2 * cycles + 1;
                    }
                }
                if tick >= b.slow_until && roll(tick, shard, 2) < spec.slow_rate {
                    push(
                        &mut events,
                        tick,
                        FaultEvent::Slow {
                            shard,
                            ns: spec.slow_ns,
                        },
                    );
                    push(
                        &mut events,
                        tick + spec.spell_ticks.max(1),
                        FaultEvent::Slow { shard, ns: 0 },
                    );
                    b.slow_until = tick + spec.spell_ticks.max(1) + 1;
                }
                if tick >= b.loss_until && roll(tick, shard, 3) < spec.loss_rate {
                    push(
                        &mut events,
                        tick,
                        FaultEvent::Lossy {
                            shard,
                            ppm: spec.loss_ppm,
                        },
                    );
                    push(
                        &mut events,
                        tick + spec.spell_ticks.max(1),
                        FaultEvent::Lossy { shard, ppm: 0 },
                    );
                    b.loss_until = tick + spec.spell_ticks.max(1) + 1;
                }
                if tick >= b.corrupt_until && roll(tick, shard, 4) < spec.corrupt_rate {
                    push(
                        &mut events,
                        tick,
                        FaultEvent::Corrupt {
                            shard,
                            ppm: spec.corrupt_ppm,
                        },
                    );
                    push(
                        &mut events,
                        tick + spec.spell_ticks.max(1),
                        FaultEvent::Corrupt { shard, ppm: 0 },
                    );
                    b.corrupt_until = tick + spec.spell_ticks.max(1) + 1;
                }
            }
        }
        if let Some((&last, _)) = events.iter().next_back() {
            clear_tick = clear_tick.max(last + 1);
        }
        Self { events, clear_tick }
    }

    /// Applies every event scheduled at `tick` (recovery events run the
    /// database's repair pass via `set_shard_down(_, false)`).
    pub fn apply_tick(&self, tick: u64, db: &TeDatabase) {
        if let Some(evs) = self.events.get(&tick) {
            for ev in evs {
                ev.apply(db);
            }
        }
    }

    /// Total number of scheduled events.
    pub fn event_count(&self) -> usize {
        self.events.values().map(Vec::len).sum()
    }

    /// Number of fault *onsets* (Down / nonzero Slow / Lossy / Corrupt).
    pub fn onset_count(&self) -> usize {
        self.events
            .values()
            .flatten()
            .filter(|e| {
                matches!(
                    e,
                    FaultEvent::Down { .. }
                        | FaultEvent::Slow { ns: 1.., .. }
                        | FaultEvent::Lossy { ppm: 1.., .. }
                        | FaultEvent::Corrupt { ppm: 1.., .. }
                )
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn spec(seed: u64) -> FaultSpec {
        FaultSpec {
            seed,
            ..FaultSpec::default()
        }
    }

    #[test]
    fn same_seed_same_plan_different_seed_different_plan() {
        let a = FaultPlan::generate(&spec(11), 4);
        let b = FaultPlan::generate(&spec(11), 4);
        let c = FaultPlan::generate(&spec(12), 4);
        assert_eq!(a, b);
        assert_ne!(a, c, "distinct seeds should almost surely differ");
        assert!(
            a.event_count() > 0,
            "default rates should schedule something"
        );
    }

    #[test]
    fn every_down_is_paired_with_a_later_up() {
        let plan = FaultPlan::generate(&spec(3), 4);
        let mut depth = vec![0i64; 4];
        for evs in plan.events.values() {
            for ev in evs {
                match *ev {
                    FaultEvent::Down { shard } => {
                        depth[shard] += 1;
                        assert_eq!(depth[shard], 1, "no nested outages on shard {shard}");
                    }
                    FaultEvent::Up { shard } => depth[shard] -= 1,
                    _ => {}
                }
            }
        }
        assert!(
            depth.iter().all(|&d| d == 0),
            "unbalanced outages: {depth:?}"
        );
    }

    #[test]
    fn database_is_healthy_after_clear_tick() {
        let s = spec(5);
        let plan = FaultPlan::generate(&s, 4);
        let db = TeDatabase::with_replication(4, 2);
        for tick in 0..=plan.clear_tick {
            plan.apply_tick(tick, &db);
        }
        assert!(
            !db.any_fault_active(),
            "all faults must clear by clear_tick"
        );
        assert!(plan.clear_tick >= s.horizon.min(1), "faults do occur first");
    }

    #[test]
    fn shard_zero_is_spared_in_multi_shard_plans() {
        let plan = FaultPlan::generate(&spec(8), 4);
        for evs in plan.events.values() {
            for ev in evs {
                let shard = match *ev {
                    FaultEvent::Down { shard }
                    | FaultEvent::Up { shard }
                    | FaultEvent::Slow { shard, .. }
                    | FaultEvent::Lossy { shard, .. }
                    | FaultEvent::Corrupt { shard, .. } => shard,
                };
                assert_ne!(shard, 0, "shard 0 is the stability anchor");
            }
        }
    }

    /// FNV-1a over the plan's Debug form — a cheap structural
    /// fingerprint for the pin test below.
    fn plan_fingerprint(spec: &FaultSpec, shards: usize) -> u64 {
        let plan = FaultPlan::generate(spec, shards);
        let text = format!("{plan:?}");
        let mut h: u64 = 0xcbf29ce484222325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Seed-stability pin: the per-(tick, shard, kind) splitmix64
    /// streams behind `FaultPlan::generate` are part of the repo's
    /// reproducibility contract — chaos failures are filed by seed, and
    /// the controller-fault layer added later draws from its *own*
    /// salted streams precisely so these fingerprints never move. If
    /// this test fails, generation changed byte-for-byte and every
    /// recorded chaos seed is invalidated: revert, don't repin.
    #[test]
    fn generate_output_is_pinned_for_historical_seeds() {
        let expected: [(u64, usize, u64); 4] = [
            (1, 4, 0x42893675548bbbf3),
            (7, 4, 0x9b1b0d4158655431),
            (42, 2, 0x10dcc2a39b78d292),
            (9001, 6, 0x9b78248718113f79),
        ];
        for (seed, shards, want) in expected {
            let got = plan_fingerprint(&spec(seed), shards);
            assert_eq!(
                got, want,
                "FaultPlan::generate(seed {seed}, {shards} shards) drifted: \
                 fingerprint {got:#018x}, pinned {want:#018x}"
            );
        }
    }

    proptest! {
        #[test]
        fn plans_are_deterministic_per_seed(seed in 0u64..10_000, shards in 1usize..6) {
            let a = FaultPlan::generate(&spec(seed), shards);
            let b = FaultPlan::generate(&spec(seed), shards);
            prop_assert_eq!(a, b);
        }

        #[test]
        fn all_faults_clear_by_clear_tick(seed in 0u64..2_000, shards in 2usize..5) {
            let plan = FaultPlan::generate(&spec(seed), shards);
            let db = TeDatabase::new(shards);
            for tick in 0..=plan.clear_tick {
                plan.apply_tick(tick, &db);
            }
            prop_assert!(!db.any_fault_active());
        }
    }
}
