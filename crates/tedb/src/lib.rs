//! The TE configuration database and control-loop synchronization
//! models (§3.2, §6.4).
//!
//! MegaTE replaces the conventional top-down push over millions of
//! persistent connections with a **bottom-up pull**: the controller
//! writes versioned TE configurations into a sharded in-memory
//! key-value database (the paper customizes Redis: ~160k concurrent
//! queries/second on two shards, scaling linearly); endpoints poll the
//! version with short-lived connections, spread over the sync period,
//! and fetch the new configuration only on a version change — eventual
//! consistency instead of synchronized push.
//!
//! * [`store`] — the sharded KV store with versioned-config helpers and
//!   per-shard query accounting;
//! * [`sync`] — discrete-time simulation of the pull loop (query
//!   spreading, convergence time, shard overload) — Figure 4(b) and the
//!   §3.2 "10 seconds" spreading discussion;
//! * [`topdown`] — the calibrated resource model of the conventional
//!   push loop (persistent connections + heartbeats) behind Figures 13
//!   and 14;
//! * [`hybrid`] — the §8 future-work hybrid: persistent push channels
//!   (see [`TeDatabase::watch_versions`]) for heavy-traffic endpoints,
//!   eventual-consistency pull for the tail;
//! * [`faults`] — deterministic, seed-driven fault schedules (outages,
//!   flapping, slow/lossy/corrupting shards) for the chaos harness.

#![warn(missing_docs)]

pub mod faults;
pub mod hybrid;
pub mod store;
pub mod sync;
pub mod topdown;

pub use faults::{FaultEvent, FaultPlan, FaultSpec};
pub use hybrid::{evaluate_hybrid, heavy_tailed_volumes, HybridConfig, HybridOutcome};
pub use store::{Changelog, ReadOutcome, ShardOutage, TeDatabase, TeKey, CONFIG_VERSION_KEY};
pub use sync::{simulate_pull_sync, SyncConfig, SyncMode, SyncOutcome};
pub use topdown::{BottomUpModel, TopDownModel};
