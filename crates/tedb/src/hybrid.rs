//! Hybrid configuration synchronization — the paper's §8 future work:
//!
//! "Our measurements in TWAN show that a small part of the flows
//! account for most of the network traffic. A hybrid approach that
//! maintains persistent connections for these heavy-traffic endpoints
//! and performs eventual consistency for the rest of the endpoints
//! will be our future work."
//!
//! This module evaluates that design point: given per-endpoint traffic
//! volumes, keep persistent (instant-push) connections for the top
//! fraction by volume and let the long tail pull with spreading. The
//! trade-off surfaces as controller resources (the push side costs
//! cores/memory per the Figure-13 model) against traffic-weighted
//! synchronization delay (pull-side endpoints are stale for up to a
//! spread period — the traffic they carry is what a failure re-route
//! loses).

use crate::topdown::TopDownModel;

/// Parameters of a hybrid deployment.
#[derive(Debug, Clone, Copy)]
pub struct HybridConfig {
    /// Fraction of endpoints (by traffic rank) on persistent
    /// connections; 0.0 = pure bottom-up pull, 1.0 = pure top-down.
    pub persistent_fraction: f64,
    /// Pull-side spread period in seconds (§3.2's "e.g., 10 seconds").
    pub spread_seconds: f64,
}

impl Default for HybridConfig {
    fn default() -> Self {
        Self {
            persistent_fraction: 0.01,
            spread_seconds: 10.0,
        }
    }
}

/// Evaluation of one hybrid design point.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridOutcome {
    /// Endpoints on persistent connections.
    pub persistent_endpoints: usize,
    /// Fraction of total traffic those endpoints carry.
    pub covered_traffic_fraction: f64,
    /// Controller cores for the push side (Figure-13 model).
    pub push_cores: usize,
    /// Controller memory in GB for the push side.
    pub push_memory_gb: f64,
    /// Traffic-weighted mean config-sync delay in seconds: 0 for
    /// pushed endpoints, half a spread period for pulled ones.
    pub traffic_weighted_sync_s: f64,
}

/// Evaluates a hybrid split over per-endpoint traffic volumes.
///
/// `volumes[i]` is endpoint `i`'s traffic rate (any unit); the split
/// protects the heaviest endpoints first, which is the whole point of
/// the hybrid given heavy-tailed traffic.
pub fn evaluate_hybrid(volumes: &[f64], cfg: HybridConfig) -> HybridOutcome {
    assert!(
        (0.0..=1.0).contains(&cfg.persistent_fraction),
        "fraction must be in [0, 1]"
    );
    assert!(cfg.spread_seconds > 0.0);
    let n = volumes.len();
    let total: f64 = volumes.iter().sum();
    let k = ((n as f64) * cfg.persistent_fraction).round() as usize;

    // Heaviest-first ranking.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| volumes[b].total_cmp(&volumes[a]));
    let covered: f64 = order.iter().take(k).map(|&i| volumes[i]).sum();

    let model = TopDownModel::default();
    // Pushed endpoints sync instantly; pulled endpoints are uniformly
    // spread over the period, so their expected staleness on an urgent
    // update is half the period.
    let pulled_traffic = total - covered;
    let weighted_delay = if total > 0.0 {
        (pulled_traffic / total) * (cfg.spread_seconds / 2.0)
    } else {
        0.0
    };
    HybridOutcome {
        persistent_endpoints: k,
        covered_traffic_fraction: if total > 0.0 { covered / total } else { 0.0 },
        push_cores: if k == 0 { 0 } else { model.cores_needed(k) },
        push_memory_gb: model.memory_gb(k),
        traffic_weighted_sync_s: weighted_delay,
    }
}

/// Generates a heavy-tailed volume vector (Pareto-like, deterministic)
/// matching the paper's "small part of the flows account for most of
/// the traffic" observation — a convenience for benches and tests.
pub fn heavy_tailed_volumes(n: usize, seed: u64) -> Vec<f64> {
    // Deterministic pseudo-random Pareto(α≈1.2) via a splitmix walk.
    let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        // Map to (0, 1).
        ((state >> 11) as f64 / (1u64 << 53) as f64).clamp(f64::MIN_POSITIVE, 1.0)
    };
    (0..n).map(|_| next().powf(-1.0 / 1.2)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_match_pure_designs() {
        let v = heavy_tailed_volumes(10_000, 1);
        let pull = evaluate_hybrid(
            &v,
            HybridConfig {
                persistent_fraction: 0.0,
                spread_seconds: 10.0,
            },
        );
        assert_eq!(pull.persistent_endpoints, 0);
        assert_eq!(pull.push_cores, 0);
        assert!((pull.traffic_weighted_sync_s - 5.0).abs() < 1e-9);

        let push = evaluate_hybrid(
            &v,
            HybridConfig {
                persistent_fraction: 1.0,
                spread_seconds: 10.0,
            },
        );
        assert_eq!(push.persistent_endpoints, 10_000);
        assert!(push.traffic_weighted_sync_s.abs() < 1e-9);
        assert!(push.push_cores >= 2); // 10k conns need >1 core
    }

    #[test]
    fn heavy_tail_means_small_fraction_covers_most_traffic() {
        let v = heavy_tailed_volumes(100_000, 7);
        let out = evaluate_hybrid(
            &v,
            HybridConfig {
                persistent_fraction: 0.01,
                spread_seconds: 10.0,
            },
        );
        // The §8 observation: 1% of endpoints cover a large share.
        assert!(
            out.covered_traffic_fraction > 0.25,
            "1% covers {:.1}%",
            100.0 * out.covered_traffic_fraction
        );
        // And costs almost nothing to push to.
        assert!(out.push_cores <= 1);
    }

    #[test]
    fn coverage_monotone_in_fraction() {
        let v = heavy_tailed_volumes(50_000, 3);
        let mut last = -1.0;
        for f in [0.0, 0.001, 0.01, 0.1, 0.5, 1.0] {
            let out = evaluate_hybrid(
                &v,
                HybridConfig {
                    persistent_fraction: f,
                    spread_seconds: 10.0,
                },
            );
            assert!(out.covered_traffic_fraction >= last);
            last = out.covered_traffic_fraction;
        }
        assert!((last - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sync_delay_shrinks_with_coverage() {
        let v = heavy_tailed_volumes(50_000, 3);
        let a = evaluate_hybrid(
            &v,
            HybridConfig {
                persistent_fraction: 0.001,
                spread_seconds: 10.0,
            },
        );
        let b = evaluate_hybrid(
            &v,
            HybridConfig {
                persistent_fraction: 0.05,
                spread_seconds: 10.0,
            },
        );
        assert!(b.traffic_weighted_sync_s < a.traffic_weighted_sync_s);
    }

    #[test]
    fn empty_volumes_are_trivial() {
        let out = evaluate_hybrid(&[], HybridConfig::default());
        assert_eq!(out.persistent_endpoints, 0);
        assert_eq!(out.covered_traffic_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn bad_fraction_rejected() {
        evaluate_hybrid(
            &[1.0],
            HybridConfig {
                persistent_fraction: 1.5,
                spread_seconds: 10.0,
            },
        );
    }
}
