//! Resource models of the two control-loop architectures (Figures 13/14).
//!
//! **Top-down** (Figure 4(a)): the controller keeps one persistent
//! connection per endpoint, each with periodic heartbeats. The paper's
//! pressure test on a 1-core/1-GB VM measures ~90% CPU and ~750 MB at
//! 6,000 connections, and extrapolates 167 high-usage cores plus 125 GB
//! for one million endpoints. We calibrate the same linear model.
//!
//! **Bottom-up** (Figure 4(b)): the controller only writes configs to
//! the database — 1 core / 1 GB regardless of endpoint count; capacity
//! scales in database shards instead.

/// Calibrated per-connection costs of the top-down push loop.
#[derive(Debug, Clone, Copy)]
pub struct TopDownModel {
    /// Fraction of one core consumed per persistent connection
    /// (heartbeats + keep-alive state). Calibration: 90% @ 6,000.
    pub cpu_core_per_conn: f64,
    /// Memory per connection in MB (socket buffers + TE session state).
    /// Calibration: 750 MB @ 6,000 = 0.125 MB.
    pub mem_mb_per_conn: f64,
    /// Utilization ceiling operators allow per core (the paper's
    /// operators flag sustained 90% as failure risk).
    pub max_core_utilization: f64,
}

impl Default for TopDownModel {
    fn default() -> Self {
        Self {
            cpu_core_per_conn: 0.90 / 6000.0,
            mem_mb_per_conn: 750.0 / 6000.0,
            max_core_utilization: 0.90,
        }
    }
}

impl TopDownModel {
    /// CPU utilization (fraction of one core) at `n` connections —
    /// the y-axis of Figure 13 (left).
    pub fn cpu_utilization(&self, n_conns: usize) -> f64 {
        self.cpu_core_per_conn * n_conns as f64
    }

    /// Memory usage in MB at `n` connections — Figure 13 (right).
    pub fn memory_mb(&self, n_conns: usize) -> f64 {
        self.mem_mb_per_conn * n_conns as f64
    }

    /// Cores needed for `n` endpoints with every core kept below the
    /// utilization ceiling — Figure 14 (left).
    pub fn cores_needed(&self, n_endpoints: usize) -> usize {
        let raw = self.cpu_utilization(n_endpoints) / self.max_core_utilization;
        raw.ceil() as usize
    }

    /// Memory in GB for `n` endpoints — Figure 14 (right).
    pub fn memory_gb(&self, n_endpoints: usize) -> f64 {
        self.memory_mb(n_endpoints) / 1000.0
    }
}

/// Resource model of MegaTE's bottom-up loop.
#[derive(Debug, Clone, Copy)]
pub struct BottomUpModel {
    /// Controller cores (constant: it only writes to the database).
    pub controller_cores: usize,
    /// Controller memory in GB (constant).
    pub controller_mem_gb: f64,
    /// Queries/second one database shard sustains.
    pub shard_qps: u64,
}

impl Default for BottomUpModel {
    fn default() -> Self {
        Self {
            controller_cores: 1,
            controller_mem_gb: 1.0,
            shard_qps: crate::store::SHARD_QPS_CAPACITY,
        }
    }
}

impl BottomUpModel {
    /// Database shards needed when `n` endpoints poll twice (version +
    /// fetch) spread over `spread_seconds`.
    pub fn shards_needed(&self, n_endpoints: usize, spread_seconds: f64) -> usize {
        assert!(spread_seconds > 0.0);
        let qps = 2.0 * n_endpoints as f64 / spread_seconds;
        (qps / self.shard_qps as f64).ceil().max(1.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure13_calibration_point() {
        let m = TopDownModel::default();
        assert!((m.cpu_utilization(6000) - 0.90).abs() < 1e-12);
        assert!((m.memory_mb(6000) - 750.0).abs() < 1e-9);
    }

    #[test]
    fn figure14_million_endpoint_extrapolation() {
        let m = TopDownModel::default();
        // Paper: "at least 167 CPU cores ... and 125 GB of memory".
        assert_eq!(m.cores_needed(1_000_000), 167);
        assert!((m.memory_gb(1_000_000) - 125.0).abs() < 1e-9);
    }

    #[test]
    fn thousand_endpoints_fit_one_core() {
        let m = TopDownModel::default();
        // Paper: at 1,000 endpoints the top-down approach "only
        // consumes little resources".
        assert_eq!(m.cores_needed(1000), 1);
        assert!(m.memory_gb(1000) < 0.2);
    }

    #[test]
    fn bottom_up_stays_constant_in_controller_resources() {
        let m = BottomUpModel::default();
        assert_eq!(m.controller_cores, 1);
        assert_eq!(m.controller_mem_gb, 1.0);
        // Two shards + 10 s spreading handle a million endpoints with
        // modest headroom pressure (the paper's deployment).
        assert_eq!(m.shards_needed(400_000, 10.0), 1);
        assert_eq!(m.shards_needed(1_000_000, 10.0), 3);
        assert_eq!(m.shards_needed(800_000, 10.0), 2);
    }

    #[test]
    fn linear_growth_shapes() {
        let m = TopDownModel::default();
        let c1 = m.cores_needed(100_000);
        let c2 = m.cores_needed(200_000);
        assert!(c2 >= 2 * c1 - 1 && c2 <= 2 * c1 + 1, "{c1} vs {c2}");
    }
}
