//! Discrete-time simulation of the bottom-up pull loop (Figure 4(b)).
//!
//! "We divide all endpoints into several parts, and each part initiates
//! queries asynchronously during a specific time period (e.g., 10
//! seconds). This approach will reduce the query loads at a specific
//! time by equally spreading them over the timeline." (§3.2)
//!
//! The simulation publishes a new configuration version at tick 0 and
//! replays endpoint polls tick by tick, reporting peak/mean query rates
//! per shard, shard-overload ticks, and the convergence time to the new
//! version — with and without query spreading.

use crate::store::SHARD_QPS_CAPACITY;

/// Parameters of one pull-sync simulation.
#[derive(Debug, Clone)]
pub struct SyncConfig {
    /// Number of endpoints polling the database.
    pub n_endpoints: usize,
    /// Poll interval per endpoint, in ticks (the sync period).
    pub poll_interval_ticks: usize,
    /// Milliseconds per tick.
    pub tick_ms: u64,
    /// Whether endpoints spread their poll slots over the interval
    /// (MegaTE) or all poll at the same instant (naive pull).
    pub spreading: bool,
    /// Number of database shards.
    pub n_shards: usize,
}

impl Default for SyncConfig {
    fn default() -> Self {
        Self {
            n_endpoints: 1_000_000,
            // 10-second sync period at 1-second ticks.
            poll_interval_ticks: 10,
            tick_ms: 1000,
            spreading: true,
            n_shards: 2,
        }
    }
}

/// Results of one pull-sync simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncOutcome {
    /// Peak aggregate queries/second over the run.
    pub peak_qps: f64,
    /// Mean aggregate queries/second over the run.
    pub mean_qps: f64,
    /// Peak queries/second on the hottest single shard.
    pub per_shard_peak_qps: f64,
    /// Ticks in which at least one shard exceeded its capacity.
    pub overloaded_ticks: usize,
    /// Ticks until every endpoint had pulled the new version.
    pub convergence_ticks: usize,
    /// Milliseconds until convergence.
    pub convergence_ms: u64,
}

/// Simulates one sync period after a new version is published.
///
/// Each endpoint performs one cheap version poll in its slot; on a
/// version mismatch it issues one configuration fetch in the same tick
/// (short connection, then closes — no persistent state).
pub fn simulate_pull_sync(cfg: &SyncConfig) -> SyncOutcome {
    assert!(cfg.n_endpoints > 0 && cfg.poll_interval_ticks > 0 && cfg.n_shards > 0);
    let ticks = cfg.poll_interval_ticks;
    let tick_seconds = cfg.tick_ms as f64 / 1000.0;

    // Queries per tick: every endpoint polls exactly once per interval,
    // in its slot; the publish makes each poll also fetch (2 queries).
    let mut queries_per_tick = vec![0u64; ticks];
    let mut last_update_tick = 0usize;
    for ep in 0..cfg.n_endpoints {
        let slot = if cfg.spreading { ep % ticks } else { 0 };
        queries_per_tick[slot] += 2; // version poll + config fetch
        last_update_tick = last_update_tick.max(slot);
    }

    let peak = *queries_per_tick.iter().max().expect("non-empty") as f64 / tick_seconds;
    let mean = queries_per_tick.iter().sum::<u64>() as f64 / ticks as f64 / tick_seconds;
    // Keys are hash-spread, so per-shard load is ~uniform.
    let per_shard_peak = peak / cfg.n_shards as f64;
    let shard_capacity = SHARD_QPS_CAPACITY as f64;
    let overloaded = queries_per_tick
        .iter()
        .filter(|&&q| (q as f64 / tick_seconds) / cfg.n_shards as f64 > shard_capacity)
        .count();

    let convergence_ticks = last_update_tick + 1;
    SyncOutcome {
        peak_qps: peak,
        mean_qps: mean,
        per_shard_peak_qps: per_shard_peak,
        overloaded_ticks: overloaded,
        convergence_ticks,
        convergence_ms: convergence_ticks as u64 * cfg.tick_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spreading_flattens_load_exactly() {
        let cfg = SyncConfig { n_endpoints: 1_000_000, ..Default::default() };
        let out = simulate_pull_sync(&cfg);
        // 1M endpoints over 10 one-second slots = 100k polls+fetches/s.
        assert_eq!(out.peak_qps, 200_000.0);
        assert_eq!(out.mean_qps, 200_000.0);
        // Two shards at 80k qps each carry 100k/shard — matches the
        // paper's two-shard deployment handling a million endpoints
        // only via spreading (here ~25% above nominal, flagged):
        assert_eq!(out.per_shard_peak_qps, 100_000.0);
    }

    #[test]
    fn no_spreading_overloads_shards() {
        let spread = simulate_pull_sync(&SyncConfig {
            n_endpoints: 1_000_000,
            spreading: true,
            ..Default::default()
        });
        let burst = simulate_pull_sync(&SyncConfig {
            n_endpoints: 1_000_000,
            spreading: false,
            ..Default::default()
        });
        assert!(burst.peak_qps >= spread.peak_qps * 9.0, "burst {burst:?}");
        assert!(burst.overloaded_ticks >= 1);
        assert_eq!(burst.peak_qps, 2_000_000.0);
    }

    #[test]
    fn convergence_within_sync_period() {
        let out = simulate_pull_sync(&SyncConfig::default());
        assert_eq!(out.convergence_ticks, 10);
        assert_eq!(out.convergence_ms, 10_000);
        // Without spreading everyone updates in the first tick.
        let burst = simulate_pull_sync(&SyncConfig { spreading: false, ..Default::default() });
        assert_eq!(burst.convergence_ticks, 1);
    }

    #[test]
    fn more_shards_scale_linearly() {
        let two = simulate_pull_sync(&SyncConfig { n_shards: 2, ..Default::default() });
        let four = simulate_pull_sync(&SyncConfig { n_shards: 4, ..Default::default() });
        assert!((two.per_shard_peak_qps / four.per_shard_peak_qps - 2.0).abs() < 1e-9);
    }

    #[test]
    fn small_fleet_never_overloads() {
        let out = simulate_pull_sync(&SyncConfig {
            n_endpoints: 1000,
            spreading: false,
            ..Default::default()
        });
        assert_eq!(out.overloaded_ticks, 0);
    }
}
