//! Discrete-time simulation of the bottom-up pull loop (Figure 4(b)).
//!
//! "We divide all endpoints into several parts, and each part initiates
//! queries asynchronously during a specific time period (e.g., 10
//! seconds). This approach will reduce the query loads at a specific
//! time by equally spreading them over the timeline." (§3.2)
//!
//! The simulation publishes a new configuration version at tick 0 and
//! replays endpoint polls tick by tick, reporting peak/mean query rates
//! per shard, shard-overload ticks, and the convergence time to the new
//! version — with and without query spreading.
//!
//! Two sync protocols are modelled ([`SyncMode`]):
//!
//! * **full republish** — every endpoint's complete configuration is
//!   rewritten each interval and every poll that sees a new version
//!   re-fetches the complete configuration (the pre-delta loop);
//! * **delta-versioned** — the controller publishes per-endpoint deltas
//!   only for the `changed_fraction` of endpoints whose allocation
//!   moved; every poll adds one small changelog probe, and only changed
//!   endpoints fetch (delta-sized) configuration bytes. Steady-state
//!   interval cost drops from O(endpoints) to O(changed endpoints).

use crate::store::SHARD_QPS_CAPACITY;

/// Which pull protocol the simulation models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Every endpoint re-fetches its full configuration each interval.
    #[default]
    FullRepublish,
    /// Typed-keyspace deltas: only changed endpoints move config bytes.
    DeltaVersioned,
}

/// Parameters of one pull-sync simulation.
#[derive(Debug, Clone)]
pub struct SyncConfig {
    /// Number of endpoints polling the database.
    pub n_endpoints: usize,
    /// Poll interval per endpoint, in ticks (the sync period).
    pub poll_interval_ticks: usize,
    /// Milliseconds per tick.
    pub tick_ms: u64,
    /// Whether endpoints spread their poll slots over the interval
    /// (MegaTE) or all poll at the same instant (naive pull).
    pub spreading: bool,
    /// Number of database shards.
    pub n_shards: usize,
    /// Pull protocol to model.
    pub mode: SyncMode,
    /// Fraction of endpoints whose allocation changed this interval
    /// (1.0 = cold start; steady state is typically well under 0.1).
    pub changed_fraction: f64,
    /// Mean full-snapshot size per endpoint, bytes.
    pub snapshot_bytes: usize,
    /// Mean delta size for a changed endpoint, bytes.
    pub delta_bytes: usize,
    /// Changelog-probe response size, bytes (delta mode only).
    pub probe_bytes: usize,
    /// Version-poll response size, bytes.
    pub version_poll_bytes: usize,
}

impl Default for SyncConfig {
    fn default() -> Self {
        Self {
            n_endpoints: 1_000_000,
            // 10-second sync period at 1-second ticks.
            poll_interval_ticks: 10,
            tick_ms: 1000,
            spreading: true,
            n_shards: 2,
            mode: SyncMode::FullRepublish,
            changed_fraction: 1.0,
            snapshot_bytes: 512,
            delta_bytes: 64,
            probe_bytes: 24,
            version_poll_bytes: 12,
        }
    }
}

/// Results of one pull-sync simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SyncOutcome {
    /// Peak aggregate queries/second over the run.
    pub peak_qps: f64,
    /// Mean aggregate queries/second over the run.
    pub mean_qps: f64,
    /// Peak queries/second on the hottest single shard.
    pub per_shard_peak_qps: f64,
    /// Ticks in which at least one shard exceeded its capacity.
    pub overloaded_ticks: usize,
    /// Ticks until every endpoint had pulled the new version.
    pub convergence_ticks: usize,
    /// Milliseconds until convergence.
    pub convergence_ms: u64,
    /// Bytes the controller wrote into the database this interval.
    pub published_bytes: u64,
    /// Response bytes the shards served to pulling endpoints.
    pub pulled_bytes: u64,
    /// Peak per-shard response bytes/second over the run.
    pub per_shard_peak_bytes_per_s: f64,
}

/// Simulates one sync period after a new version is published.
///
/// Each endpoint performs one cheap version poll in its slot; on a
/// version mismatch it issues its configuration queries in the same
/// tick (short connection, then closes — no persistent state). How many
/// queries and bytes that costs depends on [`SyncMode`].
pub fn simulate_pull_sync(cfg: &SyncConfig) -> SyncOutcome {
    assert!(cfg.n_endpoints > 0 && cfg.poll_interval_ticks > 0 && cfg.n_shards > 0);
    assert!((0.0..=1.0).contains(&cfg.changed_fraction));
    let ticks = cfg.poll_interval_ticks;
    let tick_seconds = cfg.tick_ms as f64 / 1000.0;
    let changed_total = ((cfg.n_endpoints as f64) * cfg.changed_fraction).round() as usize;

    // Queries/bytes per tick: every endpoint polls exactly once per
    // interval, in its slot. The first `changed_total` endpoints are
    // the ones whose allocation moved (spreading interleaves them
    // across slots via the modulo assignment).
    let mut queries_per_tick = vec![0u64; ticks];
    let mut bytes_per_tick = vec![0u64; ticks];
    let mut last_update_tick = 0usize;
    for ep in 0..cfg.n_endpoints {
        let slot = if cfg.spreading { ep % ticks } else { 0 };
        let changed = ep < changed_total;
        let (queries, bytes) = match cfg.mode {
            // Version poll + full config fetch for everyone.
            SyncMode::FullRepublish => (2, cfg.version_poll_bytes + cfg.snapshot_bytes),
            // Version poll + changelog probe for everyone; only changed
            // endpoints fetch their (delta-sized) config.
            SyncMode::DeltaVersioned => {
                if changed {
                    (
                        3,
                        cfg.version_poll_bytes + cfg.probe_bytes + cfg.delta_bytes,
                    )
                } else {
                    (2, cfg.version_poll_bytes + cfg.probe_bytes)
                }
            }
        };
        queries_per_tick[slot] += queries;
        bytes_per_tick[slot] += bytes as u64;
        last_update_tick = last_update_tick.max(slot);
    }

    let published_bytes = match cfg.mode {
        SyncMode::FullRepublish => (cfg.n_endpoints * cfg.snapshot_bytes) as u64,
        // Per changed endpoint: the delta record plus its changelog
        // rewrite. (Snapshot-cadence flushes amortize to
        // changed/snapshot_every per interval and are not modelled.)
        SyncMode::DeltaVersioned => (changed_total * (cfg.delta_bytes + cfg.probe_bytes)) as u64,
    };

    let peak = *queries_per_tick.iter().max().expect("non-empty") as f64 / tick_seconds;
    let mean = queries_per_tick.iter().sum::<u64>() as f64 / ticks as f64 / tick_seconds;
    // Keys are hash-spread, so per-shard load is ~uniform.
    let per_shard_peak = peak / cfg.n_shards as f64;
    let shard_capacity = SHARD_QPS_CAPACITY as f64;
    let overloaded = queries_per_tick
        .iter()
        .filter(|&&q| (q as f64 / tick_seconds) / cfg.n_shards as f64 > shard_capacity)
        .count();
    let peak_bytes = *bytes_per_tick.iter().max().expect("non-empty") as f64 / tick_seconds;

    let convergence_ticks = last_update_tick + 1;
    SyncOutcome {
        peak_qps: peak,
        mean_qps: mean,
        per_shard_peak_qps: per_shard_peak,
        overloaded_ticks: overloaded,
        convergence_ticks,
        convergence_ms: convergence_ticks as u64 * cfg.tick_ms,
        published_bytes,
        pulled_bytes: bytes_per_tick.iter().sum(),
        per_shard_peak_bytes_per_s: peak_bytes / cfg.n_shards as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spreading_flattens_load_exactly() {
        let cfg = SyncConfig {
            n_endpoints: 1_000_000,
            ..Default::default()
        };
        let out = simulate_pull_sync(&cfg);
        // 1M endpoints over 10 one-second slots = 100k polls+fetches/s.
        assert_eq!(out.peak_qps, 200_000.0);
        assert_eq!(out.mean_qps, 200_000.0);
        // Two shards at 80k qps each carry 100k/shard — matches the
        // paper's two-shard deployment handling a million endpoints
        // only via spreading (here ~25% above nominal, flagged):
        assert_eq!(out.per_shard_peak_qps, 100_000.0);
    }

    #[test]
    fn no_spreading_overloads_shards() {
        let spread = simulate_pull_sync(&SyncConfig {
            n_endpoints: 1_000_000,
            spreading: true,
            ..Default::default()
        });
        let burst = simulate_pull_sync(&SyncConfig {
            n_endpoints: 1_000_000,
            spreading: false,
            ..Default::default()
        });
        assert!(burst.peak_qps >= spread.peak_qps * 9.0, "burst {burst:?}");
        assert!(burst.overloaded_ticks >= 1);
        assert_eq!(burst.peak_qps, 2_000_000.0);
    }

    #[test]
    fn convergence_within_sync_period() {
        let out = simulate_pull_sync(&SyncConfig::default());
        assert_eq!(out.convergence_ticks, 10);
        assert_eq!(out.convergence_ms, 10_000);
        // Without spreading everyone updates in the first tick.
        let burst = simulate_pull_sync(&SyncConfig {
            spreading: false,
            ..Default::default()
        });
        assert_eq!(burst.convergence_ticks, 1);
    }

    #[test]
    fn more_shards_scale_linearly() {
        let two = simulate_pull_sync(&SyncConfig {
            n_shards: 2,
            ..Default::default()
        });
        let four = simulate_pull_sync(&SyncConfig {
            n_shards: 4,
            ..Default::default()
        });
        assert!((two.per_shard_peak_qps / four.per_shard_peak_qps - 2.0).abs() < 1e-9);
    }

    #[test]
    fn small_fleet_never_overloads() {
        let out = simulate_pull_sync(&SyncConfig {
            n_endpoints: 1000,
            spreading: false,
            ..Default::default()
        });
        assert_eq!(out.overloaded_ticks, 0);
    }

    #[test]
    fn steady_state_deltas_cut_bytes_at_least_5x() {
        // The acceptance workload: <10% of endpoints change allocation
        // between intervals.
        let full = simulate_pull_sync(&SyncConfig {
            changed_fraction: 0.08,
            mode: SyncMode::FullRepublish,
            ..Default::default()
        });
        let delta = simulate_pull_sync(&SyncConfig {
            changed_fraction: 0.08,
            mode: SyncMode::DeltaVersioned,
            ..Default::default()
        });
        assert!(
            full.published_bytes as f64 >= 5.0 * delta.published_bytes as f64,
            "published: full {} vs delta {}",
            full.published_bytes,
            delta.published_bytes
        );
        assert!(
            full.pulled_bytes as f64 >= 5.0 * delta.pulled_bytes as f64,
            "pulled: full {} vs delta {}",
            full.pulled_bytes,
            delta.pulled_bytes
        );
        assert!(full.per_shard_peak_bytes_per_s >= 5.0 * delta.per_shard_peak_bytes_per_s);
        // Same convergence: deltas change payload sizes, not the
        // spreading schedule.
        assert_eq!(full.convergence_ticks, delta.convergence_ticks);
    }

    #[test]
    fn delta_mode_query_count_tracks_churn() {
        let cold = simulate_pull_sync(&SyncConfig {
            mode: SyncMode::DeltaVersioned,
            changed_fraction: 1.0,
            ..Default::default()
        });
        let steady = simulate_pull_sync(&SyncConfig {
            mode: SyncMode::DeltaVersioned,
            changed_fraction: 0.0,
            ..Default::default()
        });
        // Cold start: 3 queries/endpoint; steady state: 2.
        assert_eq!(cold.peak_qps, 300_000.0);
        assert_eq!(steady.peak_qps, 200_000.0);
        assert_eq!(steady.published_bytes, 0);
    }

    #[test]
    fn cold_start_deltas_are_not_cheaper() {
        // With 100% churn the delta plane degenerates gracefully: same
        // order of bytes as full republish (small constant overheads).
        let full = simulate_pull_sync(&SyncConfig {
            snapshot_bytes: 64,
            delta_bytes: 64,
            ..Default::default()
        });
        let delta = simulate_pull_sync(&SyncConfig {
            snapshot_bytes: 64,
            delta_bytes: 64,
            mode: SyncMode::DeltaVersioned,
            ..Default::default()
        });
        assert!(delta.pulled_bytes >= full.pulled_bytes);
        assert!(delta.pulled_bytes <= 2 * full.pulled_bytes);
    }
}
