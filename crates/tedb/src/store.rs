//! Sharded in-memory key-value store — the customized Redis of §3.2.
//!
//! Keys are routed to shards by FNV hash. Every read and write bumps a
//! per-shard query counter so simulations and benchmarks can reason
//! about per-shard load against the paper's 80k-queries/second/shard
//! budget (160k on two shards, "linearly scaled with more shard
//! resources").

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Key under which the current TE configuration version is stored.
pub const CONFIG_VERSION_KEY: &str = "te:config:version";

/// Queries per second one shard sustains (paper: 160k qps on 2 shards).
pub const SHARD_QPS_CAPACITY: u64 = 80_000;

#[derive(Debug, Default)]
struct Shard {
    data: RwLock<HashMap<String, Vec<u8>>>,
    queries: AtomicU64,
    /// Failure injection: a down shard answers nothing (GET -> None,
    /// SET dropped) — what a client sees during a shard outage.
    down: std::sync::atomic::AtomicBool,
}

/// The sharded TE database. Clones share storage (like extra client
/// connections to the same cluster).
///
/// ```
/// use megate_tedb::TeDatabase;
///
/// let db = TeDatabase::new(2); // the paper's two shards
/// db.publish_config(1, &[("ep:7".into(), vec![0xAB])]);
/// assert_eq!(db.latest_version(), Some(1));          // cheap poll
/// assert_eq!(db.fetch_config(1, "ep:7"), Some(vec![0xAB])); // pull
/// ```
#[derive(Debug, Clone)]
pub struct TeDatabase {
    shards: Arc<Vec<Shard>>,
    watchers: Arc<Mutex<Vec<Sender<u64>>>>,
}

impl TeDatabase {
    /// A database with `n_shards` shards (the paper deploys two).
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        Self {
            shards: Arc::new((0..n_shards).map(|_| Shard::default()).collect()),
            watchers: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// Subscribes to configuration-version publications — the *push*
    /// half of the §8 hybrid design: heavy-traffic endpoints hold this
    /// persistent channel instead of polling; every
    /// [`publish_config`](Self::publish_config) delivers the new
    /// version immediately. Dropped receivers are pruned lazily.
    pub fn watch_versions(&self) -> Receiver<u64> {
        let (tx, rx) = unbounded();
        self.watchers.lock().push(tx);
        rx
    }

    /// Number of registered version watchers (disconnected ones are
    /// pruned on each publish).
    pub fn watcher_count(&self) -> usize {
        self.watchers.lock().len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a key routes to.
    pub fn shard_of(&self, key: &str) -> usize {
        (fnv(key.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// SET — routes by key hash, counts one query. Writes to a downed
    /// shard are dropped (the client would see a connection error and
    /// the controller retries next interval).
    pub fn set(&self, key: &str, value: Vec<u8>) {
        let s = &self.shards[self.shard_of(key)];
        s.queries.fetch_add(1, Ordering::Relaxed);
        if s.down.load(Ordering::Relaxed) {
            return;
        }
        s.data.write().insert(key.to_string(), value);
    }

    /// GET — routes by key hash, counts one query. A downed shard
    /// answers nothing.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let s = &self.shards[self.shard_of(key)];
        s.queries.fetch_add(1, Ordering::Relaxed);
        if s.down.load(Ordering::Relaxed) {
            return None;
        }
        s.data.read().get(key).cloned()
    }

    /// GET that distinguishes a missing key from a shard outage —
    /// what a real client sees as a connection error. Pull loops use
    /// this to avoid adopting a version whose entries they could not
    /// read.
    pub fn get_checked(&self, key: &str) -> Result<Option<Vec<u8>>, ShardOutage> {
        let shard = self.shard_of(key);
        let s = &self.shards[shard];
        s.queries.fetch_add(1, Ordering::Relaxed);
        if s.down.load(Ordering::Relaxed) {
            return Err(ShardOutage { shard });
        }
        Ok(s.data.read().get(key).cloned())
    }

    /// [`fetch_config`](Self::fetch_config) with outage reporting.
    pub fn fetch_config_checked(
        &self,
        version: u64,
        key: &str,
    ) -> Result<Option<Vec<u8>>, ShardOutage> {
        self.get_checked(&config_key(version, key))
    }

    /// Failure injection: takes a shard down (it keeps its data) or
    /// brings it back.
    pub fn set_shard_down(&self, shard: usize, down: bool) {
        self.shards[shard].down.store(down, Ordering::Relaxed);
    }

    /// True if the given shard is currently down.
    pub fn shard_is_down(&self, shard: usize) -> bool {
        self.shards[shard].down.load(Ordering::Relaxed)
    }

    /// DEL — returns whether the key existed.
    pub fn del(&self, key: &str) -> bool {
        let s = &self.shards[self.shard_of(key)];
        s.queries.fetch_add(1, Ordering::Relaxed);
        s.data.write().remove(key).is_some()
    }

    /// Total queries served across shards.
    pub fn total_queries(&self) -> u64 {
        self.shards.iter().map(|s| s.queries.load(Ordering::Relaxed)).sum()
    }

    /// Per-shard query counts.
    pub fn per_shard_queries(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.queries.load(Ordering::Relaxed)).collect()
    }

    /// Resets query counters (between measurement windows).
    pub fn reset_query_counters(&self) {
        for s in self.shards.iter() {
            s.queries.store(0, Ordering::Relaxed);
        }
    }

    // ---- Versioned-config helpers (Figure 4(b)) ----

    /// Publishes a new TE configuration: writes all entries, then bumps
    /// the version key last so a reader that sees version `v` is
    /// guaranteed to find `v`'s entries (write-then-publish ordering).
    pub fn publish_config(&self, version: u64, entries: &[(String, Vec<u8>)]) {
        for (k, v) in entries {
            self.set(&config_key(version, k), v.clone());
        }
        self.set(CONFIG_VERSION_KEY, version.to_be_bytes().to_vec());
        // Push the new version to persistent watchers (§8 hybrid);
        // disconnected channels are pruned here.
        self.watchers.lock().retain(|w| w.send(version).is_ok());
    }

    /// The latest published configuration version (the endpoint's cheap
    /// poll query).
    pub fn latest_version(&self) -> Option<u64> {
        let v = self.get(CONFIG_VERSION_KEY)?;
        let bytes: [u8; 8] = v.try_into().ok()?;
        Some(u64::from_be_bytes(bytes))
    }

    /// Fetches one entry of a published configuration version.
    pub fn fetch_config(&self, version: u64, key: &str) -> Option<Vec<u8>> {
        self.get(&config_key(version, key))
    }

    /// Garbage-collects all entries of an old configuration version.
    pub fn evict_version(&self, version: u64, keys: &[String]) {
        for k in keys {
            self.del(&config_key(version, k));
        }
    }
}

/// A shard was unreachable — the client's connection failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutage {
    /// Which shard was down.
    pub shard: usize,
}

impl std::fmt::Display for ShardOutage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} unreachable", self.shard)
    }
}

impl std::error::Error for ShardOutage {}

fn config_key(version: u64, key: &str) -> String {
    format!("te:config:{version}:{key}")
}

fn fnv(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_del_roundtrip() {
        let db = TeDatabase::new(2);
        db.set("a", vec![1, 2, 3]);
        assert_eq!(db.get("a"), Some(vec![1, 2, 3]));
        assert!(db.del("a"));
        assert!(!db.del("a"));
        assert_eq!(db.get("a"), None);
    }

    #[test]
    fn keys_spread_across_shards() {
        let db = TeDatabase::new(4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(db.shard_of(&format!("key{i}")));
        }
        assert!(seen.len() >= 3, "hash should hit most shards, got {seen:?}");
    }

    #[test]
    fn query_counters_count_every_operation() {
        let db = TeDatabase::new(2);
        db.set("x", vec![]);
        db.get("x");
        db.get("y");
        db.del("x");
        assert_eq!(db.total_queries(), 4);
        db.reset_query_counters();
        assert_eq!(db.total_queries(), 0);
    }

    #[test]
    fn publish_then_read_version_and_entries() {
        let db = TeDatabase::new(2);
        assert_eq!(db.latest_version(), None);
        db.publish_config(7, &[("host1".into(), vec![9]), ("host2".into(), vec![8])]);
        assert_eq!(db.latest_version(), Some(7));
        assert_eq!(db.fetch_config(7, "host1"), Some(vec![9]));
        assert_eq!(db.fetch_config(7, "host3"), None);
        assert_eq!(db.fetch_config(6, "host1"), None);
    }

    #[test]
    fn version_monotonically_replaces() {
        let db = TeDatabase::new(1);
        db.publish_config(1, &[("h".into(), vec![1])]);
        db.publish_config(2, &[("h".into(), vec![2])]);
        assert_eq!(db.latest_version(), Some(2));
        // Old version's entries remain until evicted.
        assert_eq!(db.fetch_config(1, "h"), Some(vec![1]));
        db.evict_version(1, &["h".into()]);
        assert_eq!(db.fetch_config(1, "h"), None);
    }

    #[test]
    fn downed_shard_answers_nothing_then_recovers() {
        let db = TeDatabase::new(2);
        db.set("k1", vec![1]);
        let shard = db.shard_of("k1");
        db.set_shard_down(shard, true);
        assert!(db.shard_is_down(shard));
        assert_eq!(db.get("k1"), None, "outage hides the entry");
        db.set("k1", vec![2]); // dropped write
        db.set_shard_down(shard, false);
        assert_eq!(db.get("k1"), Some(vec![1]), "data survives the outage");
    }

    #[test]
    fn other_shards_unaffected_by_one_outage() {
        let db = TeDatabase::new(4);
        // Find two keys on different shards.
        let mut keys = Vec::new();
        for i in 0..100 {
            let k = format!("key{i}");
            if keys.iter().all(|(_, s)| *s != db.shard_of(&k)) {
                let s = db.shard_of(&k);
                keys.push((k, s));
                if keys.len() == 2 {
                    break;
                }
            }
        }
        let (ka, sa) = keys[0].clone();
        let (kb, _) = keys[1].clone();
        db.set(&ka, vec![1]);
        db.set(&kb, vec![2]);
        db.set_shard_down(sa, true);
        assert_eq!(db.get(&ka), None);
        assert_eq!(db.get(&kb), Some(vec![2]));
    }

    #[test]
    fn clones_share_data() {
        let a = TeDatabase::new(2);
        let b = a.clone();
        a.set("k", vec![5]);
        assert_eq!(b.get("k"), Some(vec![5]));
    }

    #[test]
    fn watchers_receive_every_publish_in_order() {
        let db = TeDatabase::new(2);
        let rx = db.watch_versions();
        assert_eq!(db.watcher_count(), 1);
        for v in 1..=5u64 {
            db.publish_config(v, &[("h".into(), vec![v as u8])]);
        }
        let got: Vec<u64> = rx.try_iter().collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn dropped_watchers_are_pruned() {
        let db = TeDatabase::new(1);
        let rx1 = db.watch_versions();
        {
            let _rx2 = db.watch_versions();
            assert_eq!(db.watcher_count(), 2);
        } // rx2 dropped
        db.publish_config(1, &[]);
        assert_eq!(db.watcher_count(), 1);
        assert_eq!(rx1.try_recv(), Ok(1));
    }

    #[test]
    fn watcher_sees_version_whose_entries_are_readable() {
        // Push ordering matches the pull contract: by the time the
        // watcher learns of v, v's entries are in the store.
        let db = TeDatabase::new(2);
        let rx = db.watch_versions();
        db.publish_config(9, &[("h".into(), vec![1, 2, 3])]);
        let v = rx.recv().unwrap();
        assert_eq!(db.fetch_config(v, "h"), Some(vec![1, 2, 3]));
    }

    #[test]
    fn concurrent_clients_see_consistent_version() {
        let db = TeDatabase::new(2);
        db.publish_config(1, &[("h".into(), vec![1])]);
        std::thread::scope(|s| {
            let writer = db.clone();
            s.spawn(move || {
                for v in 2..50u64 {
                    writer.publish_config(v, &[("h".into(), vec![v as u8])]);
                }
            });
            let reader = db.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    if let Some(v) = reader.latest_version() {
                        // Write-then-publish: the entry for any observed
                        // version must exist.
                        assert!(reader.fetch_config(v, "h").is_some(), "version {v}");
                    }
                }
            });
        });
    }
}
