//! Sharded in-memory key-value store — the customized Redis of §3.2.
//!
//! Keys are routed to shards by FNV hash. Every read and write bumps a
//! per-shard query counter *and* a per-shard byte counter (key + value
//! moved over the wire), so simulations and benchmarks can reason about
//! per-shard load against the paper's 80k-queries/second/shard budget
//! (160k on two shards, "linearly scaled with more shard resources")
//! and about the byte savings of delta-versioned pulls.
//!
//! On top of the raw string API sits the **typed TE keyspace**
//! ([`TeKey`]): the version record, per-endpoint snapshots,
//! per-`(endpoint, version)` deltas and per-endpoint version changelogs
//! that the delta-versioned control loop publishes, plus changelog
//! bookkeeping ([`TeDatabase::record_change`]) and garbage collection
//! of superseded deltas ([`TeDatabase::gc_endpoint_before`]).
//!
//! ## Replication & failover
//!
//! [`TeDatabase::with_replication`] stores every key on `k` successive
//! shards (primary first). Writes fan out to every reachable replica;
//! reads are served by the primary and **fail over** to the next
//! replica when the primary is unreachable (counted in
//! `tedb.failover_reads`). Each value carries a monotonically
//! increasing write sequence number, so when a shard recovers from an
//! outage a **last-writer-wins repair pass**
//! ([`TeDatabase::repair_shard`], run automatically on recovery) copies
//! every newer replica value back onto it. Deletes are not
//! tombstoned: a key deleted while one of its replicas was down can be
//! served again by that replica after recovery — harmless for the TE
//! keyspace, where garbage-collected deltas are only reachable through
//! the (pruned) changelog.
//!
//! ## Fault injection
//!
//! Beyond the outage flag ([`TeDatabase::set_shard_down`]), shards can
//! be made *slow* (injected per-query latency, surfaced through
//! [`ReadOutcome::injected_ns`] so clients can charge it against their
//! deadlines), *lossy* (a per-read probability that the connection
//! drops — the client sees the same error as an outage) and
//! *corrupting* (a per-read probability that the returned value has one
//! bit flipped; [`ReadOutcome::corrupted`] models the transport
//! checksum that lets a careful client detect and retry it, while the
//! unchecked [`TeDatabase::get`] delivers the damaged bytes to exercise
//! decoder robustness). All rolls come from a seeded deterministic
//! stream ([`TeDatabase::set_fault_seed`]), so a single-threaded
//! simulation replays bit-for-bit. [`crate::faults::FaultPlan`] drives
//! these knobs on a schedule.

use crossbeam::channel::{unbounded, Receiver, Sender};
use megate_obs::trace;
use parking_lot::Mutex;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Key under which the current TE configuration version is stored.
///
/// This is partition 0's version record; partitioned control planes
/// publish additional per-partition records under
/// `te:config:version:p<N>` (see [`TeKey::Version`]).
pub const CONFIG_VERSION_KEY: &str = "te:config:version";

/// Queries per second one shard sustains (paper: 160k qps on 2 shards).
pub const SHARD_QPS_CAPACITY: u64 = 80_000;

/// The typed TE-DB keyspace of the delta-versioned control loop.
///
/// Endpoints are raw u64 ids here (the store is topology-agnostic);
/// `megate-core` maps them from `EndpointId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TeKey {
    /// A partition's configuration version record (8-byte big-endian
    /// u64). Partition 0 is the legacy single-controller record and
    /// keeps the historical wire form [`CONFIG_VERSION_KEY`]; a
    /// partitioned control plane gives each controller its own version
    /// clock under `te:config:version:p<N>`.
    Version {
        /// The controller partition owning this version clock.
        partition: u32,
    },
    /// An endpoint's latest full snapshot: `u64 stamp | snapshot body`,
    /// where `stamp` is the version whose state the body reflects.
    Snapshot {
        /// The source endpoint.
        endpoint: u64,
    },
    /// The delta that moves `endpoint` from its state *before*
    /// `version` to its state *at* `version`.
    Delta {
        /// The source endpoint.
        endpoint: u64,
        /// The version this delta produces.
        version: u64,
    },
    /// The endpoint's version changelog: at which retained versions its
    /// configuration changed (see [`Changelog`]).
    Changelog {
        /// The source endpoint.
        endpoint: u64,
    },
}

impl TeKey {
    /// The wire (string) form the shards hash and store.
    pub fn wire(&self) -> String {
        match self {
            TeKey::Version { partition: 0 } => CONFIG_VERSION_KEY.to_string(),
            TeKey::Version { partition } => format!("{CONFIG_VERSION_KEY}:p{partition}"),
            TeKey::Snapshot { endpoint } => format!("te:snap:{endpoint}"),
            TeKey::Delta { endpoint, version } => format!("te:delta:{endpoint}:{version}"),
            TeKey::Changelog { endpoint } => format!("te:log:{endpoint}"),
        }
    }
}

impl std::fmt::Display for TeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.wire())
    }
}

/// A per-endpoint version changelog: the versions at which the
/// endpoint's configuration changed, complete for every version
/// strictly greater than `complete_since` (older deltas may have been
/// garbage-collected — an agent whose installed version predates
/// `complete_since` must fall back to the snapshot).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Changelog {
    /// The log is complete for changes at versions `> complete_since`.
    pub complete_since: u64,
    /// Ascending change versions still retained.
    pub versions: Vec<u64>,
}

impl Changelog {
    /// Wire encoding: `u64 complete_since | u32 count | count × u64`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.versions.len() * 8);
        out.extend_from_slice(&self.complete_since.to_be_bytes());
        out.extend_from_slice(&(self.versions.len() as u32).to_be_bytes());
        for v in &self.versions {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out
    }

    /// Bounds-checked decode; `None` on truncation or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let complete_since = u64::from_be_bytes(bytes.get(0..8)?.try_into().ok()?);
        let count = u32::from_be_bytes(bytes.get(8..12)?.try_into().ok()?) as usize;
        if bytes.len() != 12 + count * 8 {
            return None;
        }
        let mut versions = Vec::with_capacity(count);
        for i in 0..count {
            let at = 12 + i * 8;
            versions.push(u64::from_be_bytes(bytes.get(at..at + 8)?.try_into().ok()?));
        }
        Some(Self {
            complete_since,
            versions,
        })
    }
}

/// A stored value plus the global write sequence that produced it —
/// the last-writer-wins ordering the repair pass compares.
#[derive(Debug, Clone)]
struct Stored {
    seq: u64,
    value: Vec<u8>,
}

#[derive(Debug, Default)]
struct Shard {
    data: RwLock<HashMap<String, Stored>>,
    queries: AtomicU64,
    /// Bytes moved over this shard's wire: keys both ways, values on
    /// SET (request) and on GET hits (response).
    bytes: AtomicU64,
    /// Failure injection: a down shard answers nothing (GET -> None,
    /// SET dropped) — what a client sees during a shard outage.
    down: std::sync::atomic::AtomicBool,
    /// Injected per-query service latency (ns); 0 = healthy.
    slow_ns: AtomicU64,
    /// Probability (ppm) that a read fails transiently (connection
    /// drop) even though the shard is up.
    loss_ppm: AtomicU32,
    /// Probability (ppm) that a read returns a value with one flipped
    /// bit.
    corrupt_ppm: AtomicU32,
    /// Position in the shard's deterministic fault-roll stream.
    fault_ops: AtomicU64,
    /// Per-shard query service time, exported as
    /// `tedb.shard<i>.query_ns` (all databases in the process sharing
    /// a shard index aggregate into the same histogram).
    latency: megate_obs::Histogram,
}

impl Shard {
    fn is_down(&self) -> bool {
        self.down.load(Ordering::Relaxed)
    }

    /// One deterministic fault roll in `[0, 1_000_000)`.
    fn roll(&self, seed: u64, shard_idx: usize) -> u64 {
        let op = self.fault_ops.fetch_add(1, Ordering::Relaxed);
        splitmix64(seed ^ ((shard_idx as u64) << 48) ^ op) % 1_000_000
    }
}

/// What one (possibly failed-over) replicated read saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadOutcome {
    /// The value, if the key exists on the serving replica. When
    /// `corrupted` is set this carries the damaged bytes.
    pub value: Option<Vec<u8>>,
    /// The shard that served the read.
    pub served_by: usize,
    /// Whether the primary was unreachable and a replica answered.
    pub failed_over: bool,
    /// Injected service latency accumulated over every attempted
    /// replica — clients charge this against their sync-period
    /// deadline.
    pub injected_ns: u64,
    /// The transport checksum failed: the value has a flipped bit. A
    /// resilient client treats this as a retryable failure.
    pub corrupted: bool,
}

/// The sharded TE database. Clones share storage (like extra client
/// connections to the same cluster).
///
/// ```
/// use megate_tedb::{TeDatabase, TeKey};
///
/// let db = TeDatabase::new(2); // the paper's two shards
/// db.put(&TeKey::Snapshot { endpoint: 7 }, vec![0xAB]);
/// db.publish_version(1);
/// assert_eq!(db.latest_version(), Some(1));                       // cheap poll
/// assert_eq!(db.fetch(&TeKey::Snapshot { endpoint: 7 }), Some(vec![0xAB]));
/// ```
#[derive(Debug, Clone)]
pub struct TeDatabase {
    shards: Arc<Vec<Shard>>,
    watchers: Arc<Mutex<Vec<Sender<u64>>>>,
    /// Replication factor: each key lives on this many successive
    /// shards (clamped to the shard count).
    replication: usize,
    /// Monotonic write sequence shared by all clones — the
    /// last-writer-wins order of the repair pass.
    write_seq: Arc<AtomicU64>,
    /// Seed of the deterministic fault-roll streams.
    fault_seed: Arc<AtomicU64>,
    /// Process-wide mirror of the per-shard `bytes` counters
    /// (`tedb.wire_bytes`), so bench snapshots see DB traffic without
    /// holding a database handle.
    wire_bytes: megate_obs::Counter,
    /// Which controller partition this handle's traffic is attributed
    /// to (see [`for_partition`](Self::for_partition)); default 0.
    account_partition: u32,
    /// Per-partition mirror of the wire-byte accounting
    /// (`tedb.partition<N>.bytes`) — how much DB traffic each
    /// controller partition generated through its own handles.
    partition_bytes: megate_obs::Counter,
    /// Reads served by a replica because the primary was unreachable.
    failover_reads: megate_obs::Counter,
    /// Keys copied back onto a shard by post-recovery repair passes.
    repaired_keys: megate_obs::Counter,
}

impl TeDatabase {
    /// A database with `n_shards` shards (the paper deploys two) and no
    /// replication.
    pub fn new(n_shards: usize) -> Self {
        Self::with_replication(n_shards, 1)
    }

    /// A database with `n_shards` shards storing every key on
    /// `replication` successive shards. `replication` is clamped to
    /// `[1, n_shards]`.
    pub fn with_replication(n_shards: usize, replication: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        Self {
            shards: Arc::new(
                (0..n_shards)
                    .map(|i| Shard {
                        latency: megate_obs::histogram(&format!("tedb.shard{i}.query_ns")),
                        ..Shard::default()
                    })
                    .collect(),
            ),
            watchers: Arc::new(Mutex::new(Vec::new())),
            replication: replication.clamp(1, n_shards),
            write_seq: Arc::new(AtomicU64::new(1)),
            fault_seed: Arc::new(AtomicU64::new(0)),
            wire_bytes: megate_obs::counter("tedb.wire_bytes"),
            account_partition: 0,
            partition_bytes: megate_obs::counter("tedb.partition0.bytes"),
            failover_reads: megate_obs::counter("tedb.failover_reads"),
            repaired_keys: megate_obs::counter("tedb.repaired_keys"),
        }
    }

    /// A clone of this handle whose wire traffic is additionally
    /// attributed to `tedb.partition<N>.bytes` — a partitioned control
    /// plane hands each controller (and each partition's pull loop) its
    /// own accounting handle so per-partition DB load is measurable.
    /// Storage is shared with the parent, like any clone.
    pub fn for_partition(&self, partition: u32) -> TeDatabase {
        let mut db = self.clone();
        db.account_partition = partition;
        db.partition_bytes = megate_obs::counter(&format!("tedb.partition{partition}.bytes"));
        db
    }

    /// The partition this handle attributes its traffic to.
    pub fn account_partition(&self) -> u32 {
        self.account_partition
    }

    /// Subscribes to configuration-version publications — the *push*
    /// half of the §8 hybrid design: heavy-traffic endpoints hold this
    /// persistent channel instead of polling; every
    /// [`publish_version`](Self::publish_version) delivers the new
    /// version immediately. Dropped receivers are pruned lazily.
    pub fn watch_versions(&self) -> Receiver<u64> {
        let (tx, rx) = unbounded();
        self.watchers.lock().push(tx);
        rx
    }

    /// Number of registered version watchers (disconnected ones are
    /// pruned on each publish).
    pub fn watcher_count(&self) -> usize {
        self.watchers.lock().len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The configured replication factor.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Which shard a key routes to (its primary).
    pub fn shard_of(&self, key: &str) -> usize {
        (fnv(key.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// The shards holding a key: primary first, then `replication - 1`
    /// successors.
    pub fn replicas_of(&self, key: &str) -> impl Iterator<Item = usize> + '_ {
        let primary = self.shard_of(key);
        let n = self.shards.len();
        (0..self.replication).map(move |i| (primary + i) % n)
    }

    /// SET — routes by key hash, counts one query per replica. Writes
    /// to a downed replica are dropped (the client would see a
    /// connection error; the repair pass catches the replica up on
    /// recovery).
    pub fn set(&self, key: &str, value: Vec<u8>) {
        let _ = self.set_checked(key, value);
    }

    /// SET that reports whether the value landed anywhere: `Err` means
    /// every replica was unreachable and the write was lost entirely.
    pub fn set_checked(&self, key: &str, value: Vec<u8>) -> Result<(), ShardOutage> {
        let t = megate_obs::start();
        let seq = self.write_seq.fetch_add(1, Ordering::Relaxed);
        let mut landed = false;
        let primary = self.shard_of(key);
        for shard_idx in self.replicas_of(key) {
            let s = &self.shards[shard_idx];
            s.queries.fetch_add(1, Ordering::Relaxed);
            s.bytes
                .fetch_add((key.len() + value.len()) as u64, Ordering::Relaxed);
            self.wire_bytes.add((key.len() + value.len()) as u64);
            self.partition_bytes.add((key.len() + value.len()) as u64);
            if s.is_down() {
                continue;
            }
            s.data.write().insert(
                key.to_string(),
                Stored {
                    seq,
                    value: value.clone(),
                },
            );
            s.latency.record_elapsed(t);
            landed = true;
        }
        if landed {
            Ok(())
        } else {
            Err(ShardOutage { shard: primary })
        }
    }

    /// GET — routes by key hash, counts one query per attempted
    /// replica. Fails over to replicas when the primary is
    /// unreachable; when every replica is down the read answers
    /// nothing. Injected corruption passes through undetected (the
    /// decoder-robustness path); use [`read_outcome`](Self::read_outcome)
    /// to observe it.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.read_outcome(key).ok().and_then(|o| o.value)
    }

    /// GET that distinguishes a missing key from a shard outage —
    /// what a real client sees as a connection error. Pull loops use
    /// this to avoid adopting a version whose entries they could not
    /// read.
    pub fn get_checked(&self, key: &str) -> Result<Option<Vec<u8>>, ShardOutage> {
        self.read_outcome(key).map(|o| o.value)
    }

    /// The full replicated read: which replica served it, whether the
    /// read failed over, how much injected latency it accumulated, and
    /// whether the transport checksum flagged corruption. `Err` only
    /// when every replica was unreachable (down or lossy).
    pub fn read_outcome(&self, key: &str) -> Result<ReadOutcome, ShardOutage> {
        let t = megate_obs::start();
        let seed = self.fault_seed.load(Ordering::Relaxed);
        let primary = self.shard_of(key);
        let mut injected_ns = 0u64;
        for (attempt, shard_idx) in self.replicas_of(key).enumerate() {
            let s = &self.shards[shard_idx];
            s.queries.fetch_add(1, Ordering::Relaxed);
            injected_ns = injected_ns.saturating_add(s.slow_ns.load(Ordering::Relaxed));
            if s.is_down() {
                // Failed connection: the key still crossed the wire.
                s.bytes.fetch_add(key.len() as u64, Ordering::Relaxed);
                self.wire_bytes.add(key.len() as u64);
                self.partition_bytes.add(key.len() as u64);
                continue;
            }
            let loss = s.loss_ppm.load(Ordering::Relaxed);
            if loss > 0 && s.roll(seed, shard_idx) < loss as u64 {
                // Transient connection drop — indistinguishable from a
                // brief outage to the client.
                s.bytes.fetch_add(key.len() as u64, Ordering::Relaxed);
                self.wire_bytes.add(key.len() as u64);
                self.partition_bytes.add(key.len() as u64);
                continue;
            }
            let mut hit = s.data.read().get(key).map(|st| st.value.clone());
            let mut corrupted = false;
            let corrupt = s.corrupt_ppm.load(Ordering::Relaxed);
            if corrupt > 0 && s.roll(seed, shard_idx) < corrupt as u64 {
                if let Some(v) = hit.as_mut() {
                    if !v.is_empty() {
                        let r = s.roll(seed, shard_idx);
                        let at = (r as usize) % v.len();
                        v[at] ^= 1 << (splitmix64(r) % 8);
                        corrupted = true;
                    }
                }
            }
            let response = hit.as_ref().map_or(0, Vec::len);
            s.bytes
                .fetch_add((key.len() + response) as u64, Ordering::Relaxed);
            self.wire_bytes.add((key.len() + response) as u64);
            self.partition_bytes.add((key.len() + response) as u64);
            s.latency.record_elapsed(t);
            if attempt > 0 {
                self.failover_reads.inc();
            }
            return Ok(ReadOutcome {
                value: hit,
                served_by: shard_idx,
                failed_over: attempt > 0,
                injected_ns,
                corrupted,
            });
        }
        Err(ShardOutage { shard: primary })
    }

    // ---- Typed-key API (the delta-versioned keyspace) ----

    /// Typed SET.
    pub fn put(&self, key: &TeKey, value: Vec<u8>) {
        self.set(&key.wire(), value);
    }

    /// Typed SET with full-outage reporting. Records a
    /// [`trace::Stage::ShardWrite`] flight-recorder event stamped with
    /// the config version the record carries (the delta key's version,
    /// a snapshot value's 8-byte stamp prefix, 0 for versionless
    /// records) so a propagation dump shows when each endpoint's bytes
    /// actually reached the database.
    pub fn put_checked(&self, key: &TeKey, value: Vec<u8>) -> Result<(), ShardOutage> {
        let version = match key {
            TeKey::Delta { version, .. } => *version,
            TeKey::Snapshot { .. } if value.len() >= 8 => {
                u64::from_be_bytes(value[..8].try_into().unwrap())
            }
            _ => 0,
        };
        let wire = key.wire();
        trace::record(
            trace::Stage::ShardWrite,
            version,
            self.shard_of(&wire) as u64,
            value.len() as u64,
        );
        self.set_checked(&wire, value)
    }

    /// Typed GET.
    pub fn fetch(&self, key: &TeKey) -> Option<Vec<u8>> {
        self.get(&key.wire())
    }

    /// Typed GET with outage reporting.
    pub fn fetch_checked(&self, key: &TeKey) -> Result<Option<Vec<u8>>, ShardOutage> {
        self.get_checked(&key.wire())
    }

    /// Typed GET with the full [`ReadOutcome`] (failover, injected
    /// latency, detected corruption).
    pub fn fetch_outcome(&self, key: &TeKey) -> Result<ReadOutcome, ShardOutage> {
        self.read_outcome(&key.wire())
    }

    /// Typed DEL — returns whether the key existed on any replica.
    pub fn remove(&self, key: &TeKey) -> bool {
        self.del(&key.wire())
    }

    /// Bumps the version record *after* all of the version's entries
    /// were written (write-then-publish ordering, §3.2) and pushes the
    /// new version to persistent watchers (§8 hybrid); disconnected
    /// channels are pruned here. Equivalent to
    /// [`publish_partition_version`](Self::publish_partition_version)
    /// on partition 0 (the single-controller clock).
    pub fn publish_version(&self, version: u64) {
        self.publish_partition_version(0, version);
    }

    /// Bumps one controller partition's version record. Partition 0 is
    /// the legacy record under [`CONFIG_VERSION_KEY`]; other partitions
    /// get their own key so independent controllers never contend on
    /// one clock. Watchers receive every publish regardless of
    /// partition (the §8 hybrid push is deployed single-partition).
    pub fn publish_partition_version(&self, partition: u32, version: u64) {
        let wire = TeKey::Version { partition }.wire();
        trace::record(
            trace::Stage::VersionBump,
            version,
            self.shard_of(&wire) as u64,
            partition as u64,
        );
        self.set(&wire, version.to_be_bytes().to_vec());
        self.watchers.lock().retain(|w| w.send(version).is_ok());
    }

    /// Appends `version` to an endpoint's changelog (read-modify-write;
    /// the controller is the single writer). Creates the log on first
    /// change. `Err` when the read or the write could not reach any
    /// replica — the caller must retry rather than clobber history
    /// with a fresh log.
    pub fn record_change(&self, endpoint: u64, version: u64) -> Result<(), ShardOutage> {
        let key = TeKey::Changelog { endpoint };
        let outcome = self.fetch_outcome(&key)?;
        if outcome.corrupted {
            // Unreadable history: retry next interval instead of
            // overwriting it with a guess.
            return Err(ShardOutage {
                shard: outcome.served_by,
            });
        }
        let mut log = outcome
            .value
            .and_then(|b| Changelog::decode(&b))
            .unwrap_or_default();
        if log.versions.last() != Some(&version) {
            log.versions.push(version);
        }
        self.put_checked(&key, log.encode())
    }

    /// The endpoint's decoded changelog, if present and well-formed.
    pub fn changelog(&self, endpoint: u64) -> Option<Changelog> {
        Changelog::decode(&self.fetch(&TeKey::Changelog { endpoint })?)
    }

    /// Garbage-collects an endpoint's deltas at versions `<= floor`:
    /// deletes the superseded delta records, prunes them from the
    /// changelog and raises its `complete_since` watermark so agents
    /// older than `floor` know to fall back to the snapshot. Returns
    /// the number of delta records deleted. Skips (returns 0) when the
    /// changelog is unreachable or unreadable — the next interval's GC
    /// retries.
    pub fn gc_endpoint_before(&self, endpoint: u64, floor: u64) -> usize {
        let key = TeKey::Changelog { endpoint };
        let Ok(outcome) = self.fetch_outcome(&key) else {
            return 0;
        };
        if outcome.corrupted {
            return 0;
        }
        let Some(mut log) = outcome.value.and_then(|b| Changelog::decode(&b)) else {
            return 0;
        };
        let mut removed = 0;
        log.versions.retain(|&v| {
            if v <= floor {
                if self.remove(&TeKey::Delta {
                    endpoint,
                    version: v,
                }) {
                    removed += 1;
                }
                false
            } else {
                true
            }
        });
        if log.complete_since < floor {
            log.complete_since = floor;
        }
        self.put(&key, log.encode());
        removed
    }

    // ---- Fault injection & repair ----

    /// Failure injection: takes a shard down (it keeps its data) or
    /// brings it back. Recovery of a replicated database runs the
    /// last-writer-wins [`repair_shard`](Self::repair_shard) pass so
    /// the shard catches up on writes it missed.
    pub fn set_shard_down(&self, shard: usize, down: bool) {
        let was_down = self.shards[shard].down.swap(down, Ordering::Relaxed);
        if was_down && !down && self.replication > 1 {
            self.repair_shard(shard);
        }
    }

    /// True if the given shard is currently down.
    pub fn shard_is_down(&self, shard: usize) -> bool {
        self.shards[shard].down.load(Ordering::Relaxed)
    }

    /// Injects `ns` of service latency into every query the shard
    /// answers (0 restores full speed).
    pub fn set_shard_slow(&self, shard: usize, ns: u64) {
        self.shards[shard].slow_ns.store(ns, Ordering::Relaxed);
    }

    /// Makes `ppm` out of every million reads on the shard fail
    /// transiently (0 restores reliability).
    pub fn set_shard_loss(&self, shard: usize, ppm: u32) {
        self.shards[shard]
            .loss_ppm
            .store(ppm.min(1_000_000), Ordering::Relaxed);
    }

    /// Makes `ppm` out of every million reads on the shard return a
    /// value with one flipped bit (0 restores integrity).
    pub fn set_shard_corrupt(&self, shard: usize, ppm: u32) {
        self.shards[shard]
            .corrupt_ppm
            .store(ppm.min(1_000_000), Ordering::Relaxed);
    }

    /// Seeds the deterministic fault-roll streams (loss/corruption).
    /// Single-threaded runs with the same seed and the same operation
    /// order replay identically.
    pub fn set_fault_seed(&self, seed: u64) {
        self.fault_seed.store(seed, Ordering::Relaxed);
    }

    /// Clears every injected fault: all shards up, full speed,
    /// lossless, uncorrupted. Runs repair on shards that were down.
    pub fn clear_faults(&self) {
        for i in 0..self.shards.len() {
            self.set_shard_slow(i, 0);
            self.set_shard_loss(i, 0);
            self.set_shard_corrupt(i, 0);
            self.set_shard_down(i, false);
        }
    }

    /// True while any shard carries an injected fault.
    pub fn any_fault_active(&self) -> bool {
        self.shards.iter().any(|s| {
            s.is_down()
                || s.slow_ns.load(Ordering::Relaxed) > 0
                || s.loss_ppm.load(Ordering::Relaxed) > 0
                || s.corrupt_ppm.load(Ordering::Relaxed) > 0
        })
    }

    /// Last-writer-wins repair: copies onto `shard` every key it
    /// replicates whose newest copy (highest write sequence) lives on
    /// another replica — the catch-up pass after an outage. Returns
    /// how many keys were repaired. Quorum-less by design: whichever
    /// replica holds the highest sequence wins.
    pub fn repair_shard(&self, shard: usize) -> usize {
        if self.replication <= 1 {
            return 0;
        }
        let mut newest: HashMap<String, Stored> = HashMap::new();
        for (i, other) in self.shards.iter().enumerate() {
            if i == shard {
                continue;
            }
            for (k, st) in other.data.read().iter() {
                if !self.replicas_of(k).any(|r| r == shard) {
                    continue;
                }
                match newest.get(k) {
                    Some(seen) if seen.seq >= st.seq => {}
                    _ => {
                        newest.insert(k.clone(), st.clone());
                    }
                }
            }
        }
        let mut repaired = 0usize;
        let mut data = self.shards[shard].data.write();
        for (k, st) in newest {
            let stale = data.get(&k).is_none_or(|cur| cur.seq < st.seq);
            if stale {
                data.insert(k, st);
                repaired += 1;
            }
        }
        self.repaired_keys.add(repaired as u64);
        repaired
    }

    /// DEL — returns whether the key existed on any reachable replica.
    pub fn del(&self, key: &str) -> bool {
        let t = megate_obs::start();
        let mut existed = false;
        for shard_idx in self.replicas_of(key) {
            let s = &self.shards[shard_idx];
            s.queries.fetch_add(1, Ordering::Relaxed);
            s.bytes.fetch_add(key.len() as u64, Ordering::Relaxed);
            self.wire_bytes.add(key.len() as u64);
            self.partition_bytes.add(key.len() as u64);
            if s.is_down() {
                continue;
            }
            existed |= s.data.write().remove(key).is_some();
            s.latency.record_elapsed(t);
        }
        existed
    }

    /// Total queries served across shards.
    pub fn total_queries(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.queries.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard query counts.
    pub fn per_shard_queries(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.queries.load(Ordering::Relaxed))
            .collect()
    }

    /// Total bytes moved across all shards (keys + values).
    pub fn total_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.bytes.load(Ordering::Relaxed))
            .sum()
    }

    /// Per-shard byte counts.
    pub fn per_shard_bytes(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.bytes.load(Ordering::Relaxed))
            .collect()
    }

    /// Resets query and byte counters (between measurement windows).
    pub fn reset_query_counters(&self) {
        for s in self.shards.iter() {
            s.queries.store(0, Ordering::Relaxed);
            s.bytes.store(0, Ordering::Relaxed);
        }
    }

    // ---- Legacy versioned-config helpers (Figure 4(b)) ----
    //
    // The pre-delta string-keyed publish path: every endpoint's full
    // config rewritten under `te:config:{version}:{key}` each interval.
    // Kept for the §8 hybrid experiments and as the full-republish
    // baseline the delta plane is benchmarked against.

    /// Publishes a new TE configuration the full-republish way: writes
    /// all entries, then bumps the version key last so a reader that
    /// sees version `v` is guaranteed to find `v`'s entries.
    pub fn publish_config(&self, version: u64, entries: &[(String, Vec<u8>)]) {
        for (k, v) in entries {
            self.set(&config_key(version, k), v.clone());
        }
        self.publish_version(version);
    }

    /// The latest published configuration version (the endpoint's cheap
    /// poll query). Partition 0's clock.
    pub fn latest_version(&self) -> Option<u64> {
        let v = self.fetch(&TeKey::Version { partition: 0 })?;
        let bytes: [u8; 8] = v.try_into().ok()?;
        Some(u64::from_be_bytes(bytes))
    }

    /// [`latest_version`](Self::latest_version) that distinguishes "no
    /// version yet" from an unreachable or corrupted version record —
    /// a resilient poll loop retries the latter instead of concluding
    /// nothing was published.
    pub fn latest_version_checked(&self) -> Result<Option<u64>, ShardOutage> {
        self.latest_partition_version_checked(0)
    }

    /// One partition's version clock, with the same outage/corruption
    /// discrimination as [`latest_version_checked`](Self::latest_version_checked).
    pub fn latest_partition_version_checked(
        &self,
        partition: u32,
    ) -> Result<Option<u64>, ShardOutage> {
        let outcome = self.fetch_outcome(&TeKey::Version { partition })?;
        if outcome.corrupted {
            return Err(ShardOutage {
                shard: outcome.served_by,
            });
        }
        match outcome.value {
            None => Ok(None),
            Some(v) => {
                let bytes: [u8; 8] = match v.try_into() {
                    Ok(b) => b,
                    // Malformed record: treat as unreadable, retry.
                    Err(_) => {
                        return Err(ShardOutage {
                            shard: outcome.served_by,
                        })
                    }
                };
                Ok(Some(u64::from_be_bytes(bytes)))
            }
        }
    }

    /// Fetches one entry of a full-republish configuration version.
    pub fn fetch_config(&self, version: u64, key: &str) -> Option<Vec<u8>> {
        self.get(&config_key(version, key))
    }

    /// [`fetch_config`](Self::fetch_config) with outage reporting.
    pub fn fetch_config_checked(
        &self,
        version: u64,
        key: &str,
    ) -> Result<Option<Vec<u8>>, ShardOutage> {
        self.get_checked(&config_key(version, key))
    }

    /// Garbage-collects all entries of an old full-republish version.
    pub fn evict_version(&self, version: u64, keys: &[String]) {
        for k in keys {
            self.del(&config_key(version, k));
        }
    }
}

/// A shard was unreachable — the client's connection failed. With
/// replication this means *every* replica of the key was unreachable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutage {
    /// The key's primary shard.
    pub shard: usize,
}

impl std::fmt::Display for ShardOutage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} unreachable", self.shard)
    }
}

impl std::error::Error for ShardOutage {}

fn config_key(version: u64, key: &str) -> String {
    format!("te:config:{version}:{key}")
}

fn fnv(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// SplitMix64 — the deterministic mixer behind fault rolls and the
/// fault-plan generator (no `rand` dependency on this crate).
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_del_roundtrip() {
        let db = TeDatabase::new(2);
        db.set("a", vec![1, 2, 3]);
        assert_eq!(db.get("a"), Some(vec![1, 2, 3]));
        assert!(db.del("a"));
        assert!(!db.del("a"));
        assert_eq!(db.get("a"), None);
    }

    #[test]
    fn keys_spread_across_shards() {
        let db = TeDatabase::new(4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(db.shard_of(&format!("key{i}")));
        }
        assert!(seen.len() >= 3, "hash should hit most shards, got {seen:?}");
    }

    #[test]
    fn query_counters_count_every_operation() {
        let db = TeDatabase::new(2);
        db.set("x", vec![]);
        db.get("x");
        db.get("y");
        db.del("x");
        assert_eq!(db.total_queries(), 4);
        db.reset_query_counters();
        assert_eq!(db.total_queries(), 0);
    }

    #[test]
    fn byte_counters_track_keys_and_values() {
        let db = TeDatabase::new(1);
        db.set("ab", vec![0; 10]); // 2 + 10
        db.get("ab"); // 2 + 10
        db.get("zz"); // 2 + 0 (miss)
        assert_eq!(db.total_bytes(), 26);
        db.reset_query_counters();
        assert_eq!(db.total_bytes(), 0);
    }

    #[test]
    fn typed_keys_have_distinct_wires() {
        let keys = [
            TeKey::Version { partition: 0 },
            TeKey::Version { partition: 1 },
            TeKey::Version { partition: 12 },
            TeKey::Snapshot { endpoint: 7 },
            TeKey::Delta {
                endpoint: 7,
                version: 3,
            },
            TeKey::Delta {
                endpoint: 7,
                version: 4,
            },
            TeKey::Delta {
                endpoint: 73,
                version: 4,
            },
            TeKey::Changelog { endpoint: 7 },
        ];
        let wires: std::collections::HashSet<String> = keys.iter().map(TeKey::wire).collect();
        assert_eq!(wires.len(), keys.len());
    }

    #[test]
    fn partition_zero_keeps_the_legacy_version_wire() {
        assert_eq!(TeKey::Version { partition: 0 }.wire(), CONFIG_VERSION_KEY);
        assert_eq!(
            TeKey::Version { partition: 3 }.wire(),
            "te:config:version:p3"
        );
    }

    #[test]
    fn partition_version_clocks_are_independent() {
        let db = TeDatabase::new(2);
        db.publish_partition_version(0, 5);
        db.publish_partition_version(1, 9);
        assert_eq!(db.latest_version(), Some(5));
        assert_eq!(db.latest_partition_version_checked(0), Ok(Some(5)));
        assert_eq!(db.latest_partition_version_checked(1), Ok(Some(9)));
        assert_eq!(db.latest_partition_version_checked(2), Ok(None));
    }

    #[test]
    fn partition_handles_attribute_wire_bytes() {
        let db = TeDatabase::new(1);
        let h1 = db.for_partition(1);
        assert_eq!(h1.account_partition(), 1);
        let before = megate_obs::counter("tedb.partition1.bytes").get();
        h1.set("ab", vec![0; 10]); // 2 + 10
        h1.get("ab"); // 2 + 10
        let after = megate_obs::counter("tedb.partition1.bytes").get();
        assert_eq!(after - before, 24);
        // Storage is shared with the parent handle.
        assert_eq!(db.get("ab"), Some(vec![0; 10]));
    }

    #[test]
    fn typed_put_fetch_remove_roundtrip() {
        let db = TeDatabase::new(2);
        let k = TeKey::Delta {
            endpoint: 9,
            version: 2,
        };
        db.put(&k, vec![1, 2]);
        assert_eq!(db.fetch(&k), Some(vec![1, 2]));
        assert_eq!(db.fetch_checked(&k), Ok(Some(vec![1, 2])));
        assert!(db.remove(&k));
        assert_eq!(db.fetch(&k), None);
    }

    #[test]
    fn changelog_encode_decode_roundtrip_and_rejects_garbage() {
        let log = Changelog {
            complete_since: 4,
            versions: vec![5, 7, 11],
        };
        assert_eq!(Changelog::decode(&log.encode()), Some(log.clone()));
        let bytes = log.encode();
        for cut in 0..bytes.len() {
            assert_eq!(Changelog::decode(&bytes[..cut]), None, "cut {cut}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(Changelog::decode(&long), None);
    }

    #[test]
    fn record_change_appends_and_dedupes() {
        let db = TeDatabase::new(2);
        assert!(db.changelog(3).is_none());
        db.record_change(3, 1).unwrap();
        db.record_change(3, 4).unwrap();
        db.record_change(3, 4).unwrap(); // idempotent re-publish
        let log = db.changelog(3).unwrap();
        assert_eq!(log.versions, vec![1, 4]);
        assert_eq!(log.complete_since, 0);
    }

    #[test]
    fn record_change_refuses_to_clobber_during_outage() {
        let db = TeDatabase::new(1);
        db.record_change(3, 1).unwrap();
        db.set_shard_down(0, true);
        assert!(
            db.record_change(3, 2).is_err(),
            "unreachable log must error"
        );
        db.set_shard_down(0, false);
        db.record_change(3, 2).unwrap();
        assert_eq!(db.changelog(3).unwrap().versions, vec![1, 2]);
    }

    #[test]
    fn gc_prunes_deltas_and_raises_watermark() {
        let db = TeDatabase::new(2);
        for v in [1u64, 3, 5, 9] {
            db.put(
                &TeKey::Delta {
                    endpoint: 2,
                    version: v,
                },
                vec![v as u8],
            );
            db.record_change(2, v).unwrap();
        }
        let removed = db.gc_endpoint_before(2, 5);
        assert_eq!(removed, 3);
        assert_eq!(
            db.fetch(&TeKey::Delta {
                endpoint: 2,
                version: 3
            }),
            None
        );
        assert_eq!(
            db.fetch(&TeKey::Delta {
                endpoint: 2,
                version: 9
            }),
            Some(vec![9])
        );
        let log = db.changelog(2).unwrap();
        assert_eq!(log.versions, vec![9]);
        assert_eq!(log.complete_since, 5);
        // Idempotent.
        assert_eq!(db.gc_endpoint_before(2, 5), 0);
    }

    #[test]
    fn publish_then_read_version_and_entries() {
        let db = TeDatabase::new(2);
        assert_eq!(db.latest_version(), None);
        db.publish_config(7, &[("host1".into(), vec![9]), ("host2".into(), vec![8])]);
        assert_eq!(db.latest_version(), Some(7));
        assert_eq!(db.fetch_config(7, "host1"), Some(vec![9]));
        assert_eq!(db.fetch_config(7, "host3"), None);
        assert_eq!(db.fetch_config(6, "host1"), None);
    }

    #[test]
    fn version_monotonically_replaces() {
        let db = TeDatabase::new(1);
        db.publish_config(1, &[("h".into(), vec![1])]);
        db.publish_config(2, &[("h".into(), vec![2])]);
        assert_eq!(db.latest_version(), Some(2));
        // Old version's entries remain until evicted.
        assert_eq!(db.fetch_config(1, "h"), Some(vec![1]));
        db.evict_version(1, &["h".into()]);
        assert_eq!(db.fetch_config(1, "h"), None);
    }

    #[test]
    fn downed_shard_answers_nothing_then_recovers() {
        let db = TeDatabase::new(2);
        db.set("k1", vec![1]);
        let shard = db.shard_of("k1");
        db.set_shard_down(shard, true);
        assert!(db.shard_is_down(shard));
        assert_eq!(db.get("k1"), None, "outage hides the entry");
        db.set("k1", vec![2]); // dropped write
        db.set_shard_down(shard, false);
        assert_eq!(db.get("k1"), Some(vec![1]), "data survives the outage");
    }

    #[test]
    fn other_shards_unaffected_by_one_outage() {
        let db = TeDatabase::new(4);
        // Find two keys on different shards.
        let mut keys = Vec::new();
        for i in 0..100 {
            let k = format!("key{i}");
            if keys.iter().all(|(_, s)| *s != db.shard_of(&k)) {
                let s = db.shard_of(&k);
                keys.push((k, s));
                if keys.len() == 2 {
                    break;
                }
            }
        }
        let (ka, sa) = keys[0].clone();
        let (kb, _) = keys[1].clone();
        db.set(&ka, vec![1]);
        db.set(&kb, vec![2]);
        db.set_shard_down(sa, true);
        assert_eq!(db.get(&ka), None);
        assert_eq!(db.get(&kb), Some(vec![2]));
    }

    #[test]
    fn clones_share_data() {
        let a = TeDatabase::new(2);
        let b = a.clone();
        a.set("k", vec![5]);
        assert_eq!(b.get("k"), Some(vec![5]));
    }

    #[test]
    fn replicated_reads_fail_over_to_a_live_replica() {
        let db = TeDatabase::with_replication(3, 2);
        db.set("k", vec![7]);
        let primary = db.shard_of("k");
        db.set_shard_down(primary, true);
        // The replica still serves the value.
        assert_eq!(db.get("k"), Some(vec![7]));
        let out = db.read_outcome("k").unwrap();
        assert!(out.failed_over);
        assert_ne!(out.served_by, primary);
        assert_eq!(out.value, Some(vec![7]));
    }

    #[test]
    fn replicated_read_fails_only_when_all_replicas_down() {
        let db = TeDatabase::with_replication(3, 2);
        db.set("k", vec![7]);
        let replicas: Vec<usize> = db.replicas_of("k").collect();
        assert_eq!(replicas.len(), 2);
        for &r in &replicas {
            db.set_shard_down(r, true);
        }
        assert!(db.read_outcome("k").is_err());
        assert_eq!(db.get("k"), None);
    }

    #[test]
    fn recovery_repairs_missed_writes_last_writer_wins() {
        let db = TeDatabase::with_replication(4, 2);
        db.set("k", vec![1]);
        let primary = db.shard_of("k");
        db.set_shard_down(primary, true);
        // Written while the primary is dark: lands on the replica only.
        db.set("k", vec![2]);
        db.set_shard_down(primary, false); // auto-repair
                                           // Take the replica down: the repaired primary must serve the
                                           // *newer* value, not its stale pre-outage copy.
        let replicas: Vec<usize> = db.replicas_of("k").collect();
        db.set_shard_down(replicas[1], true);
        assert_eq!(
            db.get("k"),
            Some(vec![2]),
            "repair must copy the newer write"
        );
    }

    #[test]
    fn slow_shard_surfaces_injected_latency() {
        let db = TeDatabase::new(1);
        db.set("k", vec![1]);
        db.set_shard_slow(0, 5_000);
        let out = db.read_outcome("k").unwrap();
        assert_eq!(out.injected_ns, 5_000);
        db.set_shard_slow(0, 0);
        assert_eq!(db.read_outcome("k").unwrap().injected_ns, 0);
    }

    #[test]
    fn lossy_shard_fails_reads_at_roughly_the_injected_rate() {
        let db = TeDatabase::new(1);
        db.set("k", vec![1]);
        db.set_fault_seed(42);
        db.set_shard_loss(0, 300_000); // 30%
        let failures = (0..2000).filter(|_| db.read_outcome("k").is_err()).count();
        let rate = failures as f64 / 2000.0;
        assert!((rate - 0.3).abs() < 0.05, "loss rate {rate}");
        db.set_shard_loss(0, 0);
        assert!(db.read_outcome("k").is_ok());
    }

    #[test]
    fn corrupt_reads_flag_and_damage_the_value() {
        let db = TeDatabase::new(1);
        db.set("k", vec![0xAA, 0xBB, 0xCC]);
        db.set_fault_seed(7);
        db.set_shard_corrupt(0, 1_000_000); // every read
        let out = db.read_outcome("k").unwrap();
        assert!(out.corrupted);
        let damaged = out.value.unwrap();
        assert_eq!(damaged.len(), 3);
        let diff: u8 = damaged
            .iter()
            .zip([0xAA, 0xBB, 0xCC])
            .map(|(a, b)| a ^ b)
            .fold(0, |acc, d| acc | d);
        assert_eq!(diff.count_ones(), 1, "exactly one flipped bit");
        // The stored value itself is intact.
        db.set_shard_corrupt(0, 0);
        assert_eq!(db.get("k"), Some(vec![0xAA, 0xBB, 0xCC]));
    }

    #[test]
    fn fault_rolls_replay_identically_per_seed() {
        let run = |seed: u64| {
            let db = TeDatabase::new(1);
            db.set("k", vec![1, 2, 3, 4]);
            db.set_fault_seed(seed);
            db.set_shard_loss(0, 200_000);
            db.set_shard_corrupt(0, 200_000);
            (0..100)
                .map(|_| match db.read_outcome("k") {
                    Err(_) => 0u8,
                    Ok(o) if o.corrupted => 1,
                    Ok(_) => 2,
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn clear_faults_restores_health() {
        let db = TeDatabase::with_replication(3, 2);
        db.set("k", vec![1]);
        db.set_shard_down(0, true);
        db.set_shard_slow(1, 500);
        db.set_shard_loss(2, 1000);
        assert!(db.any_fault_active());
        db.clear_faults();
        assert!(!db.any_fault_active());
        assert_eq!(db.get("k"), Some(vec![1]));
    }

    #[test]
    fn latest_version_checked_reports_outage_not_absence() {
        let db = TeDatabase::new(1);
        assert_eq!(db.latest_version_checked(), Ok(None));
        db.publish_version(4);
        assert_eq!(db.latest_version_checked(), Ok(Some(4)));
        db.set_shard_down(0, true);
        assert!(db.latest_version_checked().is_err());
        assert_eq!(db.latest_version(), None, "unchecked poll stays silent");
    }

    #[test]
    fn set_checked_reports_totally_lost_writes() {
        let db = TeDatabase::with_replication(2, 2);
        assert!(db.set_checked("k", vec![1]).is_ok());
        db.set_shard_down(0, true);
        assert!(
            db.set_checked("k", vec![2]).is_ok(),
            "one replica is enough"
        );
        db.set_shard_down(1, true);
        assert!(
            db.set_checked("k", vec![3]).is_err(),
            "write lost everywhere"
        );
    }

    #[test]
    fn watchers_receive_every_publish_in_order() {
        let db = TeDatabase::new(2);
        let rx = db.watch_versions();
        assert_eq!(db.watcher_count(), 1);
        for v in 1..=5u64 {
            db.publish_config(v, &[("h".into(), vec![v as u8])]);
        }
        let got: Vec<u64> = rx.try_iter().collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn dropped_watchers_are_pruned() {
        let db = TeDatabase::new(1);
        let rx1 = db.watch_versions();
        {
            let _rx2 = db.watch_versions();
            assert_eq!(db.watcher_count(), 2);
        } // rx2 dropped
        db.publish_config(1, &[]);
        assert_eq!(db.watcher_count(), 1);
        assert_eq!(rx1.try_recv(), Ok(1));
    }

    #[test]
    fn watcher_sees_version_whose_entries_are_readable() {
        // Push ordering matches the pull contract: by the time the
        // watcher learns of v, v's entries are in the store.
        let db = TeDatabase::new(2);
        let rx = db.watch_versions();
        db.publish_config(9, &[("h".into(), vec![1, 2, 3])]);
        let v = rx.recv().unwrap();
        assert_eq!(db.fetch_config(v, "h"), Some(vec![1, 2, 3]));
    }

    #[test]
    fn concurrent_clients_see_consistent_version() {
        let db = TeDatabase::new(2);
        db.publish_config(1, &[("h".into(), vec![1])]);
        std::thread::scope(|s| {
            let writer = db.clone();
            s.spawn(move || {
                for v in 2..50u64 {
                    writer.publish_config(v, &[("h".into(), vec![v as u8])]);
                }
            });
            let reader = db.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    if let Some(v) = reader.latest_version() {
                        // Write-then-publish: the entry for any observed
                        // version must exist.
                        assert!(reader.fetch_config(v, "h").is_some(), "version {v}");
                    }
                }
            });
        });
    }
}
