//! Sharded in-memory key-value store — the customized Redis of §3.2.
//!
//! Keys are routed to shards by FNV hash. Every read and write bumps a
//! per-shard query counter *and* a per-shard byte counter (key + value
//! moved over the wire), so simulations and benchmarks can reason about
//! per-shard load against the paper's 80k-queries/second/shard budget
//! (160k on two shards, "linearly scaled with more shard resources")
//! and about the byte savings of delta-versioned pulls.
//!
//! On top of the raw string API sits the **typed TE keyspace**
//! ([`TeKey`]): the version record, per-endpoint snapshots,
//! per-`(endpoint, version)` deltas and per-endpoint version changelogs
//! that the delta-versioned control loop publishes, plus changelog
//! bookkeeping ([`TeDatabase::record_change`]) and garbage collection
//! of superseded deltas ([`TeDatabase::gc_endpoint_before`]).

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Key under which the current TE configuration version is stored.
pub const CONFIG_VERSION_KEY: &str = "te:config:version";

/// Queries per second one shard sustains (paper: 160k qps on 2 shards).
pub const SHARD_QPS_CAPACITY: u64 = 80_000;

/// The typed TE-DB keyspace of the delta-versioned control loop.
///
/// Endpoints are raw u64 ids here (the store is topology-agnostic);
/// `megate-core` maps them from `EndpointId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TeKey {
    /// The global configuration version record (8-byte big-endian u64).
    Version,
    /// An endpoint's latest full snapshot: `u64 stamp | snapshot body`,
    /// where `stamp` is the version whose state the body reflects.
    Snapshot {
        /// The source endpoint.
        endpoint: u64,
    },
    /// The delta that moves `endpoint` from its state *before*
    /// `version` to its state *at* `version`.
    Delta {
        /// The source endpoint.
        endpoint: u64,
        /// The version this delta produces.
        version: u64,
    },
    /// The endpoint's version changelog: at which retained versions its
    /// configuration changed (see [`Changelog`]).
    Changelog {
        /// The source endpoint.
        endpoint: u64,
    },
}

impl TeKey {
    /// The wire (string) form the shards hash and store.
    pub fn wire(&self) -> String {
        match self {
            TeKey::Version => CONFIG_VERSION_KEY.to_string(),
            TeKey::Snapshot { endpoint } => format!("te:snap:{endpoint}"),
            TeKey::Delta { endpoint, version } => format!("te:delta:{endpoint}:{version}"),
            TeKey::Changelog { endpoint } => format!("te:log:{endpoint}"),
        }
    }
}

impl std::fmt::Display for TeKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.wire())
    }
}

/// A per-endpoint version changelog: the versions at which the
/// endpoint's configuration changed, complete for every version
/// strictly greater than `complete_since` (older deltas may have been
/// garbage-collected — an agent whose installed version predates
/// `complete_since` must fall back to the snapshot).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Changelog {
    /// The log is complete for changes at versions `> complete_since`.
    pub complete_since: u64,
    /// Ascending change versions still retained.
    pub versions: Vec<u64>,
}

impl Changelog {
    /// Wire encoding: `u64 complete_since | u32 count | count × u64`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.versions.len() * 8);
        out.extend_from_slice(&self.complete_since.to_be_bytes());
        out.extend_from_slice(&(self.versions.len() as u32).to_be_bytes());
        for v in &self.versions {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out
    }

    /// Bounds-checked decode; `None` on truncation or trailing bytes.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        let complete_since = u64::from_be_bytes(bytes.get(0..8)?.try_into().ok()?);
        let count = u32::from_be_bytes(bytes.get(8..12)?.try_into().ok()?) as usize;
        if bytes.len() != 12 + count * 8 {
            return None;
        }
        let mut versions = Vec::with_capacity(count);
        for i in 0..count {
            let at = 12 + i * 8;
            versions.push(u64::from_be_bytes(bytes.get(at..at + 8)?.try_into().ok()?));
        }
        Some(Self { complete_since, versions })
    }
}

#[derive(Debug, Default)]
struct Shard {
    data: RwLock<HashMap<String, Vec<u8>>>,
    queries: AtomicU64,
    /// Bytes moved over this shard's wire: keys both ways, values on
    /// SET (request) and on GET hits (response).
    bytes: AtomicU64,
    /// Failure injection: a down shard answers nothing (GET -> None,
    /// SET dropped) — what a client sees during a shard outage.
    down: std::sync::atomic::AtomicBool,
    /// Per-shard query service time, exported as
    /// `tedb.shard<i>.query_ns` (all databases in the process sharing
    /// a shard index aggregate into the same histogram).
    latency: megate_obs::Histogram,
}

/// The sharded TE database. Clones share storage (like extra client
/// connections to the same cluster).
///
/// ```
/// use megate_tedb::{TeDatabase, TeKey};
///
/// let db = TeDatabase::new(2); // the paper's two shards
/// db.put(&TeKey::Snapshot { endpoint: 7 }, vec![0xAB]);
/// db.publish_version(1);
/// assert_eq!(db.latest_version(), Some(1));                       // cheap poll
/// assert_eq!(db.fetch(&TeKey::Snapshot { endpoint: 7 }), Some(vec![0xAB]));
/// ```
#[derive(Debug, Clone)]
pub struct TeDatabase {
    shards: Arc<Vec<Shard>>,
    watchers: Arc<Mutex<Vec<Sender<u64>>>>,
    /// Process-wide mirror of the per-shard `bytes` counters
    /// (`tedb.wire_bytes`), so bench snapshots see DB traffic without
    /// holding a database handle.
    wire_bytes: megate_obs::Counter,
}

impl TeDatabase {
    /// A database with `n_shards` shards (the paper deploys two).
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards > 0, "need at least one shard");
        Self {
            shards: Arc::new(
                (0..n_shards)
                    .map(|i| Shard {
                        latency: megate_obs::histogram(&format!("tedb.shard{i}.query_ns")),
                        ..Shard::default()
                    })
                    .collect(),
            ),
            watchers: Arc::new(Mutex::new(Vec::new())),
            wire_bytes: megate_obs::counter("tedb.wire_bytes"),
        }
    }

    /// Subscribes to configuration-version publications — the *push*
    /// half of the §8 hybrid design: heavy-traffic endpoints hold this
    /// persistent channel instead of polling; every
    /// [`publish_version`](Self::publish_version) delivers the new
    /// version immediately. Dropped receivers are pruned lazily.
    pub fn watch_versions(&self) -> Receiver<u64> {
        let (tx, rx) = unbounded();
        self.watchers.lock().push(tx);
        rx
    }

    /// Number of registered version watchers (disconnected ones are
    /// pruned on each publish).
    pub fn watcher_count(&self) -> usize {
        self.watchers.lock().len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which shard a key routes to.
    pub fn shard_of(&self, key: &str) -> usize {
        (fnv(key.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// SET — routes by key hash, counts one query. Writes to a downed
    /// shard are dropped (the client would see a connection error and
    /// the controller retries next interval).
    pub fn set(&self, key: &str, value: Vec<u8>) {
        let t = megate_obs::start();
        let s = &self.shards[self.shard_of(key)];
        s.queries.fetch_add(1, Ordering::Relaxed);
        s.bytes
            .fetch_add((key.len() + value.len()) as u64, Ordering::Relaxed);
        self.wire_bytes.add((key.len() + value.len()) as u64);
        if s.down.load(Ordering::Relaxed) {
            return;
        }
        s.data.write().insert(key.to_string(), value);
        s.latency.record_elapsed(t);
    }

    /// GET — routes by key hash, counts one query. A downed shard
    /// answers nothing.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        let t = megate_obs::start();
        let s = &self.shards[self.shard_of(key)];
        s.queries.fetch_add(1, Ordering::Relaxed);
        if s.down.load(Ordering::Relaxed) {
            s.bytes.fetch_add(key.len() as u64, Ordering::Relaxed);
            self.wire_bytes.add(key.len() as u64);
            return None;
        }
        let hit = s.data.read().get(key).cloned();
        let response = hit.as_ref().map_or(0, Vec::len);
        s.bytes
            .fetch_add((key.len() + response) as u64, Ordering::Relaxed);
        self.wire_bytes.add((key.len() + response) as u64);
        s.latency.record_elapsed(t);
        hit
    }

    /// GET that distinguishes a missing key from a shard outage —
    /// what a real client sees as a connection error. Pull loops use
    /// this to avoid adopting a version whose entries they could not
    /// read.
    pub fn get_checked(&self, key: &str) -> Result<Option<Vec<u8>>, ShardOutage> {
        let t = megate_obs::start();
        let shard = self.shard_of(key);
        let s = &self.shards[shard];
        s.queries.fetch_add(1, Ordering::Relaxed);
        if s.down.load(Ordering::Relaxed) {
            return Err(ShardOutage { shard });
        }
        let hit = s.data.read().get(key).cloned();
        let response = hit.as_ref().map_or(0, Vec::len);
        s.bytes
            .fetch_add((key.len() + response) as u64, Ordering::Relaxed);
        self.wire_bytes.add((key.len() + response) as u64);
        s.latency.record_elapsed(t);
        Ok(hit)
    }

    // ---- Typed-key API (the delta-versioned keyspace) ----

    /// Typed SET.
    pub fn put(&self, key: &TeKey, value: Vec<u8>) {
        self.set(&key.wire(), value);
    }

    /// Typed GET.
    pub fn fetch(&self, key: &TeKey) -> Option<Vec<u8>> {
        self.get(&key.wire())
    }

    /// Typed GET with outage reporting.
    pub fn fetch_checked(&self, key: &TeKey) -> Result<Option<Vec<u8>>, ShardOutage> {
        self.get_checked(&key.wire())
    }

    /// Typed DEL — returns whether the key existed.
    pub fn remove(&self, key: &TeKey) -> bool {
        self.del(&key.wire())
    }

    /// Bumps the version record *after* all of the version's entries
    /// were written (write-then-publish ordering, §3.2) and pushes the
    /// new version to persistent watchers (§8 hybrid); disconnected
    /// channels are pruned here.
    pub fn publish_version(&self, version: u64) {
        self.put(&TeKey::Version, version.to_be_bytes().to_vec());
        self.watchers.lock().retain(|w| w.send(version).is_ok());
    }

    /// Appends `version` to an endpoint's changelog (read-modify-write;
    /// the controller is the single writer). Creates the log on first
    /// change.
    pub fn record_change(&self, endpoint: u64, version: u64) {
        let key = TeKey::Changelog { endpoint };
        let mut log = self
            .fetch(&key)
            .and_then(|b| Changelog::decode(&b))
            .unwrap_or_default();
        if log.versions.last() != Some(&version) {
            log.versions.push(version);
        }
        self.put(&key, log.encode());
    }

    /// The endpoint's decoded changelog, if present and well-formed.
    pub fn changelog(&self, endpoint: u64) -> Option<Changelog> {
        Changelog::decode(&self.fetch(&TeKey::Changelog { endpoint })?)
    }

    /// Garbage-collects an endpoint's deltas at versions `<= floor`:
    /// deletes the superseded delta records, prunes them from the
    /// changelog and raises its `complete_since` watermark so agents
    /// older than `floor` know to fall back to the snapshot. Returns
    /// the number of delta records deleted.
    pub fn gc_endpoint_before(&self, endpoint: u64, floor: u64) -> usize {
        let key = TeKey::Changelog { endpoint };
        let Some(mut log) = self.fetch(&key).and_then(|b| Changelog::decode(&b)) else {
            return 0;
        };
        let mut removed = 0;
        log.versions.retain(|&v| {
            if v <= floor {
                if self.remove(&TeKey::Delta { endpoint, version: v }) {
                    removed += 1;
                }
                false
            } else {
                true
            }
        });
        if log.complete_since < floor {
            log.complete_since = floor;
        }
        self.put(&key, log.encode());
        removed
    }

    /// Failure injection: takes a shard down (it keeps its data) or
    /// brings it back.
    pub fn set_shard_down(&self, shard: usize, down: bool) {
        self.shards[shard].down.store(down, Ordering::Relaxed);
    }

    /// True if the given shard is currently down.
    pub fn shard_is_down(&self, shard: usize) -> bool {
        self.shards[shard].down.load(Ordering::Relaxed)
    }

    /// DEL — returns whether the key existed.
    pub fn del(&self, key: &str) -> bool {
        let t = megate_obs::start();
        let s = &self.shards[self.shard_of(key)];
        s.queries.fetch_add(1, Ordering::Relaxed);
        s.bytes.fetch_add(key.len() as u64, Ordering::Relaxed);
        self.wire_bytes.add(key.len() as u64);
        let hit = s.data.write().remove(key).is_some();
        s.latency.record_elapsed(t);
        hit
    }

    /// Total queries served across shards.
    pub fn total_queries(&self) -> u64 {
        self.shards.iter().map(|s| s.queries.load(Ordering::Relaxed)).sum()
    }

    /// Per-shard query counts.
    pub fn per_shard_queries(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.queries.load(Ordering::Relaxed)).collect()
    }

    /// Total bytes moved across all shards (keys + values).
    pub fn total_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.bytes.load(Ordering::Relaxed)).sum()
    }

    /// Per-shard byte counts.
    pub fn per_shard_bytes(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.bytes.load(Ordering::Relaxed)).collect()
    }

    /// Resets query and byte counters (between measurement windows).
    pub fn reset_query_counters(&self) {
        for s in self.shards.iter() {
            s.queries.store(0, Ordering::Relaxed);
            s.bytes.store(0, Ordering::Relaxed);
        }
    }

    // ---- Legacy versioned-config helpers (Figure 4(b)) ----
    //
    // The pre-delta string-keyed publish path: every endpoint's full
    // config rewritten under `te:config:{version}:{key}` each interval.
    // Kept for the §8 hybrid experiments and as the full-republish
    // baseline the delta plane is benchmarked against.

    /// Publishes a new TE configuration the full-republish way: writes
    /// all entries, then bumps the version key last so a reader that
    /// sees version `v` is guaranteed to find `v`'s entries.
    pub fn publish_config(&self, version: u64, entries: &[(String, Vec<u8>)]) {
        for (k, v) in entries {
            self.set(&config_key(version, k), v.clone());
        }
        self.publish_version(version);
    }

    /// The latest published configuration version (the endpoint's cheap
    /// poll query).
    pub fn latest_version(&self) -> Option<u64> {
        let v = self.fetch(&TeKey::Version)?;
        let bytes: [u8; 8] = v.try_into().ok()?;
        Some(u64::from_be_bytes(bytes))
    }

    /// Fetches one entry of a full-republish configuration version.
    pub fn fetch_config(&self, version: u64, key: &str) -> Option<Vec<u8>> {
        self.get(&config_key(version, key))
    }

    /// [`fetch_config`](Self::fetch_config) with outage reporting.
    pub fn fetch_config_checked(
        &self,
        version: u64,
        key: &str,
    ) -> Result<Option<Vec<u8>>, ShardOutage> {
        self.get_checked(&config_key(version, key))
    }

    /// Garbage-collects all entries of an old full-republish version.
    pub fn evict_version(&self, version: u64, keys: &[String]) {
        for k in keys {
            self.del(&config_key(version, k));
        }
    }
}

/// A shard was unreachable — the client's connection failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutage {
    /// Which shard was down.
    pub shard: usize,
}

impl std::fmt::Display for ShardOutage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shard {} unreachable", self.shard)
    }
}

impl std::error::Error for ShardOutage {}

fn config_key(version: u64, key: &str) -> String {
    format!("te:config:{version}:{key}")
}

fn fnv(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_del_roundtrip() {
        let db = TeDatabase::new(2);
        db.set("a", vec![1, 2, 3]);
        assert_eq!(db.get("a"), Some(vec![1, 2, 3]));
        assert!(db.del("a"));
        assert!(!db.del("a"));
        assert_eq!(db.get("a"), None);
    }

    #[test]
    fn keys_spread_across_shards() {
        let db = TeDatabase::new(4);
        let mut seen = std::collections::HashSet::new();
        for i in 0..100 {
            seen.insert(db.shard_of(&format!("key{i}")));
        }
        assert!(seen.len() >= 3, "hash should hit most shards, got {seen:?}");
    }

    #[test]
    fn query_counters_count_every_operation() {
        let db = TeDatabase::new(2);
        db.set("x", vec![]);
        db.get("x");
        db.get("y");
        db.del("x");
        assert_eq!(db.total_queries(), 4);
        db.reset_query_counters();
        assert_eq!(db.total_queries(), 0);
    }

    #[test]
    fn byte_counters_track_keys_and_values() {
        let db = TeDatabase::new(1);
        db.set("ab", vec![0; 10]); // 2 + 10
        db.get("ab"); // 2 + 10
        db.get("zz"); // 2 + 0 (miss)
        assert_eq!(db.total_bytes(), 26);
        db.reset_query_counters();
        assert_eq!(db.total_bytes(), 0);
    }

    #[test]
    fn typed_keys_have_distinct_wires() {
        let keys = [
            TeKey::Version,
            TeKey::Snapshot { endpoint: 7 },
            TeKey::Delta { endpoint: 7, version: 3 },
            TeKey::Delta { endpoint: 7, version: 4 },
            TeKey::Delta { endpoint: 73, version: 4 },
            TeKey::Changelog { endpoint: 7 },
        ];
        let wires: std::collections::HashSet<String> =
            keys.iter().map(TeKey::wire).collect();
        assert_eq!(wires.len(), keys.len());
    }

    #[test]
    fn typed_put_fetch_remove_roundtrip() {
        let db = TeDatabase::new(2);
        let k = TeKey::Delta { endpoint: 9, version: 2 };
        db.put(&k, vec![1, 2]);
        assert_eq!(db.fetch(&k), Some(vec![1, 2]));
        assert_eq!(db.fetch_checked(&k), Ok(Some(vec![1, 2])));
        assert!(db.remove(&k));
        assert_eq!(db.fetch(&k), None);
    }

    #[test]
    fn changelog_encode_decode_roundtrip_and_rejects_garbage() {
        let log = Changelog { complete_since: 4, versions: vec![5, 7, 11] };
        assert_eq!(Changelog::decode(&log.encode()), Some(log.clone()));
        let bytes = log.encode();
        for cut in 0..bytes.len() {
            assert_eq!(Changelog::decode(&bytes[..cut]), None, "cut {cut}");
        }
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(Changelog::decode(&long), None);
    }

    #[test]
    fn record_change_appends_and_dedupes() {
        let db = TeDatabase::new(2);
        assert!(db.changelog(3).is_none());
        db.record_change(3, 1);
        db.record_change(3, 4);
        db.record_change(3, 4); // idempotent re-publish
        let log = db.changelog(3).unwrap();
        assert_eq!(log.versions, vec![1, 4]);
        assert_eq!(log.complete_since, 0);
    }

    #[test]
    fn gc_prunes_deltas_and_raises_watermark() {
        let db = TeDatabase::new(2);
        for v in [1u64, 3, 5, 9] {
            db.put(&TeKey::Delta { endpoint: 2, version: v }, vec![v as u8]);
            db.record_change(2, v);
        }
        let removed = db.gc_endpoint_before(2, 5);
        assert_eq!(removed, 3);
        assert_eq!(db.fetch(&TeKey::Delta { endpoint: 2, version: 3 }), None);
        assert_eq!(db.fetch(&TeKey::Delta { endpoint: 2, version: 9 }), Some(vec![9]));
        let log = db.changelog(2).unwrap();
        assert_eq!(log.versions, vec![9]);
        assert_eq!(log.complete_since, 5);
        // Idempotent.
        assert_eq!(db.gc_endpoint_before(2, 5), 0);
    }

    #[test]
    fn publish_then_read_version_and_entries() {
        let db = TeDatabase::new(2);
        assert_eq!(db.latest_version(), None);
        db.publish_config(7, &[("host1".into(), vec![9]), ("host2".into(), vec![8])]);
        assert_eq!(db.latest_version(), Some(7));
        assert_eq!(db.fetch_config(7, "host1"), Some(vec![9]));
        assert_eq!(db.fetch_config(7, "host3"), None);
        assert_eq!(db.fetch_config(6, "host1"), None);
    }

    #[test]
    fn version_monotonically_replaces() {
        let db = TeDatabase::new(1);
        db.publish_config(1, &[("h".into(), vec![1])]);
        db.publish_config(2, &[("h".into(), vec![2])]);
        assert_eq!(db.latest_version(), Some(2));
        // Old version's entries remain until evicted.
        assert_eq!(db.fetch_config(1, "h"), Some(vec![1]));
        db.evict_version(1, &["h".into()]);
        assert_eq!(db.fetch_config(1, "h"), None);
    }

    #[test]
    fn downed_shard_answers_nothing_then_recovers() {
        let db = TeDatabase::new(2);
        db.set("k1", vec![1]);
        let shard = db.shard_of("k1");
        db.set_shard_down(shard, true);
        assert!(db.shard_is_down(shard));
        assert_eq!(db.get("k1"), None, "outage hides the entry");
        db.set("k1", vec![2]); // dropped write
        db.set_shard_down(shard, false);
        assert_eq!(db.get("k1"), Some(vec![1]), "data survives the outage");
    }

    #[test]
    fn other_shards_unaffected_by_one_outage() {
        let db = TeDatabase::new(4);
        // Find two keys on different shards.
        let mut keys = Vec::new();
        for i in 0..100 {
            let k = format!("key{i}");
            if keys.iter().all(|(_, s)| *s != db.shard_of(&k)) {
                let s = db.shard_of(&k);
                keys.push((k, s));
                if keys.len() == 2 {
                    break;
                }
            }
        }
        let (ka, sa) = keys[0].clone();
        let (kb, _) = keys[1].clone();
        db.set(&ka, vec![1]);
        db.set(&kb, vec![2]);
        db.set_shard_down(sa, true);
        assert_eq!(db.get(&ka), None);
        assert_eq!(db.get(&kb), Some(vec![2]));
    }

    #[test]
    fn clones_share_data() {
        let a = TeDatabase::new(2);
        let b = a.clone();
        a.set("k", vec![5]);
        assert_eq!(b.get("k"), Some(vec![5]));
    }

    #[test]
    fn watchers_receive_every_publish_in_order() {
        let db = TeDatabase::new(2);
        let rx = db.watch_versions();
        assert_eq!(db.watcher_count(), 1);
        for v in 1..=5u64 {
            db.publish_config(v, &[("h".into(), vec![v as u8])]);
        }
        let got: Vec<u64> = rx.try_iter().collect();
        assert_eq!(got, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn dropped_watchers_are_pruned() {
        let db = TeDatabase::new(1);
        let rx1 = db.watch_versions();
        {
            let _rx2 = db.watch_versions();
            assert_eq!(db.watcher_count(), 2);
        } // rx2 dropped
        db.publish_config(1, &[]);
        assert_eq!(db.watcher_count(), 1);
        assert_eq!(rx1.try_recv(), Ok(1));
    }

    #[test]
    fn watcher_sees_version_whose_entries_are_readable() {
        // Push ordering matches the pull contract: by the time the
        // watcher learns of v, v's entries are in the store.
        let db = TeDatabase::new(2);
        let rx = db.watch_versions();
        db.publish_config(9, &[("h".into(), vec![1, 2, 3])]);
        let v = rx.recv().unwrap();
        assert_eq!(db.fetch_config(v, "h"), Some(vec![1, 2, 3]));
    }

    #[test]
    fn concurrent_clients_see_consistent_version() {
        let db = TeDatabase::new(2);
        db.publish_config(1, &[("h".into(), vec![1])]);
        std::thread::scope(|s| {
            let writer = db.clone();
            s.spawn(move || {
                for v in 2..50u64 {
                    writer.publish_config(v, &[("h".into(), vec![v as u8])]);
                }
            });
            let reader = db.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    if let Some(v) = reader.latest_version() {
                        // Write-then-publish: the entry for any observed
                        // version must exist.
                        assert!(reader.fetch_config(v, "h").is_some(), "version {v}");
                    }
                }
            });
        });
    }
}
