//! Criterion: subset-sum strategies at MaxEndpointFlow shapes — the
//! complexity claims of Appendix A.2 (`O(m⌊F/δ⌋)` for FastSSP vs
//! `O(|I_k|·F)` for plain DP, `O(|I_k| log |I_k|)` for greedy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use megate_ssp::{dp_subset_sum, fast_ssp, first_fit_descending, FastSspConfig};

fn items(n: usize) -> Vec<u64> {
    (0..n as u64).map(|i| 100 + (i * 7919) % 1900).collect()
}

fn bench_ssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("ssp");
    for &n in &[1_000usize, 10_000, 100_000] {
        let v = items(n);
        let capacity: u64 = v.iter().sum::<u64>() * 7 / 10;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("fastssp", n), &v, |b, v| {
            b.iter(|| fast_ssp(v, capacity, FastSspConfig::default()))
        });
        group.bench_with_input(BenchmarkId::new("greedy", n), &v, |b, v| {
            b.iter(|| first_fit_descending(v, capacity))
        });
        // Exact DP only at the smallest size: its table is O(F).
        if n <= 1_000 {
            group.bench_with_input(BenchmarkId::new("exact_dp", n), &v, |b, v| {
                b.iter(|| dp_subset_sum(v, capacity))
            });
        }
    }
    group.finish();

    // FastSSP epsilon sensitivity at fixed size.
    let v = items(50_000);
    let capacity: u64 = v.iter().sum::<u64>() * 7 / 10;
    let mut group = c.benchmark_group("fastssp_epsilon");
    for eps in [0.02f64, 0.1, 0.3] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| fast_ssp(&v, capacity, FastSspConfig { epsilon_prime: eps }))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ssp);
criterion_main!(benches);
