//! Criterion: LP substrate — dense simplex vs the Garg–Könemann FPTAS
//! on path-formulation MCF instances of growing size (the MaxSiteFlow
//! ablation's timing companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use megate_lp::{Commodity, McfProblem, PathSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_mcf(n_links: usize, n_comm: usize, seed: u64) -> McfProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let link_capacity: Vec<f64> = (0..n_links).map(|_| rng.gen_range(50.0..500.0)).collect();
    let commodities = (0..n_comm)
        .map(|_| {
            let n_paths = rng.gen_range(2..5);
            let paths = (0..n_paths)
                .map(|i| {
                    let len = rng.gen_range(2..6).min(n_links);
                    let mut links: Vec<usize> = (0..n_links).collect();
                    for j in (1..links.len()).rev() {
                        links.swap(j, rng.gen_range(0..=j));
                    }
                    links.truncate(len);
                    PathSpec { links, weight: 1.0 + i as f64 }
                })
                .collect();
            Commodity { demand: rng.gen_range(10.0..100.0), paths }
        })
        .collect();
    McfProblem { link_capacity, commodities, epsilon_weight: 1e-4 }
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcf_solvers");
    group.sample_size(10);
    for &n_comm in &[50usize, 200, 800] {
        let p = random_mcf(60, n_comm, 5);
        group.bench_with_input(BenchmarkId::new("simplex", n_comm), &p, |b, p| {
            b.iter(|| p.solve_exact().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fptas_0.1", n_comm), &p, |b, p| {
            b.iter(|| p.solve_fptas(0.1))
        });
    }
    // FPTAS-only at a size the dense simplex cannot touch.
    let big = random_mcf(200, 5_000, 9);
    group.bench_function("fptas_0.1/5000", |b| b.iter(|| big.solve_fptas(0.1)));
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
