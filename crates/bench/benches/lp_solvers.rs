//! Criterion: LP substrate — revised vs dense simplex, and the
//! Garg–Könemann FPTAS, on path-formulation MCF instances of growing
//! size (the MaxSiteFlow ablation's timing companion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use megate_lp::{Commodity, LinearProgram, McfProblem, PathSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_mcf(n_links: usize, n_comm: usize, seed: u64) -> McfProblem {
    let mut rng = StdRng::seed_from_u64(seed);
    let link_capacity: Vec<f64> = (0..n_links).map(|_| rng.gen_range(50.0..500.0)).collect();
    let commodities = (0..n_comm)
        .map(|_| {
            let n_paths = rng.gen_range(2..5);
            let paths = (0..n_paths)
                .map(|i| {
                    let len = rng.gen_range(2..6usize).min(n_links);
                    let mut links: Vec<usize> = (0..n_links).collect();
                    for j in (1..links.len()).rev() {
                        links.swap(j, rng.gen_range(0..=j));
                    }
                    links.truncate(len);
                    PathSpec {
                        links,
                        weight: 1.0 + i as f64,
                    }
                })
                .collect();
            Commodity {
                demand: rng.gen_range(10.0..100.0),
                paths,
            }
        })
        .collect();
    McfProblem {
        link_capacity,
        commodities,
        epsilon_weight: 1e-4,
    }
}

/// The raw LP of a path-form MCF with many paths per commodity — the
/// regime where the revised simplex's `O(m² + nnz)` pivots dominate the
/// dense tableau's `O(m(n+m))`.
fn mcf_lp(n_links: usize, n_comm: usize, paths_per: usize, seed: u64) -> LinearProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut objective = Vec::new();
    let mut per_link: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n_links];
    let mut demand_rows: Vec<Vec<(usize, f64)>> = Vec::new();
    for _ in 0..n_comm {
        let mut row = Vec::with_capacity(paths_per);
        for t in 0..paths_per {
            let v = objective.len();
            objective.push(1.0 - 1e-4 * (1.0 + t as f64));
            row.push((v, 1.0));
            let len = rng.gen_range(2..6usize).min(n_links);
            let mut links: Vec<usize> = (0..n_links).collect();
            for j in (1..links.len()).rev() {
                links.swap(j, rng.gen_range(0..=j));
            }
            for &e in &links[..len] {
                per_link[e].push((v, 1.0));
            }
        }
        demand_rows.push(row);
    }
    let mut lp = LinearProgram::maximize(objective);
    for row in demand_rows {
        let demand = rng.gen_range(10.0..100.0);
        lp.add_le(row, demand);
    }
    for entries in per_link {
        if !entries.is_empty() {
            let cap = rng.gen_range(50.0..500.0);
            lp.add_le(entries, cap);
        }
    }
    lp
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcf_solvers");
    group.sample_size(10);
    for &n_comm in &[50usize, 200, 800] {
        let p = random_mcf(60, n_comm, 5);
        group.bench_with_input(BenchmarkId::new("simplex", n_comm), &p, |b, p| {
            b.iter(|| p.solve_exact().unwrap())
        });
        group.bench_with_input(BenchmarkId::new("fptas_0.1", n_comm), &p, |b, p| {
            b.iter(|| p.solve_fptas(0.1))
        });
    }
    // FPTAS-only at a size the dense simplex cannot touch, serial and
    // batch-priced parallel.
    let big = random_mcf(200, 5_000, 9);
    group.bench_function("fptas_0.1/5000", |b| b.iter(|| big.solve_fptas(0.1)));
    group.bench_function("fptas_0.1x4/5000", |b| {
        b.iter(|| big.solve_fptas_with(0.1, 4))
    });
    group.finish();
}

/// Revised vs dense on one LP sized just past the *old* Auto cutoff —
/// its dense tableau is ~4M entries, the boundary where exact solves
/// used to be abandoned for the FPTAS.
fn bench_lp_core(c: &mut Criterion) {
    let lp = mcf_lp(50, 120, 200, 11);
    assert!(
        lp.tableau_entries() > 4_000_000,
        "instance must sit at the old dense cap ({} entries)",
        lp.tableau_entries()
    );
    let mut group = c.benchmark_group("lp_core_4m");
    group.sample_size(10);
    group.bench_function("dense", |b| b.iter(|| lp.solve_dense().unwrap()));
    group.bench_function("revised", |b| b.iter(|| lp.solve().unwrap()));
    group.finish();
}

criterion_group!(benches, bench_lp, bench_lp_core);
criterion_main!(benches);
