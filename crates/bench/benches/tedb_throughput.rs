//! Criterion: TE database query throughput — the §3.2 claim that the
//! customized store sustains high concurrent query rates and scales
//! linearly with shards (paper: 160k qps on two shards).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use megate_tedb::TeDatabase;

fn bench_single_thread(c: &mut Criterion) {
    let mut group = c.benchmark_group("tedb_single_thread");
    for &shards in &[1usize, 2, 4] {
        let db = TeDatabase::new(shards);
        for i in 0..10_000 {
            db.set(&format!("ep:{i}"), vec![0u8; 64]);
        }
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("get", shards), &db, |b, db| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 10_000;
                db.get(&format!("ep:{i}"))
            })
        });
    }
    group.finish();
}

fn bench_concurrent(c: &mut Criterion) {
    let mut group = c.benchmark_group("tedb_concurrent");
    group.sample_size(10);
    for &threads in &[2usize, 8] {
        let db = TeDatabase::new(2);
        for i in 0..10_000 {
            db.set(&format!("ep:{i}"), vec![0u8; 64]);
        }
        // Measure 100k queries spread over N client threads.
        group.throughput(Throughput::Elements(100_000));
        group.bench_with_input(BenchmarkId::new("get_100k", threads), &db, |b, db| {
            b.iter(|| {
                std::thread::scope(|s| {
                    for t in 0..threads {
                        let db = db.clone();
                        s.spawn(move || {
                            for i in 0..(100_000 / threads) {
                                db.get(&format!("ep:{}", (t * 31 + i) % 10_000));
                            }
                        });
                    }
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_thread, bench_concurrent);
criterion_main!(benches);
