//! Criterion: data-plane packet costs — parse, TC egress chain (flow
//! accounting + SR insertion), and per-router SR forwarding. These are
//! the per-packet overheads MegaTE adds on hosts and routers (§5).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use megate_dataplane::route_decision;
use megate_hoststack::{InstanceId, Pid, SimKernel};
use megate_packet::{insert_sr_header, parse_megate_frame, FiveTuple, MegaTeFrameSpec, Proto};

fn tuple() -> FiveTuple {
    FiveTuple {
        src_ip: [10, 0, 0, 1],
        dst_ip: [10, 0, 0, 2],
        proto: Proto::Udp,
        src_port: 5000,
        dst_port: 4789,
    }
}

fn bench_packets(c: &mut Criterion) {
    let plain = MegaTeFrameSpec::simple(tuple(), 7, None).build();
    let with_sr = MegaTeFrameSpec::simple(tuple(), 7, Some(vec![1, 2, 3, 4, 5])).build();

    let mut group = c.benchmark_group("packet");
    group.throughput(Throughput::Elements(1));
    group.bench_function("parse_plain", |b| {
        b.iter(|| parse_megate_frame(&plain).unwrap())
    });
    group.bench_function("parse_with_sr", |b| {
        b.iter(|| parse_megate_frame(&with_sr).unwrap())
    });
    group.bench_function("insert_sr_header", |b| {
        b.iter_batched(
            || plain.clone(),
            |mut f| insert_sr_header(&mut f, &[1, 2, 3, 4, 5]).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("router_sr_decision", |b| {
        b.iter_batched(
            || with_sr.clone(),
            |mut f| route_decision(&mut f).unwrap(),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();

    // Full TC egress chain with maps warm.
    let kernel = SimKernel::new();
    kernel.spawn_process(InstanceId(1), Pid(1)).unwrap();
    kernel.open_connection(Pid(1), tuple()).unwrap();
    kernel
        .maps()
        .path_map
        .update((InstanceId(1), tuple().dst_ip), vec![1, 2, 3])
        .unwrap();
    let mut group = c.benchmark_group("tc_egress");
    group.throughput(Throughput::Elements(1));
    group.bench_function("account_and_insert_sr", |b| {
        b.iter_batched(
            || plain.clone(),
            |mut f| kernel.tc_egress(&mut f),
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_packets);
criterion_main!(benches);
