//! Criterion companion to Figure 9: solver run time per scheme at
//! small-to-medium endpoint counts (statistically sound timing; the
//! `fig09_runtime` binary covers the hyper-scale ladder).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use megate_bench::build_instance;
use megate_solvers::{LpAllScheme, MegaTeScheme, NcFlowScheme, TeScheme, TealScheme};
use megate_topo::TopologySpec;

fn bench_schemes(c: &mut Criterion) {
    let mut group = c.benchmark_group("solver_runtime_b4");
    group.sample_size(10);
    for &endpoints in &[120usize, 1200] {
        let inst = build_instance(TopologySpec::B4, endpoints, 42);
        group.bench_with_input(BenchmarkId::new("MegaTE", endpoints), &inst, |b, inst| {
            b.iter(|| MegaTeScheme::default().solve(&inst.problem()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("TEAL", endpoints), &inst, |b, inst| {
            b.iter(|| TealScheme::default().solve(&inst.problem()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("NCFlow", endpoints), &inst, |b, inst| {
            b.iter(|| NcFlowScheme::default().solve(&inst.problem()).unwrap())
        });
        if endpoints <= 120 {
            group.bench_with_input(BenchmarkId::new("LP-all", endpoints), &inst, |b, inst| {
                b.iter(|| LpAllScheme::default().solve(&inst.problem()).unwrap())
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("solver_runtime_deltacom");
    group.sample_size(10);
    let inst = build_instance(TopologySpec::Deltacom, 1130, 42);
    group.bench_function("MegaTE/1130", |b| {
        b.iter(|| MegaTeScheme::default().solve(&inst.problem()).unwrap())
    });
    group.bench_function("TEAL/1130", |b| {
        b.iter(|| TealScheme::default().solve(&inst.problem()).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
