//! Extension (§8) — hybrid configuration synchronization.
//!
//! "A small part of the flows account for most of the network traffic.
//! A hybrid approach that maintains persistent connections for these
//! heavy-traffic endpoints and performs eventual consistency for the
//! rest of the endpoints will be our future work."
//!
//! Sweep the persistent fraction over a heavy-tailed 1M-endpoint fleet
//! and show the design space: a fraction of a percent of push
//! connections protects most of the traffic from pull staleness at
//! negligible controller cost.

use megate_bench::{print_table, write_json};
use megate_tedb::{evaluate_hybrid, heavy_tailed_volumes, HybridConfig};
use serde::Serialize;

#[derive(Serialize)]
struct HybridRow {
    persistent_fraction: f64,
    persistent_endpoints: usize,
    covered_traffic_pct: f64,
    push_cores: usize,
    push_memory_gb: f64,
    traffic_weighted_sync_s: f64,
}

fn main() {
    let volumes = heavy_tailed_volumes(1_000_000, 2024);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &fraction in &[0.0, 0.0001, 0.001, 0.01, 0.05, 0.2, 1.0] {
        let out = evaluate_hybrid(
            &volumes,
            HybridConfig {
                persistent_fraction: fraction,
                spread_seconds: 10.0,
            },
        );
        rows.push(vec![
            format!("{:.2}%", fraction * 100.0),
            out.persistent_endpoints.to_string(),
            format!("{:.1}%", out.covered_traffic_fraction * 100.0),
            out.push_cores.to_string(),
            format!("{:.1}", out.push_memory_gb),
            format!("{:.2} s", out.traffic_weighted_sync_s),
        ]);
        json.push(HybridRow {
            persistent_fraction: fraction,
            persistent_endpoints: out.persistent_endpoints,
            covered_traffic_pct: out.covered_traffic_fraction * 100.0,
            push_cores: out.push_cores,
            push_memory_gb: out.push_memory_gb,
            traffic_weighted_sync_s: out.traffic_weighted_sync_s,
        });
    }
    print_table(
        "Extension (§8): hybrid sync over 1M endpoints, heavy-tailed traffic \
         (push the elephants, pull the mice)",
        &[
            "persistent",
            "endpoints",
            "traffic covered",
            "push cores",
            "push mem GB",
            "traffic-weighted staleness",
        ],
        &rows,
    );

    // The §8 claim quantified: compare the sweet spot to the extremes.
    let pure_pull = &json[0];
    let sweet = json
        .iter()
        .find(|r| r.persistent_fraction == 0.01)
        .expect("1% point");
    let pure_push = json.last().unwrap();
    println!(
        "\n1% persistent connections cover {:.0}% of traffic, cutting \
         traffic-weighted staleness {:.1} s -> {:.1} s at {} core(s) \
         (pure push would need {} cores).",
        sweet.covered_traffic_pct,
        pure_pull.traffic_weighted_sync_s,
        sweet.traffic_weighted_sync_s,
        sweet.push_cores.max(1),
        pure_push.push_cores
    );
    assert!(sweet.covered_traffic_pct > 25.0);
    assert!(sweet.push_cores * 50 < pure_push.push_cores);
    write_json("ext_hybrid_sync", &json);
}
