//! Figure 9 — TE computation time vs endpoint count, four topologies ×
//! {LP-all, NCFlow, TEAL, MegaTE}.
//!
//! Expected shape (the paper's): every baseline's run time grows with
//! the endpoint count and eventually fails with OOM; MegaTE's stays
//! flat-ish (its LP sees only site pairs; FastSSP is near-linear), so
//! it supports ≥20× more endpoints at comparable run time.
//!
//! `--scale quick` (default) sweeps up to ~12k endpoints per topology;
//! `--scale full` runs the paper ladders up to millions (minutes).

use megate_bench::{
    build_instance, endpoint_ladder, fmt_seconds, print_table, run_scheme, scale_from_args,
    write_json, SchemeRun,
};
use megate_solvers::{LpAllScheme, MegaTeScheme, NcFlowScheme, TealScheme};
use megate_topo::TopologySpec;

fn main() {
    let scale = scale_from_args();
    let mut all: Vec<SchemeRun> = Vec::new();

    for spec in TopologySpec::all() {
        let ladder = endpoint_ladder(spec, scale);
        let mut rows = Vec::new();
        for &endpoints in &ladder {
            let inst = build_instance(spec, endpoints, 42);
            let mut cells = vec![endpoints.to_string()];
            // Baselines become pointless (hours) beyond the OOM wall;
            // gate the expensive exact ones by size like the paper's
            // "not practical" cut-off.
            let lp = run_scheme(&LpAllScheme::default(), &inst);
            let nc = run_scheme(&NcFlowScheme::default(), &inst);
            let teal = run_scheme(&TealScheme::default(), &inst);
            let mega = run_scheme(&MegaTeScheme::default(), &inst);
            for run in [&lp, &nc, &teal, &mega] {
                cells.push(match &run.error {
                    Some(e) => e.clone(),
                    None => fmt_seconds(run.seconds),
                });
            }
            rows.push(cells);
            all.extend([lp, nc, teal, mega]);
        }
        print_table(
            &format!("Figure 9 ({}): TE computation time", spec.name()),
            &["endpoints", "LP-all", "NCFlow", "TEAL", "MegaTE"],
            &rows,
        );
    }

    // The headline claim: at the largest endpoint count where any
    // baseline still solves, MegaTE handles >= 10x more endpoints at
    // comparable or lower run time.
    let mega_max = all
        .iter()
        .filter(|r| r.scheme == "MegaTE" && r.error.is_none())
        .map(|r| r.endpoints)
        .max()
        .unwrap_or(0);
    let lp_max = all
        .iter()
        .filter(|r| r.scheme == "LP-all" && r.error.is_none())
        .map(|r| r.endpoints)
        .max()
        .unwrap_or(0);
    println!(
        "\nLargest solved instance: LP-all {lp_max} endpoints vs MegaTE {mega_max} \
         endpoints ({}x).",
        if lp_max > 0 {
            mega_max / lp_max.max(1)
        } else {
            0
        }
    );
    write_json("fig09_runtime", &all);

    // One end-to-end control-loop interval so the metric snapshot
    // below also carries controller/TE-DB/host-stack series, not just
    // the solver spans the sweeps above recorded.
    end_to_end_probe();
    match megate_obs::write_bench_snapshot("fig09") {
        Ok(path) => println!("metrics snapshot: {}", path.display()),
        Err(e) => println!("metrics snapshot skipped: {e}"),
    }
}

/// Runs one full TE cycle (bring-up → solve/publish → agent pull →
/// packets through TC egress and the WAN) on a small B4 instance.
fn end_to_end_probe() {
    use megate_topo::{EndpointCatalog, TunnelTable, WeibullEndpoints};

    let graph = TopologySpec::B4.build();
    let tunnels = TunnelTable::for_all_pairs(&graph, 3);
    let catalog = EndpointCatalog::generate(&graph, 120, WeibullEndpoints::with_scale(10.0), 2);
    let mut demands = megate_traffic::DemandSet::generate(
        &graph,
        &catalog,
        &megate_traffic::TrafficConfig {
            endpoint_pairs: 80,
            site_pairs: 15,
            ..Default::default()
        },
    );
    demands.scale_to_load(&graph, 0.4);
    let mut sys =
        megate::MegaTeSystem::new(graph, tunnels, catalog, megate::SystemConfig::default());
    sys.bring_up(&demands).expect("hosts come up");
    sys.run_controller_interval(&demands)
        .expect("probe interval solves");
    sys.agents_pull();
    sys.send_demand_packets(&demands);
}
