//! Figure 9 — TE computation time vs endpoint count, four topologies ×
//! {LP-all, NCFlow, TEAL, MegaTE}.
//!
//! Expected shape (the paper's): every baseline's run time grows with
//! the endpoint count and eventually fails with OOM; MegaTE's stays
//! flat-ish (its LP sees only site pairs; FastSSP is near-linear), so
//! it supports ≥20× more endpoints at comparable run time.
//!
//! `--scale quick` (default) sweeps up to ~12k endpoints per topology;
//! `--scale full` runs the paper ladders up to millions (minutes).

use megate_bench::{
    build_instance, endpoint_ladder, fmt_seconds, print_table, run_scheme, scale_from_args,
    write_json, SchemeRun,
};
use megate_solvers::{LpAllScheme, MegaTeScheme, NcFlowScheme, TealScheme};
use megate_topo::TopologySpec;

fn main() {
    let scale = scale_from_args();
    let mut all: Vec<SchemeRun> = Vec::new();

    for spec in TopologySpec::all() {
        let ladder = endpoint_ladder(spec, scale);
        let mut rows = Vec::new();
        for &endpoints in &ladder {
            let inst = build_instance(spec, endpoints, 42);
            let mut cells = vec![endpoints.to_string()];
            // Baselines become pointless (hours) beyond the OOM wall;
            // gate the expensive exact ones by size like the paper's
            // "not practical" cut-off.
            let lp = run_scheme(&LpAllScheme::default(), &inst);
            let nc = run_scheme(&NcFlowScheme::default(), &inst);
            let teal = run_scheme(&TealScheme::default(), &inst);
            let mega = run_scheme(&MegaTeScheme::default(), &inst);
            for run in [&lp, &nc, &teal, &mega] {
                cells.push(match &run.error {
                    Some(e) => e.clone(),
                    None => fmt_seconds(run.seconds),
                });
            }
            rows.push(cells);
            all.extend([lp, nc, teal, mega]);
        }
        print_table(
            &format!("Figure 9 ({}): TE computation time", spec.name()),
            &["endpoints", "LP-all", "NCFlow", "TEAL", "MegaTE"],
            &rows,
        );
    }

    // The headline claim: at the largest endpoint count where any
    // baseline still solves, MegaTE handles >= 10x more endpoints at
    // comparable or lower run time.
    let mega_max = all
        .iter()
        .filter(|r| r.scheme == "MegaTE" && r.error.is_none())
        .map(|r| r.endpoints)
        .max()
        .unwrap_or(0);
    let lp_max = all
        .iter()
        .filter(|r| r.scheme == "LP-all" && r.error.is_none())
        .map(|r| r.endpoints)
        .max()
        .unwrap_or(0);
    println!(
        "\nLargest solved instance: LP-all {lp_max} endpoints vs MegaTE {mega_max} \
         endpoints ({}x).",
        if lp_max > 0 { mega_max / lp_max.max(1) } else { 0 }
    );
    write_json("fig09_runtime", &all);
}
