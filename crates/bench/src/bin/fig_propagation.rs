//! Propagation figure — solve-to-install latency per pull path.
//!
//! For each (endpoints, churn) cell the harness drives the full closed
//! loop through all three configuration-delivery paths and reports the
//! per-path latency distribution out of the flight recorder's
//! `propagation.latency.*` histograms (DESIGN.md §5g):
//!
//! * **delta** — steady-state churn rounds where agents follow their
//!   changelog and apply per-version deltas;
//! * **snapshot** — the fleet sits out more intervals than the
//!   retention window holds, so the catch-up pull must fall back to
//!   full snapshots;
//! * **degraded** — one shard dies long enough for its agents to blow
//!   the stale TTL and degrade to ECMP; the recovery pull after the
//!   shard returns is the measured (worst-case) path.
//!
//! Latency is controller solve start → agent install completion, as
//! stamped by the `megate_obs::trace` version clock. The acceptance
//! bar mirrors the paper's sync cadence: p99 of every exercised path
//! must land inside one 10 s sync period.

use megate::prelude::*;
use megate_bench::{print_table, scale_from_args, write_json, Scale};
use megate_obs::HistogramSnapshot;
use megate_tedb::TeKey;
use megate_topo::b4;
use serde::Serialize;

/// One sync period (10 s) in nanoseconds — the p99 acceptance bar.
const SYNC_PERIOD_NS: u64 = 10_000_000_000;

/// How many versions of deltas the cell's controller retains. Kept
/// small so the snapshot phase only has to sit out a handful of
/// intervals to fall off the changelog.
const RETENTION: u64 = 4;

/// Stale TTL (sync periods) before a cut-off agent degrades to ECMP.
const STALE_TTL: u64 = 2;

const PATHS: [&str; 3] = [
    "propagation.latency.delta",
    "propagation.latency.snapshot",
    "propagation.latency.degraded",
];

#[derive(Serialize)]
struct PropagationRow {
    endpoints: usize,
    churn_pct: u32,
    churn_rounds: usize,
    delta_count: u64,
    delta_p50_ns: u64,
    delta_p99_ns: u64,
    delta_p999_ns: u64,
    snapshot_count: u64,
    snapshot_p50_ns: u64,
    snapshot_p99_ns: u64,
    snapshot_p999_ns: u64,
    degraded_count: u64,
    degraded_p50_ns: u64,
    degraded_p99_ns: u64,
    degraded_p999_ns: u64,
    trace_events: u64,
}

/// Current bucket occupancy of the three propagation histograms, in
/// [`PATHS`] order. Cells subtract consecutive readings so each row
/// reports only its own samples despite the process-global registry.
fn path_buckets() -> [HistogramSnapshot; 3] {
    PATHS.map(|name| megate_obs::histogram(name).snapshot())
}

/// The samples recorded between two readings, as a standalone
/// histogram snapshot (so the stock quantile estimator applies).
fn delta_hist(before: &HistogramSnapshot, after: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = HistogramSnapshot::default();
    for (i, slot) in out.buckets.iter_mut().enumerate() {
        *slot = after.buckets[i] - before.buckets[i];
        out.count += *slot;
    }
    out.sum = after.sum.wrapping_sub(before.sum);
    out
}

/// Multiplies every demand of `pair` by `factor` — the fig_incremental
/// churn model, but with a violent factor: propagation needs real
/// *path* changes (deltas on the wire), and a mild demand wiggle
/// leaves every endpoint's tunnel assignment — and thus its config —
/// untouched.
fn perturb_pair(demands: &mut DemandSet, pair: SitePair, factor: f64) {
    let idxs: Vec<usize> = demands.indices_for(pair).to_vec();
    for i in idxs {
        let d = demands.demands()[i].demand_mbps;
        demands.set_demand_mbps(i, d * factor);
    }
}

/// One churn round: quadruple / restore a rotating window of
/// `n_volatile` pairs so tunnel splits actually move and the
/// controller publishes per-endpoint deltas.
fn churn_round(demands: &mut DemandSet, pairs: &[SitePair], n_volatile: usize, round: usize) {
    let factor = if round.is_multiple_of(2) { 4.0 } else { 0.25 };
    let start = (round / 2 * n_volatile) % pairs.len();
    for k in 0..n_volatile {
        perturb_pair(demands, pairs[(start + k) % pairs.len()], factor);
    }
}

fn run_cell(endpoints: usize, churn: f64, churn_rounds: usize) -> PropagationRow {
    let g = b4();
    let tunnels = TunnelTable::for_all_pairs(&g, 3);
    let catalog = EndpointCatalog::generate(&g, endpoints, WeibullEndpoints::with_scale(10.0), 2);
    let mut demands = DemandSet::generate(
        &g,
        &catalog,
        &TrafficConfig {
            endpoint_pairs: endpoints / 2,
            site_pairs: 12,
            ..Default::default()
        },
    );
    demands.scale_to_load(&g, 0.4);
    let config = SystemConfig {
        controller: ControllerConfig {
            qos_sequential: true,
            snapshot_every: RETENTION,
            retention_versions: RETENTION,
            ..ControllerConfig::default()
        },
        // Two unreplicated shards: the degraded phase kills the one
        // that does not hold the version record, exactly like the
        // chaos harness's staleness scenario.
        db_shards: 2,
        db_replication: 1,
        pull: PullPolicy {
            stale_ttl_periods: STALE_TTL,
            ..PullPolicy::default()
        },
        ..SystemConfig::default()
    };
    let mut sys = MegaTeSystem::new(g, tunnels, catalog, config);

    let before = path_buckets();
    let events0 = megate_obs::counter("trace.events").get();

    sys.bring_up(&demands).expect("hosts come up");
    let pairs: Vec<SitePair> = demands.pairs().collect();
    let n_volatile = ((churn * pairs.len() as f64).ceil() as usize).clamp(1, pairs.len());

    // Phase 1 — delta path: steady-state churn, solve + pull each
    // round (plus the initial adoption pull, which also counts as
    // delta).
    let mut round = 0usize;
    for _ in 0..churn_rounds {
        churn_round(&mut demands, &pairs, n_volatile, round);
        round += 1;
        sys.run_controller_interval(&demands)
            .expect("delta-phase interval solves");
        sys.pull_round();
    }

    // Phase 2 — snapshot fallback: publish past the retention window
    // while nobody pulls; the catch-up pull finds its changelog
    // GC'd and must take a full snapshot.
    for _ in 0..(RETENTION as usize + 2) {
        churn_round(&mut demands, &pairs, n_volatile, round);
        round += 1;
        sys.run_controller_interval(&demands)
            .expect("snapshot-phase interval solves");
    }
    sys.pull_round();

    // Phase 3 — degraded recovery: kill the shard that does NOT hold
    // the version record, so agents keep seeing versions they cannot
    // fetch, blow the stale TTL and degrade; then heal the shard and
    // measure the recovery pull.
    let victim = 1 - sys
        .database()
        .shard_of(&TeKey::Version { partition: 0 }.wire());
    sys.database().set_shard_down(victim, true);
    for _ in 0..(STALE_TTL + 2) {
        sys.run_controller_interval(&demands)
            .expect("outage-phase interval solves");
        sys.pull_round();
    }
    assert!(
        sys.degraded_count() > 0,
        "agents on the dead shard must degrade past the stale TTL"
    );
    sys.database().set_shard_down(victim, false);
    sys.run_controller_interval(&demands)
        .expect("recovery interval solves");
    let recovery = sys.pull_round();
    assert_eq!(
        recovery.degraded, 0,
        "degradation clears on the first good pull"
    );

    let after = path_buckets();
    let hists: Vec<HistogramSnapshot> = (0..3).map(|i| delta_hist(&before[i], &after[i])).collect();
    let q = |h: &HistogramSnapshot, q: f64| h.quantile(q);
    PropagationRow {
        endpoints,
        churn_pct: (churn * 100.0).round() as u32,
        churn_rounds,
        delta_count: hists[0].count,
        delta_p50_ns: q(&hists[0], 0.50),
        delta_p99_ns: q(&hists[0], 0.99),
        delta_p999_ns: q(&hists[0], 0.999),
        snapshot_count: hists[1].count,
        snapshot_p50_ns: q(&hists[1], 0.50),
        snapshot_p99_ns: q(&hists[1], 0.99),
        snapshot_p999_ns: q(&hists[1], 0.999),
        degraded_count: hists[2].count,
        degraded_p50_ns: q(&hists[2], 0.50),
        degraded_p99_ns: q(&hists[2], 0.99),
        degraded_p999_ns: q(&hists[2], 0.999),
        trace_events: megate_obs::counter("trace.events").get() - events0,
    }
}

fn fmt_ms(ns: u64) -> String {
    format!("{:.2}ms", ns as f64 / 1e6)
}

fn main() {
    let scale = scale_from_args();
    let (endpoint_levels, churn_levels, churn_rounds): (&[usize], &[f64], usize) = match scale {
        Scale::Quick => (&[120], &[0.05, 0.25], 3),
        Scale::Full => (&[120, 360, 1000], &[0.02, 0.10, 0.30], 6),
    };

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &endpoints in endpoint_levels {
        for &churn in churn_levels {
            let row = run_cell(endpoints, churn, churn_rounds);
            // Every cell must exercise all three delivery paths — a
            // zero count means the scenario silently stopped covering
            // that path, not that the path got infinitely fast.
            assert!(row.delta_count > 0, "cell recorded no delta-path installs");
            assert!(
                row.snapshot_count > 0,
                "cell recorded no snapshot-path installs"
            );
            assert!(
                row.degraded_count > 0,
                "cell recorded no degraded-path installs"
            );
            // The acceptance bar: p99 solve-to-install inside one 10 s
            // sync period on every path.
            for (name, p99) in [
                ("delta", row.delta_p99_ns),
                ("snapshot", row.snapshot_p99_ns),
                ("degraded", row.degraded_p99_ns),
            ] {
                assert!(
                    p99 <= SYNC_PERIOD_NS,
                    "{endpoints} endpoints, churn {churn}: {name} p99 {p99}ns \
                     exceeds one sync period"
                );
            }
            rows.push(vec![
                endpoints.to_string(),
                format!("{}%", row.churn_pct),
                row.delta_count.to_string(),
                fmt_ms(row.delta_p50_ns),
                fmt_ms(row.delta_p99_ns),
                row.snapshot_count.to_string(),
                fmt_ms(row.snapshot_p99_ns),
                row.degraded_count.to_string(),
                fmt_ms(row.degraded_p99_ns),
                row.trace_events.to_string(),
            ]);
            json.push(row);
        }
    }
    print_table(
        "Propagation: solve-to-install latency per delivery path \
         (p99 <= one 10s sync period on every path)",
        &[
            "endpoints",
            "churn",
            "delta·n",
            "delta·p50",
            "delta·p99",
            "snap·n",
            "snap·p99",
            "degr·n",
            "degr·p99",
            "events",
        ],
        &rows,
    );
    write_json("fig_propagation", &json);
    match megate_obs::write_bench_snapshot("propagation") {
        Ok(path) => println!("metrics snapshot: {}", path.display()),
        Err(e) => println!("metrics snapshot skipped: {e}"),
    }
}
