//! Stage-3 (`MaxEndpointFlow`) scaling figure — the flat work-stealing
//! kernel across an endpoints × threads sweep (DESIGN.md §5e).
//!
//! The paper's operating requirement is that the whole TE interval
//! fits inside one 10-second sync period at millions of endpoints
//! (§6.3). Stages 1+2 (SiteMerge + the site-level LP) are solved once
//! per instance here; the sweep then re-runs only stage 3 through
//! [`MegaTeScheme::max_endpoint_flow_all`] at each thread count, so
//! the figure isolates exactly the part this kernel rebuilt.
//!
//! Two honesty rules, mirrored from `fig_dataplane`:
//!
//! * **Busy time, not wall-clock.** Each worker's time is its
//!   per-thread CPU time (`megate_obs::thread_cpu_ns`), so the
//!   speedup reflects how the kernel divides work, not how many
//!   hardware threads this bench host happens to have. The stage's
//!   critical path is the busiest worker; speedups and the 10-second
//!   gate are evaluated on that.
//! * **Identical output, asserted.** Every thread count's merged
//!   endpoint assignment must be bitwise-identical, and the smallest
//!   point is additionally cross-checked against the allocating
//!   scalar reference path (`max_endpoint_flow` pair by pair).

use megate::prelude::*;
use megate_bench::{build_instance, print_table, scale_from_args, write_json, Scale};
use megate_solvers::megate::MegaTeScheme;
use megate_solvers::MegaTeConfig;
use megate_topo::TunnelId;
use serde::Serialize;

#[derive(Serialize)]
struct SolverScaleRow {
    topology: String,
    endpoints: usize,
    pairs: usize,
    threads: usize,
    stage_wall_ms: f64,
    max_worker_busy_ms: f64,
    total_busy_ms: f64,
    busy_speedup_vs_1: f64,
    pairs_stolen: usize,
    within_sync_period: bool,
}

/// One 10-second TE sync period, the §6.3 budget stage 3 must fit in.
const SYNC_PERIOD_MS: f64 = 10_000.0;

fn main() {
    let scale = scale_from_args();
    let (endpoint_sweep, thread_sweep): (&[usize], &[usize]) = match scale {
        Scale::Quick => (&[100_000], &[1, 2, 4]),
        Scale::Full => (&[100_000, 400_000, 1_000_000, 2_000_000], &[1, 2, 4, 8]),
    };

    let mut json: Vec<SolverScaleRow> = Vec::new();
    for (ei, &endpoints) in endpoint_sweep.iter().enumerate() {
        println!("building Twan instance with {endpoints} endpoint demands...");
        let inst = build_instance(TopologySpec::Twan, endpoints, 7);
        let p = inst.problem();
        let scheme = MegaTeScheme::default();
        let (pairs, site_flows) = scheme.max_site_flow(&p).expect("stage 1+2");

        let mut reference: Option<Vec<Option<TunnelId>>> = None;
        let mut busy_1_ms = 0.0f64;
        for &threads in thread_sweep {
            let scheme = MegaTeScheme::new(MegaTeConfig {
                threads,
                ..Default::default()
            });
            let mut assignment: Vec<Option<TunnelId>> = vec![None; p.demands.len()];
            let stats = scheme.max_endpoint_flow_all(&p, &pairs, &site_flows, &mut assignment);

            match &reference {
                None => reference = Some(assignment),
                Some(r) => assert_eq!(
                    r, &assignment,
                    "{endpoints} endpoints: assignment diverged at {threads} threads"
                ),
            }

            let max_busy_ms = stats.max_worker_busy.as_secs_f64() * 1e3;
            if threads == 1 {
                busy_1_ms = max_busy_ms;
            }
            json.push(SolverScaleRow {
                topology: inst.topology.to_string(),
                endpoints,
                pairs: pairs.len(),
                threads,
                stage_wall_ms: stats.wall.as_secs_f64() * 1e3,
                max_worker_busy_ms: max_busy_ms,
                total_busy_ms: stats.total_busy.as_secs_f64() * 1e3,
                busy_speedup_vs_1: if max_busy_ms > 0.0 {
                    busy_1_ms / max_busy_ms
                } else {
                    1.0
                },
                pairs_stolen: stats.pairs_stolen,
                within_sync_period: max_busy_ms < SYNC_PERIOD_MS,
            });
        }

        // Bitwise cross-check against the scalar reference path, once
        // per sweep on the smallest instance (the scalar path is the
        // slow allocating one this kernel replaced).
        if ei == 0 {
            let mut scalar: Vec<Option<TunnelId>> = vec![None; p.demands.len()];
            for (k, &pair) in pairs.iter().enumerate() {
                for (i, t) in scheme.max_endpoint_flow(&p, pair, &site_flows[k]) {
                    scalar[i] = Some(t);
                }
            }
            assert_eq!(
                reference.as_ref(),
                Some(&scalar),
                "{endpoints} endpoints: flat kernel diverged from the scalar reference"
            );
            println!("scalar cross-check at {endpoints} endpoints: identical");
        }
    }

    let rows: Vec<Vec<String>> = json
        .iter()
        .map(|r| {
            vec![
                r.endpoints.to_string(),
                r.pairs.to_string(),
                r.threads.to_string(),
                format!("{:.1}", r.stage_wall_ms),
                format!("{:.1}", r.max_worker_busy_ms),
                format!("{:.1}", r.total_busy_ms),
                format!("{:.2}x", r.busy_speedup_vs_1),
                r.pairs_stolen.to_string(),
                if r.within_sync_period {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]
        })
        .collect();
    print_table(
        "MaxEndpointFlow scaling: flat work-stealing kernel, stage-3 only \
         (busy = per-thread CPU time; speedup = 1-thread busy / busiest worker)",
        &[
            "endpoints",
            "pairs",
            "threads",
            "wall ms",
            "max busy ms",
            "total busy ms",
            "speedup",
            "stolen",
            "<10s",
        ],
        &rows,
    );

    // Acceptance gates. Quick keeps a reduced bar for CI; full enforces
    // the paper-sized claim: 1M+ endpoints inside one sync period on
    // 4+ threads with >= 3x stage-3 speedup over 1 thread.
    for r in &json {
        let bar = match (scale, r.endpoints >= 1_000_000) {
            (Scale::Full, true) if r.threads >= 4 => Some(3.0),
            (Scale::Quick, _) if r.threads == 4 => Some(2.0),
            _ => None,
        };
        if let Some(min_speedup) = bar {
            assert!(
                r.busy_speedup_vs_1 >= min_speedup,
                "{} endpoints at {} threads: busy speedup {:.2}x below the {:.1}x gate",
                r.endpoints,
                r.threads,
                r.busy_speedup_vs_1,
                min_speedup
            );
        }
        if r.endpoints >= 1_000_000 && r.threads >= 4 {
            assert!(
                r.within_sync_period,
                "{} endpoints at {} threads: stage 3 took {:.0} ms, over the 10 s sync period",
                r.endpoints, r.threads, r.max_worker_busy_ms
            );
        }
    }

    write_json("fig_solver_scale", &json);
    match megate_obs::write_bench_snapshot("solver_scale") {
        Ok(path) => println!("metrics snapshot: {}", path.display()),
        Err(e) => println!("metrics snapshot skipped: {e}"),
    }
}
