//! Figure 16 — customized service availability over a year of months,
//! with MegaTE deployed in December 2022 (month 6 of our window).
//!
//! App 6 (QoS-1, 99.99% SLA): the traditional approach occasionally
//! dips under the SLA (paper: 99.988% in October 2022); after MegaTE
//! pins it to the protected premium path, availability holds above
//! 99.995%. App 7 (QoS-3, 99% SLA) rides lower-availability paths but
//! stays within its looser SLA throughout.

use megate_bench::{print_table, write_json};
use megate_dataplane::production::{app_flows, evaluate_app, Placement};
use megate_topo::{twan, SiteId, SitePair, TunnelTable};
use megate_traffic::app;
use serde::Serialize;

#[derive(Serialize)]
struct MonthRow {
    month: String,
    app6_availability: f64,
    app7_availability: f64,
    megate_deployed: bool,
}

const MONTHS: [&str; 12] = [
    "2022-07", "2022-08", "2022-09", "2022-10", "2022-11", "2022-12", "2023-01", "2023-02",
    "2023-03", "2023-04", "2023-05", "2023-06",
];
/// MegaTE rollout month (paper: December 2022).
const DEPLOY_AT: usize = 5;

fn main() {
    let graph = twan();
    // Long-haul pairs with real detours (the routes where hashing onto
    // an economy tunnel visibly hurts availability).
    let mut candidates: Vec<(f64, SitePair)> = Vec::new();
    for i in 0..graph.site_count() as u32 {
        for j in 0..graph.site_count() as u32 {
            if i == j || (i + j) % 9 != 0 {
                continue;
            }
            let pair = SitePair::new(SiteId(i), SiteId(j));
            let probe = TunnelTable::for_pairs(&graph, &[pair], 4);
            let ts = probe.tunnels_for(pair);
            if ts.len() >= 3 {
                let spread = probe.tunnel(*ts.last().unwrap()).weight / probe.tunnel(ts[0]).weight;
                candidates.push((spread, pair));
            }
        }
    }
    candidates.sort_by(|a, b| b.0.total_cmp(&a.0));
    let pairs: Vec<SitePair> = candidates.iter().take(10).map(|&(_, p)| p).collect();
    let tunnels = TunnelTable::for_pairs(&graph, &pairs, 4);
    let app6 = app(6);
    let app7 = app(7);
    let flows6 = app_flows(app6, &pairs, 300);
    let flows7 = app_flows(app7, &pairs, 300);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (m, month) in MONTHS.iter().enumerate() {
        let deployed = m >= DEPLOY_AT;
        // Before deployment both apps hash across tunnels with a
        // month-rotating seed; after, MegaTE places them per class.
        let placement = if deployed {
            Placement::MegaTe
        } else {
            Placement::Traditional
        };
        let a6 = evaluate_app(&graph, &tunnels, app6, &flows6, placement, m as u64);
        let a7 = evaluate_app(&graph, &tunnels, app7, &flows7, placement, m as u64);
        rows.push(vec![
            month.to_string(),
            format!("{:.4}%", a6.availability * 100.0),
            format!("{:.3}%", a7.availability * 100.0),
            if deployed {
                "MegaTE".into()
            } else {
                "traditional".into()
            },
        ]);
        json.push(MonthRow {
            month: month.to_string(),
            app6_availability: a6.availability,
            app7_availability: a7.availability,
            megate_deployed: deployed,
        });
    }
    print_table(
        "Figure 16: monthly availability (paper: App 6 >= 99.995% after the \
         December 2022 rollout; App 7 ~99% on the low-cost path)",
        &["month", "App 6 (QoS1)", "App 7 (QoS3)", "control plane"],
        &rows,
    );

    let post: Vec<&MonthRow> = json.iter().filter(|r| r.megate_deployed).collect();
    let min_post_app6 = post.iter().map(|r| r.app6_availability).fold(1.0, f64::min);
    assert!(
        min_post_app6 >= app6.availability_sla,
        "App 6 must meet its SLA after rollout: {min_post_app6}"
    );
    assert!(json
        .iter()
        .all(|r| r.app7_availability >= app7.availability_sla));
    println!(
        "\nApp 6 post-rollout minimum availability: {:.4}% (SLA {:.2}%).",
        min_post_app6 * 100.0,
        app6.availability_sla * 100.0
    );
    write_json("fig16_availability", &json);
}
