//! Bench regression reporter: compares the working tree's
//! `results/BENCH_*.json` metric snapshots against the committed
//! baselines in `baselines/` and prints per-metric deltas.
//!
//! By default the report is informational — it exits 0 — so `check.sh`
//! can surface perf drift without turning noisy machines into gate
//! failures. Counters and gauges compare by value; histograms compare
//! by sample count, mean and p50/p99. Only metrics whose relative
//! change exceeds the threshold (default 25%) are printed; pass
//! `--threshold 0` to see everything, `--current`/`--baseline` to
//! point at other directories.
//!
//! Pass `--strict <pct>` to turn the report into a gate: any metric
//! drifting beyond `<pct>` (in either direction — a counter falling
//! off a cliff is as suspicious as one exploding) makes the run exit
//! non-zero after printing every offender. Missing baselines still
//! skip — a freshly added bench must be able to land its baseline in
//! the same change.

use megate_obs::Snapshot;
use std::path::{Path, PathBuf};

struct Options {
    current: PathBuf,
    baseline: PathBuf,
    /// Minimum relative change (percent) worth printing.
    threshold: f64,
    /// When set, drift beyond this many percent fails the run.
    strict: Option<f64>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        current: PathBuf::from("results"),
        baseline: PathBuf::from("baselines"),
        threshold: 25.0,
        strict: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--current" if i + 1 < args.len() => {
                opts.current = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--baseline" if i + 1 < args.len() => {
                opts.baseline = PathBuf::from(&args[i + 1]);
                i += 2;
            }
            "--threshold" if i + 1 < args.len() => {
                opts.threshold = args[i + 1].parse().unwrap_or(25.0);
                i += 2;
            }
            "--strict" if i + 1 < args.len() => {
                match args[i + 1].parse::<f64>() {
                    Ok(pct) if pct >= 0.0 => opts.strict = Some(pct),
                    _ => {
                        eprintln!(
                            "bench_diff: --strict needs a non-negative percent, got {:?}",
                            args[i + 1]
                        );
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("bench_diff: ignoring unknown argument {other:?}");
                i += 1;
            }
        }
    }
    opts
}

/// Relative change in percent; `None` when both sides are zero (no
/// change worth reporting) and `inf` when a zero baseline moved.
fn rel_change(base: f64, cur: f64) -> Option<f64> {
    if base == cur {
        return None;
    }
    if base == 0.0 {
        return Some(f64::INFINITY);
    }
    Some((cur - base) / base.abs() * 100.0)
}

fn fmt_change(pct: f64) -> String {
    if pct.is_infinite() {
        "new".to_string()
    } else {
        format!("{pct:+.1}%")
    }
}

/// One compared metric beyond the threshold.
struct Delta {
    name: String,
    base: String,
    cur: String,
    change: String,
    /// Sort key: larger drifts first.
    magnitude: f64,
}

fn compare(base: &Snapshot, cur: &Snapshot, threshold: f64) -> (usize, Vec<Delta>) {
    let mut compared = 0usize;
    let mut out = Vec::new();
    let mut push = |name: String, b: f64, c: f64, unit: &str| {
        compared += 1;
        if let Some(pct) = rel_change(b, c) {
            if pct.abs() >= threshold {
                out.push(Delta {
                    name,
                    base: format!("{b}{unit}"),
                    cur: format!("{c}{unit}"),
                    change: fmt_change(pct),
                    magnitude: pct.abs(),
                });
            }
        }
    };
    for (name, &c) in &cur.counters {
        let b = base.counters.get(name).copied().unwrap_or(0);
        push(name.clone(), b as f64, c as f64, "");
    }
    for (name, &c) in &cur.gauges {
        let b = base.gauges.get(name).copied().unwrap_or(0);
        push(name.clone(), b as f64, c as f64, "");
    }
    for (name, h) in &cur.histograms {
        let bh = base.histograms.get(name).cloned().unwrap_or_default();
        push(format!("{name}.count"), bh.count as f64, h.count as f64, "");
        push(format!("{name}.mean"), bh.mean(), h.mean(), "");
        for (label, q) in [("p50", 0.5), ("p99", 0.99)] {
            push(
                format!("{name}.{label}"),
                bh.quantile(q) as f64,
                h.quantile(q) as f64,
                "",
            );
        }
    }
    out.sort_by(|a, b| b.magnitude.total_cmp(&a.magnitude));
    (compared, out)
}

fn load(path: &Path) -> Option<Snapshot> {
    let text = std::fs::read_to_string(path).ok()?;
    match Snapshot::from_json(&text) {
        Ok(s) => Some(s),
        Err(e) => {
            println!("  {}: unreadable snapshot ({e})", path.display());
            None
        }
    }
}

fn main() {
    let opts = parse_args();
    let mut names: Vec<String> = match std::fs::read_dir(&opts.current) {
        Ok(dir) => dir
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
            .collect(),
        Err(e) => {
            println!(
                "bench_diff: no current results under {} ({e}) — run the benches first",
                opts.current.display()
            );
            return;
        }
    };
    names.sort();
    if names.is_empty() {
        println!(
            "bench_diff: no BENCH_*.json under {} — run the benches first",
            opts.current.display()
        );
        return;
    }
    // In strict mode print down to the gate threshold too, so every
    // metric that can fail the run is visible in the report.
    let print_threshold = match opts.strict {
        Some(pct) => opts.threshold.min(pct),
        None => opts.threshold,
    };
    println!(
        "== bench_diff: {} vs baseline {} (reporting |change| >= {print_threshold}%{}) ==",
        opts.current.display(),
        opts.baseline.display(),
        match opts.strict {
            Some(pct) => format!(", failing beyond {pct}%"),
            None => String::new(),
        }
    );
    let mut regressions = 0usize;
    for name in names {
        let cur_path = opts.current.join(&name);
        let base_path = opts.baseline.join(&name);
        if !base_path.exists() {
            println!("{name}: no committed baseline — skipped");
            continue;
        }
        let (Some(base), Some(cur)) = (load(&base_path), load(&cur_path)) else {
            continue;
        };
        let (compared, deltas) = compare(&base, &cur, print_threshold);
        println!(
            "{name}: {compared} metrics compared, {} drifted",
            deltas.len()
        );
        for d in &deltas {
            // Brand-new metrics ("new") never fail strict mode — a
            // bench gaining a series must be able to land in one change.
            let failing = matches!(opts.strict, Some(pct)
                if d.magnitude.is_finite() && d.magnitude >= pct);
            println!(
                "  {:<44} {:>14} -> {:<14} {}{}",
                d.name,
                d.base,
                d.cur,
                d.change,
                if failing { "  [REGRESSION]" } else { "" }
            );
            regressions += failing as usize;
        }
    }
    if let Some(pct) = opts.strict {
        if regressions > 0 {
            eprintln!("bench_diff: {regressions} metric(s) drifted beyond {pct}% — failing");
            std::process::exit(1);
        }
        println!("bench_diff: strict gate clean (no drift beyond {pct}%)");
    }
}
