//! Figure 11 — normalized QoS-1 packet latency in Deltacom*.
//!
//! The paper reports MegaTE cutting time-sensitive traffic's latency
//! by 25% vs NCFlow and 33% vs TEAL: aggregated schemes mix classes on
//! long tunnels, MegaTE's per-class endpoint placement keeps class 1 on
//! the shortest paths. We run all schemes on one Deltacom* instance and
//! report demand-weighted normalized latency per QoS class.

use megate_bench::{print_table, write_json};
use megate_solvers::{solve_per_qos, MegaTeScheme, NcFlowScheme, TeScheme, TealScheme};
use megate_traffic::QosClass;
use serde::Serialize;

#[derive(Serialize)]
struct LatencyRow {
    scheme: String,
    qos1: f64,
    qos2: f64,
    qos3: f64,
    reduction_vs_scheme_pct: f64,
}

fn main() {
    // Figure 11 is about *where classes land when aggregates split*:
    // each site pair's aggregate demand exceeds its shortest tunnel's
    // bottleneck, so every scheme must split the aggregate across
    // tunnels — and only MegaTE controls *which class* rides which
    // branch. Build that instance explicitly: 40 Deltacom* pairs, each
    // with per-pair demand ≈ 1.5× its shortest-tunnel bottleneck.
    use megate_topo::{deltacom, EndpointId, SiteId};
    use megate_traffic::{DemandSet, EndpointDemand};
    use rand::{rngs::StdRng, Rng, SeedableRng};

    let graph = deltacom();
    let mut rng = StdRng::seed_from_u64(19);
    // Only pairs whose first alternate tunnel is link-disjoint from the
    // shortest one can actually absorb a split — Deltacom's ring
    // segments provide them. (Pairs without a disjoint detour just drop
    // the excess; no scheme can place it anywhere else.)
    let mut pairs = Vec::new();
    let mut attempts = 0;
    while pairs.len() < 40 && attempts < 20_000 {
        attempts += 1;
        let a = SiteId(rng.gen_range(0..graph.site_count() as u32));
        let b = SiteId(rng.gen_range(0..graph.site_count() as u32));
        if a == b {
            continue;
        }
        let pair = megate_topo::SitePair::new(a, b);
        if pairs.contains(&pair) {
            continue;
        }
        let probe = megate_topo::TunnelTable::for_pairs(&graph, &[pair], 4);
        let ts = probe.tunnels_for(pair);
        if ts.len() < 2 {
            continue;
        }
        let first = probe.tunnel(ts[0]);
        let second = probe.tunnel(ts[1]);
        let disjoint = !second.links.iter().any(|l| first.links.contains(l));
        if disjoint && second.weight > first.weight * 1.1 {
            pairs.push(pair);
        }
    }
    let tunnels = megate_topo::TunnelTable::for_pairs(&graph, &pairs, 4);

    let mut demands = DemandSet::default();
    let mut next_ep = 0u64;
    for &pair in &pairs {
        let ts = tunnels.tunnels_for(pair);
        if ts.is_empty() {
            continue;
        }
        let bottleneck = tunnels
            .tunnel(ts[0])
            .links
            .iter()
            .map(|&l| graph.link(l).capacity_mbps)
            .fold(f64::INFINITY, f64::min);
        let pair_total = 1.5 * bottleneck;
        let n_flows = 75;
        for i in 0..n_flows {
            let qos = match i % 20 {
                0..=2 => megate_traffic::QosClass::Class1,
                3..=13 => megate_traffic::QosClass::Class2,
                _ => megate_traffic::QosClass::Class3,
            };
            let jitter = rng.gen_range(0.5..1.5);
            demands.push(
                pair,
                EndpointDemand {
                    src: EndpointId(next_ep),
                    dst: EndpointId(next_ep + 1),
                    demand_mbps: pair_total / n_flows as f64 * jitter,
                    qos,
                },
            );
            next_ep += 2;
        }
    }
    let inst_graph = graph;
    let p = megate_solvers::TeProblem {
        graph: &inst_graph,
        tunnels: &tunnels,
        demands: &demands,
    };

    let mega = solve_per_qos(&MegaTeScheme::default(), &p).expect("megate");
    let nc = NcFlowScheme::default().solve(&p).expect("ncflow");
    let teal = TealScheme::default().solve(&p).expect("teal");

    let norm = |alloc: &megate_solvers::TeAllocation, q| alloc.mean_normalized_latency(&p, Some(q));
    let mega_q1 = norm(&mega, QosClass::Class1);
    let nc_q1 = norm(&nc, QosClass::Class1);
    let teal_q1 = norm(&teal, QosClass::Class1);

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (name, alloc, q1) in [
        ("MegaTE", &mega, mega_q1),
        ("NCFlow", &nc, nc_q1),
        ("TEAL", &teal, teal_q1),
    ] {
        let reduction = if name == "MegaTE" {
            0.0
        } else {
            100.0 * (1.0 - mega_q1 / q1)
        };
        rows.push(vec![
            name.to_string(),
            format!("{:.3}", q1),
            format!("{:.3}", norm(alloc, QosClass::Class2)),
            format!("{:.3}", norm(alloc, QosClass::Class3)),
            if name == "MegaTE" {
                "-".into()
            } else {
                format!("{reduction:.0}%")
            },
        ]);
        json.push(LatencyRow {
            scheme: name.to_string(),
            qos1: q1,
            qos2: norm(alloc, QosClass::Class2),
            qos3: norm(alloc, QosClass::Class3),
            reduction_vs_scheme_pct: reduction,
        });
    }
    print_table(
        "Figure 11 (Deltacom*): normalized QoS-1 latency (1.0 = shortest path). \
         Paper: MegaTE -25% vs NCFlow, -33% vs TEAL",
        &["scheme", "QoS1", "QoS2", "QoS3", "MegaTE reduction"],
        &rows,
    );
    assert!(
        mega_q1 < nc_q1 && mega_q1 < teal_q1,
        "MegaTE must win on QoS-1 latency: {mega_q1} vs NCFlow {nc_q1} / TEAL {teal_q1}"
    );
    write_json("fig11_latency", &json);
}
