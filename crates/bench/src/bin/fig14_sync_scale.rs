//! Figure 14 — controller resources vs endpoint count: top-down push
//! (persistent connections) against MegaTE's bottom-up pull.
//!
//! Paper: 1M endpoints need ≥167 high-usage cores and 125 GB under the
//! top-down loop; the bottom-up controller stays at 1 core / 1 GB and
//! offloads to database shards (2 shards + 10 s query spreading).

use megate_bench::{print_table, write_json};
use megate_tedb::{simulate_pull_sync, BottomUpModel, SyncConfig, SyncMode, TopDownModel};
use serde::Serialize;

#[derive(Serialize)]
struct ChurnRow {
    changed_fraction: f64,
    full_published_mb: f64,
    delta_published_mb: f64,
    full_pulled_mb: f64,
    delta_pulled_mb: f64,
    full_shard_peak_mb_s: f64,
    delta_shard_peak_mb_s: f64,
    published_reduction: f64,
    shard_bytes_reduction: f64,
}

#[derive(Serialize)]
struct ScaleRow {
    endpoints: usize,
    topdown_cores: usize,
    topdown_memory_gb: f64,
    bottomup_cores: usize,
    bottomup_memory_gb: f64,
    db_shards: usize,
    pull_peak_qps: f64,
    pull_convergence_ms: u64,
}

fn main() {
    let td = TopDownModel::default();
    let bu = BottomUpModel::default();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &endpoints in &[1_000usize, 10_000, 100_000, 500_000, 1_000_000] {
        let sync = simulate_pull_sync(&SyncConfig {
            n_endpoints: endpoints,
            ..Default::default()
        });
        let shards = bu.shards_needed(endpoints, 10.0);
        rows.push(vec![
            endpoints.to_string(),
            td.cores_needed(endpoints).to_string(),
            format!("{:.1}", td.memory_gb(endpoints)),
            bu.controller_cores.to_string(),
            format!("{:.1}", bu.controller_mem_gb),
            shards.to_string(),
            format!("{:.0}", sync.peak_qps),
        ]);
        json.push(ScaleRow {
            endpoints,
            topdown_cores: td.cores_needed(endpoints),
            topdown_memory_gb: td.memory_gb(endpoints),
            bottomup_cores: bu.controller_cores,
            bottomup_memory_gb: bu.controller_mem_gb,
            db_shards: shards,
            pull_peak_qps: sync.peak_qps,
            pull_convergence_ms: sync.convergence_ms,
        });
    }
    print_table(
        "Figure 14: controller resources vs endpoints (paper: 1M -> 167 cores / \
         125 GB top-down; 1 core / 1 GB bottom-up)",
        &[
            "endpoints",
            "TD cores",
            "TD mem GB",
            "BU cores",
            "BU mem GB",
            "DB shards",
            "pull peak qps",
        ],
        &rows,
    );
    let last = json.last().unwrap();
    assert_eq!(last.topdown_cores, 167);
    assert!((last.topdown_memory_gb - 125.0).abs() < 1e-9);
    assert_eq!(last.bottomup_cores, 1);
    println!(
        "\nConvergence of the bottom-up pull at 1M endpoints: {} ms (within the \
         10 s sync period; eventual consistency, §3.2).",
        last.pull_convergence_ms
    );
    write_json("fig14_sync_scale", &json);

    // Second panel: bytes moved per interval under the delta-versioned
    // keyspace vs a full republish, as allocation churn varies. At the
    // steady-state churn the paper's workloads see (well under 10%),
    // deltas cut published and per-shard query bytes by >=5x.
    let mut byte_rows = Vec::new();
    let mut byte_json = Vec::new();
    for &churn in &[1.0, 0.25, 0.10, 0.05, 0.01] {
        let base = SyncConfig {
            n_endpoints: 1_000_000,
            ..Default::default()
        };
        let full = simulate_pull_sync(&base.clone());
        let delta = simulate_pull_sync(&SyncConfig {
            mode: SyncMode::DeltaVersioned,
            changed_fraction: churn,
            ..base
        });
        let row = ChurnRow {
            changed_fraction: churn,
            full_published_mb: full.published_bytes as f64 / 1e6,
            delta_published_mb: delta.published_bytes as f64 / 1e6,
            full_pulled_mb: full.pulled_bytes as f64 / 1e6,
            delta_pulled_mb: delta.pulled_bytes as f64 / 1e6,
            full_shard_peak_mb_s: full.per_shard_peak_bytes_per_s / 1e6,
            delta_shard_peak_mb_s: delta.per_shard_peak_bytes_per_s / 1e6,
            published_reduction: full.published_bytes as f64
                / (delta.published_bytes.max(1)) as f64,
            shard_bytes_reduction: full.per_shard_peak_bytes_per_s
                / delta.per_shard_peak_bytes_per_s.max(1.0),
        };
        byte_rows.push(vec![
            format!("{:.0}%", churn * 100.0),
            format!("{:.1}", row.full_published_mb),
            format!("{:.1}", row.delta_published_mb),
            format!("{:.1}", row.full_pulled_mb),
            format!("{:.1}", row.delta_pulled_mb),
            format!("{:.1}", row.full_shard_peak_mb_s),
            format!("{:.1}", row.delta_shard_peak_mb_s),
            format!("{:.1}x", row.published_reduction),
            format!("{:.1}x", row.shard_bytes_reduction),
        ]);
        byte_json.push(row);
    }
    print_table(
        "Delta-versioned keyspace vs full republish at 1M endpoints: bytes per \
         interval as churn varies",
        &[
            "churn",
            "full pub MB",
            "delta pub MB",
            "full pull MB",
            "delta pull MB",
            "full shard MB/s",
            "delta shard MB/s",
            "pub reduction",
            "shard reduction",
        ],
        &byte_rows,
    );
    for row in &byte_json {
        if row.changed_fraction < 0.10 {
            assert!(
                row.published_reduction >= 5.0 && row.shard_bytes_reduction >= 5.0,
                "delta mode must cut bytes >=5x under 10% churn"
            );
        }
    }
    write_json("fig14_delta_bytes", &byte_json);

    match megate_obs::write_bench_snapshot("fig14") {
        Ok(path) => println!("metrics snapshot: {}", path.display()),
        Err(e) => println!("metrics snapshot skipped: {e}"),
    }
}
