//! Figure 14 — controller resources vs endpoint count: top-down push
//! (persistent connections) against MegaTE's bottom-up pull.
//!
//! Paper: 1M endpoints need ≥167 high-usage cores and 125 GB under the
//! top-down loop; the bottom-up controller stays at 1 core / 1 GB and
//! offloads to database shards (2 shards + 10 s query spreading).

use megate_bench::{print_table, write_json};
use megate_tedb::{simulate_pull_sync, BottomUpModel, SyncConfig, TopDownModel};
use serde::Serialize;

#[derive(Serialize)]
struct ScaleRow {
    endpoints: usize,
    topdown_cores: usize,
    topdown_memory_gb: f64,
    bottomup_cores: usize,
    bottomup_memory_gb: f64,
    db_shards: usize,
    pull_peak_qps: f64,
    pull_convergence_ms: u64,
}

fn main() {
    let td = TopDownModel::default();
    let bu = BottomUpModel::default();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &endpoints in &[1_000usize, 10_000, 100_000, 500_000, 1_000_000] {
        let sync = simulate_pull_sync(&SyncConfig {
            n_endpoints: endpoints,
            ..Default::default()
        });
        let shards = bu.shards_needed(endpoints, 10.0);
        rows.push(vec![
            endpoints.to_string(),
            td.cores_needed(endpoints).to_string(),
            format!("{:.1}", td.memory_gb(endpoints)),
            bu.controller_cores.to_string(),
            format!("{:.1}", bu.controller_mem_gb),
            shards.to_string(),
            format!("{:.0}", sync.peak_qps),
        ]);
        json.push(ScaleRow {
            endpoints,
            topdown_cores: td.cores_needed(endpoints),
            topdown_memory_gb: td.memory_gb(endpoints),
            bottomup_cores: bu.controller_cores,
            bottomup_memory_gb: bu.controller_mem_gb,
            db_shards: shards,
            pull_peak_qps: sync.peak_qps,
            pull_convergence_ms: sync.convergence_ms,
        });
    }
    print_table(
        "Figure 14: controller resources vs endpoints (paper: 1M -> 167 cores / \
         125 GB top-down; 1 core / 1 GB bottom-up)",
        &[
            "endpoints",
            "TD cores",
            "TD mem GB",
            "BU cores",
            "BU mem GB",
            "DB shards",
            "pull peak qps",
        ],
        &rows,
    );
    let last = json.last().unwrap();
    assert_eq!(last.topdown_cores, 167);
    assert!((last.topdown_memory_gb - 125.0).abs() < 1e-9);
    assert_eq!(last.bottomup_cores, 1);
    println!(
        "\nConvergence of the bottom-up pull at 1M endpoints: {} ms (within the \
         10 s sync period; eventual consistency, §3.2).",
        last.pull_convergence_ms
    );
    write_json("fig14_sync_scale", &json);
}
