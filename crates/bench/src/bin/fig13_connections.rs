//! Figure 13 — CPU utilization and memory vs persistent-connection
//! count on a 1-core/1-GB VM (the top-down control loop's pressure
//! test; paper calibration: 6,000 connections ≈ 90% CPU, 750 MB).

use megate_bench::{print_table, write_json};
use megate_tedb::TopDownModel;
use serde::Serialize;

#[derive(Serialize)]
struct ConnRow {
    connections: usize,
    cpu_pct: f64,
    memory_mb: f64,
}

fn main() {
    let model = TopDownModel::default();
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for &conns in &[500usize, 1_000, 2_000, 3_000, 4_000, 5_000, 6_000] {
        let cpu = model.cpu_utilization(conns) * 100.0;
        let mem = model.memory_mb(conns);
        rows.push(vec![
            conns.to_string(),
            format!("{cpu:.0}%"),
            format!("{mem:.0} MB"),
        ]);
        json.push(ConnRow {
            connections: conns,
            cpu_pct: cpu,
            memory_mb: mem,
        });
    }
    print_table(
        "Figure 13: top-down persistent connections on a 1-core/1-GB VM \
         (paper: 6,000 conns -> 90% CPU, 750 MB)",
        &["connections", "CPU", "memory"],
        &rows,
    );
    let last = json.last().unwrap();
    assert!((last.cpu_pct - 90.0).abs() < 1e-9);
    assert!((last.memory_mb - 750.0).abs() < 1e-9);
    println!(
        "\nOperators flag sustained {}% utilization as failure risk — 6,000 \
         connections saturate the VM.",
        (model.max_core_utilization * 100.0) as u32
    );
    write_json("fig13_connections", &json);
}
